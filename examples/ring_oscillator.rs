//! Three-stage CNT ring oscillator: adaptive transient simulation of
//! the compact model inside the MNA engine — the "practical logic
//! circuit structures" of the paper's future-work section.
//!
//! The run drives a `Simulator` session with an adaptive
//! `TransientSpec` (LTE-controlled BDF2), which resolves the ~32 ps
//! oscillation with several times fewer steps than the fixed
//! backward-Euler grid this example used historically (see the
//! `transient_scaling` bench for the measured comparison).
//!
//! Run with `cargo run --release --example ring_oscillator`.

use cntfet::circuit::prelude::*;
use cntfet::core::CompactCntFet;
use cntfet::reference::DeviceParams;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let model = Arc::new(CompactCntFet::model2(DeviceParams::paper_default())?);
    let tech = CntTechnology::symmetric(model, 0.8);

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    let stages = add_ring_oscillator(&mut ckt, &tech, "ring", 3, vdd);

    // Start from an asymmetric state so the ring leaves metastability.
    let mut x0 = vec![tech.vdd / 2.0; ckt.unknown_count()];
    if let Some(i) = stages[0].unknown_index() {
        x0[i] = tech.vdd;
    }
    if let Some(i) = stages[1].unknown_index() {
        x0[i] = 0.0;
    }

    let t_stop = 4e-9;
    let options = TransientOptions {
        dt_init: Some(1e-12),
        dt_max: Some(50e-12),
        rel_tol: 1e-2,
        abs_tol: 1e-4,
        ..TransientOptions::default()
    };
    let mut sim = Simulator::new(ckt);
    let run = sim.transient(
        &TransientSpec::adaptive(t_stop)
            .with_options(options)
            .with_initial(x0),
    )?;
    let w0 = run.result.waveform(stages[0]);

    println!(
        "# 3-stage CNT ring oscillator, VDD = {} V, adaptive {:?}",
        tech.vdd, options.integrator
    );
    println!(
        "# accepted {} steps, rejected {} (LTE) + {} (Newton), \
         {} Newton iterations, {} factorisations",
        run.stats.accepted,
        run.stats.rejected_lte,
        run.stats.rejected_newton,
        run.stats.newton_iterations,
        run.stats.factorizations
    );
    println!("t[ns]\tstage0[V]");
    for (t, v) in run.result.time.iter().zip(&w0).step_by(20) {
        println!("{:.4}\t{v:.4}", t * 1e9);
    }

    // Estimate the oscillation period from mid-rail crossings in the
    // second half of the run (after start-up); the `crossings` helper
    // interpolates between the variably spaced accepted points.
    let mid = tech.vdd / 2.0;
    let crossings: Vec<f64> = run
        .result
        .crossings(stages[0], mid)
        .into_iter()
        .filter(|&(t, _)| t >= t_stop / 2.0)
        .map(|(t, _)| t)
        .collect();
    if crossings.len() >= 3 {
        // Both edge directions are included, so crossings are half a
        // period apart.
        let period = 2.0 * (crossings.last().expect("non-empty") - crossings[0])
            / (crossings.len() - 1) as f64;
        println!(
            "# oscillation period ~ {:.1} ps  (f ~ {:.1} GHz)",
            period * 1e12,
            1e-9 / period
        );
    } else {
        println!("# no sustained oscillation detected — check stage loading");
    }
    Ok(())
}
