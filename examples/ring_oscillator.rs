//! Three-stage CNT ring oscillator: transient simulation of the compact
//! model inside the MNA engine — the "practical logic circuit
//! structures" of the paper's future-work section.
//!
//! Run with `cargo run --release --example ring_oscillator`.

use cntfet::circuit::prelude::*;
use cntfet::core::CompactCntFet;
use cntfet::reference::DeviceParams;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let model = Arc::new(CompactCntFet::model2(DeviceParams::paper_default())?);
    let tech = CntTechnology::symmetric(model, 0.8);

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    let stages = add_ring_oscillator(&mut ckt, &tech, "ring", 3, vdd);

    // Start from an asymmetric state so the ring leaves metastability.
    let mut x0 = vec![tech.vdd / 2.0; ckt.unknown_count()];
    if let Some(i) = stages[0].unknown_index() {
        x0[i] = tech.vdd;
    }
    if let Some(i) = stages[1].unknown_index() {
        x0[i] = 0.0;
    }

    let t_stop = 4e-9;
    let dt = 1e-12;
    let result = solve_transient(&ckt, t_stop, dt, Some(&x0))?;
    let w0 = result.waveform(stages[0]);

    println!(
        "# 3-stage CNT ring oscillator, VDD = {} V, dt = {dt:.1e} s",
        tech.vdd
    );
    println!("t[ns]\tstage0[V]");
    for (t, v) in result.time.iter().zip(&w0).step_by(20) {
        println!("{:.4}\t{v:.4}", t * 1e9);
    }

    // Estimate the oscillation period from mid-rail crossings in the
    // second half of the run (after start-up).
    let mid = tech.vdd / 2.0;
    let half = result.time.len() / 2;
    let mut crossings = Vec::new();
    for i in half..w0.len() - 1 {
        if (w0[i] - mid) * (w0[i + 1] - mid) < 0.0 {
            crossings.push(result.time[i]);
        }
    }
    if crossings.len() >= 3 {
        let period = 2.0 * (crossings.last().expect("non-empty") - crossings[0])
            / (crossings.len() - 1) as f64;
        println!(
            "# oscillation period ~ {:.1} ps  (f ~ {:.1} GHz)",
            period * 1e12,
            1e-9 / period
        );
    } else {
        println!("# no sustained oscillation detected — check stage loading");
    }
    Ok(())
}
