//! Shows the fitting machinery: fit the paper's Model 1 and Model 2 to
//! the theoretical charge curve, print the fitted polynomials and the
//! C¹-continuity check, then let the breakpoint optimiser move the
//! boundaries and report the accuracy change.
//!
//! Run with `cargo run --release --example model_fitting`.

use cntfet::core::spec::PiecewiseSpec;
use cntfet::core::validation::rms_error_percent;
use cntfet::core::CompactCntFet;
use cntfet::numerics::interp::linspace;
use cntfet::reference::{BallisticModel, DeviceParams};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params.clone());
    let grid = linspace(0.0, 0.6, 31);

    for (label, model) in [
        (
            "Model 1 (paper breakpoints -0.08/+0.08)",
            CompactCntFet::model1(params.clone())?,
        ),
        (
            "Model 2 (paper breakpoints -0.28/-0.03/+0.12)",
            CompactCntFet::model2(params.clone())?,
        ),
    ] {
        println!("=== {label} ===");
        println!(
            "breakpoints (absolute V): {:?}",
            model.charge().breakpoints()
        );
        for (i, poly) in model.charge().polynomials().iter().enumerate() {
            println!("  region {i}: Q(V) = {poly}");
        }
        for (i, (dv, ds)) in model.charge().continuity_jumps().iter().enumerate() {
            println!("  joint {i}: value jump {dv:.2e} C/m, slope jump {ds:.2e} F/m");
        }
        for vg in [0.2, 0.4, 0.6] {
            let err = rms_error_percent(&model, &reference, vg, &grid)?;
            println!("  IDS RMS error at VG={vg}: {err:.2}%");
        }
        println!();
    }

    println!("=== breakpoint optimisation (Model 2 layout) ===");
    let optimised = CompactCntFet::with_optimized_breakpoints(params, PiecewiseSpec::model2())?;
    println!(
        "optimised offsets from EF/q: {:?}",
        optimised.spec().offsets
    );
    for vg in [0.2, 0.4, 0.6] {
        let err = rms_error_percent(&optimised, &reference, vg, &grid)?;
        println!("  IDS RMS error at VG={vg}: {err:.2}%");
    }
    Ok(())
}
