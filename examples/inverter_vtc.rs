//! CNT inverter voltage-transfer characteristic: the compact CNFET
//! living inside the SPICE-like MNA engine — the paper's motivating use
//! case.
//!
//! Builds a complementary inverter from two mirror-symmetric Model 2
//! devices, sweeps the input and prints the VTC plus the extracted gain
//! and switching threshold.
//!
//! Run with `cargo run --release --example inverter_vtc`.

use cntfet::circuit::prelude::*;
use cntfet::core::CompactCntFet;
use cntfet::reference::DeviceParams;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let model = Arc::new(CompactCntFet::model2(DeviceParams::paper_default())?);
    let tech = CntTechnology::symmetric(model, 0.8);

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    ckt.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
    add_inverter(&mut ckt, &tech, "inv1", vin, out, vdd);

    let points = 41;
    let values: Vec<f64> = (0..points)
        .map(|i| tech.vdd * i as f64 / (points - 1) as f64)
        .collect();
    let sweep = dc_sweep(&mut ckt, "VIN", &values)?;
    let vtc = sweep.voltages(out);

    println!("# CNT inverter VTC, VDD = {} V", tech.vdd);
    println!("vin\tvout");
    for (vi, vo) in values.iter().zip(&vtc) {
        println!("{vi:.4}\t{vo:.4}");
    }

    // Extract the switching threshold (closest point to vout = VDD/2) and
    // the peak small-signal gain.
    let mid = tech.vdd / 2.0;
    let (threshold, _) = values
        .iter()
        .zip(&vtc)
        .min_by(|(_, a), (_, b)| {
            (*a - mid)
                .abs()
                .partial_cmp(&(*b - mid).abs())
                .expect("finite")
        })
        .map(|(v, o)| (*v, *o))
        .expect("non-empty sweep");
    let mut gain = 0.0f64;
    for w in values.windows(2).zip(vtc.windows(2)) {
        let dv = w.0[1] - w.0[0];
        let dout = w.1[1] - w.1[0];
        gain = gain.max((dout / dv).abs());
    }
    println!("# switching threshold ~ {threshold:.3} V (mid-rail {mid:.3} V)");
    println!("# peak |dVout/dVin| ~ {gain:.1}");
    Ok(())
}
