//! CNT inverter voltage-transfer characteristic: the compact CNFET
//! living inside the SPICE-like MNA engine — the paper's motivating use
//! case.
//!
//! Builds a complementary inverter from two mirror-symmetric Model 2
//! devices in one `Simulator` session, sweeps the input, prints the VTC
//! with the extracted switching threshold, then re-biases the *same*
//! session at the threshold and measures the exact small-signal gain
//! with an AC analysis (no finite-difference noise, no rebuilt solver
//! caches).
//!
//! Run with `cargo run --release --example inverter_vtc`.

use cntfet::circuit::prelude::*;
use cntfet::core::CompactCntFet;
use cntfet::reference::DeviceParams;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let model = Arc::new(CompactCntFet::model2(DeviceParams::paper_default())?);
    let tech = CntTechnology::symmetric(model, 0.8);

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    ckt.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
    add_inverter(&mut ckt, &tech, "inv1", vin, out, vdd);

    let mut sim = Simulator::new(ckt);
    let sweep = sim.dc_sweep(&SweepSpec::linspace("VIN", 0.0, tech.vdd, 41))?;
    let vtc = sweep.voltage("out")?;

    println!("# CNT inverter VTC, VDD = {} V", tech.vdd);
    println!("vin\tvout");
    for (vi, vo) in sweep.values.iter().zip(vtc) {
        println!("{vi:.4}\t{vo:.4}");
    }

    // Switching threshold: the sweep point whose output is closest to
    // mid-rail.
    let mid = tech.vdd / 2.0;
    let threshold = sweep
        .values
        .iter()
        .zip(vtc)
        .min_by(|(_, a), (_, b)| {
            (*a - mid)
                .abs()
                .partial_cmp(&(*b - mid).abs())
                .expect("finite")
        })
        .map(|(v, _)| *v)
        .expect("non-empty sweep");
    println!("# switching threshold ~ {threshold:.3} V (mid-rail {mid:.3} V)");

    // Small-signal gain at the threshold, from the same session: bias
    // VIN there and run a one-point AC analysis far below the device
    // capacitance corner. |H| is the exact dVout/dVin of the linearised
    // circuit.
    sim.set_source("VIN", threshold)?;
    let ac = sim.ac(&AcSweep::list("VIN", vec![1.0]))?;
    println!(
        "# small-signal gain at threshold: |dVout/dVin| = {:.1} (phase {:.0} deg)",
        ac.magnitude("out")?[0],
        ac.phase_deg("out")?[0]
    );
    Ok(())
}
