//! Quickstart: build both models for the paper's default device, compare
//! one bias point and one output curve, and print the speed-up.
//!
//! Run with `cargo run --release --example quickstart`.

use cntfet::core::CompactCntFet;
use cntfet::numerics::interp::linspace;
use cntfet::numerics::stats::relative_rms_percent;
use cntfet::reference::{BallisticModel, DeviceParams};
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    // The FETToy default device: (13,0) tube, coaxial 1.5 nm oxide,
    // T = 300 K, E_F = −0.32 eV.
    let params = DeviceParams::paper_default();
    println!(
        "device: d = {:.2} nm, Eg = {:.2} eV, C_sigma = {:.3e} F/m",
        params.chirality.diameter_m() * 1e9,
        params.chirality.band_gap_ev(),
        params.capacitances.total()
    );

    // Reference model: numerical Fermi integrals + Newton-Raphson.
    let reference = BallisticModel::new(params.clone());
    // Compact model: one-off fit, then closed-form everywhere.
    let t_fit = Instant::now();
    let fast = CompactCntFet::model2(params)?;
    println!(
        "model 2 fitted in {:.1} ms",
        t_fit.elapsed().as_secs_f64() * 1e3
    );

    // One bias point.
    let p_ref = reference.solve_point(0.6, 0.6, 0.0)?;
    let i_fast = fast.ids(0.6, 0.6)?;
    println!(
        "IDS(VG=0.6, VDS=0.6): reference {:.4e} A, compact {:.4e} A ({:+.2}%)",
        p_ref.ids,
        i_fast,
        100.0 * (i_fast - p_ref.ids) / p_ref.ids
    );

    // A full output curve with its RMS error.
    let grid = linspace(0.0, 0.6, 31);
    let slow_curve = reference.output_characteristic(0.5, &grid)?.currents();
    let fast_curve = fast.output_characteristic(0.5, &grid)?.currents();
    println!(
        "VG = 0.5 sweep RMS error: {:.2}% of peak current",
        relative_rms_percent(&fast_curve, &slow_curve)
    );

    // The headline: evaluation throughput.
    let n = 2000;
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = fast.ids(0.5, 0.4)?;
    }
    let fast_rate = n as f64 / t0.elapsed().as_secs_f64();
    let n_ref = 50;
    let t1 = Instant::now();
    for _ in 0..n_ref {
        let _ = reference.solve_point(0.5, 0.4, 0.0)?;
    }
    let slow_rate = n_ref as f64 / t1.elapsed().as_secs_f64();
    println!(
        "throughput: compact {:.0}/s vs reference {:.0}/s  ->  {:.0}x speed-up",
        fast_rate,
        slow_rate,
        fast_rate / slow_rate
    );
    Ok(())
}
