//! Generates the full I–V characteristic family of the paper's Fig. 6/7
//! (reference vs Model 1 vs Model 2) as tab-separated values suitable for
//! plotting.
//!
//! Run with `cargo run --release --example iv_characteristics > iv.tsv`.

use cntfet::core::CompactCntFet;
use cntfet::numerics::interp::linspace;
use cntfet::reference::{BallisticModel, DeviceParams};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone())?;
    let m2 = CompactCntFet::model2(params)?;

    let vds_grid = linspace(0.0, 0.6, 61);
    let vg_values = [0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6];

    println!("# IDS(VDS) families at T=300K, EF=-0.32eV");
    println!("# columns: vds, then per VG: reference, model1, model2");
    print!("vds");
    for vg in &vg_values {
        print!("\tref_{vg}\tm1_{vg}\tm2_{vg}");
    }
    println!();

    let mut columns: Vec<Vec<f64>> = Vec::new();
    for &vg in &vg_values {
        columns.push(reference.output_characteristic(vg, &vds_grid)?.currents());
        columns.push(m1.output_characteristic(vg, &vds_grid)?.currents());
        columns.push(m2.output_characteristic(vg, &vds_grid)?.currents());
    }
    for (i, vds) in vds_grid.iter().enumerate() {
        print!("{vds:.3}");
        for col in &columns {
            print!("\t{:.5e}", col[i]);
        }
        println!();
    }
    Ok(())
}
