//! # cntfet — fast circuit-level modelling of ballistic carbon-nanotube transistors
//!
//! A complete Rust reproduction of *"Efficient circuit-level modelling of
//! ballistic CNT using piecewise non-linear approximation of mobile charge
//! density"* (Kazmierski, Zhou, Al-Hashimi — DATE 2008), including every
//! substrate the paper depends on:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`mod@numerics`] | polynomials + closed-form cubic roots, quadrature, root finding, dense linear algebra, constrained least squares, optimisers |
//! | [`mod@physics`] | CNT band structure, density of states, Fermi statistics, gate electrostatics |
//! | [`mod@reference`] | the FETToy-style theoretical baseline: numerical state-density integrals + Newton–Raphson self-consistency |
//! | [`mod@core`] | **the paper's contribution**: piecewise non-linear charge approximation with closed-form self-consistent solution |
//! | [`mod@circuit`] | a SPICE-like MNA simulator with the CNFET as its Fig. 1 equivalent circuit, plus CNT logic builders |
//! | [`mod@expdata`] | surrogate experimental data for the paper's Section VI comparison |
//!
//! # Quickstart
//!
//! ```
//! use cntfet::core::CompactCntFet;
//! use cntfet::reference::{BallisticModel, DeviceParams};
//!
//! let params = DeviceParams::paper_default();
//! // Slow, accurate reference (quadrature + Newton-Raphson):
//! let reference = BallisticModel::new(params.clone());
//! // Fast compact model (fitted once, then closed-form):
//! let fast = CompactCntFet::model2(params)?;
//!
//! let i_ref = reference.solve_point(0.6, 0.6, 0.0)?.ids;
//! let i_fast = fast.ids(0.6, 0.6)?;
//! assert!((i_ref - i_fast).abs() / i_ref < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the architecture and per-experiment index, and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use cntfet_circuit as circuit;
pub use cntfet_core as core;
pub use cntfet_expdata as expdata;
pub use cntfet_numerics as numerics;
pub use cntfet_physics as physics;
pub use cntfet_reference as reference;
