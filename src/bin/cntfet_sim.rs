//! `cntfet-sim` — run a SPICE deck through the CNFET circuit simulator.
//!
//! ```text
//! usage: cntfet-sim [--csv] [--check] [--lint] [lint options] <deck.cir>
//! ```
//!
//! Parses the deck, runs every analysis card (`.op`, `.dc`, `.tran`,
//! `.ac`) through a [`cntfet::circuit::sim::Simulator`] session, and
//! prints each card's probe output as an aligned table (default) or
//! CSV (`--csv`). `--check` parses, validates, lints and lowers the
//! deck — fitting its `.model` cards — without running any analysis.
//! `--lint` runs the static analyzer alone: structural errors (a node
//! isolated behind capacitors, a loop of ideal voltage sources, a
//! structurally singular MNA pattern) and hygiene warnings, each with
//! a stable `E###`/`W###` code tunable via `--allow CODE`,
//! `--deny CODE` and `--deny-warnings`. The full code table lives in
//! the "Diagnostics reference" section of `docs/DECK_FORMAT.md`.
//!
//! Errors render compiler-style diagnostics with the offending source
//! line, a caret span and (where applicable) a "did you mean"
//! suggestion, and exit with status 1.

use cntfet::circuit::deck::{Deck, LintCode, LintOptions};
use std::process::ExitCode;

const USAGE: &str =
    "usage: cntfet-sim [--csv] [--stats] [--check] [--lint] [lint options] <deck.cir>

  --csv             print analysis reports as CSV instead of aligned tables
  --stats           print per-card solver statistics (factorizations full vs
                    partial, columns recomputed, device evals vs bypasses,
                    limiter clamps, armijo backtracks, ptc stages)
  --check           parse, validate, lint and lower the deck but run nothing
  --lint            run the static deck analyzer and print its findings

lint options (with --lint or --check):
  --allow CODE      drop a lint code entirely (repeatable)
  --deny CODE       report a lint code as an error (repeatable)
  --deny-warnings   report every warning as an error

Lint codes are stable E###/W### identifiers (e.g. E101 no DC path to
ground, W301 unused .param); see docs/DECK_FORMAT.md for the table.

The deck dialect (R/C/V/I and CNFET M cards, .model, .param, .option,
.subckt/.ends definitions with X instance cards, .op, .dc, .tran, .ac,
.print) is documented in docs/DECK_FORMAT.md.";

/// Parses an `E###`/`W###` argument, exiting with the valid code list
/// on failure.
fn parse_code(flag: &str, text: Option<String>) -> Result<LintCode, ExitCode> {
    let Some(text) = text else {
        eprintln!("cntfet-sim: {flag} needs a lint code\n{USAGE}");
        return Err(ExitCode::FAILURE);
    };
    LintCode::parse(&text).ok_or_else(|| {
        let all: Vec<&str> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        eprintln!(
            "cntfet-sim: unknown lint code '{text}' for {flag} (valid codes: {})",
            all.join(", ")
        );
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let mut csv = false;
    let mut stats = false;
    let mut check = false;
    let mut lint = false;
    let mut lint_opts = LintOptions::default();
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        // Accept both `--allow CODE` and `--allow=CODE`.
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) if flag.starts_with("--") => {
                (flag.to_string(), Some(value.to_string()))
            }
            _ => (arg.clone(), None),
        };
        match flag.as_str() {
            "--csv" => csv = true,
            "--stats" => stats = true,
            "--check" => check = true,
            "--lint" => lint = true,
            "--deny-warnings" => lint_opts.deny_warnings = true,
            "--allow" => match parse_code("--allow", inline.or_else(|| args.next())) {
                Ok(code) => {
                    lint_opts.allow.insert(code);
                }
                Err(status) => return status,
            },
            "--deny" => match parse_code("--deny", inline.or_else(|| args.next())) {
                Ok(code) => {
                    lint_opts.deny.insert(code);
                }
                Err(status) => return status,
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("cntfet-sim: unknown option '{arg}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ if path.is_none() => path = Some(arg),
            _ => {
                eprintln!("cntfet-sim: more than one deck given\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("cntfet-sim: no deck given\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cntfet-sim: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let deck = match Deck::parse(&text) {
        Ok(deck) => deck,
        Err(e) => {
            eprintln!("cntfet-sim: {path}:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    if lint || check {
        let report = deck.lint(&lint_opts);
        if !report.is_clean() {
            eprint!("cntfet-sim: {path}:\n{report}");
        }
        if report.has_errors() {
            let errors = report
                .findings
                .iter()
                .filter(|f| f.severity == cntfet::circuit::deck::Severity::Error)
                .count();
            eprintln!(
                "cntfet-sim: {path}: {errors} lint error{} — the deck cannot run",
                if errors == 1 { "" } else { "s" }
            );
            return ExitCode::FAILURE;
        }
        if lint && !check {
            let n = report.findings.len();
            println!(
                "{path}: lint ok — {n} warning{}",
                if n == 1 { "" } else { "s" }
            );
            return ExitCode::SUCCESS;
        }
    }
    if check {
        return match deck.circuit() {
            Ok(circuit) => {
                println!(
                    "{path}: ok — '{}': {} elements, {} nodes, {} unknowns, {} analyses",
                    deck.title,
                    deck.elements.len(),
                    circuit.node_count(),
                    circuit.unknown_count(),
                    deck.analyses.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cntfet-sim: {path}:\n{e}");
                ExitCode::FAILURE
            }
        };
    }
    match deck.run() {
        Ok(run) => {
            // Tolerate a closed pipe (`cntfet-sim … | head`) instead of
            // panicking mid-print.
            use std::io::Write as _;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let mut emit = move || -> std::io::Result<()> {
                writeln!(out, "* {}", run.title)?;
                for report in &run.reports {
                    writeln!(out, "\n* {}", report.label)?;
                    let body = if csv {
                        report.to_csv()
                    } else {
                        report.to_table()
                    };
                    out.write_all(body.as_bytes())?;
                    if stats {
                        writeln!(out, "* stats: {}", report.stats.summary())?;
                    }
                }
                if stats {
                    let c = run.caches.models;
                    writeln!(
                        out,
                        "\n* model cache: {} fitted, {} reused",
                        c.misses, c.hits
                    )?;
                }
                Ok(())
            };
            match emit() {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("cntfet-sim: cannot write output: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("cntfet-sim: {path}:\n{e}");
            ExitCode::FAILURE
        }
    }
}
