//! `cntfet-sim` — run a SPICE deck through the CNFET circuit simulator.
//!
//! ```text
//! usage: cntfet-sim [--csv] [--check] <deck.cir>
//! ```
//!
//! Parses the deck, runs every analysis card (`.op`, `.dc`, `.tran`,
//! `.ac`) through a [`cntfet::circuit::sim::Simulator`] session, and
//! prints each card's probe output as an aligned table (default) or
//! CSV (`--csv`). `--check` parses, validates and lowers the deck —
//! fitting its `.model` cards — without running any analysis.
//!
//! The accepted deck dialect is documented in `docs/DECK_FORMAT.md`.
//! Errors render compiler-style diagnostics with the offending source
//! line, a caret span and (where applicable) a "did you mean"
//! suggestion, and exit with status 1.

use cntfet::circuit::deck::Deck;
use std::process::ExitCode;

const USAGE: &str = "usage: cntfet-sim [--csv] [--check] <deck.cir>

  --csv    print analysis reports as CSV instead of aligned tables
  --check  parse, validate and lower the deck (fit models) but run nothing

The deck dialect (R/C/V/I and CNFET M cards, .model, .param, .op, .dc,
.tran, .ac, .print) is documented in docs/DECK_FORMAT.md.";

fn main() -> ExitCode {
    let mut csv = false;
    let mut check = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--csv" => csv = true,
            "--check" => check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("cntfet-sim: unknown option '{arg}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ if path.is_none() => path = Some(arg),
            _ => {
                eprintln!("cntfet-sim: more than one deck given\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("cntfet-sim: no deck given\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cntfet-sim: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let deck = match Deck::parse(&text) {
        Ok(deck) => deck,
        Err(e) => {
            eprintln!("cntfet-sim: {path}:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    if check {
        return match deck.circuit() {
            Ok(circuit) => {
                println!(
                    "{path}: ok — '{}': {} elements, {} nodes, {} unknowns, {} analyses",
                    deck.title,
                    deck.elements.len(),
                    circuit.node_count(),
                    circuit.unknown_count(),
                    deck.analyses.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cntfet-sim: {path}:\n{e}");
                ExitCode::FAILURE
            }
        };
    }
    match deck.run() {
        Ok(run) => {
            // Tolerate a closed pipe (`cntfet-sim … | head`) instead of
            // panicking mid-print.
            use std::io::Write as _;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let mut emit = move || -> std::io::Result<()> {
                writeln!(out, "* {}", run.title)?;
                for report in &run.reports {
                    writeln!(out, "\n* {}", report.label)?;
                    let body = if csv {
                        report.to_csv()
                    } else {
                        report.to_table()
                    };
                    out.write_all(body.as_bytes())?;
                }
                Ok(())
            };
            match emit() {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("cntfet-sim: cannot write output: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("cntfet-sim: {path}:\n{e}");
            ExitCode::FAILURE
        }
    }
}
