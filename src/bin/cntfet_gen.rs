//! `cntfet-gen` — emit scalable CNFET benchmark decks built from the
//! standard-cell library.
//!
//! ```text
//! usage: cntfet-gen [--flat] [-o FILE] <workload> <size…>
//! ```
//!
//! Workloads are hierarchical by default (`.subckt` cell definitions
//! plus `X` instance cards); `--flat` emits the generator's own
//! pre-flattened netlist with identical node names, element order and
//! analysis cards, so `cntfet-sim --csv` output of the two decks
//! compares byte-for-byte — the independent witness that the parser's
//! flattener is correct at scale.

use cntfet::circuit::deck::generate::Workload;
use std::process::ExitCode;

const USAGE: &str = "usage: cntfet-gen [--flat] [-o FILE] <workload> <size…>

workloads:
  ring-array <rows> <stages>   rows parallel chains of <stages> inverters
  adder <bits>                 N-bit ripple-carry adder (9 NAND2 gates/bit)
  shift-register <bits>        N-stage D-flip-flop shift register (9 gates/stage)

options:
  --flat    emit the pre-flattened netlist instead of .subckt/X cards;
            node names and analysis output match the hierarchical deck
            byte-for-byte
  -o FILE   write the deck to FILE instead of stdout

The emitted deck parses, lints cleanly and runs through cntfet-sim;
sizes below 1 are clamped to 1.";

/// Parses one positive size argument, exiting with usage on failure.
fn parse_size(what: &str, text: Option<&String>) -> Result<usize, ExitCode> {
    let Some(text) = text else {
        eprintln!("cntfet-gen: missing {what}\n{USAGE}");
        return Err(ExitCode::FAILURE);
    };
    match text.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => {
            eprintln!("cntfet-gen: {what} must be a positive integer, got '{text}'\n{USAGE}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let mut flat = false;
    let mut out_path: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flat" => flat = true,
            "-o" | "--output" => match args.next() {
                Some(path) => out_path = Some(path),
                None => {
                    eprintln!("cntfet-gen: {arg} needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("cntfet-gen: unknown option '{arg}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ => positional.push(arg),
        }
    }
    let Some(kind) = positional.first() else {
        eprintln!("cntfet-gen: no workload given\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let workload = match kind.as_str() {
        "ring-array" => {
            let rows = match parse_size("<rows>", positional.get(1)) {
                Ok(n) => n,
                Err(status) => return status,
            };
            let stages = match parse_size("<stages>", positional.get(2)) {
                Ok(n) => n,
                Err(status) => return status,
            };
            Workload::RingArray { rows, stages }
        }
        "adder" => {
            let bits = match parse_size("<bits>", positional.get(1)) {
                Ok(n) => n,
                Err(status) => return status,
            };
            Workload::Adder { bits }
        }
        "shift-register" => {
            let bits = match parse_size("<bits>", positional.get(1)) {
                Ok(n) => n,
                Err(status) => return status,
            };
            Workload::ShiftRegister { bits }
        }
        other => {
            eprintln!(
                "cntfet-gen: unknown workload '{other}' \
                 (ring-array, adder, shift-register)\n{USAGE}"
            );
            return ExitCode::FAILURE;
        }
    };
    let expected = 1 + workload_args(&workload);
    if positional.len() != expected {
        eprintln!(
            "cntfet-gen: '{kind}' takes {} size argument{}\n{USAGE}",
            expected - 1,
            if expected == 2 { "" } else { "s" }
        );
        return ExitCode::FAILURE;
    }
    let deck = workload.deck(flat);
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, deck) {
                eprintln!("cntfet-gen: cannot write '{path}': {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "cntfet-gen: wrote {}{} to {path}",
                workload.title(),
                if flat { " [flat]" } else { "" }
            );
        }
        None => print!("{deck}"),
    }
    ExitCode::SUCCESS
}

/// Number of size arguments each workload consumes.
fn workload_args(w: &Workload) -> usize {
    match w {
        Workload::RingArray { .. } => 2,
        Workload::Adder { .. } | Workload::ShiftRegister { .. } => 1,
    }
}
