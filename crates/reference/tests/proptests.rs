//! Property-based tests for the reference ballistic model's physical
//! invariants.

use cntfet_physics::units::{ElectronVolts, Kelvin};
use cntfet_reference::{BallisticModel, BiasPoint, ChargeModel, DeviceParams, ScfSolver};
use proptest::prelude::*;

fn device(t: f64, ef: f64) -> DeviceParams {
    DeviceParams::paper_default()
        .with_temperature(Kelvin(t))
        .with_fermi_level(ElectronVolts(ef))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn charge_is_monotone_decreasing_in_vsc(
        t in 150.0f64..450.0,
        ef in -0.5f64..0.0,
        v1 in -0.7f64..0.2,
        dv in 0.01f64..0.3,
    ) {
        let m = ChargeModel::new(&device(t, ef), 1e-8);
        let lo = m.q_s(v1);
        let hi = m.q_s(v1 + dv);
        prop_assert!(hi <= lo + 1e-18 * (1.0 + lo.abs()), "Q_S must fall as V_SC rises");
    }

    #[test]
    fn qd_equals_shifted_qs(
        t in 150.0f64..450.0,
        ef in -0.5f64..0.0,
        vsc in -0.5f64..0.0,
        vds in 0.0f64..0.6,
    ) {
        let m = ChargeModel::new(&device(t, ef), 1e-9);
        let direct = m.q_d(vsc, vds);
        let shifted = m.q_s(vsc + vds);
        prop_assert!((direct - shifted).abs() <= 1e-8 * (1.0 + direct.abs()));
    }

    #[test]
    fn scf_residual_vanishes_at_solution(
        t in 150.0f64..450.0,
        ef in -0.5f64..0.0,
        vg in 0.0f64..0.7,
        vd in 0.0f64..0.7,
    ) {
        let p = device(t, ef);
        let s = ScfSolver::new(&p, 1e-8);
        let sol = s.solve(BiasPoint::common_source(vg, vd), 0.0).expect("scf");
        let scale = p.capacitances.total() * (1.0 + vg + vd);
        prop_assert!(sol.residual.abs() < 1e-5 * scale, "residual {}", sol.residual);
        prop_assert!(sol.vsc <= 1e-6, "V_SC must be non-positive under n-type bias");
    }

    #[test]
    fn vsc_bounded_by_laplace_solution(
        t in 150.0f64..450.0,
        ef in -0.5f64..0.0,
        vg in 0.05f64..0.7,
    ) {
        let p = device(t, ef);
        let s = ScfSolver::new(&p, 1e-8);
        let sol = s.solve(BiasPoint::common_source(vg, 0.0), 0.0).expect("scf");
        // Charge feedback can only reduce the barrier movement.
        let laplace = -p.capacitances.alpha_g() * vg;
        prop_assert!(sol.vsc >= laplace - 1e-9, "{} vs laplace {laplace}", sol.vsc);
    }

    #[test]
    fn current_non_negative_and_monotone_in_vds(
        t in 150.0f64..450.0,
        ef in -0.5f64..0.0,
        vg in 0.0f64..0.7,
    ) {
        let m = BallisticModel::with_tolerance(device(t, ef), 1e-8);
        let grid = [0.0, 0.15, 0.3, 0.45, 0.6];
        let c = m.output_characteristic(vg, &grid).expect("sweep");
        let ids = c.currents();
        prop_assert!(ids[0].abs() < 1e-12, "I(VDS=0) = {}", ids[0]);
        for w in ids.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "output curve must not decrease");
        }
    }

    #[test]
    fn current_monotone_in_vg(
        t in 150.0f64..450.0,
        ef in -0.5f64..0.0,
        vds in 0.1f64..0.6,
        vg in 0.0f64..0.5,
        dvg in 0.05f64..0.2,
    ) {
        let m = BallisticModel::with_tolerance(device(t, ef), 1e-8);
        let lo = m.solve_point(vg, vds, 0.0).expect("lo").ids;
        let hi = m.solve_point(vg + dvg, vds, 0.0).expect("hi").ids;
        prop_assert!(hi > lo, "more gate must give more current");
    }
}
