//! I–V sweep generation — the workload of every table and figure in the
//! paper's evaluation.

use crate::current::drain_current;
use crate::params::DeviceParams;
use crate::scf::{BiasPoint, ScfSolver};
use cntfet_numerics::NumericsError;

/// One solved bias point of an I–V characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvPoint {
    /// Gate voltage, V.
    pub vg: f64,
    /// Drain–source voltage, V.
    pub vds: f64,
    /// Self-consistent voltage, V.
    pub vsc: f64,
    /// Drain current, A.
    pub ids: f64,
}

/// A single-curve sweep (fixed `V_G`, swept `V_DS`, or vice versa).
#[derive(Debug, Clone, PartialEq)]
pub struct IvCurve {
    /// The solved points in sweep order.
    pub points: Vec<IvPoint>,
}

impl IvCurve {
    /// Drain currents of the sweep, in order.
    pub fn currents(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.ids).collect()
    }

    /// Self-consistent voltages of the sweep, in order.
    pub fn vsc_values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.vsc).collect()
    }
}

/// Reference (FETToy-style) ballistic CNFET model: numerical charge
/// integrals + Newton–Raphson self-consistency.
///
/// # Examples
///
/// ```
/// use cntfet_reference::{BallisticModel, DeviceParams};
/// let model = BallisticModel::new(DeviceParams::paper_default());
/// let curve = model.output_characteristic(0.6, &[0.0, 0.3, 0.6])?;
/// assert_eq!(curve.points.len(), 3);
/// assert!(curve.points[2].ids > curve.points[1].ids * 0.9);
/// # Ok::<(), cntfet_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BallisticModel {
    params: DeviceParams,
    solver: ScfSolver,
    temperature: f64,
    kt: f64,
    ef: f64,
}

impl BallisticModel {
    /// Builds the model with FETToy-grade quadrature accuracy (1e-9
    /// relative).
    pub fn new(params: DeviceParams) -> Self {
        Self::with_tolerance(params, 1e-9)
    }

    /// Builds the model with an explicit quadrature tolerance; the
    /// CPU-time benchmark uses this to put the reference on a fixed,
    /// comparable work budget.
    pub fn with_tolerance(params: DeviceParams, tol: f64) -> Self {
        let solver = ScfSolver::new(&params, tol);
        let temperature = params.temperature.value();
        let kt = params.thermal_energy_ev();
        let ef = params.fermi_level.value();
        BallisticModel {
            params,
            solver,
            temperature,
            kt,
            ef,
        }
    }

    /// The device parameters of the model.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Access to the self-consistent solver (used by diagnostics and the
    /// compact model's fitting pipeline).
    pub fn solver(&self) -> &ScfSolver {
        &self.solver
    }

    /// Solves one bias point.
    ///
    /// # Errors
    ///
    /// Propagates a solver convergence failure (which indicates an
    /// unphysical parameter set).
    pub fn solve_point(&self, vg: f64, vds: f64, guess: f64) -> Result<IvPoint, NumericsError> {
        let bias = BiasPoint::common_source(vg, vds);
        let sol = self.solver.solve(bias, guess)?;
        let ids = drain_current(self.ef, sol.vsc, vds, self.temperature, self.kt);
        Ok(IvPoint {
            vg,
            vds,
            vsc: sol.vsc,
            ids,
        })
    }

    /// Output characteristic: fixed `vg`, swept `vds_grid`, warm-starting
    /// each point from the previous solution.
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure.
    pub fn output_characteristic(
        &self,
        vg: f64,
        vds_grid: &[f64],
    ) -> Result<IvCurve, NumericsError> {
        let mut points = Vec::with_capacity(vds_grid.len());
        let mut guess = 0.0;
        for &vds in vds_grid {
            let p = self.solve_point(vg, vds, guess)?;
            guess = p.vsc;
            points.push(p);
        }
        Ok(IvCurve { points })
    }

    /// Transfer characteristic: fixed `vds`, swept `vg_grid`.
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure.
    pub fn transfer_characteristic(
        &self,
        vds: f64,
        vg_grid: &[f64],
    ) -> Result<IvCurve, NumericsError> {
        let mut points = Vec::with_capacity(vg_grid.len());
        let mut guess = 0.0;
        for &vg in vg_grid {
            let p = self.solve_point(vg, vds, guess)?;
            guess = p.vsc;
            points.push(p);
        }
        Ok(IvCurve { points })
    }

    /// The full family of output characteristics used by the paper's
    /// figures: one curve per gate voltage.
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure.
    pub fn output_family(
        &self,
        vg_values: &[f64],
        vds_grid: &[f64],
    ) -> Result<Vec<IvCurve>, NumericsError> {
        vg_values
            .iter()
            .map(|&vg| self.output_characteristic(vg, vds_grid))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntfet_numerics::interp::linspace;

    fn model() -> BallisticModel {
        BallisticModel::with_tolerance(DeviceParams::paper_default(), 1e-8)
    }

    #[test]
    fn output_curve_starts_at_zero_and_is_monotone() {
        let m = model();
        let grid = linspace(0.0, 0.6, 13);
        let c = m.output_characteristic(0.5, &grid).unwrap();
        assert!(c.points[0].ids.abs() < 1e-12);
        for w in c.points.windows(2) {
            assert!(w[1].ids >= w[0].ids - 1e-12, "non-monotone output curve");
        }
    }

    #[test]
    fn output_curve_saturates() {
        let m = model();
        let grid = linspace(0.0, 0.6, 13);
        let c = m.output_characteristic(0.5, &grid).unwrap();
        let n = c.points.len();
        let early_slope = c.points[1].ids - c.points[0].ids;
        let late_slope = c.points[n - 1].ids - c.points[n - 2].ids;
        assert!(
            late_slope < 0.2 * early_slope,
            "no saturation: early {early_slope}, late {late_slope}"
        );
    }

    #[test]
    fn higher_gate_voltage_gives_more_current() {
        let m = model();
        let grid = [0.0, 0.3, 0.6];
        let fam = m.output_family(&[0.3, 0.45, 0.6], &grid).unwrap();
        assert!(fam[2].points[2].ids > fam[1].points[2].ids);
        assert!(fam[1].points[2].ids > fam[0].points[2].ids);
    }

    #[test]
    fn saturation_current_scale_matches_fig6() {
        // Fig. 6 (T = 300 K, E_F = −0.32 eV): I_DS(V_G = 0.6, V_DS = 0.6)
        // ≈ 9 µA, I_DS(V_G = 0.3) well under 1 µA. Reproducing the order
        // and the spread is what matters for the reproduction.
        let m = model();
        let grid = [0.6];
        let hi = m.output_characteristic(0.6, &grid).unwrap().points[0].ids;
        let lo = m.output_characteristic(0.3, &grid).unwrap().points[0].ids;
        assert!(hi > 1e-6 && hi < 3e-5, "I(0.6 V) = {hi}");
        assert!(lo < 0.25 * hi, "gate control too weak: {lo} vs {hi}");
    }

    #[test]
    fn transfer_curve_is_monotone_in_vg() {
        let m = model();
        let grid = linspace(0.0, 0.6, 7);
        let c = m.transfer_characteristic(0.4, &grid).unwrap();
        for w in c.points.windows(2) {
            assert!(w[1].ids > w[0].ids, "transfer curve must increase");
        }
    }

    #[test]
    fn subthreshold_swing_is_near_thermal_limit() {
        // Below threshold the ballistic model is thermally limited:
        // S = ln(10)·kT/q / α_G ≈ 60 mV/dec / 0.88 at 300 K.
        let m = model();
        let c = m.transfer_characteristic(0.3, &[0.00, 0.05]).unwrap();
        let decades = (c.points[1].ids / c.points[0].ids).log10();
        let swing_mv = 50.0 / decades;
        assert!(swing_mv > 50.0 && swing_mv < 90.0, "S = {swing_mv} mV/dec");
    }

    #[test]
    fn curve_accessors_match_points() {
        let m = model();
        let c = m.output_characteristic(0.4, &[0.1, 0.2]).unwrap();
        assert_eq!(c.currents(), vec![c.points[0].ids, c.points[1].ids]);
        assert_eq!(c.vsc_values(), vec![c.points[0].vsc, c.points[1].vsc]);
    }
}
