//! Ballistic drain current (paper eqs. 12–14).

use cntfet_physics::constants::BALLISTIC_CURRENT_PREFACTOR;
use cntfet_physics::fermi::fermi_integral_zero;

/// Drain–source current of a ballistic CNFET given the solved
/// self-consistent voltage, in amperes:
///
/// ```text
/// I_DS = (2qkT/πħ) [F₀(U_SF/kT) − F₀(U_DF/kT)]
/// U_SF = E_F − qV_SC,   U_DF = U_SF − qV_DS
/// ```
///
/// Arguments: `ef` in eV (from the equilibrium band edge), `vsc`/`vds` in
/// volts, `temperature` in kelvin, `kt` in eV.
///
/// This evaluation is *cheap* for both the reference and compact models —
/// the cost difference between them is entirely in how `vsc` was obtained.
///
/// # Examples
///
/// ```
/// use cntfet_reference::current::drain_current;
/// // No drain bias, no current.
/// let i = drain_current(-0.32, -0.2, 0.0, 300.0, 0.02585);
/// assert_eq!(i, 0.0);
/// ```
pub fn drain_current(ef: f64, vsc: f64, vds: f64, temperature: f64, kt: f64) -> f64 {
    let usf = ef - vsc;
    let udf = usf - vds;
    BALLISTIC_CURRENT_PREFACTOR
        * temperature
        * (fermi_integral_zero(usf / kt) - fermi_integral_zero(udf / kt))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KT300: f64 = 0.025852;

    #[test]
    fn zero_vds_means_zero_current() {
        assert_eq!(drain_current(-0.32, -0.3, 0.0, 300.0, KT300), 0.0);
    }

    #[test]
    fn forward_bias_drives_positive_current() {
        let i = drain_current(-0.32, -0.4, 0.3, 300.0, KT300);
        assert!(i > 0.0);
    }

    #[test]
    fn reversing_vds_reverses_the_current_sign() {
        // At fixed V_SC the magnitudes differ (the full device would
        // re-solve V_SC), but the direction must flip.
        let fwd = drain_current(-0.32, -0.4, 0.3, 300.0, KT300);
        let rev = drain_current(-0.32, -0.4, -0.3, 300.0, KT300);
        assert!(fwd > 0.0);
        assert!(rev < 0.0);
    }

    #[test]
    fn current_increases_with_barrier_lowering() {
        // More negative V_SC → higher U_SF → more current.
        let low = drain_current(-0.32, -0.1, 0.4, 300.0, KT300);
        let high = drain_current(-0.32, -0.45, 0.4, 300.0, KT300);
        assert!(high > low);
    }

    #[test]
    fn saturation_in_vds() {
        // Once U_DF is many kT below E_F the drain term vanishes and the
        // current saturates.
        let i1 = drain_current(-0.32, -0.45, 0.5, 300.0, KT300);
        let i2 = drain_current(-0.32, -0.45, 0.6, 300.0, KT300);
        assert!((i2 - i1) / i1 < 1e-2, "not saturated: {i1} vs {i2}");
    }

    #[test]
    fn magnitude_matches_paper_scale() {
        // Fig. 6: at V_G = 0.6, T = 300 K the saturation current is ~9 µA;
        // the corresponding V_SC is around −0.37 V. This checks only the
        // order of magnitude of the current formula itself.
        let i = drain_current(-0.32, -0.37, 0.6, 300.0, KT300);
        assert!(i > 1e-6 && i < 2e-5, "I = {i}");
    }

    #[test]
    fn degenerate_limit_is_linear_in_usf() {
        // For U_SF ≫ kT, F0 ≈ U_SF/kT and the saturated current is
        // (2q/πħ)·U_SF (in joules).
        let vsc = -1.0;
        let ef = 0.0;
        let i = drain_current(ef, vsc, 2.0, 300.0, KT300);
        let expected = BALLISTIC_CURRENT_PREFACTOR * 300.0 * ((ef - vsc) / KT300);
        assert!((i - expected).abs() / expected < 1e-3, "{i} vs {expected}");
    }
}
