//! State-density and mobile-charge evaluation (paper eqs. 1–4, 10–11).
//!
//! Everything here is the *expensive* path the compact model replaces:
//! each call to [`ChargeModel::n_occupied`] performs adaptive quadrature of
//! the nanotube DOS against the Fermi distribution.
//!
//! ## Energy bookkeeping
//!
//! Energies are in eV measured from the **equilibrium conduction-band edge
//! at the top of the barrier**. The self-consistent voltage `V_SC` (volts)
//! shifts the local band by `qV_SC`; equivalently — and this is how the
//! code does it — the band stays put and the source/drain quasi-Fermi
//! levels become `U_SF = E_F − qV_SC` and `U_DF = U_SF − qV_DS` (eqs. 5–6;
//! numerically `qV ≡ V` once everything is in eV/volts).

use crate::params::DeviceParams;
use cntfet_numerics::quadrature::integrate_semi_infinite;
use cntfet_physics::constants::ELEMENTARY_CHARGE;
use cntfet_physics::dos::CntDensityOfStates;
use cntfet_physics::fermi::fermi_derivative;

/// Numerical evaluator of the state densities `N_S`, `N_D`, `N₀` and the
/// apportioned mobile charges `Q_S`, `Q_D` for one device.
///
/// # Examples
///
/// ```
/// use cntfet_reference::{ChargeModel, DeviceParams};
/// let m = ChargeModel::new(&DeviceParams::paper_default(), 1e-9);
/// // Driving the band down (negative V_SC) fills states.
/// assert!(m.n_s(-0.3) > m.n_s(0.0));
/// ```
#[derive(Debug, Clone)]
pub struct ChargeModel {
    dos: CntDensityOfStates,
    /// Source Fermi level, eV from the equilibrium band edge.
    ef: f64,
    /// Thermal energy, eV.
    kt: f64,
    /// Relative quadrature tolerance.
    tol: f64,
    /// Half band gap (band-edge offset from midgap), eV.
    half_gap: f64,
}

impl ChargeModel {
    /// Builds the evaluator for `params` with relative quadrature
    /// tolerance `tol` (1e-9 reproduces FETToy-grade accuracy; larger
    /// values trade accuracy for speed in the CPU-time benchmark).
    pub fn new(params: &DeviceParams, tol: f64) -> Self {
        let dos = CntDensityOfStates::new(params.chirality, params.subbands);
        let half_gap = params.chirality.half_gap_ev();
        ChargeModel {
            dos,
            ef: params.fermi_level.value(),
            kt: params.thermal_energy_ev(),
            tol,
            half_gap,
        }
    }

    /// Source Fermi level in eV.
    pub fn fermi_level(&self) -> f64 {
        self.ef
    }

    /// Thermal energy in eV.
    pub fn thermal_energy(&self) -> f64 {
        self.kt
    }

    /// Electrons per metre with quasi-Fermi level `mu` (eV from the band
    /// edge): `∫ D(E) f(E − mu) dE` over the conduction band.
    pub fn n_occupied(&self, mu: f64) -> f64 {
        // The DOS works in midgap coordinates; shift by the half gap.
        self.dos
            .occupied_states(mu + self.half_gap, self.kt, self.tol)
    }

    /// Derivative `dN/dμ` (1/(m·eV)) — the quantum-capacitance integrand,
    /// used by the Newton iteration of the self-consistent solver.
    pub fn n_occupied_derivative(&self, mu: f64) -> f64 {
        let mu_mid = mu + self.half_gap;
        let d0 = self.dos.d0();
        let kt = self.kt;
        let scale = d0 / kt.max(1e-6);
        let abs_tol = self.tol * scale * kt;
        let mut total = 0.0;
        for &emin in self.dos.subband_minima() {
            let integrand = move |u: f64| {
                let e = (emin * emin + u * u).sqrt();
                // ∂f/∂μ = −∂f/∂E.
                -d0 * fermi_derivative(e, mu_mid, kt)
            };
            let degenerate_reach = if mu_mid > emin {
                (mu_mid * mu_mid - emin * emin).sqrt()
            } else {
                0.0
            };
            total += integrate_semi_infinite(
                &integrand,
                0.0,
                degenerate_reach.max(kt.max(1e-4)),
                abs_tol,
            );
        }
        total
    }

    /// Density of +k states filled by the source (paper eq. 2):
    /// `N_S = ½ N_occ(E_F − qV_SC)`, in 1/m.
    pub fn n_s(&self, vsc: f64) -> f64 {
        0.5 * self.n_occupied(self.ef - vsc)
    }

    /// Density of −k states filled by the drain (paper eq. 3):
    /// `N_D = ½ N_occ(E_F − qV_SC − qV_DS)`, in 1/m.
    pub fn n_d(&self, vsc: f64, vds: f64) -> f64 {
        0.5 * self.n_occupied(self.ef - vsc - vds)
    }

    /// Equilibrium electron density (paper eq. 4): `N₀ = N_occ(E_F)`,
    /// in 1/m.
    pub fn n_0(&self) -> f64 {
        self.n_occupied(self.ef)
    }

    /// Non-equilibrium electron surplus `ΔN = N_S + N_D − N₀` (paper
    /// eq. 1 divided by q), in 1/m.
    pub fn delta_n(&self, vsc: f64, vds: f64) -> f64 {
        self.n_s(vsc) + self.n_d(vsc, vds) - self.n_0()
    }

    /// Source-apportioned mobile charge magnitude (paper eq. 10):
    /// `Q_S(V_SC) = q (N_S − N₀/2)`, in C/m.
    ///
    /// This is the curve the compact model fits piecewise; the paper's
    /// Figs. 2–5 plot exactly this quantity.
    pub fn q_s(&self, vsc: f64) -> f64 {
        ELEMENTARY_CHARGE * (self.n_s(vsc) - 0.5 * self.n_0())
    }

    /// Drain-apportioned mobile charge (paper eq. 11):
    /// `Q_D(V_SC) = q (N_D − N₀/2) = Q_S(V_SC + V_DS)`, in C/m.
    pub fn q_d(&self, vsc: f64, vds: f64) -> f64 {
        ELEMENTARY_CHARGE * (self.n_d(vsc, vds) - 0.5 * self.n_0())
    }

    /// Samples `Q_S` on a `V_SC` grid — the fitting input of the compact
    /// model.
    pub fn q_s_curve(&self, vsc_grid: &[f64]) -> Vec<f64> {
        vsc_grid.iter().map(|&v| self.q_s(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DeviceParams;
    use cntfet_physics::units::{ElectronVolts, Kelvin};

    fn model() -> ChargeModel {
        ChargeModel::new(&DeviceParams::paper_default(), 1e-10)
    }

    #[test]
    fn qd_is_qs_shifted_by_vds() {
        let m = model();
        for &vsc in &[-0.4, -0.2, 0.0] {
            for &vds in &[0.0, 0.25, 0.6] {
                let direct = m.q_d(vsc, vds);
                let shifted = m.q_s(vsc + vds);
                assert!(
                    (direct - shifted).abs() <= 1e-9 * (1.0 + direct.abs()),
                    "vsc {vsc} vds {vds}: {direct} vs {shifted}"
                );
            }
        }
    }

    #[test]
    fn qs_vanishes_well_above_fermi_level() {
        let m = model();
        // For V_SC ≫ E_F/q the source states empty and N_S → small, but
        // Q_S = q(N_S − N0/2) → −q·N0/2; the *paper's* zero region means
        // the curve is ≈ −qN0/2 + qN_S ≈ 0 relative to its peak.
        let peak = m.q_s(-0.6);
        let tail = m.q_s(0.3);
        assert!(tail.abs() < 0.01 * peak.abs(), "tail {tail} vs peak {peak}");
    }

    #[test]
    fn qs_is_monotone_decreasing_in_vsc() {
        let m = model();
        let mut prev = f64::INFINITY;
        for i in 0..=30 {
            let vsc = -0.7 + i as f64 * (1.0 / 30.0);
            let v = m.q_s(vsc);
            assert!(v <= prev + 1e-18, "non-monotone at {vsc}");
            prev = v;
        }
    }

    #[test]
    fn qs_magnitude_matches_paper_figures() {
        // Fig. 4: at T = 300 K, E_F = −0.32 eV, Q_S reaches ~4e-11 C/m
        // around V_SC ≈ −0.6 V.
        let m = model();
        let q = m.q_s(-0.6);
        assert!(q > 5e-12 && q < 5e-10, "Q_S(-0.6) = {q}");
    }

    #[test]
    fn equilibrium_delta_n_is_zero() {
        let m = model();
        let d = m.delta_n(0.0, 0.0);
        let n0 = m.n_0();
        assert!(d.abs() < 1e-6 * (1.0 + n0), "ΔN(0,0) = {d}");
    }

    #[test]
    fn delta_n_grows_with_negative_vsc() {
        let m = model();
        assert!(m.delta_n(-0.3, 0.0) > m.delta_n(-0.1, 0.0));
        assert!(m.delta_n(-0.1, 0.0) > 0.0);
    }

    #[test]
    fn drain_bias_empties_negative_velocity_states() {
        let m = model();
        let vsc = -0.3;
        assert!(m.n_d(vsc, 0.5) < m.n_d(vsc, 0.0));
        assert!((m.n_d(vsc, 0.0) - m.n_s(vsc)).abs() < 1e-6 * m.n_s(vsc));
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let m = model();
        let h = 1e-5;
        for &mu in &[-0.3, -0.1, 0.05, 0.2] {
            let fd = (m.n_occupied(mu + h) - m.n_occupied(mu - h)) / (2.0 * h);
            let an = m.n_occupied_derivative(mu);
            assert!(
                (fd - an).abs() < 2e-3 * (1.0 + an.abs()),
                "mu {mu}: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn higher_temperature_softens_the_curve() {
        let hot = ChargeModel::new(
            &DeviceParams::paper_default().with_temperature(Kelvin(450.0)),
            1e-10,
        );
        let cold = ChargeModel::new(
            &DeviceParams::paper_default().with_temperature(Kelvin(150.0)),
            1e-10,
        );
        // Above the Fermi level the hot tube holds far more charge.
        let above = -0.2; // E_F/q = -0.32 → this is 0.12 V above
        assert!(hot.q_s(above) > cold.q_s(above));
    }

    #[test]
    fn fermi_level_shifts_the_transition_region() {
        let shallow = model(); // E_F = −0.32 eV
        let deep = ChargeModel::new(
            &DeviceParams::paper_default().with_fermi_level(ElectronVolts(-0.5)),
            1e-10,
        );
        // At the same V_SC the deep-Fermi device holds less charge.
        assert!(deep.q_s(-0.4) < shallow.q_s(-0.4));
    }

    #[test]
    fn q_s_curve_matches_pointwise_eval() {
        let m = model();
        let grid = [-0.5, -0.3, -0.1];
        let curve = m.q_s_curve(&grid);
        for (v, q) in grid.iter().zip(&curve) {
            assert_eq!(m.q_s(*v), *q);
        }
    }
}
