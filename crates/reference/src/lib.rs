//! Reference theoretical ballistic CNFET model — a Rust reimplementation
//! of the physics behind FETToy (Rahman et al., *Theory of ballistic
//! nanotransistors*, IEEE TED 2003), which is the baseline every table and
//! figure of the DATE 2008 paper compares against.
//!
//! The model chain is:
//!
//! 1. [`charge`] — numerical state-density integrals `N_S`, `N_D`, `N₀`
//!    over the nanotube DOS (paper eqs. 1–4) — *expensive*;
//! 2. [`scf`] — Newton–Raphson solution of the self-consistent voltage
//!    equation (eq. 7) — *expensive, iterative*;
//! 3. [`current`] — closed-form ballistic current (eqs. 12–14) — cheap;
//! 4. [`sweep`] — I–V curve and family generation with warm starts.
//!
//! The compact model in `cntfet-core` replaces steps 1–2 with fitted
//! piecewise polynomials and closed-form cubic roots; this crate is both
//! its accuracy oracle and its fitting-data source.
//!
//! # Examples
//!
//! ```
//! use cntfet_reference::{BallisticModel, DeviceParams};
//!
//! let model = BallisticModel::new(DeviceParams::paper_default());
//! let point = model.solve_point(0.6, 0.6, 0.0)?;
//! assert!(point.vsc < 0.0);      // barrier pulled down by the gate
//! assert!(point.ids > 1e-6);     // µA-scale on current
//! # Ok::<(), cntfet_numerics::NumericsError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod charge;
pub mod current;
pub mod params;
pub mod scf;
pub mod sweep;

pub use charge::ChargeModel;
pub use params::DeviceParams;
pub use scf::{BiasPoint, ScfSolution, ScfSolver};
pub use sweep::{BallisticModel, IvCurve, IvPoint};
