//! Self-consistent voltage solution (paper eq. 7) by safeguarded
//! Newton–Raphson — the costly iterative loop the compact model removes.
//!
//! ## Residual and sign convention
//!
//! Electrons carry charge `−q`, so an electron surplus `ΔN > 0` *raises*
//! the local band. Written with all signs explicit, the self-consistent
//! voltage satisfies
//!
//! ```text
//! G(V_SC) = C_Σ · V_SC + Q_t − q·ΔN(V_SC) = 0
//! ```
//!
//! (the paper's eq. 7 reads `V_SC = −(Q_t + ΔQ)/C_Σ` with `ΔQ` implicitly
//! carrying the electron sign; the form above is the one that reproduces
//! Rahman's theory and the paper's own figures — negative `V_SC` under
//! positive gate bias with the charge increasing as `V_SC` falls).
//!
//! `G` is strictly increasing: `G'(V) = C_Σ + C_Q(V)` with the quantum
//! capacitance `C_Q ≥ 0`, so the root is unique and bracketable.

use crate::charge::ChargeModel;
use crate::params::DeviceParams;
use cntfet_numerics::rootfind::{newton_bracketed, RootFindOptions};
use cntfet_numerics::NumericsError;
use cntfet_physics::constants::ELEMENTARY_CHARGE;

/// Bias point of the transistor (source at 0 V by convention elsewhere,
/// but all three terminals are explicit here).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BiasPoint {
    /// Gate voltage, V.
    pub vg: f64,
    /// Drain voltage, V.
    pub vd: f64,
    /// Source voltage, V.
    pub vs: f64,
}

impl BiasPoint {
    /// Common-source bias: source grounded.
    pub fn common_source(vg: f64, vd: f64) -> Self {
        BiasPoint { vg, vd, vs: 0.0 }
    }

    /// Drain–source voltage.
    pub fn vds(&self) -> f64 {
        self.vd - self.vs
    }
}

/// Newton–Raphson self-consistent voltage solver for the reference model.
#[derive(Debug, Clone)]
pub struct ScfSolver {
    charge: ChargeModel,
    c_total: f64,
    caps: cntfet_physics::TerminalCapacitances,
    opts: RootFindOptions,
}

/// Outcome of a self-consistent solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScfSolution {
    /// Self-consistent voltage, V.
    pub vsc: f64,
    /// Residual `G(V_SC)` at the solution, C/m (diagnostic).
    pub residual: f64,
}

impl ScfSolver {
    /// Builds a solver for `params` with quadrature tolerance `tol`
    /// (see [`ChargeModel::new`]).
    pub fn new(params: &DeviceParams, tol: f64) -> Self {
        ScfSolver {
            charge: ChargeModel::new(params, tol),
            c_total: params.capacitances.total(),
            caps: params.capacitances,
            opts: RootFindOptions {
                x_tol: 1e-12,
                f_tol: 1e-24, // residual is in C/m; typical scale 1e-10
                max_iter: 200,
            },
        }
    }

    /// Access to the underlying charge evaluator.
    pub fn charge_model(&self) -> &ChargeModel {
        &self.charge
    }

    /// Residual `G(V) = C_Σ V + Q_t − q ΔN(V)` and its derivative
    /// `G'(V) = C_Σ + C_Q(V)`.
    pub fn residual(&self, vsc: f64, bias: BiasPoint) -> (f64, f64) {
        let qt = self.caps.terminal_charge(bias.vg, bias.vd, bias.vs);
        let dn = self.charge.delta_n(vsc, bias.vds());
        let g = self.c_total * vsc + qt - ELEMENTARY_CHARGE * dn;
        // dΔN/dV = −(N_S' + N_D')/… : each density differentiates to
        // −½ N_occ'(μ) through μ = E_F − V (− V_DS).
        let ef = self.charge.fermi_level();
        let dn_dv = -0.5 * self.charge.n_occupied_derivative(ef - vsc)
            - 0.5 * self.charge.n_occupied_derivative(ef - vsc - bias.vds());
        let dg = self.c_total - ELEMENTARY_CHARGE * dn_dv;
        (g, dg)
    }

    /// Solves for the self-consistent voltage at the given bias, starting
    /// from `guess` (pass the previous sweep point for warm starts, or 0).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ConvergenceFailure`] if the bracketed
    /// Newton iteration exhausts its budget — which indicates a
    /// non-physical parameter set, since `G` is strictly monotone.
    pub fn solve(&self, bias: BiasPoint, guess: f64) -> Result<ScfSolution, NumericsError> {
        // Bracket the unique root. G is increasing; expand until signs
        // differ. The physical root lies within a few volts of zero for
        // any sane bias.
        let mut lo = -1.0f64.max(bias.vg.abs() + bias.vd.abs()) - 1.0;
        let mut hi = 1.0 + bias.vg.abs() + bias.vd.abs();
        for _ in 0..8 {
            let (glo, _) = self.residual(lo, bias);
            let (ghi, _) = self.residual(hi, bias);
            if glo < 0.0 && ghi > 0.0 {
                break;
            }
            if glo >= 0.0 {
                lo -= 2.0;
            }
            if ghi <= 0.0 {
                hi += 2.0;
            }
        }
        // Scale the residual tolerance to the problem: C_Σ·1 µV.
        let f_tol = self.c_total * 1e-9;
        let opts = RootFindOptions { f_tol, ..self.opts };
        let vsc = newton_bracketed(
            |v| self.residual(v, bias),
            lo,
            hi,
            guess.clamp(lo, hi),
            opts,
        )?;
        let (residual, _) = self.residual(vsc, bias);
        Ok(ScfSolution { vsc, residual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DeviceParams;

    fn solver() -> ScfSolver {
        ScfSolver::new(&DeviceParams::paper_default(), 1e-9)
    }

    #[test]
    fn zero_bias_gives_zero_vsc() {
        let s = solver();
        let sol = s.solve(BiasPoint::common_source(0.0, 0.0), 0.0).unwrap();
        assert!(sol.vsc.abs() < 1e-6, "vsc = {}", sol.vsc);
    }

    #[test]
    fn positive_gate_pulls_vsc_negative() {
        let s = solver();
        let sol = s.solve(BiasPoint::common_source(0.5, 0.0), 0.0).unwrap();
        assert!(sol.vsc < -0.05, "vsc = {}", sol.vsc);
        assert!(sol.vsc > -0.5, "cannot exceed the Laplace solution");
    }

    #[test]
    fn vsc_magnitude_is_below_laplace_solution() {
        // Charge feedback must reduce |V_SC| below α_G·V_G.
        let p = DeviceParams::paper_default();
        let s = ScfSolver::new(&p, 1e-9);
        for &vg in &[0.2, 0.4, 0.6] {
            let sol = s.solve(BiasPoint::common_source(vg, 0.0), 0.0).unwrap();
            let laplace = -p.capacitances.alpha_g() * vg;
            assert!(sol.vsc > laplace, "vg {vg}: {} vs {laplace}", sol.vsc);
            assert!(sol.vsc < 0.0);
        }
    }

    #[test]
    fn vsc_monotone_in_gate_voltage() {
        let s = solver();
        let mut prev = 1.0;
        for i in 0..=12 {
            let vg = i as f64 * 0.05;
            let sol = s.solve(BiasPoint::common_source(vg, 0.3), 0.0).unwrap();
            assert!(sol.vsc < prev, "vg = {vg}");
            prev = sol.vsc;
        }
    }

    #[test]
    fn residual_is_monotone_increasing() {
        let s = solver();
        let bias = BiasPoint::common_source(0.5, 0.3);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let v = -1.0 + i as f64 * 0.1;
            let (g, dg) = s.residual(v, bias);
            assert!(g > prev, "residual not monotone at {v}");
            assert!(dg > 0.0, "derivative not positive at {v}");
            prev = g;
        }
    }

    #[test]
    fn solution_residual_is_small() {
        let s = solver();
        let sol = s.solve(BiasPoint::common_source(0.6, 0.6), 0.0).unwrap();
        // Residual relative to the terminal charge scale.
        let scale = 0.6 * DeviceParams::paper_default().capacitances.total();
        assert!(sol.residual.abs() < 1e-6 * scale, "{}", sol.residual);
    }

    #[test]
    fn warm_start_agrees_with_cold_start() {
        let s = solver();
        let bias = BiasPoint::common_source(0.45, 0.4);
        let cold = s.solve(bias, 0.0).unwrap();
        let warm = s.solve(bias, cold.vsc + 0.01).unwrap();
        assert!((cold.vsc - warm.vsc).abs() < 1e-7);
    }

    #[test]
    fn drain_bias_affects_vsc_weakly() {
        // α_D ≈ 0.035 — the drain moves the barrier far less than the gate.
        let s = solver();
        let v0 = s
            .solve(BiasPoint::common_source(0.4, 0.0), 0.0)
            .unwrap()
            .vsc;
        let v1 = s
            .solve(BiasPoint::common_source(0.4, 0.6), 0.0)
            .unwrap()
            .vsc;
        let gate_pull = s
            .solve(BiasPoint::common_source(0.6, 0.0), 0.0)
            .unwrap()
            .vsc
            - v0;
        assert!((v1 - v0).abs() < gate_pull.abs(), "drain {v1} vs {v0}");
    }
}
