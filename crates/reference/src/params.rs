//! Device parameter sets.
//!
//! A [`DeviceParams`] bundle fixes everything about a ballistic CNFET
//! except its bias point: tube chirality, number of populated subbands,
//! lattice temperature, source Fermi level and the three terminal
//! capacitances. Both the reference model and the compact model consume
//! the same bundle, so every comparison in the paper's tables is
//! apples-to-apples by construction.

use cntfet_physics::electrostatics::{gate_capacitance_per_m, GateGeometry, TerminalCapacitances};
use cntfet_physics::nanotube::{zigzag_for_diameter, Chirality};
use cntfet_physics::units::{ElectronVolts, Kelvin};

/// Complete parameter set of a ballistic CNFET.
///
/// Energies follow the convention of the ballistic transport theory: the
/// source Fermi level [`DeviceParams::fermi_level`] is measured from the
/// equilibrium conduction-band edge at the top of the barrier (negative
/// values put the Fermi level inside the gap, as in the paper's
/// `−0.5 eV ≤ E_F ≤ 0 eV` fitting range).
///
/// # Examples
///
/// ```
/// use cntfet_reference::DeviceParams;
/// let device = DeviceParams::paper_default();
/// assert_eq!(device.temperature.value(), 300.0);
/// assert_eq!(device.fermi_level.value(), -0.32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Tube chirality (must be semiconducting).
    pub chirality: Chirality,
    /// Number of conduction subbands populated by the charge integrals.
    pub subbands: usize,
    /// Lattice temperature.
    pub temperature: Kelvin,
    /// Source Fermi level relative to the equilibrium band edge, eV.
    pub fermi_level: ElectronVolts,
    /// Terminal capacitances per unit length.
    pub capacitances: TerminalCapacitances,
}

impl DeviceParams {
    /// The device used throughout the paper's Tables I–IV and Figs. 2–9:
    /// the FETToy default — a (13,0) tube (d ≈ 1 nm, E_g ≈ 0.83 eV) under
    /// a coaxial gate with 1.5 nm of κ = 3.9 oxide, `α_G ≈ 0.88`,
    /// `α_D ≈ 0.035`, at `T = 300 K` and `E_F = −0.32 eV`.
    pub fn paper_default() -> Self {
        let chirality = Chirality::new(13, 0);
        let cg = gate_capacitance_per_m(GateGeometry::Coaxial, chirality.diameter_m(), 1.5e-9, 3.9);
        // Fractions chosen so that α_G = 0.88 and α_D = 0.035 as in
        // FETToy: C_D = 0.0398 C_G, C_S = 0.0966 C_G.
        let capacitances = TerminalCapacitances::from_gate(cg, 0.035 / 0.88, 0.085 / 0.88);
        DeviceParams {
            chirality,
            subbands: 1,
            temperature: Kelvin(300.0),
            fermi_level: ElectronVolts(-0.32),
            capacitances,
        }
    }

    /// The experimental-comparison device of the paper's Section VI
    /// (Javey et al. 2005): d = 1.6 nm, 50 nm SiO₂ back gate,
    /// `E_F = −0.05 eV`, `T = 300 K`.
    pub fn javey_experimental() -> Self {
        let chirality = zigzag_for_diameter(1.6e-9);
        let cg = gate_capacitance_per_m(GateGeometry::Planar, chirality.diameter_m(), 50e-9, 3.9);
        let capacitances = TerminalCapacitances::from_gate(cg, 0.035 / 0.88, 0.085 / 0.88);
        DeviceParams {
            chirality,
            subbands: 1,
            temperature: Kelvin(300.0),
            fermi_level: ElectronVolts(-0.05),
            capacitances,
        }
    }

    /// Returns a copy with a different temperature (the paper sweeps
    /// 150 K / 300 K / 450 K).
    pub fn with_temperature(mut self, t: Kelvin) -> Self {
        self.temperature = t;
        self
    }

    /// Returns a copy with a different source Fermi level (the paper
    /// sweeps −0.5 / −0.32 / 0 eV).
    pub fn with_fermi_level(mut self, ef: ElectronVolts) -> Self {
        self.fermi_level = ef;
        self
    }

    /// Thermal energy `kT` in eV at the configured temperature.
    pub fn thermal_energy_ev(&self) -> f64 {
        self.temperature.thermal_energy().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_fettoy_conventions() {
        let d = DeviceParams::paper_default();
        assert!((d.capacitances.alpha_g() - 0.88).abs() < 1e-3);
        assert!((d.capacitances.alpha_d() - 0.035).abs() < 1e-3);
        assert!((d.chirality.diameter_m() * 1e9 - 1.018).abs() < 0.01);
        assert_eq!(d.subbands, 1);
    }

    #[test]
    fn javey_device_geometry() {
        let d = DeviceParams::javey_experimental();
        assert!((d.chirality.diameter_m() * 1e9 - 1.6).abs() < 0.06);
        assert_eq!(d.fermi_level.value(), -0.05);
        // 50 nm back oxide couples far more weakly than 1.5 nm coaxial.
        let strong = DeviceParams::paper_default();
        assert!(d.capacitances.gate < strong.capacitances.gate / 2.0);
    }

    #[test]
    fn with_builders_replace_fields() {
        let d = DeviceParams::paper_default()
            .with_temperature(Kelvin(150.0))
            .with_fermi_level(ElectronVolts(-0.5));
        assert_eq!(d.temperature.value(), 150.0);
        assert_eq!(d.fermi_level.value(), -0.5);
        assert!((d.thermal_energy_ev() - 0.012926).abs() < 1e-5);
    }
}
