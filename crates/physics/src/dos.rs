//! Density of states of a semiconducting carbon nanotube.
//!
//! The state-density integrals of the paper (eqs. 2–4) integrate
//! `D(E) f(E − μ)` over the conduction band. Within zone-folded tight
//! binding the one-dimensional DOS of subband `i` with minimum `E_i`
//! (measured from midgap) is, per unit tube length and per eV,
//!
//! ```text
//! D_i(E) = D₀ · E / √(E² − E_i²)      for E > E_i,   D₀ = 8 / (3 π a_cc V_ppπ)
//! ```
//!
//! including the factor 4 for spin × valley degeneracy and counting both
//! `±k` branches.

use crate::constants::{CC_BOND_LENGTH, V_PP_PI};
use crate::nanotube::Chirality;

/// First-subband(s) density of states of a semiconducting tube.
///
/// Energies are measured from midgap in eV; the returned density is in
/// states/(eV·m).
///
/// # Examples
///
/// ```
/// use cntfet_physics::{Chirality, CntDensityOfStates};
/// let dos = CntDensityOfStates::new(Chirality::new(13, 0), 1);
/// let delta = dos.subband_minima()[0];
/// assert_eq!(dos.density(delta * 0.9), 0.0); // inside the gap
/// assert!(dos.density(delta * 1.5) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CntDensityOfStates {
    chirality: Chirality,
    minima: Vec<f64>,
    d0: f64,
}

impl CntDensityOfStates {
    /// Creates the DOS for the lowest `subbands` conduction subbands of
    /// `chirality`.
    ///
    /// # Panics
    ///
    /// Panics if `subbands == 0` or the tube is metallic (no gap — not a
    /// FET channel; the ballistic MOSFET-like theory does not apply).
    pub fn new(chirality: Chirality, subbands: usize) -> Self {
        assert!(subbands > 0, "at least one subband is required");
        assert!(
            !chirality.is_metallic(),
            "metallic tubes have no band gap and cannot form a FET channel"
        );
        let minima = chirality.subband_minima_ev(subbands);
        let d0 = 8.0 / (3.0 * std::f64::consts::PI * CC_BOND_LENGTH * V_PP_PI);
        CntDensityOfStates {
            chirality,
            minima,
            d0,
        }
    }

    /// The tube this DOS describes.
    pub fn chirality(&self) -> Chirality {
        self.chirality
    }

    /// Subband minima in eV from midgap, ascending.
    pub fn subband_minima(&self) -> &[f64] {
        &self.minima
    }

    /// The prefactor `D₀ = 8/(3π a_cc V_ppπ)` in states/(eV·m).
    pub fn d0(&self) -> f64 {
        self.d0
    }

    /// Total density of states at energy `e` (eV from midgap), summed over
    /// the configured subbands, in states/(eV·m).
    ///
    /// The van Hove singularity at each subband edge is integrable; the
    /// quadrature in the reference model splits intervals at the minima
    /// and substitutes it away.
    pub fn density(&self, e: f64) -> f64 {
        let mut total = 0.0;
        for &emin in &self.minima {
            if e > emin {
                total += self.d0 * e / ((e - emin) * (e + emin)).sqrt();
            }
        }
        total
    }

    /// Number of electrons per unit length (1/m) contributed by states up
    /// to the Fermi occupation `f(E − mu)` at thermal energy `kt`, i.e.
    /// `∫ D(E) f(E − mu) dE` over the conduction band.
    ///
    /// Uses the singularity-free substitution `E = √(E_i² + u²)` per
    /// subband, under which `D(E) dE = D₀ du` exactly — the van Hove
    /// divergence disappears analytically and an ordinary adaptive rule
    /// converges fast. `tol` is the *relative* quadrature tolerance; it is
    /// scaled internally by the natural magnitude `D₀·kT` of the integral
    /// so deep filling and tail filling cost similar work.
    pub fn occupied_states(&self, mu: f64, kt: f64, tol: f64) -> f64 {
        use cntfet_numerics::quadrature::integrate_semi_infinite;
        let scale = self.d0 * kt.max(1e-4);
        let abs_tol = tol * scale;
        let mut total = 0.0;
        for &emin in &self.minima {
            // u parametrises E = sqrt(emin² + u²), so the integrand is
            // D0 · f(E(u) − mu) — bounded, smooth, exponentially decaying.
            let integrand = |u: f64| {
                let e = (emin * emin + u * u).sqrt();
                self.d0 * crate::fermi::fermi(e, mu, kt)
            };
            // The occupied window extends to u ≈ √(mu² − emin²) in the
            // degenerate regime before the exponential tail begins.
            let degenerate_reach = if mu > emin {
                (mu * mu - emin * emin).sqrt()
            } else {
                0.0
            };
            let window = degenerate_reach.max(kt.max(1e-4));
            total += integrate_semi_infinite(&integrand, 0.0, window, abs_tol);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::thermal_energy_ev;

    fn dos13() -> CntDensityOfStates {
        CntDensityOfStates::new(Chirality::new(13, 0), 1)
    }

    #[test]
    fn density_is_zero_in_the_gap() {
        let dos = dos13();
        let delta = dos.subband_minima()[0];
        assert_eq!(dos.density(0.0), 0.0);
        assert_eq!(dos.density(delta), 0.0);
        assert_eq!(dos.density(delta - 1e-6), 0.0);
    }

    #[test]
    fn density_diverges_at_band_edge_and_decays_to_d0() {
        let dos = dos13();
        let delta = dos.subband_minima()[0];
        assert!(dos.density(delta + 1e-9) > 100.0 * dos.d0());
        // Far above the edge the 1-D DOS approaches D0 (E/√(E²−Δ²) → 1).
        let far = dos.density(delta * 50.0);
        assert!((far - dos.d0()).abs() / dos.d0() < 1e-3, "{far}");
    }

    #[test]
    fn d0_magnitude() {
        // 8/(3π·0.142e-9·3) ≈ 2.0e9 states/(eV·m).
        let d0 = dos13().d0();
        assert!((d0 - 1.99e9).abs() < 0.05e9, "{d0}");
    }

    #[test]
    fn second_subband_adds_density_above_its_edge() {
        let one = CntDensityOfStates::new(Chirality::new(13, 0), 1);
        let two = CntDensityOfStates::new(Chirality::new(13, 0), 2);
        let delta = one.subband_minima()[0];
        // Between the edges the two agree; above 2Δ the two-subband DOS is
        // strictly larger.
        assert_eq!(one.density(1.5 * delta), two.density(1.5 * delta));
        assert!(two.density(2.5 * delta) > one.density(2.5 * delta));
    }

    #[test]
    fn occupied_states_increase_with_mu_and_t() {
        let dos = dos13();
        let kt = thermal_energy_ev(300.0);
        let n1 = dos.occupied_states(0.0, kt, 1e-10);
        let n2 = dos.occupied_states(0.2, kt, 1e-10);
        let n3 = dos.occupied_states(0.2, thermal_energy_ev(450.0), 1e-10);
        assert!(n2 > n1, "{n2} vs {n1}");
        assert!(n3 > n2, "{n3} vs {n2}");
    }

    #[test]
    fn occupied_states_degenerate_limit_matches_analytic() {
        // For mu far above the band edge and kT → small, the integral
        // approaches D0·√(mu² − Δ²) (from ∫ D dE = D0·u evaluated at the
        // Fermi level).
        let dos = dos13();
        let delta = dos.subband_minima()[0];
        let mu = delta + 0.5;
        let kt = thermal_energy_ev(30.0); // very cold
        let n = dos.occupied_states(mu, kt, 1e-11);
        let analytic = dos.d0() * (mu * mu - delta * delta).sqrt();
        assert!((n - analytic).abs() / analytic < 1e-3, "{n} vs {analytic}");
    }

    #[test]
    fn occupied_states_nondegenerate_limit_is_exponential() {
        let dos = dos13();
        let kt = thermal_energy_ev(300.0);
        let n1 = dos.occupied_states(-0.3, kt, 1e-12);
        let n2 = dos.occupied_states(-0.3 - kt, kt, 1e-12);
        // Boltzmann tail: one kT deeper in the gap costs a factor e.
        let ratio = n1 / n2;
        assert!((ratio - std::f64::consts::E).abs() < 0.05, "{ratio}");
    }

    #[test]
    fn charge_scale_matches_paper_figures() {
        // The paper's Q_S curves peak around 1e-10 C/m for strong filling;
        // q·N at mu = Δ + 0.25 eV should be of that order.
        let dos = dos13();
        let delta = dos.subband_minima()[0];
        let kt = thermal_energy_ev(300.0);
        let n = dos.occupied_states(delta + 0.25, kt, 1e-10);
        let q = crate::constants::ELEMENTARY_CHARGE * n;
        assert!(q > 1e-11 && q < 1e-9, "q = {q} C/m");
    }

    #[test]
    #[should_panic(expected = "metallic")]
    fn metallic_tube_is_rejected() {
        let _ = CntDensityOfStates::new(Chirality::new(12, 0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one subband")]
    fn zero_subbands_is_rejected() {
        let _ = CntDensityOfStates::new(Chirality::new(13, 0), 0);
    }
}
