//! Gate electrostatics: terminal capacitances per unit tube length.
//!
//! The paper's eqs. (8)–(9) treat the gate, drain and source couplings as
//! three lumped capacitances `C_G, C_D, C_S` whose sum `C_Σ` divides the
//! total charge in the self-consistent voltage equation. This module
//! computes the dominant gate term from the insulator geometry and lets
//! drain/source be specified as fractions, mirroring FETToy's
//! `alpha_G/alpha_D` parametrisation.

use crate::constants::VACUUM_PERMITTIVITY;

/// Gate insulator geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateGeometry {
    /// Coaxial (wrap-around) gate at oxide thickness `t_ox` — the
    /// highest-coupling geometry, used by FETToy's default device.
    Coaxial,
    /// Planar (back-gate) electrode: the tube lies on the oxide, as in the
    /// Javey et al. experimental device with its 50 nm back oxide.
    Planar,
}

/// Computes the gate capacitance per unit length (F/m).
///
/// * Coaxial: `C = 2πε / ln((2 t_ox + d) / d)`.
/// * Planar: `C = 2πε / acosh((2 t_ox + d) / d)` (wire over ground plane).
///
/// `d` is the tube diameter (m), `t_ox` the insulator thickness (m),
/// `eps_r` its relative permittivity.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn gate_capacitance_per_m(geometry: GateGeometry, d: f64, t_ox: f64, eps_r: f64) -> f64 {
    assert!(
        d > 0.0 && t_ox > 0.0 && eps_r > 0.0,
        "geometry must be positive"
    );
    let eps = VACUUM_PERMITTIVITY * eps_r;
    let ratio = (2.0 * t_ox + d) / d;
    match geometry {
        GateGeometry::Coaxial => 2.0 * std::f64::consts::PI * eps / ratio.ln(),
        GateGeometry::Planar => 2.0 * std::f64::consts::PI * eps / ratio.acosh(),
    }
}

/// The three terminal capacitances of the equivalent circuit, per unit
/// tube length (F/m).
///
/// # Examples
///
/// ```
/// use cntfet_physics::electrostatics::{gate_capacitance_per_m, GateGeometry, TerminalCapacitances};
/// let cg = gate_capacitance_per_m(GateGeometry::Coaxial, 1.0e-9, 1.5e-9, 3.9);
/// let caps = TerminalCapacitances::from_gate(cg, 0.035, 0.025);
/// assert!(caps.total() > cg);
/// assert!(caps.alpha_g() > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TerminalCapacitances {
    /// Gate capacitance `C_G`, F/m.
    pub gate: f64,
    /// Drain capacitance `C_D`, F/m.
    pub drain: f64,
    /// Source capacitance `C_S`, F/m.
    pub source: f64,
}

impl TerminalCapacitances {
    /// Builds the set from the gate capacitance and the drain/source
    /// couplings expressed as fractions of `C_G` (FETToy convention).
    ///
    /// # Panics
    ///
    /// Panics if `gate <= 0` or a fraction is negative.
    pub fn from_gate(gate: f64, drain_fraction: f64, source_fraction: f64) -> Self {
        assert!(gate > 0.0, "gate capacitance must be positive");
        assert!(
            drain_fraction >= 0.0 && source_fraction >= 0.0,
            "capacitance fractions must be non-negative"
        );
        TerminalCapacitances {
            gate,
            drain: gate * drain_fraction,
            source: gate * source_fraction,
        }
    }

    /// Total terminal capacitance `C_Σ = C_G + C_D + C_S` (paper eq. 9).
    pub fn total(&self) -> f64 {
        self.gate + self.drain + self.source
    }

    /// Gate control ratio `α_G = C_G / C_Σ`.
    pub fn alpha_g(&self) -> f64 {
        self.gate / self.total()
    }

    /// Drain coupling ratio `α_D = C_D / C_Σ` (drain-induced barrier
    /// lowering in the top-of-the-barrier picture).
    pub fn alpha_d(&self) -> f64 {
        self.drain / self.total()
    }

    /// Terminal charge `Q_t = V_G C_G + V_D C_D + V_S C_S` (paper eq. 8)
    /// in C/m for terminal voltages in volts.
    pub fn terminal_charge(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        vg * self.gate + vd * self.drain + vs * self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coaxial_capacitance_reference_value() {
        // d = 1 nm, t_ox = 1.5 nm, κ = 3.9: C = 2πε0·3.9/ln(4) ≈ 1.57e-10 F/m.
        let c = gate_capacitance_per_m(GateGeometry::Coaxial, 1.0e-9, 1.5e-9, 3.9);
        assert!((c - 1.565e-10).abs() < 0.01e-10, "{c}");
    }

    #[test]
    fn planar_is_weaker_than_coaxial() {
        let cx = gate_capacitance_per_m(GateGeometry::Coaxial, 1.6e-9, 50e-9, 3.9);
        let pl = gate_capacitance_per_m(GateGeometry::Planar, 1.6e-9, 50e-9, 3.9);
        assert!(pl < cx, "planar {pl} vs coaxial {cx}");
        assert!(pl > 0.0);
    }

    #[test]
    fn capacitance_increases_with_permittivity_and_decreases_with_tox() {
        let base = gate_capacitance_per_m(GateGeometry::Coaxial, 1e-9, 2e-9, 3.9);
        let high_k = gate_capacitance_per_m(GateGeometry::Coaxial, 1e-9, 2e-9, 16.0);
        let thick = gate_capacitance_per_m(GateGeometry::Coaxial, 1e-9, 10e-9, 3.9);
        assert!(high_k > base);
        assert!(thick < base);
    }

    #[test]
    fn terminal_set_totals_and_ratios() {
        let caps = TerminalCapacitances::from_gate(1.0e-10, 0.04, 0.02);
        assert!((caps.total() - 1.06e-10).abs() < 1e-14);
        assert!((caps.alpha_g() - 1.0 / 1.06).abs() < 1e-12);
        assert!((caps.alpha_d() - 0.04 / 1.06).abs() < 1e-12);
    }

    #[test]
    fn terminal_charge_is_linear_in_biases() {
        let caps = TerminalCapacitances::from_gate(2.0e-10, 0.05, 0.05);
        let q1 = caps.terminal_charge(0.5, 0.3, 0.0);
        let q2 = caps.terminal_charge(1.0, 0.6, 0.0);
        assert!((q2 - 2.0 * q1).abs() < 1e-22);
        assert_eq!(caps.terminal_charge(0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn grounded_source_contributes_nothing() {
        let caps = TerminalCapacitances::from_gate(1e-10, 0.1, 0.1);
        let q = caps.terminal_charge(0.6, 0.4, 0.0);
        let expect = 0.6 * caps.gate + 0.4 * caps.drain;
        assert!((q - expect).abs() < 1e-24);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gate_capacitance_panics() {
        let _ = TerminalCapacitances::from_gate(0.0, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_geometry_panics() {
        let _ = gate_capacitance_per_m(GateGeometry::Coaxial, -1e-9, 1e-9, 3.9);
    }
}
