//! Unit newtypes.
//!
//! The self-consistent-voltage algebra of the paper mixes three quantities
//! that are all "just numbers" in a scripting language: terminal voltages
//! (V), energies (eV) and temperatures (K). Confusing them is the classic
//! compact-model bug, so the public APIs of the higher crates take these
//! newtypes and convert explicitly.

use crate::constants::BOLTZMANN_EV_PER_K;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Raw numeric value.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }
    };
}

unit_newtype!(
    /// An electric potential in volts.
    Volts,
    "V"
);

unit_newtype!(
    /// An energy in electron-volts.
    ElectronVolts,
    "eV"
);

unit_newtype!(
    /// An absolute temperature in kelvin.
    Kelvin,
    "K"
);

impl Volts {
    /// The potential energy `−qV` of an electron at this potential,
    /// expressed in eV (numerically `−V`).
    ///
    /// This is the conversion hidden inside the paper's `E_F − qV_SC`
    /// expressions once everything is measured in eV.
    pub fn electron_energy(self) -> ElectronVolts {
        ElectronVolts(-self.0)
    }
}

impl ElectronVolts {
    /// The electrostatic potential at which an electron has this potential
    /// energy (numerically `−E`).
    pub fn as_potential(self) -> Volts {
        Volts(-self.0)
    }
}

impl Kelvin {
    /// Thermal energy `kT` in eV.
    ///
    /// # Examples
    ///
    /// ```
    /// use cntfet_physics::units::Kelvin;
    /// let kt = Kelvin(300.0).thermal_energy();
    /// assert!((kt.value() - 0.02585).abs() < 1e-4);
    /// ```
    pub fn thermal_energy(self) -> ElectronVolts {
        ElectronVolts(BOLTZMANN_EV_PER_K * self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Volts(1.5);
        let b = Volts(0.5);
        assert_eq!((a + b).value(), 2.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!((-a).value(), -1.5);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        assert_eq!(a.abs(), Volts(1.5));
        assert_eq!(Volts(-1.5).abs(), Volts(1.5));
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Volts(0.5).to_string(), "0.5 V");
        assert_eq!(ElectronVolts(-0.32).to_string(), "-0.32 eV");
        assert_eq!(Kelvin(300.0).to_string(), "300 K");
    }

    #[test]
    fn electron_energy_roundtrip() {
        let v = Volts(0.7);
        let e = v.electron_energy();
        assert_eq!(e.value(), -0.7);
        assert_eq!(e.as_potential(), v);
    }

    #[test]
    fn thermal_energy_scales_linearly_in_t() {
        let a = Kelvin(150.0).thermal_energy().value();
        let b = Kelvin(450.0).thermal_energy().value();
        assert!((b - 3.0 * a).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_available() {
        assert!(Volts(0.1) < Volts(0.2));
        assert!(ElectronVolts(-0.5) < ElectronVolts(0.0));
    }
}
