//! Single-walled carbon nanotube geometry and band structure.
//!
//! The zone-folding tight-binding picture used by the ballistic transport
//! theory (Rahman et al. 2003) reduces a tube to its chiral indices
//! `(n, m)`: they fix the diameter, whether the tube is metallic, and the
//! subband minima whose lowest member sets the band gap.

use crate::constants::{CC_BOND_LENGTH, GRAPHENE_LATTICE, V_PP_PI};

/// Chiral indices `(n, m)` of a single-walled carbon nanotube.
///
/// # Examples
///
/// ```
/// use cntfet_physics::nanotube::Chirality;
/// let tube = Chirality::new(13, 0);
/// assert!((tube.band_gap_ev() - 0.83).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chirality {
    n: u32,
    m: u32,
}

impl Chirality {
    /// Creates a chirality from the indices `(n, m)`.
    ///
    /// # Panics
    ///
    /// Panics if both indices are zero or `m > n` (the conventional
    /// ordering `n ≥ m` is required).
    pub fn new(n: u32, m: u32) -> Self {
        assert!(n > 0 || m > 0, "chirality (0,0) is not a nanotube");
        assert!(m <= n, "chiral indices must satisfy n >= m");
        Chirality { n, m }
    }

    /// The `n` index.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The `m` index.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Tube diameter in metres: `d = a √(n² + nm + m²) / π`.
    pub fn diameter_m(&self) -> f64 {
        let (n, m) = (self.n as f64, self.m as f64);
        GRAPHENE_LATTICE * (n * n + n * m + m * m).sqrt() / std::f64::consts::PI
    }

    /// `true` when the tube is metallic (`(n − m) mod 3 == 0`), in which
    /// case it has no band gap and cannot serve as a FET channel.
    pub fn is_metallic(&self) -> bool {
        (self.n as i64 - self.m as i64).rem_euclid(3) == 0
    }

    /// Band gap of a semiconducting tube in eV:
    /// `E_g = 2 a_cc V_ppπ / d` (zero for metallic tubes).
    pub fn band_gap_ev(&self) -> f64 {
        if self.is_metallic() {
            0.0
        } else {
            2.0 * CC_BOND_LENGTH * V_PP_PI / self.diameter_m()
        }
    }

    /// Half band gap `Δ = E_g / 2` in eV — the conduction-band minimum
    /// measured from midgap, which is where the DOS singularity sits.
    pub fn half_gap_ev(&self) -> f64 {
        0.5 * self.band_gap_ev()
    }

    /// Energies of the lowest `count` conduction subband minima in eV,
    /// measured from midgap.
    ///
    /// For a semiconducting zigzag-like spectrum these scale as
    /// `Δ, 2Δ, 4Δ, 5Δ, …` (the allowed lines skip multiples of 3); the
    /// reference model only populates the subbands the caller requests.
    pub fn subband_minima_ev(&self, count: usize) -> Vec<f64> {
        let delta = self.half_gap_ev();
        let mut out = Vec::with_capacity(count);
        let mut p: u32 = 1;
        while out.len() < count {
            if !p.is_multiple_of(3) {
                out.push(delta * p as f64);
            }
            p += 1;
        }
        out
    }
}

/// Creates the chirality whose diameter best matches `d_m` metres among
/// semiconducting zigzag tubes `(n, 0)`.
///
/// The experimental-comparison device of the paper is specified only by
/// its diameter (1.6 nm); this helper picks the nearest semiconducting
/// zigzag surrogate.
pub fn zigzag_for_diameter(d_m: f64) -> Chirality {
    let n_real = d_m * std::f64::consts::PI / GRAPHENE_LATTICE;
    let mut best: Option<(f64, Chirality)> = None;
    let lo = (n_real - 3.0).max(4.0) as u32;
    for n in lo..(n_real as u32 + 4) {
        let c = Chirality::new(n, 0);
        if c.is_metallic() {
            continue;
        }
        let err = (c.diameter_m() - d_m).abs();
        if best.map(|(e, _)| err < e).unwrap_or(true) {
            best = Some((err, c));
        }
    }
    best.expect("search range always contains a semiconducting tube")
        .1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_zero_matches_fettoy_default() {
        let t = Chirality::new(13, 0);
        let d_nm = t.diameter_m() * 1e9;
        assert!((d_nm - 1.018).abs() < 0.01, "{d_nm}");
        assert!(
            (t.band_gap_ev() - 0.837).abs() < 0.01,
            "{}",
            t.band_gap_ev()
        );
        assert!(!t.is_metallic());
    }

    #[test]
    fn armchair_tubes_are_metallic() {
        for n in [5, 8, 10] {
            assert!(Chirality::new(n, n).is_metallic(), "({n},{n})");
            assert_eq!(Chirality::new(n, n).band_gap_ev(), 0.0);
        }
    }

    #[test]
    fn zigzag_metallicity_rule() {
        assert!(Chirality::new(9, 0).is_metallic());
        assert!(Chirality::new(12, 0).is_metallic());
        assert!(!Chirality::new(13, 0).is_metallic());
        assert!(!Chirality::new(14, 0).is_metallic());
    }

    #[test]
    fn band_gap_scales_inversely_with_diameter() {
        let small = Chirality::new(10, 0);
        let large = Chirality::new(20, 0);
        assert!(small.band_gap_ev() > large.band_gap_ev());
        let product_small = small.band_gap_ev() * small.diameter_m();
        let product_large = large.band_gap_ev() * large.diameter_m();
        assert!((product_small - product_large).abs() / product_small < 1e-12);
    }

    #[test]
    fn rule_of_thumb_gap() {
        // E_g ≈ 0.85 eV / d[nm] for V_ppπ = 3 eV.
        let t = Chirality::new(16, 0);
        let d_nm = t.diameter_m() * 1e9;
        assert!((t.band_gap_ev() - 0.852 / d_nm).abs() < 0.01);
    }

    #[test]
    fn subband_minima_skip_metallic_lines() {
        let t = Chirality::new(13, 0);
        let delta = t.half_gap_ev();
        let bands = t.subband_minima_ev(4);
        assert_eq!(bands.len(), 4);
        assert!((bands[0] - delta).abs() < 1e-12);
        assert!((bands[1] - 2.0 * delta).abs() < 1e-12);
        assert!((bands[2] - 4.0 * delta).abs() < 1e-12);
        assert!((bands[3] - 5.0 * delta).abs() < 1e-12);
    }

    #[test]
    fn zigzag_for_diameter_finds_1_6nm_tube() {
        let c = zigzag_for_diameter(1.6e-9);
        assert!(!c.is_metallic());
        let d_nm = c.diameter_m() * 1e9;
        assert!((d_nm - 1.6).abs() < 0.06, "{d_nm} nm from {c:?}");
    }

    #[test]
    #[should_panic(expected = "n >= m")]
    fn inverted_indices_panic() {
        let _ = Chirality::new(3, 5);
    }

    #[test]
    #[should_panic(expected = "not a nanotube")]
    fn zero_zero_panics() {
        let _ = Chirality::new(0, 0);
    }
}
