//! Physical constants (CODATA 2018) and graphene tight-binding parameters.
//!
//! Energies in this workspace are expressed in electron-volts and lengths
//! in metres unless a name says otherwise; the constants here come in both
//! SI and eV-flavoured forms so call sites never need ad-hoc conversion
//! factors.

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant, J/K.
pub const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;

/// Boltzmann constant, eV/K.
pub const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;

/// Reduced Planck constant, J·s.
pub const HBAR_J_S: f64 = 1.054_571_817e-34;

/// Vacuum permittivity, F/m.
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-12;

/// Carbon–carbon bond length in graphene, m.
pub const CC_BOND_LENGTH: f64 = 0.142e-9;

/// Graphene lattice constant `a = √3 · a_cc`, m.
pub const GRAPHENE_LATTICE: f64 = 0.246e-9;

/// Nearest-neighbour tight-binding hopping energy `V_ppπ`, eV.
///
/// The conventional value of ≈ 3 eV reproduces the `E_g ≈ 0.8 eV / d[nm]`
/// rule used by the ballistic CNT literature the paper builds on.
pub const V_PP_PI: f64 = 3.0;

/// Quantum conductance prefactor of the ballistic current equation
/// (paper eq. 12): `2 q k / (π ħ)` in A/(K) when multiplied by `T` and a
/// dimensionless Fermi integral difference.
///
/// `I_DS = BALLISTIC_CURRENT_PREFACTOR · T · [F₀(η_S) − F₀(η_D)]`.
pub const BALLISTIC_CURRENT_PREFACTOR: f64 =
    2.0 * ELEMENTARY_CHARGE * BOLTZMANN_J_PER_K / (std::f64::consts::PI * HBAR_J_S);

/// Thermal energy `kT` at temperature `t` kelvin, in eV.
///
/// # Examples
///
/// ```
/// let kt = cntfet_physics::constants::thermal_energy_ev(300.0);
/// assert!((kt - 0.02585).abs() < 1e-4);
/// ```
pub fn thermal_energy_ev(t: f64) -> f64 {
    BOLTZMANN_EV_PER_K * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boltzmann_forms_are_consistent() {
        // k[J/K] = k[eV/K] · q.
        let derived = BOLTZMANN_EV_PER_K * ELEMENTARY_CHARGE;
        assert!((derived - BOLTZMANN_J_PER_K).abs() / BOLTZMANN_J_PER_K < 1e-9);
    }

    #[test]
    fn lattice_constant_matches_bond_length() {
        let derived = 3f64.sqrt() * CC_BOND_LENGTH;
        assert!((derived - GRAPHENE_LATTICE).abs() / GRAPHENE_LATTICE < 0.01);
    }

    #[test]
    fn ballistic_prefactor_magnitude() {
        // 2qk/(πħ) ≈ 1.335e-8 A/K; at 300 K the current scale is ~4e-6 A
        // per unit F0 difference — consistent with the µA-scale currents of
        // the paper's figures (0–9 µA for F0 differences of O(1)).
        let at_300k = BALLISTIC_CURRENT_PREFACTOR * 300.0;
        assert!(
            (BALLISTIC_CURRENT_PREFACTOR - 1.3354e-8).abs() < 0.001e-8,
            "{BALLISTIC_CURRENT_PREFACTOR}"
        );
        assert!(at_300k > 3e-6 && at_300k < 5e-6, "{at_300k}");
    }

    #[test]
    fn thermal_energy_at_room_temperature() {
        assert!((thermal_energy_ev(300.0) - 0.025852).abs() < 1e-5);
        assert!((thermal_energy_ev(150.0) * 2.0 - thermal_energy_ev(300.0)).abs() < 1e-12);
    }
}
