//! Fermi–Dirac statistics.
//!
//! Two objects matter to the paper: the distribution `f(E)` inside the
//! state-density integrals (eqs. 2–4), and the order-0 Fermi–Dirac
//! integral whose closed form `F₀(η) = ln(1 + e^η)` makes the drain
//! current (eqs. 12–14) cheap once the self-consistent voltage is known.

/// Fermi–Dirac occupation `1 / (1 + e^{(e − mu)/kt})`.
///
/// All arguments in eV. Written in an overflow-safe form: large positive
/// and negative arguments saturate to 0 and 1 without producing `inf/inf`.
///
/// # Examples
///
/// ```
/// use cntfet_physics::fermi::fermi;
/// assert_eq!(fermi(0.0, 0.0, 0.0259), 0.5);
/// assert!(fermi(1.0, 0.0, 0.0259) < 1e-16);
/// ```
pub fn fermi(e: f64, mu: f64, kt: f64) -> f64 {
    let x = (e - mu) / kt;
    if x > 0.0 {
        let ex = (-x).exp();
        ex / (1.0 + ex)
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Derivative of the Fermi function with respect to energy, `∂f/∂E`
/// (negative, peaked at `E = mu` with value `−1/(4 kT)`), in 1/eV.
pub fn fermi_derivative(e: f64, mu: f64, kt: f64) -> f64 {
    let x = ((e - mu) / kt).abs();
    // f(1−f)/kT computed stably via the smaller exponential.
    let ex = (-x).exp();
    let denom = (1.0 + ex) * (1.0 + ex);
    -ex / denom / kt
}

/// Fermi–Dirac integral of order 0 in closed form (paper eq. 13):
/// `F₀(η) = ln(1 + e^η)`.
///
/// Overflow-safe: for large `η` it returns `η + ln(1 + e^{−η})`.
pub fn fermi_integral_zero(eta: f64) -> f64 {
    if eta > 0.0 {
        eta + (-eta).exp().ln_1p()
    } else {
        eta.exp().ln_1p()
    }
}

/// Derivative of [`fermi_integral_zero`], which is the logistic function
/// `1 / (1 + e^{−η})`. Used by Newton iterations on the reference model.
pub fn fermi_integral_zero_derivative(eta: f64) -> f64 {
    if eta > 0.0 {
        1.0 / (1.0 + (-eta).exp())
    } else {
        let e = eta.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KT: f64 = 0.0259;

    #[test]
    fn fermi_half_at_chemical_potential() {
        assert_eq!(fermi(0.3, 0.3, KT), 0.5);
    }

    #[test]
    fn fermi_limits_saturate_cleanly() {
        assert_eq!(fermi(100.0, 0.0, KT), 0.0);
        assert_eq!(fermi(-100.0, 0.0, KT), 1.0);
        assert!(fermi(1e6, 0.0, KT).is_finite());
    }

    #[test]
    fn fermi_is_monotone_decreasing_in_energy() {
        let mut prev = fermi(-1.0, 0.0, KT);
        for i in 1..=100 {
            let e = -1.0 + 2.0 * i as f64 / 100.0;
            let v = fermi(e, 0.0, KT);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn fermi_symmetry_about_mu() {
        // f(mu + x) + f(mu - x) = 1.
        for &x in &[0.01, 0.05, 0.2] {
            let s = fermi(0.3 + x, 0.3, KT) + fermi(0.3 - x, 0.3, KT);
            assert!((s - 1.0).abs() < 1e-14, "{s}");
        }
    }

    #[test]
    fn fermi_derivative_matches_finite_difference() {
        let h = 1e-7;
        for &e in &[-0.2, 0.0, 0.05, 0.3] {
            let fd = (fermi(e + h, 0.0, KT) - fermi(e - h, 0.0, KT)) / (2.0 * h);
            let an = fermi_derivative(e, 0.0, KT);
            assert!(
                (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                "e = {e}: {fd} vs {an}"
            );
        }
    }

    #[test]
    fn fermi_derivative_peak_value() {
        let peak = fermi_derivative(0.0, 0.0, KT);
        assert!((peak + 1.0 / (4.0 * KT)).abs() < 1e-12);
    }

    #[test]
    fn f0_closed_form_reference_values() {
        assert!((fermi_integral_zero(0.0) - std::f64::consts::LN_2).abs() < 1e-15);
        // Degenerate limit: F0(η) → η.
        assert!((fermi_integral_zero(50.0) - 50.0).abs() < 1e-15);
        // Non-degenerate limit: F0(η) → e^η (relative error ~e^η/2).
        let eta = -20.0;
        let rel = (fermi_integral_zero(eta) - eta.exp()).abs() / eta.exp();
        assert!(rel < 1e-8, "{rel}");
    }

    #[test]
    fn f0_is_smooth_and_increasing() {
        let mut prev = fermi_integral_zero(-10.0);
        for i in 1..=400 {
            let eta = -10.0 + 20.0 * i as f64 / 400.0;
            let v = fermi_integral_zero(eta);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn f0_derivative_is_logistic() {
        let h = 1e-6;
        for &eta in &[-5.0, -0.5, 0.0, 0.5, 5.0] {
            let fd = (fermi_integral_zero(eta + h) - fermi_integral_zero(eta - h)) / (2.0 * h);
            let an = fermi_integral_zero_derivative(eta);
            assert!((fd - an).abs() < 1e-8, "eta = {eta}");
        }
    }

    #[test]
    fn f0_no_overflow_for_huge_eta() {
        assert!(fermi_integral_zero(1e8).is_finite());
        assert!(fermi_integral_zero(-1e8).abs() < 1e-300 + f64::MIN_POSITIVE);
    }
}
