//! Carbon-nanotube device physics for the `cntfet` workspace.
//!
//! This crate holds everything the paper's eqs. (1)–(6) take as given:
//!
//! * [`constants`] — CODATA physical constants plus the tight-binding
//!   parameters of the graphene lattice;
//! * [`units`] — newtype wrappers distinguishing volts from electron-volts
//!   from kelvin, so bias sweeps cannot be fed where energies are expected;
//! * [`nanotube`] — chirality → diameter, band gap and subband minima of a
//!   single-walled carbon nanotube;
//! * [`dos`] — the first-subband density of states `D(E)` entering the
//!   state-density integrals;
//! * [`fermi`] — the Fermi–Dirac distribution and the closed-form
//!   Fermi–Dirac integral of order 0, `F₀(η) = ln(1 + e^η)` (paper eq. 13);
//! * [`electrostatics`] — gate/drain/source terminal capacitances per unit
//!   length (paper eqs. 8–9).
//!
//! # Examples
//!
//! ```
//! use cntfet_physics::nanotube::Chirality;
//!
//! let tube = Chirality::new(13, 0); // the FETToy default zigzag tube
//! assert!(!tube.is_metallic());
//! let d = tube.diameter_m() * 1e9;
//! assert!((d - 1.018).abs() < 0.01, "diameter {d} nm");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod constants;
pub mod dos;
pub mod electrostatics;
pub mod fermi;
pub mod nanotube;
pub mod units;

pub use dos::CntDensityOfStates;
pub use electrostatics::TerminalCapacitances;
pub use nanotube::Chirality;
pub use units::{ElectronVolts, Kelvin, Volts};
