//! Flattening-equivalence property tests: for randomly generated
//! hierarchies (instantiation depth ≤ 3, random parameter overrides),
//! the parser's `.subckt`/`X` flattener must produce **bitwise** the
//! same analysis results as a flat netlist written out by this harness
//! with its own independent expansion of the same structure.
//!
//! The flat deck uses the same node names (dotted instance paths) and
//! card order the flattener produces, so the MNA systems are assembled
//! identically and every probe sample must match to the last ULP —
//! compared through the round-tripping CSV renderer.

use cntfet_circuit::deck::Deck;
use proptest::prelude::*;
use std::fmt::Write as _;

/// One randomly parameterised instance in the top-level chain.
#[derive(Debug, Clone)]
struct ChainLink {
    /// Hierarchy depth of the subcircuit to instantiate (1..=3).
    depth: usize,
    /// Instance `r=` override, ohms; `None` leaves the default.
    r_override: Option<f64>,
}

/// Zips independently drawn depth and raw-override vectors into chain
/// links (the vendored proptest shim only composes ranges and vecs).
/// Raw values below 100 Ω map to "no override, use the default".
fn links_from(depths: &[usize], raws: &[f64]) -> Vec<ChainLink> {
    depths
        .iter()
        .zip(raws)
        .map(|(&depth, &raw)| ChainLink {
            depth,
            r_override: (raw >= 100.0).then_some(raw),
        })
        .collect()
}

/// The fixed library the random decks draw from: `s1` is a resistive
/// pi-section with an internal node, `s2` chains two `s1`, `s3` chains
/// two `s2` — three levels of hierarchy with parameter forwarding
/// (`{r}` and scaled `{2*r}` expressions at every level).
const LIBRARY: &str = ".subckt s1 p q r=1k
R1 p m {r}
R2 m q {2*r}
C1 m 0 1f
.ends s1
.subckt s2 p q r=2k
x1 p m s1 r={r}
x2 m q s1
.ends s2
.subckt s3 p q r=3k
x1 p m s2 r={2*r}
x2 m q s2 r={r}
.ends s3
";

/// Default `r` of each library cell, indexed by depth.
const DEFAULT_R: [f64; 4] = [0.0, 1e3, 2e3, 3e3];

/// Emits the harness's own flat expansion of `s<depth>` instantiated
/// at `path` between `p` and `q` with parameter value `r` — the same
/// node names and card order the parser's flattener produces, but
/// derived independently (explicit recursion, values computed in f64
/// and printed through Rust's round-tripping float formatter).
fn emit_flat(out: &mut String, depth: usize, path: &str, p: &str, q: &str, r: f64) {
    let m = format!("{path}.m");
    match depth {
        1 => {
            let _ = writeln!(out, "R1{path} {p} {m} {r}");
            let _ = writeln!(out, "R2{path} {m} {q} {v}", v = 2.0 * r);
            let _ = writeln!(out, "C1{path} {m} 0 0.000000000000001");
        }
        2 => {
            emit_flat(out, 1, &format!("{path}.x1"), p, &m, r);
            emit_flat(out, 1, &format!("{path}.x2"), &m, q, DEFAULT_R[1]);
        }
        _ => {
            emit_flat(out, 2, &format!("{path}.x1"), p, &m, 2.0 * r);
            emit_flat(out, 2, &format!("{path}.x2"), &m, q, r);
        }
    }
}

/// Builds the hierarchical deck and the harness-flattened deck for one
/// random chain; both carry identical analysis and probe cards.
fn build_decks(links: &[ChainLink], vsrc: f64) -> (String, String) {
    let mut hier = String::from("hier\n");
    hier.push_str(LIBRARY);
    let mut flat = String::from("hier\n");
    for s in [&mut hier, &mut flat] {
        let _ = writeln!(s, "V1 n0 0 DC {vsrc}");
    }
    for (i, link) in links.iter().enumerate() {
        let p = format!("n{i}");
        let q = if i + 1 == links.len() {
            "0".to_string()
        } else {
            format!("n{}", i + 1)
        };
        let over = match link.r_override {
            Some(r) => format!(" r={r}"),
            None => String::new(),
        };
        let _ = writeln!(hier, "xc{i} {p} {q} s{}{over}", link.depth);
        let r = link.r_override.unwrap_or(DEFAULT_R[link.depth]);
        emit_flat(&mut flat, link.depth, &format!("xc{i}"), &p, &q, r);
    }
    let probes: Vec<String> = (0..links.len()).map(|i| format!("v(n{i})")).collect();
    for s in [&mut hier, &mut flat] {
        let _ = writeln!(s, ".op");
        let _ = writeln!(s, ".dc V1 0 1 0.5");
        let _ = writeln!(s, ".print op {}", probes.join(" "));
        let _ = writeln!(s, ".print dc {}", probes.join(" "));
    }
    (hier, flat)
}

fn run_csv(text: &str) -> Vec<String> {
    let deck = Deck::parse(text).unwrap_or_else(|e| panic!("deck should parse:\n{e}\n{text}"));
    let run = deck
        .run()
        .unwrap_or_else(|e| panic!("deck should run:\n{e}\n{text}"));
    run.reports.iter().map(|r| r.to_csv()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random hierarchy chains: parser-flattened vs harness-flattened
    /// analysis output is textually identical CSV — and the CSV float
    /// formatter round-trips f64, so textual equality is bitwise
    /// equality of every operating-point and sweep sample.
    #[test]
    fn parser_flattening_matches_harness_flattening(
        depths in proptest::collection::vec(1usize..4, 1..5),
        raws in proptest::collection::vec(0.0f64..10e3, 4..5),
        vsrc in 0.5f64..5.0,
    ) {
        let links = links_from(&depths, &raws);
        let (hier, flat) = build_decks(&links, vsrc);
        let hier_csv = run_csv(&hier);
        let flat_csv = run_csv(&flat);
        prop_assert!(hier_csv == flat_csv,
            "analysis output diverged\nhier deck:\n{}\nflat deck:\n{}", hier, flat);
    }

    /// The hierarchical deck also survives a serialise → reparse → run
    /// round trip with bitwise-identical output (the `Display` form of
    /// a deck with `.subckt` blocks is a faithful spelling of it).
    #[test]
    fn hierarchy_round_trip_preserves_results(
        depths in proptest::collection::vec(1usize..4, 1..4),
        raws in proptest::collection::vec(0.0f64..10e3, 3..4),
        vsrc in 0.5f64..5.0,
    ) {
        let links = links_from(&depths, &raws);
        let (hier, _) = build_decks(&links, vsrc);
        let deck = Deck::parse(&hier).expect("hier deck parses");
        let reparsed = Deck::parse(&deck.to_string()).expect("rendered deck parses");
        prop_assert_eq!(deck.clone(), reparsed.clone());
        let a: Vec<String> = deck.run().expect("runs").reports.iter().map(|r| r.to_csv()).collect();
        let b: Vec<String> = reparsed.run().expect("runs").reports.iter().map(|r| r.to_csv()).collect();
        prop_assert_eq!(a, b);
    }
}
