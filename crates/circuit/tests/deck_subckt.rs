//! Subcircuit front-end edge cases: every way a `.subckt` definition
//! or `X` instantiation can go wrong must fail with a *spanned*
//! diagnostic anchored at the offending card — never a panic or a
//! stack overflow — and the flattener's parameter scoping, node
//! rewriting and round-trip serialisation must be exact.
//!
//! The snapshot tests pin the full rendered error text (line numbers,
//! caret, `= note:` instance-path breadcrumb, `= help:` suggestion) so
//! hierarchical diagnostic quality is a regression-tested feature.

use cntfet_circuit::deck::{Deck, DeckError, ElementCard};

fn parse_err(deck: &str) -> DeckError {
    Deck::parse(deck).expect_err("deck should not parse")
}

fn parse_ok(deck: &str) -> Deck {
    Deck::parse(deck).unwrap_or_else(|e| panic!("deck should parse:\n{e}"))
}

// ------------------------------------------------------- definitions

#[test]
fn duplicate_subckt_names_point_at_both_lines() {
    let err =
        parse_err("t\n.subckt inv out in\nR1 out in 1k\n.ends\n.subckt inv a b\nR1 a b 1k\n.ends");
    assert_eq!(
        err.to_string(),
        "deck:5:9: duplicate subcircuit name 'inv' (first defined on line 2)
    5 | .subckt inv a b
      |         ^^^"
    );
}

#[test]
fn subckt_needs_at_least_one_port() {
    let err = parse_err("t\n.subckt inv\nR1 a b 1k\n.ends");
    assert!(err.message.contains("needs at least one port"), "{err}");
    assert_eq!(err.help.as_deref(), Some("e.g. `.subckt inv out in vdd`"));
}

#[test]
fn ground_cannot_be_a_port() {
    let err = parse_err("t\n.subckt inv out 0\nR1 out 0 1k\n.ends");
    assert_eq!(
        err.to_string(),
        "deck:2:17: the ground node '0' cannot be a subcircuit port (it is global)
    2 | .subckt inv out 0
      |                 ^"
    );
    let err = parse_err("t\n.subckt inv out gnd\nR1 out gnd 1k\n.ends");
    assert!(err.message.contains("'gnd'"), "{err}");
}

#[test]
fn nested_definitions_are_rejected() {
    let err = parse_err("t\n.subckt inv out in\n.subckt buf a b\n.ends\n.ends");
    assert_eq!(
        err.to_string(),
        "deck:3:1: subcircuit definitions cannot nest: '.subckt' inside '.subckt inv'
    3 | .subckt buf a b
      | ^^^^^^^
      = help: close '.subckt inv' with `.ends` first"
    );
}

#[test]
fn directives_inside_a_body_are_rejected() {
    let err = parse_err("t\n.subckt inv out in\n.param w = 1\n.ends");
    assert_eq!(
        err.to_string(),
        "deck:3:1: directives are not allowed inside a .subckt body (found '.param' in '.subckt inv')
    3 | .param w = 1
      | ^^^^^^
      = help: only R, C, V, I, M and X cards may appear between .subckt and .ends"
    );
}

#[test]
fn ends_name_mismatch_is_rejected() {
    let err = parse_err("t\n.subckt inv out in\nR1 out in 1k\n.ends buf");
    assert_eq!(
        err.to_string(),
        "deck:4:7: this .ends closes '.subckt inv', not 'buf'
    4 | .ends buf
      |       ^^^"
    );
}

#[test]
fn missing_ends_is_rejected_at_the_open_header() {
    let err = parse_err("t\n.subckt inv out in\nR1 out in 1k");
    assert_eq!(
        err.to_string(),
        "deck:2:1: missing .ends for '.subckt inv'
    2 | .subckt inv out in
      | ^^^^^^^
      = help: close the definition with `.ends` (or `.ends inv`)"
    );
}

#[test]
fn stray_ends_is_rejected() {
    let err = parse_err("t\nR1 a 0 1k\n.ends");
    assert_eq!(
        err.to_string(),
        "deck:3:1: found .ends without a matching .subckt
    3 | .ends
      | ^^^^^"
    );
}

// ------------------------------------------------------ instantiation

#[test]
fn undefined_subckt_suggests_the_nearest_name() {
    let err =
        parse_err("t\n.subckt inv out in vdd\nR1 out in 1k\n.ends\nV1 vdd 0 DC 1\nX1 a b vdd inx");
    assert_eq!(
        err.to_string(),
        "deck:6:12: no subcircuit named 'inx'; available subcircuits: inv
    6 | X1 a b vdd inx
      |            ^^^
      = help: did you mean 'inv'?"
    );
}

#[test]
fn undefined_subckt_in_a_deck_without_definitions() {
    let err = parse_err("t\nX1 a b inv");
    assert!(
        err.message
            .contains("(the deck has no .subckt definitions)"),
        "{err}"
    );
}

#[test]
fn port_count_mismatch_names_the_definition_site() {
    let err = parse_err("t\n.subckt inv out in vdd\nR1 out in 1k\n.ends\nX1 a b inv");
    assert_eq!(
        err.to_string(),
        "deck:5:1: subcircuit 'inv' takes 3 nodes (ports: out in vdd), but 2 are given
    5 | X1 a b inv
      | ^^
      = help: '.subckt inv' is defined on line 2"
    );
}

#[test]
fn instance_with_too_few_words_is_rejected() {
    let err = parse_err("t\nX1 inv");
    assert_eq!(
        err.to_string(),
        "deck:2:1: instance X1 needs at least one node and a subcircuit name
    2 | X1 inv
      | ^^
      = help: e.g. `X1 in out vdd inv` (nodes first, the .subckt name last)"
    );
}

#[test]
fn duplicate_instance_names_are_rejected() {
    let err = parse_err("t\n.subckt inv out in\nR1 out in 1k\n.ends\nX1 a b inv\nX1 c d inv");
    assert_eq!(
        err.to_string(),
        "deck:6:1: duplicate instance name 'X1' (first defined on line 5)
    6 | X1 c d inv
      | ^^"
    );
}

#[test]
fn unknown_parameter_override_suggests_the_nearest() {
    let err = parse_err("t\n.subckt inv out in cl=1f\nC1 out 0 {cl}\n.ends\nX1 a b inv cll=2f");
    assert_eq!(
        err.to_string(),
        "deck:5:1: unknown parameter 'cll' for subcircuit 'inv'; it declares cl
    5 | X1 a b inv cll=2f
      | ^^
      = help: did you mean 'cl'?"
    );
}

#[test]
fn override_on_a_parameterless_subckt_is_rejected() {
    let err = parse_err("t\n.subckt inv out in\nR1 out in 1k\n.ends\nX1 a b inv cl=2f");
    assert!(
        err.message
            .contains("declares no parameters, but 'cl' was given"),
        "{err}"
    );
}

// --------------------------------------------------------- recursion

/// Direct self-instantiation must be a spanned error, not a stack
/// overflow — the `= note:` breadcrumb names the instance path.
#[test]
fn direct_recursion_is_a_spanned_error() {
    let err = parse_err("t\n.subckt a p\nx1 p a\n.ends\nX1 n a");
    assert_eq!(
        err.to_string(),
        "deck:5:1: recursive subcircuit instantiation: a -> a
    5 | X1 n a
      | ^^
      = note: in X1.x1 (.subckt 'a'), expanded from deck:3:6: x1 p a
      = help: a .subckt body cannot instantiate itself, directly or through other subcircuits"
    );
}

/// Mutual recursion (a -> b -> a) is caught through the stack too.
#[test]
fn mutual_recursion_is_a_spanned_error() {
    let err = parse_err("t\n.subckt a p\nx1 p b\n.ends\n.subckt b p\nx1 p a\n.ends\nX1 n a");
    assert_eq!(
        err.to_string(),
        "deck:8:1: recursive subcircuit instantiation: a -> b -> a
    8 | X1 n a
      | ^^
      = note: in X1.x1.x1 (.subckt 'b'), expanded from deck:6:6: x1 p a
      = help: a .subckt body cannot instantiate itself, directly or through other subcircuits"
    );
}

// --------------------------------------- flattened-card diagnostics

/// A name collision between two cards of the same expansion reports
/// the *dotted* element name and anchors at the instance card, with
/// the subckt-local location in the note.
#[test]
fn duplicate_element_inside_a_body_reports_the_dotted_path() {
    let err = parse_err("t\n.subckt inv out in\nR1 out in 1k\nR1 out in 2k\n.ends\nX1 a b inv");
    assert_eq!(
        err.to_string(),
        "deck:6:1: duplicate element name 'X1.R1' (first defined on line 6)
    6 | X1 a b inv
      | ^^
      = note: in X1 (.subckt 'inv'), expanded from deck:4:1: R1 out in 2k"
    );
}

/// Probe resolution sees flattened dotted nodes; a near-miss (wrong
/// case here) lists them and suggests the exact spelling.
#[test]
fn dotted_probe_suggests_the_full_instance_path() {
    let err = parse_err(
        "t\n.subckt inv out in vdd\nR1 out in 1k\nC1 out mid 1f\n.ends\n\
         V1 vdd 0 DC 1\nV2 a 0 DC 1\nX3 b a vdd inv\n.op\n.print op v(x3.mid)",
    );
    assert_eq!(
        err.to_string(),
        "deck:10:13: no node named 'x3.mid'; available nodes: vdd, a, b, X3.mid
   10 | .print op v(x3.mid)
      |             ^^^^^^
      = help: did you mean 'X3.mid'?"
    );
}

// ------------------------------------------------- parameter scoping

/// Three levels of shadowing: the global `.param`, a definition
/// default, and an instance override each win at the right level, and
/// sibling instances do not leak overrides into each other.
#[test]
fn param_shadowing_resolves_per_instance() {
    let deck = parse_ok(
        "t
.param cl = 1f
.subckt leaf out cl=2f
C1 out 0 {cl}
.ends
.subckt mid out cl=3f
x1 out leaf cl={cl}
x2 out leaf
.ends
V1 top 0 DC 1
X1 top mid cl=4f
X2 top mid
X3 top leaf
C9 top 0 {cl}",
    );
    let farads: Vec<(String, f64)> = deck
        .elements
        .iter()
        .filter_map(|e| match e {
            ElementCard::Capacitor(c) => Some((c.name.clone(), c.farads)),
            _ => None,
        })
        .collect();
    let get = |name: &str| {
        farads
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no capacitor named {name}"))
            .1
    };
    // X1 overrides mid's cl=4f; mid forwards its cl to x1's leaf.
    assert_eq!(get("X1.x1.C1"), 4e-15);
    // …but x2 instantiates leaf without an override: leaf default.
    assert_eq!(get("X1.x2.C1"), 2e-15);
    // X2 leaves mid at its default 3f, forwarded to x1. (`3f` is the
    // suffix product 3.0 * 1e-15, one ulp off the literal 3e-15.)
    assert_eq!(get("X2.x1.C1"), 3.0 * 1e-15);
    assert_eq!(get("X2.x2.C1"), 2e-15);
    // A bare leaf instance uses the definition default, not the global.
    assert_eq!(get("X3.C1"), 2e-15);
    // The global .param still governs top-level cards.
    assert_eq!(get("C9"), 1e-15);
}

/// Definition defaults may reference globals and earlier defaults.
#[test]
fn defaults_evaluate_in_the_global_environment() {
    let deck = parse_ok(
        "t
.param unit = 1f
.subckt leaf out cl={3*unit}
C1 out 0 {cl}
.ends
V1 top 0 DC 1
X1 top leaf",
    );
    let ElementCard::Capacitor(c) = &deck.elements[1] else {
        panic!("expected the flattened capacitor after V1");
    };
    assert_eq!(c.name, "X1.C1");
    assert_eq!(c.farads, 3.0 * 1e-15);
}

// ------------------------------------------------- node rewriting

/// Ground stays global, ports bind to the caller's nodes, and locals
/// get the dotted instance prefix — through two levels of nesting.
#[test]
fn node_rewriting_through_nested_instances() {
    let deck = parse_ok(
        "t
.subckt leaf p
R1 p mid 1k
R2 mid 0 1k
.ends
.subckt branch q
x1 q leaf
.ends
V1 top 0 DC 1
X1 top branch",
    );
    let cards: Vec<(String, Vec<String>)> = deck
        .elements
        .iter()
        .map(|e| {
            (
                e.name().to_string(),
                e.nodes().iter().map(|n| n.to_string()).collect(),
            )
        })
        .collect();
    assert_eq!(
        cards,
        vec![
            ("V1".to_string(), vec!["top".to_string(), "0".to_string()]),
            (
                "X1.x1.R1".to_string(),
                vec!["top".to_string(), "X1.x1.mid".to_string()]
            ),
            (
                "X1.x1.R2".to_string(),
                vec!["X1.x1.mid".to_string(), "0".to_string()]
            ),
        ]
    );
}

// ------------------------------------------------------- round-trip

/// A hierarchical deck serialises back to text that reparses into an
/// equal `Deck` — definitions, instances and flattened elements alike.
#[test]
fn hierarchical_decks_round_trip_through_display() {
    let text = "roundtrip
.param cl = 1f
.subckt inv out in vdd cl=2f
R1 out in 1k
C1 out 0 {cl}
.ends inv
.subckt buf out in vdd
x1 m in vdd inv
x2 out m vdd inv cl=4f
.ends buf
V1 vdd 0 DC 0.9
V2 in 0 DC 0
X1 out in vdd buf
R9 out 0 10k
.op
.print op v(out) v(X1.m)
";
    let deck = parse_ok(text);
    let rendered = deck.to_string();
    let reparsed = parse_ok(&rendered);
    assert_eq!(deck, reparsed, "serialise -> reparse must be identity");
    // And the rendering itself is stable (idempotent round-trip).
    assert_eq!(rendered, reparsed.to_string());
}
