//! AC small-signal acceptance tests.
//!
//! * A single-pole RC low-pass must match the analytic transfer
//!   function to ≤ 1e-9 relative in magnitude and ≤ 1e-9 rad in phase
//!   across a 6-decade sweep.
//! * A CNFET inverter's low-frequency gain must match the VTC slope at
//!   the bias point (finite-differenced `dc_sweep`) within 1%.
//! * The sparse pattern must be ordered once per sweep and only
//!   re-valued per frequency point (factorisation counters).

use cntfet_circuit::prelude::*;
use cntfet_core::CompactCntFet;
use cntfet_reference::DeviceParams;
use std::sync::{Arc, OnceLock};

fn model() -> Arc<CompactCntFet> {
    static MODEL: OnceLock<Arc<CompactCntFet>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).expect("model 2 fit"))
    }))
}

#[test]
fn rc_lowpass_matches_analytic_over_six_decades() {
    let (r, c) = (1e3, 1e-9); // corner ≈ 159 kHz, well inside the sweep
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.5));
    ckt.add(Resistor::new("R1", vin, out, r));
    ckt.add(Capacitor::new("C1", out, Circuit::ground(), c));

    let mut sim = Simulator::new(ckt);
    // 6 decades: 100 Hz … 100 MHz, 20 points per decade.
    let res = sim.ac(&AcSweep::decade("V1", 1e2, 1e8, 20)).expect("ac");
    assert!(res.len() > 120, "6 decades at 20 ppd: {} points", res.len());
    let mag = res.magnitude("out").expect("probe");
    let phase = res.phase("out").expect("probe");
    for ((&f, &m), &p) in res.frequencies().iter().zip(&mag).zip(&phase) {
        let omega = 2.0 * std::f64::consts::PI * f;
        let wrc = omega * r * c;
        let m_expect = 1.0 / (1.0 + wrc * wrc).sqrt();
        let p_expect = -wrc.atan();
        assert!(
            (m - m_expect).abs() <= 1e-9 * m_expect,
            "f = {f:.3e} Hz: |H| = {m:.15e} vs analytic {m_expect:.15e}"
        );
        assert!(
            (p - p_expect).abs() <= 1e-9,
            "f = {f:.3e} Hz: arg H = {p:.15e} vs analytic {p_expect:.15e}"
        );
    }
    // The dB accessor agrees with the linear magnitude.
    let db = res.magnitude_db("out").expect("probe");
    for (&m, &d) in mag.iter().zip(&db) {
        assert!((d - 20.0 * m.log10()).abs() < 1e-9);
    }
}

#[test]
fn cnfet_inverter_low_frequency_gain_matches_vtc_slope() {
    let tech = CntTechnology::symmetric(model(), 0.8);
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in");
    let out = c.node("out");
    c.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    c.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
    add_inverter(&mut c, &tech, "inv", vin, out, vdd);

    let mut sim = Simulator::new(c);
    // Locate the switching threshold from a coarse VTC.
    let vtc = sim
        .dc_sweep(&SweepSpec::linspace("VIN", 0.0, tech.vdd, 33))
        .expect("vtc");
    let outs = vtc.voltage("out").expect("probe");
    let mid = tech.vdd / 2.0;
    let bias = vtc
        .values
        .iter()
        .zip(outs)
        .min_by(|(_, a), (_, b)| {
            (*a - mid)
                .abs()
                .partial_cmp(&(*b - mid).abs())
                .expect("finite")
        })
        .map(|(&v, _)| v)
        .expect("non-empty VTC");

    // Small-signal gain from AC at a frequency far below the RC corner
    // of the device capacitances (≈ GHz for µS conductances and aF-fF
    // capacitances): 1 Hz is deep in the flat band.
    sim.set_source("VIN", bias).expect("bias");
    let ac = sim.ac(&AcSweep::list("VIN", vec![1.0])).expect("ac");
    let ac_gain = ac.magnitude("out").expect("probe")[0];

    // Reference: central finite difference of the VTC at the bias point.
    let h = 1e-5;
    let fd = sim
        .dc_sweep(&SweepSpec::new("VIN", vec![bias - h, bias + h]))
        .expect("fd");
    let v = fd.voltage("out").expect("probe");
    let fd_gain = ((v[1] - v[0]) / (2.0 * h)).abs();

    assert!(
        fd_gain > 1.0,
        "an inverter at threshold must amplify: VTC slope {fd_gain}"
    );
    assert!(
        (ac_gain - fd_gain).abs() <= 0.01 * fd_gain,
        "AC gain {ac_gain} vs VTC slope {fd_gain} (bias {bias} V): \
         disagreement exceeds 1%"
    );
    // Low-frequency phase of an inverting stage is 180°.
    let phase = ac.phase_deg("out").expect("probe")[0];
    assert!(
        (phase.abs() - 180.0).abs() < 1.0,
        "inverting stage phase {phase}° should be ±180°"
    );
}

#[test]
fn cnfet_chain_pattern_ordered_once_per_sweep() {
    let tech = CntTechnology::symmetric(model(), 0.8);
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in");
    c.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    c.add(VoltageSource::dc(
        "VIN",
        vin,
        Circuit::ground(),
        0.5 * tech.vdd,
    ));
    add_inverter_chain(&mut c, &tech, "chain", vin, 8, vdd);

    let mut sim = Simulator::new(c);
    let res = sim
        .ac(&AcSweep::decade("VIN", 1e3, 1e10, 5))
        .expect("chain ac");
    let s = res.stats();
    assert_eq!(s.symbolic_factorizations, 1, "one ordering per sweep");
    assert_eq!(
        s.refactorizations + s.partial_refactorizations,
        s.frequencies as u64 - 1,
        "all later frequencies re-value the frozen pattern"
    );
    assert!(
        s.partial_refactorizations > 0,
        "capacitive slots drive the partial path"
    );
    // A second sweep on the same session orders its own plan once more
    // (fresh complex solver per sweep) but reuses the engine's real
    // Jacobian pattern: no extra pattern builds beyond the initial
    // DC + transient-stencil pair.
    let builds_before = sim.pattern_builds();
    let res2 = sim
        .ac(&AcSweep::decade("VIN", 1e3, 1e10, 5))
        .expect("second ac");
    assert_eq!(res2.stats().symbolic_factorizations, 1);
    assert_eq!(sim.pattern_builds(), builds_before, "engine caches reused");
    // The first stage sits at mid-rail (active region): its gain must
    // roll off capacitively well past the aF-load corner (~GHz).
    let mag = res.magnitude("chain_c0").expect("probe");
    assert!(
        *mag.last().expect("non-empty") < 0.7 * mag[0],
        "expected roll-off: {:.3} at 1 kHz vs {:.3} at 10 GHz",
        mag[0],
        mag.last().unwrap()
    );
}
