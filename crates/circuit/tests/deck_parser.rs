//! Deck parser edge cases: malformed input of every card kind must
//! fail with a *spanned*, suggestion-bearing diagnostic, and valid
//! decks must round-trip through the serialiser unchanged.
//!
//! The snapshot tests at the bottom pin the exact rendered error text —
//! line numbers, caret position and help line — so diagnostic quality
//! is a regression-tested feature, not an accident.

use cntfet_circuit::deck::{Deck, DeckError};
use cntfet_circuit::element::Waveform;

fn parse_err(deck: &str) -> DeckError {
    Deck::parse(deck).expect_err("deck should not parse")
}

// ---------------------------------------------------------------- cards

#[test]
fn unknown_element_card_is_rejected() {
    let err = parse_err("title\nQ1 a b c");
    assert!(err.message.contains("unknown card 'Q1'"), "{err}");
    assert!(err.message.contains("R, C, V, I or M"), "{err}");
    assert_eq!(err.span.unwrap().line, 2);
}

#[test]
fn unknown_directive_suggests_the_nearest() {
    let err = parse_err("title\n.tram 1n 1u");
    assert!(err.message.contains("unknown directive '.tram'"), "{err}");
    assert_eq!(err.help.as_deref(), Some("did you mean '.tran'?"));
}

#[test]
fn duplicate_element_names_point_at_both_lines() {
    let err = parse_err("t\nR1 a b 1k\nR1 b 0 2k");
    assert!(
        err.message
            .contains("duplicate element name 'R1' (first defined on line 2)"),
        "{err}"
    );
    assert_eq!(err.span.unwrap().line, 3);
}

#[test]
fn duplicate_model_and_param_names_are_rejected() {
    let err = parse_err("t\n.model m1 cnfet\n.model m1 cnfet polarity=p");
    assert!(err.message.contains("duplicate model name 'm1'"), "{err}");
    let err = parse_err("t\n.param x = 1\n.param x = 2");
    assert!(
        err.message.contains("duplicate parameter name 'x'"),
        "{err}"
    );
}

#[test]
fn unknown_model_reference_suggests_the_nearest() {
    let err = parse_err("t\n.model nfet cnfet\nM1 d g 0 nfett");
    assert!(err.message.contains("no model named 'nfett'"), "{err}");
    assert!(err.message.contains("available models: nfet"), "{err}");
    assert_eq!(err.help.as_deref(), Some("did you mean 'nfet'?"));
}

#[test]
fn model_reference_without_any_models() {
    let err = parse_err("t\nM1 d g 0 nfet");
    assert!(err.message.contains("no .model cards"), "{err}");
}

#[test]
fn forward_model_references_are_fine() {
    let deck = Deck::parse("t\nM1 d g 0 late L=50n\n.model late cnfet polarity=p").unwrap();
    assert_eq!(deck.models.len(), 1);
    assert_eq!(deck.elements.len(), 1);
}

#[test]
fn negative_and_zero_values_are_rejected_where_physical() {
    let err = parse_err("t\nR1 a b -5");
    assert!(err.message.contains("resistance must be positive"), "{err}");
    let err = parse_err("t\nC1 a b 0");
    assert!(
        err.message.contains("capacitance must be positive"),
        "{err}"
    );
    let err = parse_err("t\n.model m cnfet\nM1 d g 0 m L=0");
    assert!(
        err.message.contains("channel length must be positive"),
        "{err}"
    );
}

#[test]
fn voltage_source_needs_a_drive() {
    let err = parse_err("t\nV1 a 0");
    assert!(err.message.contains("needs a drive"), "{err}");
    assert!(err.help.as_deref().unwrap().contains("PULSE"), "{err}");
    // …but an AC-only source defaults to 0 V DC, as in SPICE.
    let deck = Deck::parse("t\nV1 a 0 AC 1\nR1 a 0 1k\n.ac lin 1 1k 1k").unwrap();
    match &deck.elements[0] {
        cntfet_circuit::deck::ElementCard::Voltage(v) => {
            assert_eq!(v.waveform, Waveform::Dc(0.0));
            assert!(v.ac_stimulus);
        }
        other => panic!("expected a voltage card, got {other:?}"),
    }
}

#[test]
fn pulse_takes_exactly_seven_arguments() {
    let err = parse_err("t\nV1 a 0 PULSE(0 1 0 1n 1n 5n)");
    assert!(err.message.contains("exactly 7 arguments, got 6"), "{err}");
    let err = parse_err("t\nV1 a 0 PULSE(0 1 0 1n 1n 5n 10n");
    assert!(err.message.contains("unterminated PULSE"), "{err}");
}

#[test]
fn non_unit_ac_magnitude_is_rejected() {
    let err = parse_err("t\nV1 a 0 DC 1 AC 2\n.ac dec 5 1k 1meg");
    assert!(err.message.contains("only unit AC stimuli"), "{err}");
}

// ------------------------------------------------------------- numbers

#[test]
fn spice_suffixes_scale_element_values() {
    let deck =
        Deck::parse("suffixes\nR1 a b 1k\nR2 b c 10meg\nC1 c 0 2.5u\nC2 c 0 100nF\nV1 a 0 DC 1m")
            .unwrap();
    use cntfet_circuit::deck::ElementCard as E;
    let ohm = |card: &E| match card {
        E::Resistor(r) => r.ohms,
        _ => unreachable!(),
    };
    let farad = |card: &E| match card {
        E::Capacitor(c) => c.farads,
        _ => unreachable!(),
    };
    assert_eq!(ohm(&deck.elements[0]), 1e3);
    assert_eq!(ohm(&deck.elements[1]), 10.0 * 1e6);
    assert_eq!(farad(&deck.elements[2]), 2.5 * 1e-6);
    assert_eq!(farad(&deck.elements[3]), 100.0 * 1e-9);
}

#[test]
fn malformed_numbers_are_spanned_errors() {
    for bad in ["1k2", "--3", "1.2.3", "1e+"] {
        let err = parse_err(&format!("t\nR1 a b {bad}"));
        assert!(
            err.message.contains("is not a number or known parameter"),
            "{bad}: {err}"
        );
        let span = err.span.unwrap();
        assert_eq!((span.line, span.col), (2, 8), "{bad}");
    }
}

#[test]
fn bare_words_suggest_nearby_params() {
    let err = parse_err("t\n.param rload = 1k\nR1 a b rLoad2");
    assert_eq!(err.help.as_deref(), Some("did you mean 'rload'?"));
}

// ------------------------------------------------------------ analyses

#[test]
fn dc_sweep_of_unknown_source_lists_candidates() {
    let err = parse_err("t\nVIN in 0 DC 0\nR1 in 0 1k\n.dc VINN 0 1 0.1");
    assert!(
        err.message
            .contains("no source named 'VINN'; available sources: VIN"),
        "{err}"
    );
    assert_eq!(err.help.as_deref(), Some("did you mean 'VIN'?"));
}

#[test]
fn dc_step_must_move_toward_stop() {
    let err = parse_err("t\nV1 a 0 DC 0\n.dc V1 0 1 -0.1");
    assert!(err.message.contains("cannot move the sweep"), "{err}");
    let err = parse_err("t\nV1 a 0 DC 0\n.dc V1 0 1 0");
    assert!(err.message.contains("cannot move the sweep"), "{err}");
    // Downward sweeps with negative steps are fine.
    let deck = Deck::parse("t\nV1 a 0 DC 0\nR1 a 0 1k\n.dc V1 1 0 -0.5").unwrap();
    match &deck.analyses[0] {
        cntfet_circuit::deck::AnalysisCard::Dc(dc) => {
            assert_eq!(dc.values(), vec![1.0, 0.5, 0.0]);
        }
        other => panic!("expected .dc, got {other:?}"),
    }
}

#[test]
fn print_of_unknown_node_lists_candidates() {
    let err = parse_err("t\nV1 in 0 DC 1\nR1 in out 1k\n.op\n.print v(ouy)");
    assert!(
        err.message
            .contains("no node named 'ouy'; available nodes: in, out"),
        "{err}"
    );
    assert_eq!(err.help.as_deref(), Some("did you mean 'out'?"));
}

#[test]
fn ac_without_stimulus_flag_is_rejected_with_help() {
    let err = parse_err("t\nV1 in 0 DC 1\nR1 in 0 1k\n.ac dec 5 1k 1meg");
    assert!(
        err.message.contains("no source card carries the AC flag"),
        "{err}"
    );
    assert!(
        err.help.as_deref().unwrap().contains("append `AC 1`"),
        "{err}"
    );
}

#[test]
fn ambiguous_ac_stimulus_is_rejected() {
    let err = parse_err("t\nV1 in 0 DC 1 AC 1\nI1 in 0 DC 1m AC\nR1 in 0 1k\n.ac dec 5 1k 1meg");
    assert!(err.message.contains("ambiguous .ac stimulus"), "{err}");
    assert!(err.message.contains("V1, I1"), "{err}");
}

#[test]
fn ac_frequency_ranges_are_parse_errors() {
    // Inverted, zero and non-finite grids must fail at parse time
    // (so `cntfet-sim --check` catches them), not when the sweep runs.
    let err = parse_err("t\nV1 in 0 DC 1 AC 1\nR1 in 0 1k\n.ac dec 5 1meg 1k");
    assert!(err.message.contains("f_stop > f_start"), "{err}");
    let err = parse_err("t\nV1 in 0 DC 1 AC 1\nR1 in 0 1k\n.ac dec 5 0 1k");
    assert!(err.message.contains("positive start frequency"), "{err}");
    let err = parse_err("t\nV1 in 0 DC 1 AC 1\nR1 in 0 1k\n.ac lin 5 1meg 1k");
    assert!(err.message.contains("f_stop >= f_start"), "{err}");
    // A single-point linear grid at one frequency is fine.
    assert!(Deck::parse("t\nV1 in 0 DC 1 AC 1\nR1 in 0 1k\n.ac lin 1 1k 1k").is_ok());
}

#[test]
fn continuation_line_errors_render_their_own_line() {
    // The bad value sits on the `+` continuation line; the diagnostic
    // must show that line's text with the caret under the value.
    let err = parse_err("t\nR1 a b\n+ -5");
    assert_eq!(
        err.to_string(),
        "deck:3:3: resistance must be positive, got -5
    3 | + -5
      |   ^^"
    );
}

#[test]
fn ic_targets_are_validated() {
    let err = parse_err("t\nV1 in 0 DC 1\nR1 in out 1k\n.tran 1u\n.ic v(outt)=0.5");
    assert!(err.message.contains("no node named 'outt'"), "{err}");
    assert_eq!(err.help.as_deref(), Some("did you mean 'out'?"));
}

// ------------------------------------------------------- params / expr

#[test]
fn param_expressions_evaluate_with_suffixes_and_precedence() {
    let deck =
        Deck::parse("t\n.param r = 2 * 1k\n.param half = r / (2 + 2)\nR1 a b {half}\nR2 a b half")
            .unwrap();
    assert_eq!(deck.params[0].value, 2e3);
    assert_eq!(deck.params[1].value, 500.0);
    use cntfet_circuit::deck::ElementCard as E;
    for card in &deck.elements {
        match card {
            E::Resistor(r) => assert_eq!(r.ohms, 500.0, "both spellings resolve"),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn param_division_by_zero_is_an_error() {
    let err = parse_err("t\n.param bad = 1 / (2 - 2)");
    assert!(err.message.contains("division by zero"), "{err}");
}

#[test]
fn param_forward_reference_is_an_error() {
    let err = parse_err("t\n.param a = b + 1\n.param b = 2");
    assert!(err.message.contains("unknown parameter 'b'"), "{err}");
}

// ------------------------------------------------------ deck structure

#[test]
fn empty_decks_are_errors() {
    for text in ["", "\n", "   \n\t\n"] {
        let err = parse_err(text);
        assert!(err.message.contains("empty deck"), "{text:?}: {err}");
    }
    // A title alone is a valid (if useless) deck.
    let deck = Deck::parse("just a title").unwrap();
    assert!(deck.elements.is_empty() && deck.analyses.is_empty());
}

#[test]
fn empty_titles_round_trip_without_eating_a_card() {
    // The first line is the title unconditionally: a comment-emptied
    // (or blank) title must not promote the first card to the title
    // when the serialised text is reparsed.
    let deck =
        Deck::parse("; no real title\nV1 in 0 DC 2\nR1 in out 1k\nR2 out 0 1k\n.op").unwrap();
    assert_eq!(deck.title, "");
    assert_eq!(deck.elements.len(), 3);
    let reparsed = Deck::parse(&deck.to_text()).unwrap();
    assert_eq!(deck, reparsed, "V1 must survive the round trip");
    // A deck left with the Default empty title serialises and reparses.
    let blank_first = Deck::parse("\nR1 a 0 1k").unwrap();
    assert_eq!(blank_first.title, "");
    assert_eq!(blank_first.elements.len(), 1);
}

#[test]
fn end_card_stops_parsing() {
    let deck = Deck::parse("t\nR1 a b 1k\n.end\ngarbage that would not parse").unwrap();
    assert_eq!(deck.elements.len(), 1);
}

#[test]
fn continuations_and_comments_interleave() {
    let deck = Deck::parse(
        "t ; title comment\n* leading comment\nV1 a 0 PULSE(0 1 ; comment\n+ 0 1n 1n\n+ 5n 10n)\nR1 a 0 1k",
    )
    .unwrap();
    assert_eq!(deck.elements.len(), 2);
}

// ---------------------------------------------------------- round-trip

#[test]
fn serialised_decks_reparse_equal() {
    let text = "round trip
.param vdd = 0.8
.model nfet cnfet polarity=n ef=-0.35 temp=350 l=80n
.model pfet cnfet polarity=p
VDD vdd 0 DC {vdd}
VIN in 0 SIN(0.4 0.1 1meg) AC 1
MP out in vdd pfet L=120n
MN out in 0 nfet
CL out 0 1f
I1 0 out DC 1u
RL out 0 100k
.op
.dc VIN 0 {vdd} 0.1
.tran 1n 10n
.ac dec 5 1k 1g
.ic v(out)=0.4
.print dc v(out)
.print ac v(out) v(in)
.end";
    let deck = Deck::parse(text).unwrap();
    let reparsed = Deck::parse(&deck.to_text()).unwrap();
    assert_eq!(deck, reparsed, "serialise → reparse is identity");
    // And a second serialisation is a fixpoint.
    assert_eq!(deck.to_text(), reparsed.to_text());
}

// ----------------------------------------------------------- snapshots

/// Exact rendered diagnostics: these strings are the product.
#[test]
fn error_rendering_snapshots() {
    let err = parse_err("snapshot deck\n.model nfet cnfet\nM1 out in 0 nfett L=100n");
    assert_eq!(
        err.to_string(),
        "deck:3:13: no model named 'nfett'; available models: nfet
    3 | M1 out in 0 nfett L=100n
      |             ^^^^^
      = help: did you mean 'nfet'?"
    );

    let err = parse_err("snapshot deck\nR1 a b 1k2");
    assert_eq!(
        err.to_string(),
        "deck:2:8: expected resistance, but '1k2' is not a number or known parameter
    2 | R1 a b 1k2
      |        ^^^"
    );

    let err = parse_err("snapshot deck\nVIN in 0 DC 0\nR1 in out 1k\n.dc VINN 0 1 0.1");
    assert_eq!(
        err.to_string(),
        "deck:4:5: no source named 'VINN'; available sources: VIN
    4 | .dc VINN 0 1 0.1
      |     ^^^^
      = help: did you mean 'VIN'?"
    );
}
