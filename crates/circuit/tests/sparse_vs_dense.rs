//! Dense-vs-sparse equivalence of the MNA engine.
//!
//! The sparse path (pattern-cached assembly + fill-reusing sparse LU)
//! must be a pure performance change: on any netlist the node voltages
//! it produces agree with the dense path to ≤ 1e-10, and on a large
//! inverter chain its factorisation performs strictly fewer operations.

use cntfet_circuit::element::AnalysisMode;
use cntfet_circuit::prelude::*;
use cntfet_circuit::transient::TransientOptions;
use cntfet_core::CompactCntFet;
use cntfet_numerics::sparse::{dense_lu_ops, DenseLuSolver, LinearSolver, SparseLuSolver};
use cntfet_reference::DeviceParams;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn dense_opts() -> NewtonOptions {
    NewtonOptions {
        solver: SolverKind::Dense,
        ..NewtonOptions::default()
    }
}

fn sparse_opts() -> NewtonOptions {
    NewtonOptions {
        solver: SolverKind::Sparse,
        ..NewtonOptions::default()
    }
}

/// Shared compact model — fitted once for the whole test binary.
fn model() -> Arc<CompactCntFet> {
    static MODEL: OnceLock<Arc<CompactCntFet>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).expect("model 2 fit"))
    }))
}

fn max_node_voltage_diff(c: &Circuit, a: &Solution, b: &Solution) -> f64 {
    (0..c.node_count())
        .map(|i| (a.x[i] - b.x[i]).abs())
        .fold(0.0f64, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised linear ladder networks (V and I sources, resistor
    /// rungs and cross-links): dense and sparse node voltages agree to
    /// ≤ 1e-10.
    #[test]
    fn linear_netlists_agree(
        rungs in proptest::collection::vec(100.0f64..1e5, 3..12),
        cross in proptest::collection::vec(1e3f64..1e6, 0..6),
        vsrc in -5.0f64..5.0,
        isrc in -1e-3f64..1e-3,
    ) {
        let mut c = Circuit::new();
        let top = c.node("top");
        c.add(VoltageSource::dc("V1", top, Circuit::ground(), vsrc));
        let mut prev = top;
        let mut nodes = vec![top];
        for (i, &r) in rungs.iter().enumerate() {
            let nxt = c.node(&format!("n{i}"));
            c.add(Resistor::new(&format!("R{i}"), prev, nxt, r));
            nodes.push(nxt);
            prev = nxt;
        }
        c.add(Resistor::new("Rend", prev, Circuit::ground(), 1e4));
        // Cross-links make the pattern less trivially banded.
        for (k, &r) in cross.iter().enumerate() {
            let a = nodes[k % nodes.len()];
            let b = nodes[(k * 3 + 1) % nodes.len()];
            if a != b {
                c.add(Resistor::new(&format!("Rx{k}"), a, b, r));
            }
        }
        c.add(CurrentSource::dc("I1", Circuit::ground(), prev, isrc));
        let sd = NewtonEngine::new(dense_opts())
            .dc_operating_point(&c, None)
            .expect("dense dc");
        let ss = NewtonEngine::new(sparse_opts())
            .dc_operating_point(&c, None)
            .expect("sparse dc");
        let diff = max_node_voltage_diff(&c, &sd, &ss);
        prop_assert!(diff <= 1e-10, "dense vs sparse node voltages differ by {diff}");
    }

    /// Randomised CNFET inverter chains with resistive loads: the two
    /// backends solve the same nonlinear system and their node voltages
    /// agree to ≤ 1e-10.
    #[test]
    fn cnfet_netlists_agree(
        stages in 1usize..4,
        vdd in 0.6f64..0.9,
        vin_frac in 0.0f64..1.0,
        load in 5e4f64..5e5,
    ) {
        let tech = CntTechnology::symmetric(model(), vdd);
        let mut c = Circuit::new();
        let vdd_node = c.node("vdd");
        let vin = c.node("in");
        c.add(VoltageSource::dc("VDD", vdd_node, Circuit::ground(), vdd));
        c.add(VoltageSource::dc("VIN", vin, Circuit::ground(), vin_frac * vdd));
        let outs = add_inverter_chain(&mut c, &tech, "chain", vin, stages, vdd_node);
        // A resistive load at every stage keeps every node's conductance
        // well above the convergence-tolerance noise floor, so the
        // 1e-10 agreement bound is meaningful rather than lucky.
        for (i, &o) in outs.iter().enumerate() {
            c.add(Resistor::new(&format!("RL{i}"), o, Circuit::ground(), load));
        }
        // Tight tolerances shrink the window in which the two backends
        // may stop on different iterates.
        let tight_dense = NewtonOptions {
            node_current_tol: 1e-16,
            extra_row_tol: 1e-19,
            ..dense_opts()
        };
        let tight_sparse = NewtonOptions {
            node_current_tol: 1e-16,
            extra_row_tol: 1e-19,
            ..sparse_opts()
        };
        let sd = NewtonEngine::new(tight_dense)
            .dc_operating_point(&c, None)
            .expect("dense dc");
        let ss = NewtonEngine::new(tight_sparse)
            .dc_operating_point(&c, None)
            .expect("sparse dc");
        let diff = max_node_voltage_diff(&c, &sd, &ss);
        prop_assert!(diff <= 1e-10, "dense vs sparse node voltages differ by {diff}");
    }

    /// Transient backward-Euler on random RC ladders: waveforms from the
    /// two backends agree to ≤ 1e-10 at every stored time point.
    #[test]
    fn rc_transients_agree(
        rs in proptest::collection::vec(1e2f64..1e4, 2..6),
        c_f in 1e-12f64..1e-10,
    ) {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            ckt.add(VoltageSource::with_waveform(
                "V1",
                vin,
                Circuit::ground(),
                Waveform::Pulse {
                    low: 0.0,
                    high: 1.0,
                    delay: 0.0,
                    rise: 1e-10,
                    width: 1.0,
                    fall: 1e-10,
                    period: 0.0,
                },
            ));
            let mut prev = vin;
            for (i, &r) in rs.iter().enumerate() {
                let nxt = ckt.node(&format!("n{i}"));
                ckt.add(Resistor::new(&format!("R{i}"), prev, nxt, r));
                ckt.add(Capacitor::new(&format!("C{i}"), nxt, Circuit::ground(), c_f));
                prev = nxt;
            }
            ckt
        };
        let tau = rs.iter().sum::<f64>() * c_f;
        let (t_stop, dt) = (2.0 * tau, tau / 50.0);
        let spec = |newton: NewtonOptions| {
            TransientSpec::fixed(t_stop, dt).with_options(TransientOptions {
                newton,
                integrator: TimeIntegrator::BackwardEuler,
                ..TransientOptions::default()
            })
        };
        let td = Simulator::new(build())
            .transient(&spec(dense_opts()))
            .expect("dense tran")
            .result;
        let ts = Simulator::new(build())
            .transient(&spec(sparse_opts()))
            .expect("sparse tran")
            .result;
        prop_assert_eq!(td.time.len(), ts.time.len());
        for (xd, xs) in td.states.iter().zip(&ts.states) {
            for (a, b) in xd.iter().zip(xs) {
                prop_assert!((a - b).abs() <= 1e-10, "{a} vs {b}");
            }
        }
    }
}

/// Acceptance criterion of the sparse engine: on a 64-stage CNFET
/// inverter chain the sparse factorisation performs strictly fewer
/// operations than the dense O(n³) LU — measured by the solver's own
/// multiply–accumulate counter, not assumed.
#[test]
fn sparse_factorisation_beats_dense_ops_on_64_stage_chain() {
    let tech = CntTechnology::symmetric(model(), 0.8);
    let mut c = Circuit::new();
    let vdd_node = c.node("vdd");
    let vin = c.node("in");
    c.add(VoltageSource::dc(
        "VDD",
        vdd_node,
        Circuit::ground(),
        tech.vdd,
    ));
    c.add(VoltageSource::dc(
        "VIN",
        vin,
        Circuit::ground(),
        0.4 * tech.vdd,
    ));
    add_inverter_chain(&mut c, &tech, "chain", vin, 64, vdd_node);
    let n = c.unknown_count();
    assert!(n > 150, "64-stage chain must be a large system, got {n}");

    // One Jacobian, factored by both solver implementations.
    let mut engine = NewtonEngine::new(NewtonOptions::default());
    let x0 = vec![0.0; n];
    let (_, jac) = engine.assemble(&c, &x0, &AnalysisMode::Dc, 0.0);
    let jac = jac.clone();
    let mut dense = DenseLuSolver::new();
    let mut sparse = SparseLuSolver::new();
    dense.factor(&jac).expect("dense factor");
    sparse
        .factor(&jac)
        .expect("sparse factor (with pivot search)");
    assert_eq!(dense.factor_ops(), dense_lu_ops(n));
    assert!(
        sparse.factor_ops() < dense.factor_ops(),
        "sparse must do fewer ops: {} vs {}",
        sparse.factor_ops(),
        dense.factor_ops()
    );
    // The chain couples only neighbouring stages, so the win should be
    // dramatic, not marginal.
    assert!(
        sparse.factor_ops() * 10 < dense.factor_ops(),
        "expected >=10x fewer ops on a banded chain: {} vs {}",
        sparse.factor_ops(),
        dense.factor_ops()
    );
    // Refactorisation (the per-Newton-iteration path) replays the same
    // elimination: same op count, no pivot search.
    sparse.factor(&jac).expect("sparse refactor");
    assert_eq!(sparse.refactor_count(), 1);

    // And the two factorisations solve to the same answer.
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 5) as f64 - 2.0) * 1e-6).collect();
    let xd = dense.solve_factored(&rhs).expect("dense solve");
    let xs = sparse.solve_factored(&rhs).expect("sparse solve");
    let scale = cntfet_numerics::stats::inf_norm(&xd).max(1.0);
    for (a, b) in xd.iter().zip(&xs) {
        assert!(
            (a - b).abs() <= 1e-8 * scale,
            "factored solves disagree: {a} vs {b}"
        );
    }
}

/// Warm-started sweeps through the sparse engine match the dense path —
/// the whole VTC, not just one operating point.
#[test]
fn inverter_vtc_sweep_agrees_between_backends() {
    let tech = CntTechnology::symmetric(model(), 0.8);
    let build = || {
        let mut c = Circuit::new();
        let vdd_node = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc(
            "VDD",
            vdd_node,
            Circuit::ground(),
            tech.vdd,
        ));
        c.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
        add_inverter(&mut c, &tech, "inv", vin, out, vdd_node);
        c.add(Resistor::new("RL", out, Circuit::ground(), 1e5));
        (c, out)
    };
    let vals: Vec<f64> = (0..=16).map(|i| 0.8 * i as f64 / 16.0).collect();
    let (cd, out_d) = build();
    let (cs, out_s) = build();
    let spec = SweepSpec::new("VIN", vals);
    let rd = Simulator::with_options(cd, dense_opts())
        .dc_sweep(&spec)
        .expect("dense sweep");
    let rs = Simulator::with_options(cs, sparse_opts())
        .dc_sweep(&spec)
        .expect("sparse sweep");
    for (a, b) in rd.voltages(out_d).iter().zip(rs.voltages(out_s)) {
        assert!((a - b).abs() <= 1e-9, "VTC points differ: {a} vs {b}");
    }
}
