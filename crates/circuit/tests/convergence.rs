//! Property tests of the Newton convergence-robustness ladder
//! (voltage limiting → Armijo damping → pseudo-transient rescue).
//!
//! Two contracts, each over a randomised corpus:
//!
//! 1. **Hard stacks converge, and to the right answer**: a depth-2..4
//!    series CNFET stack whose internal nodes carry *no* capacitance,
//!    driven so the gate swings 0.4–0.9 V per fixed backward-Euler
//!    step, must converge — this is exactly the shape that used to
//!    limit-cycle — and its output waveform must agree to ≤ 1e-9 V
//!    with a reference run whose stack nodes carry a vanishingly
//!    small (0.1 yF) parasitic that regularises the system the way
//!    the old 0.2 fF workaround capacitor did.
//! 2. **The ladder is a bitwise no-op on healthy netlists**: on a
//!    random R/C/V/I + CNFET corpus that converges with plain damped
//!    Newton, running with limiting and PTC enabled (the defaults)
//!    produces the *bit-identical* float stream to running with them
//!    off, and the ladder counters stay at zero.

use cntfet_circuit::prelude::*;
use cntfet_circuit::transient::TransientOptions;
use cntfet_core::CompactCntFet;
use cntfet_reference::DeviceParams;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Shared compact model — fitted once for the whole test binary.
fn model() -> Arc<CompactCntFet> {
    static MODEL: OnceLock<Arc<CompactCntFet>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).expect("model 2 fit"))
    }))
}

/// Fixed transient step of the torture corpus (matches the `.tran`
/// card below): the PULSE rise time is derived from it so the input
/// moves a prescribed number of volts per accepted step.
const DT: f64 = 10e-12;

/// A depth-`depth` series n-stack inverter deck: `depth` parallel
/// p-FET pull-ups against `depth` series n-FETs, every gate tied to
/// the same steep PULSE input. The internal stack nodes `s1..` are
/// purely algebraic unless `parasitic` adds the tiny reference
/// capacitor to each.
fn stack_deck(depth: usize, vdd: f64, rise: f64, parasitic: bool) -> String {
    let mut deck = format!(
        "series-stack torture, depth {depth}\n\
         .model nfet cnfet polarity=n\n\
         .model pfet cnfet polarity=p\n\
         V1 vdd 0 DC {vdd}\n\
         VIN in 0 PULSE(0 {vdd} 0 {rise:e} {rise:e} 200p 1n)\n"
    );
    for i in 1..=depth {
        deck.push_str(&format!("mp{i} out in vdd pfet\n"));
    }
    for i in 1..=depth {
        let drain = if i == 1 {
            "out".to_string()
        } else {
            format!("s{}", i - 1)
        };
        let source = if i == depth {
            "0".to_string()
        } else {
            format!("s{i}")
        };
        deck.push_str(&format!("mn{i} {drain} in {source} nfet\n"));
    }
    deck.push_str("cl out 0 2f\n");
    if parasitic {
        for i in 1..depth {
            deck.push_str(&format!("cs{i} s{i} 0 1e-25\n"));
        }
    }
    deck.push_str(".tran 10p 400p\n.print tran v(out)\n.end\n");
    deck
}

fn run_deck(text: &str) -> Vec<Vec<f64>> {
    let deck = cntfet_circuit::deck::Deck::parse(text).expect("deck parses");
    let run = deck
        .run()
        .unwrap_or_else(|e| panic!("torture deck must converge:\n{e}"));
    let report = &run.reports[0];
    assert_eq!(report.columns[0], "time");
    assert_eq!(report.columns[1], "v(out)");
    report.rows.clone()
}

fn sparse_opts() -> NewtonOptions {
    NewtonOptions {
        solver: SolverKind::Sparse,
        ..NewtonOptions::default()
    }
}

/// The healthy corpus of contract 2: `stages` inverters, a resistor
/// ladder with capacitive rungs, and a small current disturbance —
/// swings stay well inside every device's limiter window.
fn mixed_netlist(stages: usize, rungs: &[f64], vdd: f64, isrc: f64) -> Circuit {
    let tech = CntTechnology::symmetric(model(), vdd);
    let mut c = Circuit::new();
    let vdd_node = c.node("vdd");
    let vin = c.node("in");
    c.add(VoltageSource::dc("VDD", vdd_node, Circuit::ground(), vdd));
    c.add(VoltageSource::with_waveform(
        "VIN",
        vin,
        Circuit::ground(),
        Waveform::Pulse {
            low: 0.05 * vdd,
            high: 0.95 * vdd,
            delay: 0.0,
            rise: 100e-12,
            width: 1.0,
            fall: 100e-12,
            period: 0.0,
        },
    ));
    let outs = add_inverter_chain(&mut c, &tech, "chain", vin, stages, vdd_node);
    let mut prev = *outs.last().expect("stages > 0");
    for (i, &r) in rungs.iter().enumerate() {
        let nxt = c.node(&format!("lad{i}"));
        c.add(Resistor::new(&format!("Rl{i}"), prev, nxt, r));
        c.add(Capacitor::new(
            &format!("Cl{i}"),
            nxt,
            Circuit::ground(),
            1e-15,
        ));
        prev = nxt;
    }
    c.add(Resistor::new("Rend", prev, Circuit::ground(), 1e5));
    c.add(CurrentSource::dc("I1", Circuit::ground(), prev, isrc));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contract 1: the bare algebraic stack converges and lands within
    /// 1e-9 V of the tiny-parasitic reference at every output sample.
    ///
    /// Depth stops at 3: at depth 4 the backward-Euler system itself
    /// loses its solution during the falling-edge settle — the fitted
    /// model's subthreshold leakage divider folds (the solution branch
    /// of the gmin-regularised system turns back at g ≈ 2e-7 S and no
    /// root exists below it), and the *reference* deck fails the exact
    /// same way, so there is nothing to converge to at any ladder rung.
    #[test]
    fn algebraic_stacks_converge_and_match_parasitic_reference(
        depth in 2usize..4,
        vdd in 0.6f64..0.9,
        swing in 0.4f64..0.9,
    ) {
        // Rise time that makes the input move `swing` volts per DT
        // step (capped at the full supply when swing > vdd).
        let rise = DT * vdd / swing;
        let bare = run_deck(&stack_deck(depth, vdd, rise, false));
        let reference = run_deck(&stack_deck(depth, vdd, rise, true));
        prop_assert_eq!(bare.len(), reference.len());
        for (rb, rr) in bare.iter().zip(&reference) {
            prop_assert!(rb[0] == rr[0], "time grids must match");
            prop_assert!(
                (rb[1] - rr[1]).abs() <= 1e-9,
                "t={}: bare {} vs reference {} differ by {}",
                rb[0], rb[1], rr[1], (rb[1] - rr[1]).abs()
            );
        }
    }

    /// Contract 2: with the ladder enabled (defaults) and disabled,
    /// a healthy netlist produces bit-identical waveforms, and the
    /// limiting/PTC counters stay at zero — the robustness stack
    /// never perturbs a solve that was already converging.
    #[test]
    fn ladder_is_bitwise_noop_on_converging_netlists(
        stages in 1usize..3,
        rungs in proptest::collection::vec(1e3f64..1e5, 2..4),
        vdd in 0.6f64..0.9,
        isrc in -1e-6f64..1e-6,
    ) {
        // Both runs start from the same converged DC operating point
        // (computed once, ladder off) so the comparison isolates the
        // transient stepping itself: the cold-start gmin ramp may
        // legitimately clamp wild first steps from all-zeros (an
        // intentional, documented difference), but from a converged
        // state the accepted time stepping must not change at all.
        let start = {
            let circuit = mixed_netlist(stages, &rungs, vdd, isrc);
            let opts = NewtonOptions {
                limiting: false,
                ptc: false,
                ..sparse_opts()
            };
            let mut sim = Simulator::with_options(circuit, opts);
            sim.op().expect("operating point").x().to_vec()
        };
        let run = |ladder: bool| {
            let circuit = mixed_netlist(stages, &rungs, vdd, isrc);
            let spec = TransientSpec::fixed(2e-9, 2e-11)
                .with_options(TransientOptions {
                    newton: NewtonOptions {
                        limiting: ladder,
                        ptc: ladder,
                        ..sparse_opts()
                    },
                    integrator: TimeIntegrator::BackwardEuler,
                    ..TransientOptions::default()
                })
                .with_initial(start.clone());
            Simulator::new(circuit).transient(&spec).expect("transient")
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(on.stats.limiter_clamps, 0);
        prop_assert_eq!(on.stats.ptc_steps, 0);
        prop_assert_eq!(on.stats.substeps, 0);
        prop_assert_eq!(on.stats.armijo_backtracks, off.stats.armijo_backtracks);
        prop_assert_eq!(on.result.time.len(), off.result.time.len());
        for (xo, xf) in on.result.states.iter().zip(&off.result.states) {
            for (a, b) in xo.iter().zip(xf) {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "ladder perturbed a converging solve: {} vs {}", a, b
                );
            }
        }
    }
}
