//! Integration tests for the static deck analyzer (`Deck::lint`) and
//! the structural-singularity guard it shares with the solver.
//!
//! The snapshot tests pin the *rendered* diagnostic of every lint code
//! — code, span, caret and help text — so a wording or renderer change
//! is a conscious edit here, not an accident. The property tests check
//! the two acceptance claims: structurally sound random networks pass
//! the guard and solve, injected isolation defects are rejected by name
//! *before* any factorization, and linting never panics on arbitrarily
//! mutated deck text.

use cntfet_circuit::deck::{Deck, LintOptions};
use cntfet_circuit::engine::{NewtonEngine, NewtonOptions};
use cntfet_circuit::error::CircuitError;
use cntfet_circuit::prelude::*;
use proptest::prelude::*;

fn report(text: &str) -> String {
    Deck::parse(text)
        .expect("snapshot deck parses")
        .lint(&LintOptions::default())
        .to_string()
}

#[test]
fn snapshot_e101_no_dc_path() {
    assert_eq!(
        report("t\nV1 in 0 DC 1\nR1 in 0 1k\nC1 in mid 1p\n.op\n"),
        "error[E101]: deck:4:1: node 'mid' has no DC path to ground
    4 | C1 in mid 1p
      | ^^
      = help: it is reachable only through capacitors, which cannot set a DC voltage; add a path to ground through a resistor, voltage source or CNFET channel
"
    );
}

#[test]
fn snapshot_e102_e103_voltage_loop() {
    assert_eq!(
        report("t\nV1 a 0 DC 1\nV2 a 0 DC 2\nR1 a 0 1k\n.op\n"),
        "error[E102]: deck:3:1: voltage source 'V2' closes a loop of ideal voltage sources
    3 | V2 a 0 DC 2
      | ^^
      = help: KVL around the loop is already fixed by the other sources; remove one or add series resistance

error[E103]: deck:3:1: structurally singular MNA system: no equation can determine 'i(V2)'
    3 | V2 a 0 DC 2
      | ^^
      = help: maximum matching on the assembled pattern leaves this unknown uncovered, so no element values can make the system solvable
"
    );
}

#[test]
fn snapshot_w201_w202_connectivity() {
    assert_eq!(
        report("t\nV1 a 0 DC 1\nR1 a 0 1k\nR2 a a 1k\nR3 a x 1k\n.op\n"),
        "warning[W202]: deck:4:1: every terminal of 'R2' lands on node 'a'
    4 | R2 a a 1k
      | ^^
      = help: the element has no effect (a self-shorted source even contradicts itself); connect distinct nodes or delete the card

warning[W201]: deck:5:1: node 'x' is connected to only one element ('R3')
    5 | R3 a x 1k
      | ^^
      = help: a dangling node usually means a typo in another card's node name
"
    );
}

#[test]
fn snapshot_w301_w303_param_hygiene() {
    assert_eq!(
        report("t\n.param vdd = 1\n.param VDD = 2\nV1 a 0 DC vdd\nR1 a 0 1k\n.op\n"),
        "warning[W301]: deck:3:1: parameter 'VDD' is never used
    3 | .param VDD = 2
      | ^^^^^^
      = help: reference it as a bare value or inside {…}, or delete the card

warning[W303]: deck:3:1: parameter 'VDD' differs from 'vdd' (line 2) only in case
    3 | .param VDD = 2
      | ^^^^^^
      = help: parameter lookup is case-sensitive; rename one of them
"
    );
}

#[test]
fn snapshot_w302_unused_model() {
    assert_eq!(
        report("t\n.model mX cnfet\nV1 a 0 DC 1\nR1 a 0 1k\n.op\n"),
        "warning[W302]: deck:2:1: model 'mX' is never instantiated
    2 | .model mX cnfet
      | ^^^^^^
      = help: no M card references it; add an instance or delete the card
"
    );
}

#[test]
fn snapshot_w304_w305_w306_probe_hygiene() {
    assert_eq!(
        report("t\nV1 a 0 DC 1\nR1 a 0 1meg\nC1 a 0 2\n.op\n.print tran v(a)\n.ic v(a)=1\n"),
        "warning[W306]: deck:4:1: capacitance of 'C1' is 2e0 F — outside the plausible range 1 aF … 1 F
    4 | C1 a 0 2
      | ^^
      = help: check the SPICE suffix: 'f' is femto (1e-15) and 'meg' is 1e6 ('m' alone is milli)

warning[W304]: deck:6:1: .print tran selects probes, but the deck has no .tran analysis
    6 | .print tran v(a)
      | ^^^^^^
      = help: add the analysis card or drop the scope keyword

warning[W305]: deck:7:1: .ic sets transient initial conditions, but the deck has no .tran analysis
    7 | .ic v(a)=1
      | ^^^
      = help: add a .tran card or remove the .ic
"
    );
}

#[test]
fn snapshot_w307_unused_subckt() {
    assert_eq!(
        report("t\n.subckt inv out in\nR1 out in 1k\n.ends\nV1 a 0 DC 1\nR9 a 0 1k\n.op\n"),
        "warning[W307]: deck:2:1: subcircuit 'inv' is never instantiated
    2 | .subckt inv out in
      | ^^^^^^^
      = help: no X card references it; add an instance or delete the block
"
    );
}

/// A defect *inside* a subcircuit body is reported with the full dotted
/// instance path, anchored at the top-level `X` card, with the
/// subckt-local card in the `= note:` breadcrumb — the finding names
/// where the problem manifests in the flat circuit and where its text
/// lives in the deck.
#[test]
fn snapshot_e101_inside_a_subckt_names_the_instance_path() {
    assert_eq!(
        report("t\n.subckt blk p\nR1 p q 1k\nC1 q r 1p\n.ends\nV1 in 0 DC 1\nX1 in blk\n.op\n"),
        "error[E101]: deck:7:1: node 'X1.r' has no DC path to ground
    7 | X1 in blk
      | ^^
      = note: in X1 (.subckt 'blk'), expanded from deck:4:1: C1 q r 1p
      = help: it is reachable only through capacitors, which cannot set a DC voltage; add a path to ground through a resistor, voltage source or CNFET channel
"
    );
}

/// The acceptance claim: the same circuits the lint rejects as decks
/// yield `CircuitError::StructurallySingular` from the programmatic
/// session API, naming the undeterminable unknowns.
#[test]
fn simulator_op_reports_structural_singularity() {
    let mut c = Circuit::new();
    let a = c.node("in");
    let mid = c.node("mid");
    c.add(VoltageSource::dc("V1", a, Circuit::ground(), 1.0));
    c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
    c.add(Capacitor::new("C1", a, mid, 1e-12));
    match Simulator::new(c).op() {
        Err(CircuitError::StructurallySingular { nodes }) => {
            assert_eq!(nodes, ["mid"]);
        }
        other => panic!("expected StructurallySingular, got {other:?}"),
    }

    let mut c = Circuit::new();
    let a = c.node("a");
    c.add(VoltageSource::dc("V1", a, Circuit::ground(), 1.0));
    c.add(VoltageSource::dc("V2", a, Circuit::ground(), 2.0));
    c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
    match Simulator::new(c).op() {
        Err(CircuitError::StructurallySingular { nodes }) => {
            assert_eq!(nodes.len(), 1);
            assert!(nodes[0].starts_with("i(V"), "{nodes:?}");
        }
        other => panic!("expected StructurallySingular, got {other:?}"),
    }
}

/// Builds a grounded resistor chain `top → n0 → … → ground` driven by
/// a voltage source, with optional extra resistors to ground — every
/// node has a DC path, so the structural check must pass and the
/// operating point must solve.
fn grounded_chain(rs: &[f64], extra_to_ground: &[usize], vsrc: f64) -> Circuit {
    let mut c = Circuit::new();
    let top = c.node("top");
    c.add(VoltageSource::dc("V1", top, Circuit::ground(), vsrc));
    let mut prev = top;
    let mut nodes = vec![top];
    for (i, &r) in rs.iter().enumerate() {
        let next = if i + 1 == rs.len() {
            Circuit::ground()
        } else {
            c.node(&format!("n{i}"))
        };
        c.add(Resistor::new(&format!("R{i}"), prev, next, r));
        if next != Circuit::ground() {
            nodes.push(next);
        }
        prev = next;
    }
    for (k, &idx) in extra_to_ground.iter().enumerate() {
        let from = nodes[idx % nodes.len()];
        c.add(Resistor::new(
            &format!("Rx{k}"),
            from,
            Circuit::ground(),
            1e4,
        ));
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Agreement, success side: on structurally sound random networks
    /// the matching reports full rank and LU succeeds.
    #[test]
    fn sound_networks_pass_the_guard_and_solve(
        rs in proptest::collection::vec(10.0f64..1e6, 2..8),
        extra in proptest::collection::vec(0usize..8, 0..3),
        vsrc in -10.0f64..10.0,
    ) {
        let c = grounded_chain(&rs, &extra, vsrc);
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        prop_assert!(engine.check_dc_structure(&c).is_ok());
        prop_assert!(Simulator::new(grounded_chain(&rs, &extra, vsrc)).op().is_ok());
    }

    /// Agreement, failure side: injecting an isolation defect into a
    /// sound network is caught structurally — by name, before any LU.
    #[test]
    fn injected_defects_are_rejected_by_name(
        rs in proptest::collection::vec(10.0f64..1e6, 2..8),
        vsrc in -10.0f64..10.0,
        defect in 0u32..3,
    ) {
        let mut c = grounded_chain(&rs, &[], vsrc);
        let expect: fn(&[String]) -> bool = match defect {
            0u32 => {
                // A node reachable only through a capacitor.
                let iso = c.node("iso");
                let top = c.node("top");
                c.add(Capacitor::new("Cx", top, iso, 1e-12));
                |nodes| nodes == ["iso"]
            }
            1 => {
                // A second ideal source across the driven node.
                let top = c.node("top");
                c.add(VoltageSource::dc("Vdup", top, Circuit::ground(), 0.5));
                |nodes| nodes.len() == 1 && nodes[0].starts_with("i(V")
            }
            _ => {
                // A node fed only by a current source.
                let iso = c.node("iso");
                c.add(CurrentSource::dc("Ix", Circuit::ground(), iso, 1e-6));
                |nodes| nodes == ["iso"]
            }
        };
        match Simulator::new(c).op() {
            Err(CircuitError::StructurallySingular { nodes }) => {
                prop_assert!(expect(&nodes), "unexpected unknowns {nodes:?}");
            }
            other => prop_assert!(false, "expected StructurallySingular, got {other:?}"),
        }
    }
}

/// Corpus for the mutation fuzzer: every checked-in deck, good and bad.
const CORPUS: [&str; 11] = [
    include_str!("../../../examples/decks/divider.cir"),
    include_str!("../../../examples/decks/rc_lowpass.cir"),
    include_str!("../../../examples/decks/inverter.cir"),
    include_str!("../../../examples/decks/ring_oscillator.cir"),
    include_str!("../../../examples/decks/bad/cap_isolated.cir"),
    include_str!("../../../examples/decks/bad/vloop.cir"),
    include_str!("../../../examples/decks/bad/icutset.cir"),
    include_str!("../../../examples/decks/bad/hygiene.cir"),
    // Hierarchical decks: mutations land inside `.subckt` bodies, on
    // `X` cards and across `.ends` boundaries too.
    include_str!("../../../examples/decks/adder2.cir"),
    include_str!("../../../examples/cells/nand2.cir"),
    include_str!("../../../examples/cells/dff.cir"),
];

/// Applies one line-level mutation, keyed by `(line, op)`.
fn mutate(text: &str, line: usize, op: u32) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return text.to_string();
    }
    let i = line % lines.len();
    let truncated;
    match op % 4 {
        0 => {
            lines.remove(i);
        }
        1 => lines.insert(i, lines[i]),
        2 => {
            let j = (i + 1) % lines.len();
            lines.swap(i, j);
        }
        _ => {
            let keep = lines[i].len() / 2;
            let cut = lines[i]
                .char_indices()
                .map(|(k, _)| k)
                .find(|&k| k >= keep)
                .unwrap_or(0);
            truncated = lines[i][..cut].to_string();
            lines[i] = &truncated;
        }
    }
    lines.join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linting never panics, however the deck text is mangled — any
    /// mutation that still parses must lint without crashing, under
    /// default and strict options alike.
    #[test]
    fn lint_never_panics_on_mutated_decks(
        pick in 0usize..11,
        lines in proptest::collection::vec(0usize..32, 1..4),
        ops in proptest::collection::vec(0u32..4, 1..4),
    ) {
        let mut text = CORPUS[pick].to_string();
        for (&line, &op) in lines.iter().zip(&ops) {
            text = mutate(&text, line, op);
        }
        if let Ok(deck) = Deck::parse(&text) {
            let report = deck.lint(&LintOptions::default());
            // Severity config must never drop below the default count.
            let strict = deck.lint(&LintOptions { deny_warnings: true, ..LintOptions::default() });
            prop_assert_eq!(report.findings.len(), strict.findings.len());
        }
    }
}
