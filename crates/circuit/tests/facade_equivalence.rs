//! Facade equivalence: every deprecated legacy entry point is now a
//! thin wrapper over the `Simulator` session machinery, and on any
//! netlist a fresh session must reproduce the legacy results
//! **bitwise** — same floating-point stream, not merely close. Random
//! R/C/source/CNFET netlists are generated per case and built twice
//! (identical construction), once per facade.
#![allow(deprecated)]

use cntfet_circuit::dc::solve_dc;
use cntfet_circuit::prelude::*;
use cntfet_circuit::sweep::dc_sweep;
use cntfet_circuit::transient::{solve_transient_adaptive, TransientOptions};
use cntfet_core::CompactCntFet;
use cntfet_reference::DeviceParams;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Shared compact model — fitted once for the whole test binary.
fn model() -> Arc<CompactCntFet> {
    static MODEL: OnceLock<Arc<CompactCntFet>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).expect("model 2 fit"))
    }))
}

/// A random R/C/source/CNFET netlist: a CNFET inverter chain with
/// resistive loads and node capacitors, plus an extra current source.
/// Deterministic in its parameters, so calling it twice yields two
/// structurally and numerically identical circuits.
fn mixed_netlist(stages: usize, vdd: f64, vin_frac: f64, load: f64, cap: f64) -> Circuit {
    let tech = CntTechnology::symmetric(model(), vdd);
    let mut c = Circuit::new();
    let vdd_node = c.node("vdd");
    let vin = c.node("in");
    c.add(VoltageSource::dc("VDD", vdd_node, Circuit::ground(), vdd));
    c.add(VoltageSource::dc(
        "VIN",
        vin,
        Circuit::ground(),
        vin_frac * vdd,
    ));
    let outs = add_inverter_chain(&mut c, &tech, "chain", vin, stages, vdd_node);
    for (i, &o) in outs.iter().enumerate() {
        c.add(Resistor::new(&format!("RL{i}"), o, Circuit::ground(), load));
        c.add(Capacitor::new(&format!("CL{i}"), o, Circuit::ground(), cap));
    }
    c.add(CurrentSource::dc(
        "IL",
        Circuit::ground(),
        *outs.last().expect("at least one stage"),
        1e-9,
    ));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `Simulator::op` is bitwise-equal to the legacy `solve_dc` on
    /// random CNFET netlists.
    #[test]
    fn op_matches_solve_dc_bitwise(
        stages in 1usize..4,
        vdd in 0.6f64..0.9,
        vin_frac in 0.0f64..1.0,
        load in 5e4f64..5e5,
        cap in 1e-16f64..1e-14,
    ) {
        let legacy = solve_dc(&mixed_netlist(stages, vdd, vin_frac, load, cap), None)
            .expect("legacy dc");
        let op = Simulator::new(mixed_netlist(stages, vdd, vin_frac, load, cap))
            .op()
            .expect("session dc");
        // Unknown vectors must be bitwise equal, not merely close.
        prop_assert_eq!(&legacy.x, &op.x().to_vec());
        prop_assert_eq!(legacy.iterations, op.iterations());
    }

    /// `Simulator::dc_sweep` is bitwise-equal to the legacy `dc_sweep`
    /// (full `SweepResult` equality: values, all solutions, waveforms).
    #[test]
    fn sweep_matches_dc_sweep_bitwise(
        stages in 1usize..3,
        vdd in 0.6f64..0.9,
        load in 5e4f64..5e5,
        cap in 1e-16f64..1e-14,
        points in 3usize..8,
    ) {
        let values: Vec<f64> = (0..points).map(|i| vdd * i as f64 / (points - 1) as f64).collect();
        let mut c1 = mixed_netlist(stages, vdd, 0.0, load, cap);
        let legacy = dc_sweep(&mut c1, "VIN", &values).expect("legacy sweep");
        let session = Simulator::new(mixed_netlist(stages, vdd, 0.0, load, cap))
            .dc_sweep(&SweepSpec::new("VIN", values))
            .expect("session sweep");
        prop_assert_eq!(&legacy, &session);
    }

    /// `Simulator::transient` (adaptive spec) is bitwise-equal to the
    /// legacy `solve_transient_adaptive` on random RC ladders: the full
    /// `TransientRun` (time grid, states, stats) must match.
    #[test]
    fn transient_matches_solve_transient_adaptive_bitwise(
        rungs in proptest::collection::vec(1e2f64..1e4, 2..5),
        c_f in 1e-12f64..1e-10,
    ) {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            ckt.add(VoltageSource::with_waveform(
                "V1",
                vin,
                Circuit::ground(),
                Waveform::Pulse {
                    low: 0.0,
                    high: 1.0,
                    delay: 0.0,
                    rise: 1e-10,
                    width: 1.0,
                    fall: 1e-10,
                    period: 0.0,
                },
            ));
            let mut prev = vin;
            for (i, &r) in rungs.iter().enumerate() {
                let nxt = ckt.node(&format!("n{i}"));
                ckt.add(Resistor::new(&format!("R{i}"), prev, nxt, r));
                ckt.add(Capacitor::new(&format!("C{i}"), nxt, Circuit::ground(), c_f));
                prev = nxt;
            }
            ckt
        };
        let tau: f64 = rungs.iter().sum::<f64>() * c_f;
        let opts = TransientOptions::default();
        let legacy = solve_transient_adaptive(&build(), 2.0 * tau, None, &opts)
            .expect("legacy adaptive");
        let session = Simulator::new(build())
            .transient(&TransientSpec::adaptive(2.0 * tau).with_options(opts))
            .expect("session adaptive");
        prop_assert_eq!(&legacy, &session);
    }

    /// The AC magnitude at the lowest frequency of a sweep equals the
    /// DC small-signal gain obtained by finite-differencing a `dc_sweep`
    /// — on random linear divider networks the two derivations of
    /// dV(out)/dV(in) must agree to ≤ 1e-9 relative.
    #[test]
    fn ac_low_frequency_matches_dc_sweep_finite_difference(
        r1 in 1e2f64..1e5,
        r2 in 1e2f64..1e5,
        c_load in 1e-12f64..1e-9,
        bias in -2.0f64..2.0,
    ) {
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.add(VoltageSource::dc("V1", vin, Circuit::ground(), bias));
            c.add(Resistor::new("R1", vin, out, r1));
            c.add(Resistor::new("R2", out, Circuit::ground(), r2));
            c.add(Capacitor::new("C1", out, Circuit::ground(), c_load));
            c
        };
        // The corner sits at 1/(2π(R1∥R2)C); probe five decades below
        // it so the residual attenuation (f/fc)²/2 ≈ 5e-11 is inside
        // the 1e-9 agreement bound.
        let r_par = r1 * r2 / (r1 + r2);
        let f_low = 1e-5 / (2.0 * std::f64::consts::PI * r_par * c_load);
        let mut sim = Simulator::new(build());
        let ac = sim
            .ac(&AcSweep::list("V1", vec![f_low, 1e3 * f_low]))
            .expect("ac");
        let ac_gain = ac.magnitude("out").expect("probe")[0];
        // Central finite difference of the swept transfer curve.
        let h = 1e-4;
        let fd = sim
            .dc_sweep(&SweepSpec::new("V1", vec![bias - h, bias + h]))
            .expect("fd sweep");
        let vout = fd.voltage("out").expect("probe");
        let fd_gain = ((vout[1] - vout[0]) / (2.0 * h)).abs();
        prop_assert!(
            (ac_gain - fd_gain).abs() <= 1e-9 * (1.0 + fd_gain),
            "AC {ac_gain} vs finite-difference {fd_gain}"
        );
        // Sanity: both equal the analytic divider ratio.
        let expect = r2 / (r1 + r2);
        prop_assert!((ac_gain - expect).abs() <= 1e-9 * (1.0 + expect));
    }
}
