//! Property-based tests for the MNA engine: conservation laws and
//! network theorems on randomly generated linear circuits, exercised
//! through the `Simulator` session API.

use cntfet_circuit::prelude::*;
use cntfet_circuit::transient::TransientOptions;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A voltage divider chain of random resistors: node voltages must
    /// interpolate monotonically between the rails and match the exact
    /// series-resistance formula.
    #[test]
    fn resistor_chain_matches_series_formula(
        rs in proptest::collection::vec(10.0f64..1e6, 2..8),
        vsrc in -10.0f64..10.0,
    ) {
        let mut c = Circuit::new();
        let top = c.node("top");
        c.add(VoltageSource::dc("V1", top, Circuit::ground(), vsrc));
        let mut prev = top;
        let mut nodes = Vec::new();
        for (i, &r) in rs.iter().enumerate() {
            let next = if i + 1 == rs.len() {
                Circuit::ground()
            } else {
                c.node(&format!("n{i}"))
            };
            c.add(Resistor::new(&format!("R{i}"), prev, next, r));
            nodes.push(next);
            prev = next;
        }
        let op = Simulator::new(c).op().expect("dc");
        let total: f64 = rs.iter().sum();
        let mut acc = 0.0;
        for (i, &r) in rs.iter().enumerate() {
            acc += r;
            let expect = vsrc * (1.0 - acc / total);
            let got = op.voltage_at(nodes[i]);
            prop_assert!((got - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "node {i}: {got} vs {expect}");
        }
    }

    /// Superposition: the response to two sources equals the sum of the
    /// responses to each source alone (linear circuit).
    #[test]
    fn superposition_holds_for_linear_circuits(
        v1 in -5.0f64..5.0,
        i2 in -1e-3f64..1e-3,
        r1 in 100.0f64..1e5,
        r2 in 100.0f64..1e5,
        r3 in 100.0f64..1e5,
    ) {
        let build = |va: f64, ia: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add(VoltageSource::dc("V1", a, Circuit::ground(), va));
            c.add(Resistor::new("R1", a, b, r1));
            c.add(Resistor::new("R2", b, Circuit::ground(), r2));
            c.add(Resistor::new("R3", b, Circuit::ground(), r3));
            c.add(CurrentSource::dc("I2", Circuit::ground(), b, ia));
            let op = Simulator::new(c).op().expect("dc");
            op.voltage("b").expect("probe")
        };
        let both = build(v1, i2);
        let only_v = build(v1, 0.0);
        let only_i = build(0.0, i2);
        prop_assert!((both - (only_v + only_i)).abs() < 1e-9 * (1.0 + both.abs()));
    }

    /// KCL at the source: the voltage-source branch current equals the
    /// sum of currents through the attached resistors.
    #[test]
    fn source_branch_current_balances_loads(
        v in 0.1f64..10.0,
        r1 in 100.0f64..1e5,
        r2 in 100.0f64..1e5,
    ) {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::dc("V1", a, Circuit::ground(), v));
        c.add(Resistor::new("R1", a, Circuit::ground(), r1));
        c.add(Resistor::new("R2", a, Circuit::ground(), r2));
        let bases = c.extra_var_bases();
        let op = Simulator::new(c).op().expect("dc");
        let i_branch = op.x()[bases[0]];
        let expected = -(v / r1 + v / r2);
        prop_assert!((i_branch - expected).abs() < 1e-9 * (1.0 + expected.abs()));
    }

    /// RC discharge decays exponentially regardless of component values.
    #[test]
    fn rc_transient_decay_rate(
        r in 1e2f64..1e5,
        c_f in 1e-12f64..1e-9,
    ) {
        let tau = r * c_f;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Resistor::new("R1", a, Circuit::ground(), r));
        ckt.add(Capacitor::new("C1", a, Circuit::ground(), c_f));
        // Start charged to 1 V (the cap holds the state; no source).
        let spec = TransientSpec::fixed(2.0 * tau, tau / 400.0)
            .with_options(TransientOptions {
                integrator: TimeIntegrator::BackwardEuler,
                ..TransientOptions::default()
            })
            .with_initial(vec![1.0]);
        let run = Simulator::new(ckt).transient(&spec).expect("tran");
        let w = run.voltage("a").expect("probe");
        // After one time constant the voltage should be ~e^-1.
        let idx = (run.time().len() - 1) / 2;
        let expect = (-run.time()[idx] / tau).exp();
        prop_assert!((w[idx] - expect).abs() < 0.01, "{} vs {expect}", w[idx]);
    }

    /// Sweeping a source twice gives identical results (no hidden state
    /// across sessions).
    #[test]
    fn dc_sweep_is_reproducible(v_end in 0.5f64..5.0) {
        let build = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add(VoltageSource::dc("V1", a, Circuit::ground(), 0.0));
            c.add(Resistor::new("R1", a, b, 1e3));
            c.add(Resistor::new("R2", b, Circuit::ground(), 2e3));
            c
        };
        let spec = SweepSpec::linspace("V1", 0.0, v_end, 6);
        let s1 = Simulator::new(build()).dc_sweep(&spec).expect("sweep 1");
        let s2 = Simulator::new(build()).dc_sweep(&spec).expect("sweep 2");
        prop_assert_eq!(s1.voltage("b").expect("probe"), s2.voltage("b").expect("probe"));
    }
}
