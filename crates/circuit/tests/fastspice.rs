//! Property tests of the fast-SPICE hot path.
//!
//! Three contracts, each over a randomised netlist corpus:
//!
//! 1. **Partial refactorization is exact**: with device bypass off,
//!    solving with `partial_refactor` on vs off agrees to ≤ 1e-12 on
//!    every node voltage, across DC sweeps and transient step changes.
//!    (The implementation is in fact bitwise-identical — the partial
//!    replay runs the same arithmetic on the recomputed columns and
//!    reuses the rest verbatim — the 1e-12 bound is the acceptance
//!    criterion's safety margin.)
//! 2. **Bypass error is bounded**: bypass-on vs bypass-off transient
//!    waveforms differ by at most a `bypass_vtol`-derived bound, while
//!    the bypass actually fires on quiescent stretches.
//! 3. **Auto ordering never loses**: the `Auto` fill ordering (racing
//!    AMD+BTF against the static ascending-degree order and keeping
//!    the sparser elimination) never produces more fill than the
//!    static order alone.

use cntfet_circuit::element::AnalysisMode;
use cntfet_circuit::prelude::*;
use cntfet_circuit::transient::TransientOptions;
use cntfet_core::CompactCntFet;
use cntfet_numerics::sparse::{FillOrdering, LinearSolver, SparseLuSolver};
use cntfet_reference::DeviceParams;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Shared compact model — fitted once for the whole test binary.
fn model() -> Arc<CompactCntFet> {
    static MODEL: OnceLock<Arc<CompactCntFet>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).expect("model 2 fit"))
    }))
}

fn sparse_opts() -> NewtonOptions {
    NewtonOptions {
        solver: SolverKind::Sparse,
        ..NewtonOptions::default()
    }
}

/// A mixed R/C/V/I + CNFET netlist: `stages` inverters off a resistor
/// ladder, capacitive loads, and a small current-source disturbance.
fn mixed_netlist(stages: usize, rungs: &[f64], vdd: f64, isrc: f64) -> Circuit {
    let tech = CntTechnology::symmetric(model(), vdd);
    let mut c = Circuit::new();
    let vdd_node = c.node("vdd");
    let vin = c.node("in");
    c.add(VoltageSource::dc("VDD", vdd_node, Circuit::ground(), vdd));
    c.add(VoltageSource::with_waveform(
        "VIN",
        vin,
        Circuit::ground(),
        Waveform::Pulse {
            low: 0.05 * vdd,
            high: 0.95 * vdd,
            delay: 0.0,
            rise: 20e-12,
            width: 1.0,
            fall: 20e-12,
            period: 0.0,
        },
    ));
    let outs = add_inverter_chain(&mut c, &tech, "chain", vin, stages, vdd_node);
    // Resistor ladder hanging off the last stage output.
    let mut prev = *outs.last().expect("stages > 0");
    for (i, &r) in rungs.iter().enumerate() {
        let nxt = c.node(&format!("lad{i}"));
        c.add(Resistor::new(&format!("Rl{i}"), prev, nxt, r));
        c.add(Capacitor::new(
            &format!("Cl{i}"),
            nxt,
            Circuit::ground(),
            1e-15,
        ));
        prev = nxt;
    }
    c.add(Resistor::new("Rend", prev, Circuit::ground(), 1e5));
    c.add(CurrentSource::dc("I1", Circuit::ground(), prev, isrc));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 1, DC: sweeping VDD re-values CNFET slots at every
    /// point; partial-on and partial-off sweeps agree to ≤ 1e-12.
    #[test]
    fn partial_refactor_matches_full_on_dc_sweeps(
        stages in 1usize..4,
        rungs in proptest::collection::vec(1e3f64..1e5, 2..6),
        vdd in 0.6f64..0.9,
        isrc in -1e-6f64..1e-6,
    ) {
        let sweep_vals: Vec<f64> = (0..8).map(|k| vdd * (0.5 + 0.5 * k as f64 / 7.0)).collect();
        let spec = SweepSpec::new("VDD", sweep_vals);
        let run = |partial: bool| {
            let opts = NewtonOptions { partial_refactor: partial, ..sparse_opts() };
            Simulator::with_options(mixed_netlist(stages, &rungs, vdd, isrc), opts)
                .dc_sweep(&spec)
                .expect("dc sweep")
        };
        let rp = run(true);
        let rf = run(false);
        for (sp, sf) in rp.solutions.iter().zip(&rf.solutions) {
            for (a, b) in sp.x.iter().zip(&sf.x) {
                prop_assert!((a - b).abs() <= 1e-12, "partial {a} vs full {b}");
            }
        }
    }

    /// Contract 1, transient: a pulse edge (step change) makes every
    /// CNFET slot churn, then the tail goes quiescent; partial-on and
    /// partial-off waveforms agree to ≤ 1e-12 at every stored state.
    #[test]
    fn partial_refactor_matches_full_on_transients(
        stages in 1usize..3,
        rungs in proptest::collection::vec(1e3f64..1e5, 2..4),
        vdd in 0.6f64..0.9,
    ) {
        let spec = |partial: bool| {
            TransientSpec::fixed(2e-9, 2e-11).with_options(TransientOptions {
                newton: NewtonOptions { partial_refactor: partial, ..sparse_opts() },
                integrator: TimeIntegrator::BackwardEuler,
                ..TransientOptions::default()
            })
        };
        let run = |partial: bool| {
            Simulator::new(mixed_netlist(stages, &rungs, vdd, 0.0))
                .transient(&spec(partial))
                .expect("transient")
        };
        let rp = run(true);
        let rf = run(false);
        prop_assert!(rp.stats.partial_refactorizations > 0, "partial path must engage");
        prop_assert_eq!(rf.stats.partial_refactorizations, 0);
        prop_assert_eq!(rp.result.time.len(), rf.result.time.len());
        for (xp, xf) in rp.result.states.iter().zip(&rf.result.states) {
            for (a, b) in xp.iter().zip(xf) {
                prop_assert!((a - b).abs() <= 1e-12, "partial {a} vs full {b}");
            }
        }
    }

    /// Contract 2: device bypass fires on the quiescent tail of a pulse
    /// response and the waveform deviation stays within the
    /// `bypass_vtol`-derived bound. The per-stamp linearisation error is
    /// O(vtol²); the engine-level bound allows 1e3·vtol for Newton
    /// stopping-point wiggle accumulated over the run.
    #[test]
    fn bypass_error_is_vtol_bounded(
        stages in 1usize..3,
        vdd in 0.6f64..0.9,
    ) {
        let vtol = 1e-6;
        let spec = |bypass: bool| {
            TransientSpec::fixed(2e-9, 2e-11).with_options(TransientOptions {
                newton: NewtonOptions {
                    bypass,
                    bypass_vtol: vtol,
                    ..sparse_opts()
                },
                integrator: TimeIntegrator::BackwardEuler,
                ..TransientOptions::default()
            })
        };
        let run = |bypass: bool| {
            Simulator::new(mixed_netlist(stages, &[1e4, 2e4], vdd, 0.0))
                .transient(&spec(bypass))
                .expect("transient")
        };
        let rb = run(true);
        let rf = run(false);
        prop_assert!(rb.stats.device_bypasses > 0, "bypass must fire on the tail");
        prop_assert_eq!(rf.stats.device_bypasses, 0);
        prop_assert_eq!(rb.result.time.len(), rf.result.time.len());
        let bound = 1e3 * vtol;
        for (xb, xf) in rb.result.states.iter().zip(&rf.result.states) {
            for (a, b) in xb.iter().zip(xf) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "bypass deviation {} exceeds {bound}",
                    (a - b).abs()
                );
            }
        }
    }

    /// Contract 3: on assembled MNA Jacobians from the same corpus, the
    /// `Auto` ordering (AMD+BTF raced against the static order) never
    /// has more factor fill than the static ascending-degree order, and
    /// both factorizations solve to the same answer.
    #[test]
    fn auto_ordering_never_increases_fill(
        stages in 1usize..4,
        rungs in proptest::collection::vec(1e3f64..1e5, 2..6),
        vdd in 0.6f64..0.9,
    ) {
        let c = mixed_netlist(stages, &rungs, vdd, 0.0);
        let n = c.unknown_count();
        let mut engine = NewtonEngine::new(sparse_opts());
        let x0 = vec![0.0; n];
        let (_, jac) = engine.assemble(&c, &x0, &AnalysisMode::Dc, 1e-9);
        let jac = jac.clone();

        let factor_with = |ordering: FillOrdering| {
            let mut lu = SparseLuSolver::new();
            lu.set_ordering(ordering);
            lu.factor(&jac).expect("factor");
            lu
        };
        let auto = factor_with(FillOrdering::Auto);
        let fixed = factor_with(FillOrdering::AscendingDegree);
        prop_assert!(
            auto.factor_nnz() <= fixed.factor_nnz(),
            "auto ordering lost: {} vs {} nnz",
            auto.factor_nnz(),
            fixed.factor_nnz()
        );
        let rhs: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) * 1e-6).collect();
        let xa = auto.solve_factored(&rhs).expect("auto solve");
        let xf = fixed.solve_factored(&rhs).expect("fixed solve");
        let scale = cntfet_numerics::stats::inf_norm(&xf).max(1.0);
        for (a, b) in xa.iter().zip(&xf) {
            prop_assert!((a - b).abs() <= 1e-8 * scale, "{a} vs {b}");
        }
    }
}

/// Regression guard for the historical damped-Newton limit cycle on
/// hard-switching series stacks.
///
/// Two NAND-wired inverters (both NAND2 inputs tied, so the n-side is
/// a two-transistor series stack whose internal node carries almost no
/// capacitance) driven by a 40 ps edge under fixed 10 ps backward-Euler
/// steps — the gain of the first stage turns the 0.225 V/step input
/// ramp into a ≥ 0.4 V/step swing at the internal nodes, and the plain
/// line search used to oscillate between two points with the residual
/// stalled around 1e-8…1e-9 A (three decades above
/// `node_current_tol`). The convergence-robustness ladder (voltage
/// limiting → Armijo damping with the bitwise cycle detector →
/// pseudo-transient continuation on the weakly-loaded stack node) now
/// carries these steps to convergence; the standard-cell library no
/// longer needs the `cm` workaround parasitic this deck always
/// omitted.
#[test]
fn nand_stack_limit_cycle_regression() {
    let deck = cntfet_circuit::deck::Deck::parse(
        "nand-wired inverter chain, no stack parasitic
.model nfet cnfet polarity=n
.model pfet cnfet polarity=p
V1 vdd 0 DC 0.9
VIN in 0 PULSE(0 0.9 0 40p 40p 400p 1n)
.subckt ninv out in vdd
mpa out in vdd pfet
mpb out in vdd pfet
mna out in mid nfet
mnb mid in 0 nfet
cl out 0 2f
.ends
x1 n1 in vdd ninv
x2 out n1 vdd ninv
.tran 10p 400p
.print tran v(out)
",
    )
    .expect("deck parses");
    let run = deck.run().unwrap_or_else(|e| {
        panic!("transient should converge once the robustness pass lands:\n{e}")
    });
    assert!(run.reports.iter().any(|r| !r.rows.is_empty()));
}
