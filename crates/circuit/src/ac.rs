//! AC small-signal analysis: frequency sweeps of the circuit linearised
//! at its DC operating point.
//!
//! # Formulation
//!
//! Every analysis in this crate assembles the residual `F(x, ẋ) = 0`.
//! Linearising around an operating point `x₀` (where `ẋ = 0`) under a
//! small sinusoidal perturbation `u = û·e^{jωt}` of one source value
//! gives the phasor system
//!
//! ```text
//! (G + jωC) · X = −∂F/∂u · û ,   G = ∂F/∂x |x₀ ,   C = ∂F/∂ẋ |x₀
//! ```
//!
//! Both matrices come straight from the existing
//! [`TransientStamp`] stencil machinery:
//! a transient-mode Jacobian is exactly `G + a0·C` (companion stamps
//! scale linearly with the leading coefficient `a0` and never change
//! the sparsity structure), so assembling at `a0 = 0` yields `G` and
//! the difference against `a0 = 1` yields `C` — over one shared
//! pattern, with no AC-specific stamping code in any element.
//!
//! # Efficiency contract
//!
//! The complex system shares that single real sparsity pattern at every
//! frequency: the sparse LU ([`SparseLu<Complex>`]) orders and
//! symbolically factors it **once per sweep**, then each frequency
//! point only re-values `G + jωC` and replays the frozen elimination.
//! [`AcStats`] exposes the factorisation counters so benchmarks assert
//! this rather than assume it (see the `ac_response` bench).
//!
//! # Conventions
//!
//! The stimulus is a **unit phasor** (1 V for a voltage source, 1 A for
//! a current source) at every frequency, so response phasors are
//! transfer functions: [`AcResponse::magnitude`] of an output node is
//! the gain `|H(jω)|`, [`AcResponse::phase`] its phase. Run sweeps
//! through [`crate::sim::Simulator::ac`].

use crate::element::{AnalysisMode, TransientStamp};
use crate::engine::NewtonEngine;
use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId};
use crate::sim::Probe;
use cntfet_numerics::complex::Complex;
use cntfet_numerics::sparse::SparseLu;
use std::sync::Arc;

/// Frequency grid of an AC sweep, hertz.
#[derive(Debug, Clone, PartialEq)]
pub enum FreqGrid {
    /// Logarithmic sweep: `points_per_decade` points per factor-of-ten,
    /// from `f_start` up to (at least) `f_stop`, endpoints included.
    Decade {
        /// First frequency, Hz (must be positive).
        f_start: f64,
        /// Last frequency, Hz (must exceed `f_start`).
        f_stop: f64,
        /// Grid density per decade (≥ 1).
        points_per_decade: usize,
    },
    /// Linear sweep of `points` equally spaced frequencies from
    /// `f_start` to `f_stop` inclusive.
    Linear {
        /// First frequency, Hz (non-negative; 0 probes the DC limit).
        f_start: f64,
        /// Last frequency, Hz.
        f_stop: f64,
        /// Number of points (≥ 1; 1 sweeps just `f_start`).
        points: usize,
    },
    /// An explicit list of frequencies, Hz.
    List(Vec<f64>),
}

impl FreqGrid {
    /// Expands the grid into an explicit, validated frequency list.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidAnalysis`] for empty, non-finite,
    /// negative or inverted specifications.
    pub fn frequencies(&self) -> Result<Vec<f64>, CircuitError> {
        let freqs = match *self {
            FreqGrid::Decade {
                f_start,
                f_stop,
                points_per_decade,
            } => {
                if !(f_start > 0.0 && f_stop > f_start && f_start.is_finite() && f_stop.is_finite())
                {
                    return Err(CircuitError::InvalidAnalysis(format!(
                        "decade sweep needs 0 < f_start < f_stop, got [{f_start}, {f_stop}] Hz"
                    )));
                }
                if points_per_decade == 0 {
                    return Err(CircuitError::InvalidAnalysis(
                        "decade sweep needs at least 1 point per decade".into(),
                    ));
                }
                let decades = (f_stop / f_start).log10();
                let steps = (decades * points_per_decade as f64).ceil() as usize;
                let mut f: Vec<f64> = (0..steps)
                    .map(|k| f_start * 10f64.powf(k as f64 / points_per_decade as f64))
                    .collect();
                f.push(f_stop); // land exactly on the endpoint
                f
            }
            FreqGrid::Linear {
                f_start,
                f_stop,
                points,
            } => {
                if !(f_start >= 0.0 && f_stop >= f_start && f_stop.is_finite()) {
                    return Err(CircuitError::InvalidAnalysis(format!(
                        "linear sweep needs 0 <= f_start <= f_stop, got [{f_start}, {f_stop}] Hz"
                    )));
                }
                if points == 0 {
                    return Err(CircuitError::InvalidAnalysis(
                        "linear sweep needs at least 1 point".into(),
                    ));
                }
                if points == 1 {
                    vec![f_start]
                } else {
                    (0..points)
                        .map(|k| f_start + (f_stop - f_start) * k as f64 / (points - 1) as f64)
                        .collect()
                }
            }
            FreqGrid::List(ref f) => {
                if f.is_empty() {
                    return Err(CircuitError::InvalidAnalysis(
                        "frequency list must not be empty".into(),
                    ));
                }
                if let Some(bad) = f.iter().find(|v| !(v.is_finite() && **v >= 0.0)) {
                    return Err(CircuitError::InvalidAnalysis(format!(
                        "frequencies must be finite and non-negative, got {bad} Hz"
                    )));
                }
                f.clone()
            }
        };
        Ok(freqs)
    }
}

/// An AC sweep request: which source carries the unit stimulus and the
/// frequency grid to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSweep {
    /// Name of the stimulus source (validated before solving, with the
    /// available sources listed on a miss).
    pub source: String,
    /// Frequencies to evaluate.
    pub grid: FreqGrid,
}

impl AcSweep {
    /// A logarithmic sweep (`points_per_decade` per factor of ten).
    pub fn decade(
        source: impl Into<String>,
        f_start: f64,
        f_stop: f64,
        points_per_decade: usize,
    ) -> Self {
        AcSweep {
            source: source.into(),
            grid: FreqGrid::Decade {
                f_start,
                f_stop,
                points_per_decade,
            },
        }
    }

    /// A linear sweep of `points` frequencies.
    pub fn linear(source: impl Into<String>, f_start: f64, f_stop: f64, points: usize) -> Self {
        AcSweep {
            source: source.into(),
            grid: FreqGrid::Linear {
                f_start,
                f_stop,
                points,
            },
        }
    }

    /// A sweep over an explicit frequency list.
    pub fn list(source: impl Into<String>, freqs: Vec<f64>) -> Self {
        AcSweep {
            source: source.into(),
            grid: FreqGrid::List(freqs),
        }
    }
}

/// Solver-cost counters of one AC sweep — the observable form of the
/// "order once, re-value per frequency" contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AcStats {
    /// Number of frequency points solved.
    pub frequencies: usize,
    /// Stored entries of the shared (real) sparsity pattern.
    pub jacobian_nnz: usize,
    /// Full pivot-searching complex factorisations (1 per sweep unless
    /// a frozen pivot collapsed numerically).
    pub symbolic_factorizations: u64,
    /// Fast elimination-replay factorisations (full replays; partial
    /// replays count separately).
    pub refactorizations: u64,
    /// Partial replays that recomputed only the columns reached from
    /// the frequency-dependent (capacitive) matrix slots — the normal
    /// path for every frequency after the first.
    pub partial_refactorizations: u64,
    /// Columns actually recomputed across the sweep's factorisations.
    pub columns_recomputed: u64,
    /// Columns a full-replay sweep would have recomputed.
    pub columns_total: u64,
    /// Cumulative complex multiply–accumulate/divide operations across
    /// all factorisations of the sweep.
    pub factor_ops: u64,
}

/// Result of an AC sweep: per-frequency complex phasors of every
/// unknown, with probe-by-node-name accessors for magnitude (linear or
/// dB) and phase (radians or degrees).
///
/// Phasors are responses to a *unit* stimulus, i.e. transfer functions.
#[derive(Debug, Clone, PartialEq)]
pub struct AcResponse {
    freqs: Vec<f64>,
    n_unknowns: usize,
    /// Unknown-major: unknown `u`'s response at
    /// `data[u*freqs.len() .. (u+1)*freqs.len()]`.
    data: Vec<Complex>,
    zeros: Vec<Complex>,
    probe: Probe,
    stats: AcStats,
}

impl AcResponse {
    /// The evaluated frequencies, Hz.
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` when the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// The node-name probe of this response.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// The sweep's solver-cost counters.
    pub fn stats(&self) -> &AcStats {
        &self.stats
    }

    /// Borrowed phasor response of `node` across the sweep (all-zero
    /// for ground), or `None` for a node outside the circuit.
    pub fn phasor_at(&self, node: NodeId) -> Option<&[Complex]> {
        match node.unknown_index() {
            None => Some(&self.zeros),
            Some(i) => self.phasor_index(i),
        }
    }

    /// Borrowed phasor response of raw unknown `index` (node voltages
    /// first, then element extra variables such as source branch
    /// currents — useful for input-impedance extraction).
    pub fn phasor_index(&self, index: usize) -> Option<&[Complex]> {
        if index < self.n_unknowns {
            let n = self.freqs.len();
            Some(&self.data[index * n..(index + 1) * n])
        } else {
            None
        }
    }

    /// Borrowed phasor response of the named node.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn phasor(&self, name: &str) -> Result<&[Complex], CircuitError> {
        let node = self.probe.node(name)?;
        Ok(self
            .phasor_at(node)
            .expect("probe only resolves nodes of the originating circuit"))
    }

    /// Transfer magnitude `|H(jω)|` of the named node.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn magnitude(&self, name: &str) -> Result<Vec<f64>, CircuitError> {
        Ok(self.phasor(name)?.iter().map(|z| z.abs()).collect())
    }

    /// Transfer magnitude in decibels, `20·log₁₀|H|`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn magnitude_db(&self, name: &str) -> Result<Vec<f64>, CircuitError> {
        Ok(self.phasor(name)?.iter().map(|z| z.abs_db()).collect())
    }

    /// Phase in radians, per point in `(−π, π]`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn phase(&self, name: &str) -> Result<Vec<f64>, CircuitError> {
        Ok(self.phasor(name)?.iter().map(|z| z.arg()).collect())
    }

    /// Phase in degrees.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn phase_deg(&self, name: &str) -> Result<Vec<f64>, CircuitError> {
        Ok(self
            .phasor(name)?
            .iter()
            .map(|z| z.arg().to_degrees())
            .collect())
    }
}

/// Runs the AC sweep on a session engine: linearise at `op_x`, then one
/// complex solve per frequency over a single frozen pattern.
pub(crate) fn ac_core(
    engine: &mut NewtonEngine,
    circuit: &Circuit,
    op_x: &[f64],
    sweep: &AcSweep,
) -> Result<AcResponse, CircuitError> {
    let freqs = sweep.grid.frequencies()?;
    let n = circuit.unknown_count();
    if n == 0 {
        return Ok(AcResponse {
            zeros: vec![Complex::ZERO; freqs.len()],
            freqs,
            n_unknowns: 0,
            data: Vec::new(),
            probe: Probe::from_circuit(circuit),
            stats: AcStats::default(),
        });
    }

    // Unit stimulus vector of the named source.
    let mut rhs = vec![0.0; n];
    let bases = circuit.extra_var_bases();
    let driven = circuit
        .elements()
        .iter()
        .zip(&bases)
        .find(|(e, _)| e.is_source() && e.name() == sweep.source)
        .map(|(e, &base)| e.ac_stimulus(base, &mut rhs));
    match driven {
        Some(true) => {}
        Some(false) => {
            return Err(CircuitError::InvalidAnalysis(format!(
                "source '{}' cannot provide an AC stimulus",
                sweep.source
            )))
        }
        None => {
            return Err(CircuitError::UnknownSource {
                requested: sweep.source.clone(),
                available: circuit.source_names(),
            })
        }
    }

    // Linearise at the operating point via the transient stencil:
    // J(a0) = G + a0·C with a frequency-independent pattern, so two
    // assemblies recover both matrices over one shared structure.
    let stamp = |a0: f64| {
        AnalysisMode::Transient(TransientStamp {
            t: 0.0,
            a0,
            hist: vec![0.0; n],
        })
    };
    let (pattern, g) = {
        let (_, j) = engine.assemble(circuit, op_x, &stamp(0.0), 0.0);
        (Arc::clone(j.pattern()), j.values().to_vec())
    };
    let c: Vec<f64> = {
        let (_, j1) = engine.assemble(circuit, op_x, &stamp(1.0), 0.0);
        j1.values()
            .iter()
            .zip(&g)
            .map(|(j1v, gv)| j1v - gv)
            .collect()
    };

    // One complex LU per sweep: ordered at the first frequency, value
    // replay afterwards. Only the capacitive slots change with
    // frequency (imaginary part ω·C), so later frequencies take the
    // partial-refactorization path seeded with exactly those slots.
    let mut lu = SparseLu::<Complex>::new();
    let dyn_slots: Vec<usize> = c
        .iter()
        .enumerate()
        .filter(|&(_, &cv)| cv != 0.0)
        .map(|(slot, _)| slot)
        .collect();
    let rhs_c: Vec<Complex> = rhs.iter().map(|&v| Complex::from(v)).collect();
    let mut vals = vec![Complex::ZERO; g.len()];
    let n_points = freqs.len();
    let mut data = vec![Complex::ZERO; n * n_points];
    let mut factor_ops = 0u64;
    for (k, &f) in freqs.iter().enumerate() {
        engine.check_cancel()?;
        let omega = 2.0 * std::f64::consts::PI * f;
        for ((v, &gv), &cv) in vals.iter_mut().zip(&g).zip(&c) {
            *v = Complex::new(gv, omega * cv);
        }
        let factored = if k == 0 {
            lu.factor(&pattern, &vals)
        } else {
            lu.factor_partial(&pattern, &vals, &dyn_slots)
        };
        factored.map_err(|e| {
            CircuitError::SingularSystem(format!("AC system is singular at {f:.6e} Hz: {e}"))
        })?;
        factor_ops += lu.factor_ops();
        let x = lu.solve_factored(&rhs_c).map_err(|e| {
            CircuitError::SingularSystem(format!("AC solve failed at {f:.6e} Hz: {e}"))
        })?;
        for (u, &xv) in x.iter().enumerate() {
            data[u * n_points + k] = xv;
        }
    }

    let path = lu.factor_path_stats();
    let stats = AcStats {
        frequencies: n_points,
        jacobian_nnz: pattern.nnz(),
        symbolic_factorizations: lu.symbolic_factor_count(),
        refactorizations: lu.refactor_count(),
        partial_refactorizations: path.partial_refactorizations,
        columns_recomputed: path.columns_recomputed,
        columns_total: path.columns_total,
        factor_ops,
    };
    Ok(AcResponse {
        freqs,
        n_unknowns: n,
        data,
        zeros: vec![Complex::ZERO; n_points],
        probe: Probe::from_circuit(circuit),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Capacitor, CurrentSource, Resistor, VoltageSource};
    use crate::sim::Simulator;

    fn rc_lowpass(r: f64, c: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
        ckt.add(Resistor::new("R1", vin, out, r));
        ckt.add(Capacitor::new("C1", out, Circuit::ground(), c));
        ckt
    }

    #[test]
    fn grid_expansion_and_validation() {
        let dec = FreqGrid::Decade {
            f_start: 1e3,
            f_stop: 1e6,
            points_per_decade: 1,
        };
        let f = dec.frequencies().unwrap();
        assert_eq!(f.len(), 4, "{f:?}");
        assert!((f[0] - 1e3).abs() < 1e-9 && (f[3] - 1e6).abs() < 1e-3);
        let lin = FreqGrid::Linear {
            f_start: 0.0,
            f_stop: 10.0,
            points: 3,
        };
        assert_eq!(lin.frequencies().unwrap(), vec![0.0, 5.0, 10.0]);
        assert_eq!(
            FreqGrid::Linear {
                f_start: 2.0,
                f_stop: 2.0,
                points: 1
            }
            .frequencies()
            .unwrap(),
            vec![2.0]
        );
        assert!(FreqGrid::Decade {
            f_start: 0.0,
            f_stop: 1e3,
            points_per_decade: 10
        }
        .frequencies()
        .is_err());
        assert!(FreqGrid::List(vec![]).frequencies().is_err());
        assert!(FreqGrid::List(vec![1.0, -2.0]).frequencies().is_err());
    }

    #[test]
    fn rc_lowpass_matches_analytic_transfer_function() {
        let (r, c) = (1e3, 1e-9); // corner at 1/(2π·RC) ≈ 159 kHz
        let mut sim = Simulator::new(rc_lowpass(r, c));
        let res = sim.ac(&AcSweep::decade("V1", 1e2, 1e8, 10)).unwrap();
        let out = res.phasor("out").unwrap();
        let vin = res.phasor("in").unwrap();
        for ((&f, &h), &hin) in res.frequencies().iter().zip(out).zip(vin) {
            let omega = 2.0 * std::f64::consts::PI * f;
            let expect = Complex::ONE / Complex::new(1.0, omega * r * c);
            assert!(
                (h - expect).abs() <= 1e-9 * expect.abs(),
                "f = {f:.3e}: {h} vs {expect}"
            );
            // The driven node follows the stimulus exactly.
            assert!((hin - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn pattern_is_ordered_once_per_sweep() {
        let mut sim = Simulator::new(rc_lowpass(1e3, 1e-9));
        let res = sim.ac(&AcSweep::decade("V1", 1e3, 1e6, 5)).unwrap();
        let s = res.stats();
        assert_eq!(s.frequencies, res.len());
        assert_eq!(s.symbolic_factorizations, 1, "ordered once");
        assert_eq!(
            s.partial_refactorizations as usize,
            s.frequencies - 1,
            "every later frequency partially replays the plan"
        );
        assert_eq!(s.refactorizations, 0, "no full replay is ever needed");
        assert!(
            s.columns_recomputed <= s.columns_total,
            "partial path recomputes at most every column"
        );
        assert!(s.jacobian_nnz > 0 && s.factor_ops > 0);
    }

    #[test]
    fn current_source_stimulus_sees_impedance() {
        // 1 A AC into R ∥ C: V = Z(jω) = R / (1 + jωRC).
        let (r, c) = (2e3, 1e-9);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(CurrentSource::dc("I1", Circuit::ground(), a, 0.0));
        ckt.add(Resistor::new("R1", a, Circuit::ground(), r));
        ckt.add(Capacitor::new("C1", a, Circuit::ground(), c));
        let mut sim = Simulator::new(ckt);
        let res = sim.ac(&AcSweep::list("I1", vec![1e3, 1e5, 1e7])).unwrap();
        for (&f, &z) in res.frequencies().iter().zip(res.phasor("a").unwrap()) {
            let omega = 2.0 * std::f64::consts::PI * f;
            let expect = Complex::from(r) / Complex::new(1.0, omega * r * c);
            assert!(
                (z - expect).abs() <= 1e-9 * expect.abs(),
                "f = {f:.3e}: {z} vs {expect}"
            );
        }
    }

    #[test]
    fn bad_requests_fail_fast() {
        let mut sim = Simulator::new(rc_lowpass(1e3, 1e-9));
        let err = sim.ac(&AcSweep::decade("VX", 1e3, 1e6, 5)).unwrap_err();
        assert!(matches!(err, CircuitError::UnknownSource { .. }));
        assert!(err.to_string().contains("V1"), "{err}");
        assert!(sim.ac(&AcSweep::decade("V1", -1.0, 1e6, 5)).is_err());
        // A resistor is not a drivable source: listed as unknown.
        let err = sim.ac(&AcSweep::decade("R1", 1e3, 1e6, 5)).unwrap_err();
        assert!(matches!(err, CircuitError::UnknownSource { .. }));
    }

    #[test]
    fn magnitude_and_phase_accessors_agree_with_phasors() {
        let mut sim = Simulator::new(rc_lowpass(1e3, 1e-9));
        let res = sim.ac(&AcSweep::list("V1", vec![159.15e3])).unwrap();
        let h = res.phasor("out").unwrap()[0];
        assert!((res.magnitude("out").unwrap()[0] - h.abs()).abs() < 1e-15);
        assert!((res.magnitude_db("out").unwrap()[0] - h.abs_db()).abs() < 1e-12);
        assert!((res.phase("out").unwrap()[0] - h.arg()).abs() < 1e-15);
        assert!((res.phase_deg("out").unwrap()[0] - h.arg().to_degrees()).abs() < 1e-12);
        // Near the corner: |H| ≈ 1/√2, phase ≈ −45°.
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((h.arg().to_degrees() + 45.0).abs() < 0.1);
        // Ground probes are exactly zero.
        assert!(res.phasor("gnd").unwrap()[0] == Complex::ZERO);
        assert!(res.phasor("typo").is_err());
    }
}
