//! The unified nonlinear solve core shared by every analysis.
//!
//! DC operating points, transient steps and swept operating points all
//! reduce to the same damped-Newton iteration on `F(x) = 0`; this module
//! owns that iteration exactly once. [`NewtonEngine`] additionally owns
//! the performance-critical state that used to be rebuilt from scratch
//! on every iteration:
//!
//! * a pattern-cached assembler ([`cntfet_numerics::sparse::PatternAssembler`]):
//!   the first assembly of a circuit records the MNA sparsity pattern;
//!   every later iteration — across damping trials, gmin steps, sweep
//!   points and transient steps — writes values into preallocated slots
//!   with no allocation;
//! * a [`LinearSolver`]: either the dense-LU fallback or the sparse LU
//!   that reuses its pivot order and fill-in pattern across
//!   factorizations. [`SolverKind::Auto`] picks the sparse path once the
//!   system is large enough for the O(n³) dense factor to dominate.
//!
//! The cache is keyed on [`Circuit::id`], [`Circuit::revision`], the
//! unknown count and the analysis *kind* (DC vs transient), so a
//! circuit that gains elements (or a switch from DC to transient
//! stamping) transparently rebuilds the pattern. The key deliberately
//! excludes everything that only changes *values* — source levels,
//! sweep points, the transient step size and integration method — so a
//! whole adaptive-transient run with wildly varying steps reuses one
//! pattern and one solver ordering (asserted by
//! `dt_changes_revalue_but_never_repattern` in the transient tests).
//!
//! # Options semantics
//!
//! [`NewtonOptions`] is plain data (`Copy`) shared by every analysis:
//!
//! * `max_iter` bounds each *individual* Newton solve — per gmin step,
//!   per transient step attempt, per sweep point — not the whole
//!   analysis;
//! * `node_current_tol` / `extra_row_tol` are *absolute, per-row*
//!   convergence thresholds. Node rows are KCL sums in amperes; extra
//!   rows mix source-constraint volts and CNFET charge-balance C/m,
//!   which is why they get a separate (tighter) threshold;
//! * `max_step_halvings` bounds the damping line search inside one
//!   iteration; after the budget the smallest trial step is adopted
//!   unconditionally so Newton can escape shallow plateaus;
//! * `solver` / `sparse_threshold`: [`SolverKind::Auto`] compares the
//!   unknown count against `sparse_threshold` (default 32) once per
//!   cache build. Below it, the dense LU wins on constant factors and
//!   reproduces the historical floating-point stream bit-for-bit; above
//!   it, the sparse LU's frozen-ordering replay factorisations dominate
//!   (the `netlist_scaling` bench measures the crossover).

use crate::dc::Solution;
use crate::element::{AnalysisMode, DeviceState, Mna, StampOutcome};
use crate::error::CircuitError;
use crate::netlist::Circuit;
use cntfet_numerics::sparse::{
    structural_rank, CsrMatrix, DenseLuSolver, FactorPathStats, LinearSolver, PatternAssembler,
    SparseLuSolver,
};
use cntfet_numerics::stats::inf_norm;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which linear solver backs the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Sparse when the system has at least
    /// [`NewtonOptions::sparse_threshold`] unknowns, dense below that.
    Auto,
    /// Always the dense partial-pivoting LU (the historical behaviour).
    Dense,
    /// Always the fill-reusing sparse LU.
    Sparse,
}

/// Tuning knobs of the Newton iteration, shared by DC, transient and
/// sweep analyses. [`NewtonOptions::default`] keeps the historical
/// tolerances, damping schedule and iteration budget. Below the
/// [`SolverKind::Auto`] threshold the dense backend reproduces the
/// historical results bit-for-bit; above it the sparse backend takes
/// over, whose different elimination order agrees to ≤ 1e-10 on node
/// voltages (property-tested) but is not bitwise identical — callers
/// that need the historical floating-point stream exactly should pin
/// [`SolverKind::Dense`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Iteration budget per Newton solve (per gmin step, per transient
    /// step). DC default: 80.
    pub max_iter: usize,
    /// Absolute convergence threshold for node (KCL current) residual
    /// rows, amperes. Default `1e-12`.
    pub node_current_tol: f64,
    /// Absolute convergence threshold for element extra rows (source
    /// constraints in volts, CNFET charge balance in C/m). Default
    /// `1e-15`.
    pub extra_row_tol: f64,
    /// Maximum step halvings of the damping line search. Default 12.
    pub max_step_halvings: usize,
    /// Linear solver selection. Default [`SolverKind::Auto`].
    pub solver: SolverKind,
    /// Unknown count at which [`SolverKind::Auto`] switches from dense
    /// to sparse. Default 32.
    pub sparse_threshold: usize,
    /// Use KLU-style partial refactorization on the sparse path: diff
    /// the assembled matrix values against the previous successful
    /// factorization and replay only the columns reached from changed
    /// slots through the frozen elimination DAG. Bitwise-identical to
    /// the full replay (the partial replay performs the same arithmetic
    /// on the recomputed columns and reuses the rest verbatim), so it
    /// is on by default. Default `true`.
    pub partial_refactor: bool,
    /// SPICE3-lineage device bypass: skip re-evaluating a nonlinear
    /// device whose controlling voltages moved less than
    /// [`NewtonOptions::bypass_vtol`] since its last true evaluation,
    /// re-stamping its cached (first-order corrected) values instead.
    /// Changes the floating-point stream, so it is **off by default**;
    /// the waveform deviation is bounded by the agreement tests at
    /// O(`bypass_vtol`²) per stamp. Default `false`.
    pub bypass: bool,
    /// Controlling-voltage tolerance of the device bypass, volts.
    /// Only read when [`NewtonOptions::bypass`] is on. Default `1e-6`.
    pub bypass_vtol: f64,
    /// Per-device voltage limiting ([`crate::element::Element::limit_step`]):
    /// before the line search, every element may propose a step scale
    /// that caps its per-iteration controlling-voltage swing
    /// (SPICE3 `pnjlim`/`fetlim` lineage). A step already within every
    /// device's limits is passed through untouched — bitwise — so
    /// limiting only alters solves that were heading for trouble.
    /// Default `true`.
    pub limiting: bool,
    /// Sufficient-decrease constant `c₁` of the Armijo condition the
    /// damping line search accepts on: a trial step of length `α·dx`
    /// is accepted when `‖F‖ ≤ ‖F₀‖·(1 − c₁·α)`. The historical
    /// halving loop used exactly this test with `c₁ = 1e-4`, which is
    /// the default — solves that already converge reproduce their
    /// float stream bit-for-bit. Must lie in `(0, 1)`. Default `1e-4`.
    pub armijo_c1: f64,
    /// Pseudo-transient continuation rescue: when the accepted-iterate
    /// cycle detector proves the damped iteration is in a limit cycle
    /// (an iterate recurred bitwise, so the deterministic map can never
    /// converge), re-solve with a temporary `C/dt`-like diagonal
    /// regularization `g·(x − x_anchor)` on the weakly-damped unknowns,
    /// ramped `1e-3 → 0`. Reuses the reserved gmin diagonal slots, so
    /// no re-pattern occurs. Only ever runs on solves that would
    /// otherwise fail, keeping already-converging decks bitwise
    /// untouched. Default `true`.
    pub ptc: bool,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 80,
            node_current_tol: 1e-12,
            extra_row_tol: 1e-15,
            max_step_halvings: 12,
            solver: SolverKind::Auto,
            sparse_threshold: 32,
            partial_refactor: true,
            bypass: false,
            bypass_vtol: 1e-6,
            limiting: true,
            armijo_c1: 1e-4,
            ptc: true,
        }
    }
}

impl NewtonOptions {
    /// The transient-analysis default: a larger iteration budget (120),
    /// matching the historical fixed limit of backward-Euler steps.
    pub fn transient() -> Self {
        NewtonOptions {
            max_iter: 120,
            ..NewtonOptions::default()
        }
    }
}

/// Per-structure cached state: assembler (pattern), solver (factors) and
/// extra-variable bases.
#[derive(Debug)]
struct Cache {
    circuit_id: u64,
    revision: u64,
    unknowns: usize,
    sparse: bool,
    asm: PatternAssembler,
    solver: Box<dyn LinearSolver>,
    bases: Vec<usize>,
    /// `true` once this structure passed the structural-rank check, so
    /// repeated DC solves (sweep points, transient initial conditions)
    /// pay for the matching exactly once per pattern build.
    struct_ok: bool,
    /// One bypass cache per element (empty [`DeviceState`] for elements
    /// that never cache), owned by the engine so elements stay `&self`.
    states: Vec<DeviceState>,
    /// Matrix values of the previous *successful* factorization, the
    /// baseline the partial-refactorization diff runs against.
    prev_values: Vec<f64>,
    /// `false` until a factorization succeeds (and again after one
    /// fails), forcing the next factor down the full path.
    prev_valid: bool,
    /// Reused scratch list of changed value slots.
    changed: Vec<usize>,
    /// Solver stats at the last harvest, so the engine can accumulate
    /// deltas across cache rebuilds (a fresh solver restarts from 0).
    last_path: FactorPathStats,
}

/// Cumulative hot-path counters of a [`NewtonEngine`], harvested with
/// [`NewtonEngine::counters`]. All counts are engine-lifetime
/// cumulative — an analysis that wants its own share captures a
/// baseline first and calls [`EngineCounters::delta_since`] after, the
/// per-analysis discipline used by [`crate::transient::TransientStats`]
/// and [`crate::ac::AcStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCounters {
    /// Jacobian factorizations (one per Newton iteration that reached
    /// the linear solve), full and partial alike.
    pub factorizations: u64,
    /// Multiply–accumulate/divide operations across all factorizations.
    pub factor_ops: u64,
    /// Full pivot-searching factorizations (symbolic + numeric).
    pub symbolic_factorizations: u64,
    /// Full replays of a frozen elimination plan.
    pub replay_refactorizations: u64,
    /// Partial replays that reused unaffected columns.
    pub partial_refactorizations: u64,
    /// Columns actually recomputed, over every factorization path.
    pub columns_recomputed: u64,
    /// Columns that a full factorization would have recomputed.
    pub columns_total: u64,
    /// Nonlinear device evaluations that ran the full model.
    pub device_evals: u64,
    /// Nonlinear device evaluations skipped by the bypass layer.
    pub device_bypasses: u64,
    /// Newton steps scaled down by per-device voltage limiting.
    pub limiter_clamps: u64,
    /// Armijo line-search backtracks (step halvings actually taken).
    pub armijo_backtracks: u64,
    /// Pseudo-transient continuation stages that converged.
    pub ptc_steps: u64,
}

impl EngineCounters {
    /// The counts accumulated since `baseline` (saturating, so a stale
    /// baseline from a different engine degrades to the raw counts).
    pub fn delta_since(&self, baseline: &EngineCounters) -> EngineCounters {
        EngineCounters {
            factorizations: self.factorizations.saturating_sub(baseline.factorizations),
            factor_ops: self.factor_ops.saturating_sub(baseline.factor_ops),
            symbolic_factorizations: self
                .symbolic_factorizations
                .saturating_sub(baseline.symbolic_factorizations),
            replay_refactorizations: self
                .replay_refactorizations
                .saturating_sub(baseline.replay_refactorizations),
            partial_refactorizations: self
                .partial_refactorizations
                .saturating_sub(baseline.partial_refactorizations),
            columns_recomputed: self
                .columns_recomputed
                .saturating_sub(baseline.columns_recomputed),
            columns_total: self.columns_total.saturating_sub(baseline.columns_total),
            device_evals: self.device_evals.saturating_sub(baseline.device_evals),
            device_bypasses: self
                .device_bypasses
                .saturating_sub(baseline.device_bypasses),
            limiter_clamps: self.limiter_clamps.saturating_sub(baseline.limiter_clamps),
            armijo_backtracks: self
                .armijo_backtracks
                .saturating_sub(baseline.armijo_backtracks),
            ptc_steps: self.ptc_steps.saturating_sub(baseline.ptc_steps),
        }
    }
}

/// The highest rung of the convergence-robustness ladder a Newton solve
/// climbed to: plain Newton steps, per-device voltage limiting, Armijo
/// backtracking, or the pseudo-transient continuation rescue. Rungs are
/// ordered — a solve reported as [`NewtonStrategy::Ptc`] typically also
/// exercised limiting and damping on the way up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NewtonStrategy {
    /// Full (unclamped, undamped) Newton steps sufficed.
    #[default]
    Newton,
    /// Voltage limiting clamped at least one step.
    Limited,
    /// The Armijo line search backtracked at least once.
    Damped,
    /// The cycle detector proved a limit cycle and pseudo-transient
    /// continuation ran.
    Ptc,
}

impl NewtonStrategy {
    /// Short human-readable name of this strategy rung.
    pub fn as_str(self) -> &'static str {
        match self {
            NewtonStrategy::Newton => "newton",
            NewtonStrategy::Limited => "voltage limiting",
            NewtonStrategy::Damped => "armijo damping",
            NewtonStrategy::Ptc => "pseudo-transient",
        }
    }
}

impl fmt::Display for NewtonStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Post-mortem of the most recent Newton solve, harvested with
/// [`NewtonEngine::last_report`]: which strategy rung it ended on, how
/// hard it worked, and — crucially for debugging a failing deck — the
/// worst-residual unknown *by name*. Attached to
/// [`CircuitError::NoConvergence`] and
/// [`CircuitError::TimestepTooSmall`] so a failure names the node that
/// refused to settle instead of just a number.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergenceReport {
    /// Highest strategy rung exercised.
    pub strategy: NewtonStrategy,
    /// Newton iterations performed (across PTC stages if any ran).
    pub iterations: usize,
    /// Final residual infinity norm.
    pub residual: f64,
    /// Name of the unknown with the largest final residual (a node
    /// name, `i(NAME)` for a source branch current, `internal(NAME)`
    /// for an element's internal unknown).
    pub worst_unknown: String,
    /// Newton steps scaled down by voltage limiting during this solve.
    pub limiter_clamps: u64,
    /// Armijo backtracks taken during this solve.
    pub armijo_backtracks: u64,
    /// Converged pseudo-transient continuation stages of this solve.
    pub ptc_steps: u64,
}

impl ConvergenceReport {
    /// The strategy rungs this solve actually exercised, joined with
    /// `" → "` — e.g. `"newton → armijo damping → pseudo-transient"`.
    pub fn ladder(&self) -> String {
        let mut rungs = vec![NewtonStrategy::Newton.as_str()];
        if self.limiter_clamps > 0 {
            rungs.push(NewtonStrategy::Limited.as_str());
        }
        if self.armijo_backtracks > 0 {
            rungs.push(NewtonStrategy::Damped.as_str());
        }
        if self.ptc_steps > 0 || self.strategy == NewtonStrategy::Ptc {
            rungs.push(NewtonStrategy::Ptc.as_str());
        }
        rungs.join(" → ")
    }
}

impl fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let worst = if self.worst_unknown.is_empty() {
            "?"
        } else {
            &self.worst_unknown
        };
        write!(
            f,
            "worst unknown {worst} (|F| = {:.3e}), strategies tried: {}",
            self.residual,
            self.ladder()
        )
    }
}

/// Temporary pseudo-transient regularization applied by a rescue stage:
/// adds `g·(x[i] − anchor[i])` to every masked row, folded into the
/// reserved diagonal slots. The mask is frozen once per rescue (node
/// rows whose dynamic loading is below the initial [`PTC_G0`]) so the
/// critical weakly-loaded row cannot drop out of the regularized set
/// as `g` ramps down past its tiny-but-nonzero companion load.
struct PtcTerm<'a> {
    g: f64,
    anchor: &'a [f64],
    mask: &'a [bool],
}

#[derive(Debug)]
/// How a [`NewtonEngine::run_newton_loop`] call ended (convergence
/// errors excluded — those are `Err`).
enum LoopExit {
    /// Converged after this many iterations.
    Converged(usize),
    /// An accepted iterate recurred bitwise: the deterministic iterate
    /// map is in a limit cycle and can never converge. Carries the
    /// iterations spent proving it.
    Stalled(usize),
    /// The iteration budget ran out without convergence or a proven
    /// cycle.
    Exhausted,
}

/// Minimal per-solve trace kept by the engine so the worst unknown can
/// be resolved to a name lazily (names cost an O(nodes) scan).
#[derive(Debug, Clone)]
struct SolveTrace {
    strategy: NewtonStrategy,
    iterations: usize,
    residual: f64,
    worst: usize,
    limiter_clamps: u64,
    armijo_backtracks: u64,
    ptc_steps: u64,
}

/// Hard cap on the per-iteration step infinity norm *inside
/// pseudo-transient rescue stages* (volts). The limit cycles this
/// rescues are overshoot oscillations of a few hundred mV around a
/// weakly-conducting balance point; capping the step turns the bounce
/// into a monotone walk. Never applied to plain solves, so converging
/// decks stay bitwise-identical.
const PTC_STEP_CAP: f64 = 0.1;

/// Initial pseudo-transient stiffness (siemens) and the frozen
/// weakly-loaded-row threshold: rows whose dynamic (companion)
/// conductance is below this at the stall point get the `g·(x −
/// anchor)` regularization for the whole rescue ramp.
const PTC_G0: f64 = 1e-3;

/// Stage budget for one pseudo-transient rescue. Marching at the floor
/// stiffness contracts the remaining error geometrically per stage, so
/// the budget bounds pathological cases, not healthy rescues.
const PTC_MAX_STAGES: usize = 256;

/// Starting conductance-to-ground of the gmin-stepping rescue rung
/// (siemens): strong enough that the first stage is nearly linear.
const GMIN_STEP_START: f64 = 1e-3;

/// Geometric ramp factor of the gmin-stepping ladder.
const GMIN_STEP_FACTOR: f64 = 0.1;

/// The gmin ladder stops ramping below this conductance (siemens) and
/// hands over to the final stage at the caller's own gmin: below
/// ~1e-12 S the stepping solutions are indistinguishable from the
/// unregularized one at the engine's current tolerances.
const GMIN_STEP_FLOOR: f64 = 1e-12;

/// Stage budget of one gmin-stepping rescue: 9 decades at the initial
/// ×0.1 factor plus generous room for adaptive back-offs.
const GMIN_MAX_STAGES: usize = 256;

/// The gmin ladder gives up once adaptive back-off has pushed its ramp
/// factor this close to 1: progress per stage is then too small to
/// ever reach the floor.
const GMIN_FACTOR_GIVEUP: f64 = 0.97;

/// Consecutive failed (stiffen-and-restore) pseudo-transient stages
/// tolerated without the true residual improving on its best-seen
/// value; past this the see-saw is provably not progressing and the
/// rescue hands over to gmin stepping instead of burning its full
/// stage budget.
const PTC_MAX_STIFFENS: usize = 8;

/// Consecutive near-flat accepted iterates before the stagnation stall
/// trigger may fire (see `run_newton_loop`). Wide enough that transient
/// plateaus of healthy solves never accumulate it.
const STALL_WINDOW: usize = 24;

/// Relative residual-norm change below which an accepted iterate counts
/// as stagnant. The observed limit cycles drift by ~1e-6 relative per
/// period; healthy Newton progress is orders of magnitude faster.
const STALL_RTOL: f64 = 1e-5;

/// Nonmonotone breakout steps a *rescue* stage may spend before its
/// stall detector is allowed to end the stage. The Armijo condition's
/// monotone-decrease demand can trap the iterate at a residual ridge —
/// a local minimum of ‖f‖ where the root lies on the far side and
/// every damped step is rejected down to the smallest trial. A
/// breakout accepts the full (limited, capped) Newton step without the
/// sufficient-decrease test, letting the residual rise temporarily to
/// cross the ridge. Plain solves never break out, so converging decks
/// stay bitwise-identical.
const NEWTON_BREAKOUTS: usize = 3;

/// FNV-1a over the raw bit patterns — a cheap fingerprint for the
/// bitwise iterate-cycle detector.
fn bits_hash(v: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in v {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// The reusable damped-Newton core.
///
/// Create one engine per solve context (a [`crate::sim::Simulator`]
/// session, a whole sweep, a whole transient run) and feed it the same
/// circuit repeatedly: the sparsity pattern, solver ordering and work
/// buffers persist across calls. The DC and transient analysis kinds
/// each own a cache slot, so a session that alternates between
/// operating points and transient/AC work (the normal rhythm of a
/// bias-then-analyse flow) never thrashes its patterns. Engines are
/// cheap to create, hold no circuit reference, and are independent —
/// parallel sweep jobs each own one.
#[derive(Debug)]
pub struct NewtonEngine {
    opts: NewtonOptions,
    /// One cache per analysis kind: `[DC, transient]`.
    caches: [Option<Cache>; 2],
    /// Index into `caches` of the most recently ensured kind.
    active: usize,
    residual: Vec<f64>,
    pattern_builds: usize,
    factorizations: u64,
    factor_ops_total: u64,
    /// Engine-lifetime factorization-path stats, accumulated as deltas
    /// from each cache's solver so they survive cache rebuilds.
    path: FactorPathStats,
    device_evals: u64,
    device_bypasses: u64,
    limiter_clamps: u64,
    armijo_backtracks: u64,
    ptc_steps: u64,
    /// Trace of the most recent [`NewtonEngine::newton`] solve, kept so
    /// [`NewtonEngine::last_report`] can resolve the worst unknown to a
    /// name lazily.
    last_trace: Option<SolveTrace>,
    /// Cooperative cancellation flag, polled once per Newton iteration.
    cancel: Option<Arc<AtomicBool>>,
}

impl NewtonEngine {
    /// Creates an engine with the given options.
    pub fn new(opts: NewtonOptions) -> Self {
        NewtonEngine {
            opts,
            caches: [None, None],
            active: 0,
            residual: Vec::new(),
            pattern_builds: 0,
            factorizations: 0,
            factor_ops_total: 0,
            path: FactorPathStats::default(),
            device_evals: 0,
            device_bypasses: 0,
            limiter_clamps: 0,
            armijo_backtracks: 0,
            ptc_steps: 0,
            last_trace: None,
            cancel: None,
        }
    }

    fn cache(&self) -> Option<&Cache> {
        self.caches[self.active].as_ref()
    }

    /// The options this engine runs with.
    pub fn options(&self) -> &NewtonOptions {
        &self.opts
    }

    /// Replaces the engine's options in place. A long-lived engine (e.g.
    /// inside a [`crate::sim::Simulator`] session) uses this to honour
    /// per-analysis Newton settings without discarding its caches: the
    /// cached pattern and solver survive unless the new options change
    /// the solver selection for the current circuit, in which case the
    /// next solve transparently rebuilds them.
    pub fn set_options(&mut self, opts: NewtonOptions) {
        self.opts = opts;
    }

    /// Installs (or clears) a cooperative cancellation flag. The engine
    /// polls it once at the top of every Newton iteration, and the
    /// transient cores additionally poll once per step attempt, so a
    /// cancelled analysis stops within one accepted step and returns
    /// [`CircuitError::Cancelled`]. The flag is shared: a controller
    /// thread sets it with [`AtomicBool::store`] while the solve runs on
    /// a worker. Cancellation leaves the engine's caches intact and
    /// reusable.
    pub fn set_cancel(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.cancel = cancel;
    }

    /// Whether the installed cancellation flag (if any) has been raised.
    pub fn cancel_requested(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Returns [`CircuitError::Cancelled`] when the flag is raised —
    /// the poll used by every analysis loop.
    pub fn check_cancel(&self) -> Result<(), CircuitError> {
        if self.cancel_requested() {
            Err(CircuitError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Re-keys the engine's caches onto another [`Circuit`] with the
    /// *identical MNA structure* — the warm-session seam of the
    /// persistent server. A deck re-lowered from text produces a fresh
    /// `Circuit` whose `id`/`revision` differ even when its stamp
    /// sequence is identical; without rebinding, the engine would
    /// discard its symbolic analysis (pattern, pivot order, fill-in
    /// plan) and redo it from scratch.
    ///
    /// For each cached analysis kind whose unknown count and
    /// extra-variable bases match the new circuit, the cache is re-keyed
    /// in place: the recorded pattern, tracked write sequence and frozen
    /// solver plan survive, while everything value-dependent is reset —
    /// the structural-rank verdict, the partial-refactorization baseline
    /// and the per-device bypass caches — so no numerical state leaks
    /// between circuits. Incompatible slots are dropped and rebuild
    /// lazily.
    ///
    /// **Caller contract:** the new circuit must stamp the same slot
    /// sequence (same element kinds and node wiring, values free). Keyed
    /// lookups via [`crate::deck::Deck::topology_hash`] guarantee this;
    /// a mismatched caller is caught by the assembler's pattern guard.
    pub fn rebind(&mut self, circuit: &Circuit) {
        let unknowns = circuit.unknown_count();
        let bases = circuit.extra_var_bases();
        let elements = circuit.elements().len();
        for slot in &mut self.caches {
            let compatible = slot
                .as_ref()
                .is_some_and(|c| c.unknowns == unknowns && c.bases == bases);
            if compatible {
                let c = slot.as_mut().expect("checked above");
                c.circuit_id = circuit.id();
                c.revision = circuit.revision();
                c.struct_ok = false;
                c.prev_valid = false;
                c.prev_values.clear();
                c.states.clear();
                c.states.resize_with(elements, DeviceState::default);
            } else {
                *slot = None;
            }
        }
    }

    /// Whether any analysis kind holds a warm cache (pattern + solver
    /// plan) that [`NewtonEngine::rebind`] could carry to a new circuit.
    pub fn is_warm(&self) -> bool {
        self.caches.iter().any(Option::is_some)
    }

    /// How many times this engine has (re)built a sparsity pattern —
    /// 1 after the first solve, +1 per structural change of the circuit
    /// and +1 the first time each further analysis kind (DC vs
    /// transient) is used. The two kinds cache independently, so
    /// alternating between them does not rebuild.
    pub fn pattern_builds(&self) -> usize {
        self.pattern_builds
    }

    /// Name of the linear solver cached for the most recently used
    /// analysis kind, if any.
    pub fn solver_name(&self) -> Option<&'static str> {
        self.cache().map(|c| c.solver.name())
    }

    /// Operation count of the most recent factorisation (0 before any).
    pub fn last_factor_ops(&self) -> u64 {
        self.cache().map_or(0, |c| c.solver.factor_ops())
    }

    /// Total number of Jacobian factorisations performed over this
    /// engine's lifetime (one per Newton iteration that reached the
    /// linear solve).
    pub fn total_factorizations(&self) -> u64 {
        self.factorizations
    }

    /// Cumulative multiply–accumulate/divide operation count across all
    /// factorisations of this engine's lifetime. Together with
    /// [`NewtonEngine::total_factorizations`] this lets analyses report
    /// linear-algebra cost (e.g. the `transient_scaling` bench's
    /// fixed-vs-adaptive comparison) without instrumenting the solver.
    pub fn total_factor_ops(&self) -> u64 {
        self.factor_ops_total
    }

    /// Snapshot of every engine-lifetime hot-path counter. Capture one
    /// before an analysis and diff with [`EngineCounters::delta_since`]
    /// after it for clean per-analysis numbers on a shared session.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            factorizations: self.factorizations,
            factor_ops: self.factor_ops_total,
            symbolic_factorizations: self.path.symbolic_factorizations,
            replay_refactorizations: self.path.replay_refactorizations,
            partial_refactorizations: self.path.partial_refactorizations,
            columns_recomputed: self.path.columns_recomputed,
            columns_total: self.path.columns_total,
            device_evals: self.device_evals,
            device_bypasses: self.device_bypasses,
            limiter_clamps: self.limiter_clamps,
            armijo_backtracks: self.armijo_backtracks,
            ptc_steps: self.ptc_steps,
        }
    }

    /// Post-mortem of the most recent [`NewtonEngine::newton`] solve
    /// (`None` before any). The worst-residual unknown is resolved to a
    /// name here — lazily, off the hot path — against the given
    /// circuit, which must be the one the solve ran on.
    pub fn last_report(&self, circuit: &Circuit) -> Option<ConvergenceReport> {
        let t = self.last_trace.as_ref()?;
        let worst_unknown = if t.worst < circuit.unknown_count() {
            let bases = circuit.extra_var_bases();
            unknown_name(circuit, &bases, t.worst)
        } else {
            format!("unknown #{}", t.worst)
        };
        Some(ConvergenceReport {
            strategy: t.strategy,
            iterations: t.iterations,
            residual: t.residual,
            worst_unknown,
            limiter_clamps: t.limiter_clamps,
            armijo_backtracks: t.armijo_backtracks,
            ptc_steps: t.ptc_steps,
        })
    }

    fn ensure_cache(&mut self, circuit: &Circuit, transient: bool) {
        let unknowns = circuit.unknown_count();
        let revision = circuit.revision();
        let sparse = match self.opts.solver {
            SolverKind::Dense => false,
            SolverKind::Sparse => true,
            SolverKind::Auto => unknowns >= self.opts.sparse_threshold,
        };
        self.active = usize::from(transient);
        let fresh = !self.cache().is_some_and(|c| {
            c.circuit_id == circuit.id()
                && c.revision == revision
                && c.unknowns == unknowns
                && c.sparse == sparse
        });
        if fresh {
            let solver: Box<dyn LinearSolver> = if sparse {
                Box::new(SparseLuSolver::new())
            } else {
                Box::new(DenseLuSolver::new())
            };
            let mut asm = PatternAssembler::new(unknowns, unknowns);
            // Record the per-add slot sequence during the pattern build
            // so every later re-stamp replays direct slot writes.
            asm.set_track_writes(true);
            self.caches[self.active] = Some(Cache {
                circuit_id: circuit.id(),
                revision,
                unknowns,
                sparse,
                asm,
                solver,
                bases: circuit.extra_var_bases(),
                struct_ok: false,
                states: circuit
                    .elements()
                    .iter()
                    .map(|_| DeviceState::default())
                    .collect(),
                prev_values: Vec::new(),
                prev_valid: false,
                changed: Vec::new(),
                last_path: FactorPathStats::default(),
            });
            self.pattern_builds += 1;
        }
        if self.residual.len() != unknowns {
            self.residual = vec![0.0; unknowns];
        }
    }

    /// Assembles `F(x)` and `J(x)` into the engine's reused buffers.
    /// `ptc` (only `Some` inside a pseudo-transient rescue stage) adds
    /// its diagonal regularization through the reserved gmin slots.
    fn assemble_into(
        &mut self,
        circuit: &Circuit,
        x: &[f64],
        mode: &AnalysisMode,
        gmin: f64,
        ptc: Option<&PtcTerm<'_>>,
    ) {
        self.ensure_cache(circuit, matches!(mode, AnalysisMode::Transient(_)));
        let active = self.active;
        let cache = self.caches[active].as_mut().expect("cache ensured above");
        self.residual.iter_mut().for_each(|v| *v = 0.0);
        cache.asm.begin();
        {
            // A negative tolerance disables the bypass while keeping
            // each device's evaluation cache warm (and its eval counted).
            let vtol = if self.opts.bypass {
                self.opts.bypass_vtol
            } else {
                -1.0
            };
            let mut mna = Mna::new(&mut self.residual, &mut cache.asm);
            let elements = circuit.elements().iter().zip(&cache.bases);
            for ((e, &base), state) in elements.zip(&mut cache.states) {
                match e.stamp_cached(x, base, mode, &mut mna, state, vtol) {
                    StampOutcome::Evaluated => self.device_evals += 1,
                    StampOutcome::Bypassed => self.device_bypasses += 1,
                    StampOutcome::Static => {}
                }
            }
        }
        // Structural diagonal: reserves every (i, i) slot so the gmin
        // ramp, the pseudo-transient regularization and the pivot search
        // always have a diagonal to write to, regardless of which values
        // recorded the pattern. A gmin leak from every node to ground
        // keeps the matrix non-singular while far from convergence.
        // Both branches issue one add() per diagonal in the same order,
        // so the tracked write sequence is identical either way.
        let nodes = circuit.node_count();
        match ptc {
            None => {
                if gmin > 0.0 {
                    for (i, (ri, &xi)) in self.residual.iter_mut().zip(x).take(nodes).enumerate() {
                        *ri += gmin * xi;
                        cache.asm.add(i, i, gmin);
                    }
                } else {
                    for i in 0..nodes {
                        cache.asm.add(i, i, 0.0);
                    }
                }
                for i in nodes..cache.unknowns {
                    cache.asm.add(i, i, 0.0);
                }
            }
            Some(p) => {
                let rows = self
                    .residual
                    .iter_mut()
                    .zip(x)
                    .zip(p.mask.iter().zip(p.anchor))
                    .enumerate()
                    .take(cache.unknowns);
                for (i, ((ri, &xi), (&masked, &anchor))) in rows {
                    let base = if i < nodes && gmin > 0.0 { gmin } else { 0.0 };
                    let reg = if masked { p.g } else { 0.0 };
                    if base > 0.0 {
                        *ri += base * xi;
                    }
                    if reg > 0.0 {
                        *ri += reg * (xi - anchor);
                    }
                    cache.asm.add(i, i, base + reg);
                }
            }
        }
        cache.asm.finish();
    }

    /// Assembles and returns `F(x)` and the CSR Jacobian at `x` — the
    /// entry point used by benchmarks and tests that want to inspect or
    /// factor the system directly.
    pub fn assemble(
        &mut self,
        circuit: &Circuit,
        x: &[f64],
        mode: &AnalysisMode,
        gmin: f64,
    ) -> (&[f64], &CsrMatrix) {
        self.assemble_into(circuit, x, mode, gmin, None);
        let cache = self.cache().expect("cache ensured by assemble");
        (
            &self.residual,
            cache.asm.matrix().expect("assembly finished"),
        )
    }

    /// Row-wise convergence on the engine's current residual: node rows
    /// are currents (A), element rows mix volts (source constraints) and
    /// C/m (CNFET charge balance); one absolute threshold per class.
    fn converged(&self, circuit: &Circuit) -> bool {
        let n_nodes = circuit.node_count();
        self.residual.iter().enumerate().all(|(i, v)| {
            let tol = if i < n_nodes {
                self.opts.node_current_tol
            } else {
                self.opts.extra_row_tol
            };
            v.abs() < tol
        })
    }

    /// One pass of the damped-Newton iteration, shared by the plain
    /// solve and every pseudo-transient rescue stage. Each trial point
    /// of the line search is assembled exactly once: the accepted
    /// trial's residual/Jacobian stay in the engine buffers and seed
    /// the next iteration, and when no damping step satisfies the
    /// Armijo condition the smallest already-assembled step is adopted
    /// as-is (Newton may still escape a shallow plateau).
    ///
    /// With `detect_cycles` on, two stall triggers exit
    /// [`LoopExit::Stalled`] rather than burning the rest of the
    /// budget:
    ///
    /// * **bitwise recurrence** of an accepted iterate — a *proof* of a
    ///   limit cycle, since assembly depends only on `x` (bypass off)
    ///   and the partial refactorization is bitwise-exact, so the
    ///   iterate map is deterministic;
    /// * **non-monotone stagnation** — [`STALL_WINDOW`] consecutive
    ///   accepted iterates whose residual norm changes by less than
    ///   [`STALL_RTOL`] relatively, at least one of them an *increase*.
    ///   This catches the practical limit cycle that oscillates between
    ///   two points with a slow last-bit drift (so it never recurs
    ///   bitwise); the increase requirement keeps a slowly *converging*
    ///   crawl (monotone decrease) from ever tripping it.
    #[allow(clippy::too_many_arguments)]
    fn run_newton_loop(
        &mut self,
        circuit: &Circuit,
        x: &mut [f64],
        mode: &AnalysisMode,
        gmin: f64,
        ptc: Option<&PtcTerm<'_>>,
        detect_cycles: bool,
        rescue_cap: bool,
    ) -> Result<LoopExit, CircuitError> {
        let n = x.len();
        self.assemble_into(circuit, x, mode, gmin, ptc);
        let mut fnorm = inf_norm(&self.residual);
        let mut neg_f = vec![0.0; n];
        let mut trial = vec![0.0; n];
        let max_iter = self.opts.max_iter;
        let max_halvings = self.opts.max_step_halvings;
        let c1 = self.opts.armijo_c1;
        // Like the stall detector, voltage limiting assumes stamps are a
        // pure function of `x`. The bypass layer's history-dependent
        // stamps break that: a limited step changes which devices get
        // bypassed on later iterates, and the first-order-corrected
        // cached stamps can then disagree with the limiter's trajectory
        // enough to stall the solve. Bypass runs keep the seed's plain
        // Newton + Armijo behavior instead.
        let limiting = self.opts.limiting && !self.opts.bypass;
        let mut visited: Vec<(u64, Vec<f64>)> = Vec::new();
        if detect_cycles {
            visited.push((bits_hash(x), x.to_vec()));
        }
        let mut stagnant = 0usize;
        let mut saw_increase = false;
        let mut prev_fnorm = fnorm;
        // Rescue stages may escape a residual ridge a few times before
        // the stall detector ends the stage (see [`NEWTON_BREAKOUTS`]).
        let mut breakouts = if detect_cycles && rescue_cap {
            NEWTON_BREAKOUTS
        } else {
            0
        };
        let mut force_full = false;
        for it in 0..max_iter {
            self.check_cancel()?;
            if self.converged(circuit) {
                return Ok(LoopExit::Converged(it));
            }
            let mut dx = {
                for (nf, f) in neg_f.iter_mut().zip(&self.residual) {
                    *nf = -f;
                }
                let cache = self.caches[self.active].as_mut().expect("assembled above");
                let a = cache.asm.matrix().expect("assembled above");
                // Diff the assembled values against the last successful
                // factorization and replay only the affected columns.
                // Slots holding bitwise-equal values need no recompute,
                // so the partial path is exact, not approximate.
                let use_partial = self.opts.partial_refactor
                    && cache.sparse
                    && cache.prev_valid
                    && cache.prev_values.len() == a.values().len();
                let factored = if use_partial {
                    cache.changed.clear();
                    let pairs = a.values().iter().zip(&cache.prev_values);
                    for (slot, (new, old)) in pairs.enumerate() {
                        if new.to_bits() != old.to_bits() {
                            cache.changed.push(slot);
                        }
                    }
                    cache.solver.factor_partial(a, &cache.changed)
                } else {
                    cache.solver.factor(a)
                };
                let path = cache.solver.factor_stats();
                self.path += path.delta_since(&cache.last_path);
                cache.last_path = path;
                match factored {
                    Ok(()) => {
                        cache.prev_values.clear();
                        cache.prev_values.extend_from_slice(a.values());
                        cache.prev_valid = true;
                    }
                    Err(e) => {
                        cache.prev_valid = false;
                        return Err(CircuitError::SingularSystem(format!("{e}")));
                    }
                }
                self.factorizations += 1;
                self.factor_ops_total += cache.solver.factor_ops();
                cache
                    .solver
                    .solve_factored(&neg_f)
                    .map_err(|e| CircuitError::SingularSystem(format!("{e}")))?
            };
            // Per-device voltage limiting: each element may cap its own
            // controlling-voltage swing; the tightest cap scales the
            // whole step so the direction is preserved. A step within
            // every device's limits passes through bitwise-untouched.
            if limiting {
                let mut scale = 1.0f64;
                {
                    let cache = self.caches[self.active].as_ref().expect("assembled above");
                    for (e, &base) in circuit.elements().iter().zip(&cache.bases) {
                        if let Some(s) = e.limit_step(x, &dx, base) {
                            if s < scale {
                                scale = s;
                            }
                        }
                    }
                }
                if scale < 1.0 {
                    for d in dx.iter_mut() {
                        *d *= scale;
                    }
                    self.limiter_clamps += 1;
                }
            }
            // Rescue stages additionally cap the raw step size: the
            // pathologies being rescued (overshoot oscillations,
            // near-degenerate subthreshold rows proposing volts-sized
            // moves) both yield to a bounded walk toward the balance
            // point instead of a bounce across it.
            if rescue_cap {
                let mx = inf_norm(&dx);
                if mx > PTC_STEP_CAP {
                    let s = PTC_STEP_CAP / mx;
                    for d in dx.iter_mut() {
                        *d *= s;
                    }
                }
            }
            // Armijo line search: halve the step until the residual
            // satisfies the sufficient-decrease condition; adopt the
            // final (smallest) trial unconditionally.
            let mut alpha = 1.0;
            let unconditional = std::mem::take(&mut force_full);
            for h in 0..=max_halvings {
                for ((t, &xi), &di) in trial.iter_mut().zip(x.iter()).zip(&dx) {
                    *t = xi + alpha * di;
                }
                self.assemble_into(circuit, &trial, mode, gmin, ptc);
                let tnorm = inf_norm(&self.residual);
                let improved =
                    unconditional || tnorm <= fnorm * (1.0 - c1 * alpha) || tnorm < 1e-18;
                if improved || h == max_halvings {
                    x.copy_from_slice(&trial);
                    fnorm = tnorm;
                    break;
                }
                alpha *= 0.5;
                self.armijo_backtracks += 1;
            }
            if detect_cycles {
                let h = bits_hash(x);
                let recurred = visited.iter().any(|(vh, vx)| *vh == h && bitwise_eq(vx, x));
                let mut stalled = recurred;
                if !recurred {
                    visited.push((h, x.to_vec()));
                    if (fnorm - prev_fnorm).abs() <= STALL_RTOL * prev_fnorm {
                        stagnant += 1;
                        if fnorm > prev_fnorm {
                            saw_increase = true;
                        }
                        stalled = stagnant >= STALL_WINDOW && saw_increase;
                    } else {
                        stagnant = 0;
                        saw_increase = false;
                    }
                }
                prev_fnorm = fnorm;
                if stalled {
                    if breakouts == 0 {
                        return Ok(LoopExit::Stalled(it + 1));
                    }
                    // Trapped at a residual ridge: spend a breakout —
                    // the next step is accepted at full length without
                    // the sufficient-decrease test — and rearm the
                    // detector for the new trajectory.
                    breakouts -= 1;
                    force_full = true;
                    visited.clear();
                    stagnant = 0;
                    saw_increase = false;
                }
            }
        }
        if self.converged(circuit) {
            return Ok(LoopExit::Converged(max_iter));
        }
        Ok(LoopExit::Exhausted)
    }

    /// Runs one Newton solve from `x0` at the given analysis mode and
    /// gmin, climbing the robustness ladder as needed: full Newton
    /// steps → per-device voltage limiting → Armijo backtracking →
    /// (on a *proven* limit cycle) pseudo-transient continuation. A
    /// solve that converges without the higher rungs reproduces the
    /// historical floating-point stream bit-for-bit. The post-mortem of
    /// every solve is retrievable via [`NewtonEngine::last_report`].
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] when the Jacobian cannot be
    /// factored, [`CircuitError::NoConvergence`] (carrying a
    /// [`ConvergenceReport`]) when the whole ladder fails,
    /// [`CircuitError::Cancelled`] when the installed cancellation flag
    /// is raised mid-iteration.
    pub fn newton(
        &mut self,
        circuit: &Circuit,
        x0: &[f64],
        mode: &AnalysisMode,
        gmin: f64,
    ) -> Result<(Vec<f64>, usize), CircuitError> {
        let n = circuit.unknown_count();
        if n == 0 {
            return Ok((Vec::new(), 0));
        }
        let started = self.counters();
        let mut x = x0.to_vec();
        // Cycle detection requires the iterate map to be a pure
        // function of x; the bypass layer's history-dependent stamps
        // break that, so it disables the detector (and with it PTC).
        let detect = self.opts.ptc && !self.opts.bypass;
        let mut ptc_used = false;
        let solved: Result<usize, CircuitError> =
            match self.run_newton_loop(circuit, &mut x, mode, gmin, None, detect, false) {
                Ok(LoopExit::Converged(it)) => Ok(it),
                // A proven stall escalates early; a burnt-out budget
                // escalates late. Either way the plain iteration has
                // failed — historically a hard error — so the rescue
                // can only fix decks, never perturb converging ones.
                Ok(LoopExit::Stalled(it)) => {
                    ptc_used = true;
                    self.rescue(circuit, &mut x, x0, mode, gmin, it)
                }
                Ok(LoopExit::Exhausted) if detect => {
                    ptc_used = true;
                    self.rescue(circuit, &mut x, x0, mode, gmin, self.opts.max_iter)
                }
                Ok(LoopExit::Exhausted) => Err(CircuitError::NoConvergence {
                    iterations: self.opts.max_iter,
                    residual: inf_norm(&self.residual),
                    report: ConvergenceReport::default(),
                }),
                Err(e) => Err(e),
            };
        let delta = self.counters().delta_since(&started);
        let strategy = if ptc_used {
            NewtonStrategy::Ptc
        } else if delta.armijo_backtracks > 0 {
            NewtonStrategy::Damped
        } else if delta.limiter_clamps > 0 {
            NewtonStrategy::Limited
        } else {
            NewtonStrategy::Newton
        };
        let worst = self
            .residual
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.abs()
                    .partial_cmp(&b.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map_or(0, |(i, _)| i);
        let iterations = match &solved {
            Ok(it) => *it,
            Err(CircuitError::NoConvergence { iterations, .. }) => *iterations,
            Err(_) => self.opts.max_iter,
        };
        self.last_trace = Some(SolveTrace {
            strategy,
            iterations,
            residual: inf_norm(&self.residual),
            worst,
            limiter_clamps: delta.limiter_clamps,
            armijo_backtracks: delta.armijo_backtracks,
            ptc_steps: delta.ptc_steps,
        });
        match solved {
            Ok(it) => Ok((x, it)),
            Err(CircuitError::NoConvergence {
                iterations,
                residual,
                ..
            }) => {
                let report = self.last_report(circuit).unwrap_or_default();
                Err(CircuitError::NoConvergence {
                    iterations,
                    residual,
                    report,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// The per-row dynamic (charge/companion) loading at `x`: how
    /// strongly each unknown is damped by the integration stamp. At DC
    /// every unknown is algebraic (zero load everywhere); in transient
    /// mode it is the absolute difference between the transient and DC
    /// Jacobian diagonals at the same point — exactly the `C·a0`
    /// companion conductance for capacitive rows, and ~0 for the
    /// (nearly) algebraic rows the pseudo-transient rescue targets.
    fn dynamic_load(
        &mut self,
        circuit: &Circuit,
        x: &[f64],
        mode: &AnalysisMode,
        gmin: f64,
    ) -> Vec<f64> {
        let n = circuit.unknown_count();
        if matches!(mode, AnalysisMode::Dc) {
            return vec![0.0; n];
        }
        self.assemble_into(circuit, x, mode, gmin, None);
        let diag_t: Vec<f64> = {
            let m = self
                .cache()
                .and_then(|c| c.asm.matrix())
                .expect("assembly finished");
            (0..n).map(|i| m.get(i, i)).collect()
        };
        self.assemble_into(circuit, x, &AnalysisMode::Dc, gmin, None);
        let diag_dc: Vec<f64> = {
            let m = self
                .cache()
                .and_then(|c| c.asm.matrix())
                .expect("assembly finished");
            (0..n).map(|i| m.get(i, i)).collect()
        };
        diag_t
            .iter()
            .zip(&diag_dc)
            .map(|(t, d)| (t - d).abs())
            .collect()
    }

    /// The two-stage rescue behind a failed plain solve: pseudo-
    /// transient continuation first, and — should the PTC ramp itself
    /// fail — gmin stepping restarted from the solve's entry point
    /// `x0`. Both only ever run on solves that were already lost, so
    /// converging decks never see them.
    fn rescue(
        &mut self,
        circuit: &Circuit,
        x: &mut [f64],
        x0: &[f64],
        mode: &AnalysisMode,
        gmin: f64,
        iters_used: usize,
    ) -> Result<usize, CircuitError> {
        match self.ptc_rescue(circuit, x, mode, gmin, iters_used) {
            Err(CircuitError::NoConvergence { iterations, .. }) => {
                x.copy_from_slice(x0);
                self.gmin_rescue(circuit, x, mode, gmin, iterations)
            }
            other => other,
        }
    }

    /// Gmin stepping, the final rescue rung: solves the system with a
    /// strong conductance to ground on every node diagonal (through
    /// the reserved gmin slots, so no re-pattern) and ramps it down
    /// geometrically to the caller's `gmin`, warm-starting each stage
    /// from the previous stage's solution. Unlike the PTC term, which
    /// anchors at the current (possibly poisoned) iterate, the gmin
    /// ladder anchors every node toward ground — exactly what carries
    /// subthreshold leakage dividers (series stacks that just switched
    /// off) whose rows are too weak for Newton from any distant point.
    ///
    /// The ramp is adaptive: a stage that fails restores the last
    /// converged stage's solution and retries with a gentler factor
    /// (square root of the current one), so an exponential row whose
    /// solution moves too far per decade gets as many intermediate
    /// rungs as it needs. Each converged stage counts toward
    /// `ptc_steps` — both rungs are continuation methods and report as
    /// one.
    fn gmin_rescue(
        &mut self,
        circuit: &Circuit,
        x: &mut [f64],
        mode: &AnalysisMode,
        gmin: f64,
        iters_used: usize,
    ) -> Result<usize, CircuitError> {
        let mut total = iters_used;
        let mut g = GMIN_STEP_START;
        let mut factor = GMIN_STEP_FACTOR;
        // Last converged rung: (conductance, solution).
        let mut good: Option<(f64, Vec<f64>)> = None;
        let floor = GMIN_STEP_FLOOR.max(gmin);
        for _stage in 0..GMIN_MAX_STAGES {
            let exit = self.run_newton_loop(circuit, x, mode, g, None, true, true)?;
            match exit {
                LoopExit::Converged(it) => {
                    total += it;
                    self.ptc_steps += 1;
                    if g <= floor {
                        break;
                    }
                    good = Some((g, x.to_vec()));
                    g = (g * factor).max(floor);
                }
                other => {
                    total += match other {
                        LoopExit::Stalled(it) => it,
                        _ => self.opts.max_iter,
                    };
                    // Back off: restore the last good rung and descend
                    // more gently from there. With no good rung yet, or
                    // a factor already near 1, the ladder has nothing
                    // left to try.
                    factor = factor.sqrt();
                    match &good {
                        Some((gg, gx)) if factor < GMIN_FACTOR_GIVEUP => {
                            x.copy_from_slice(gx);
                            g = (gg * factor).max(floor);
                        }
                        _ => {
                            return Err(CircuitError::NoConvergence {
                                iterations: total,
                                residual: inf_norm(&self.residual),
                                report: ConvergenceReport::default(),
                            });
                        }
                    }
                }
            }
        }
        // Final stage at the caller's own gmin: a success here is a
        // true solution of the original system.
        match self.run_newton_loop(circuit, x, mode, gmin, None, true, true)? {
            LoopExit::Converged(it) => {
                total += it;
                self.ptc_steps += 1;
                Ok(total)
            }
            _ => Err(CircuitError::NoConvergence {
                iterations: total,
                residual: inf_norm(&self.residual),
                report: ConvergenceReport::default(),
            }),
        }
    }

    /// Pseudo-transient continuation: called only after the plain
    /// damped iteration stalled (proven limit cycle / stagnation) or
    /// exhausted its budget. Adds a `C/dt`-like regularization
    /// `g·(x − x_anchor)` to every weakly-loaded (nearly algebraic)
    /// node row — the rows that lack the damping a real capacitor
    /// would provide — re-anchoring at each converged stage and
    /// shrinking `g` by the true residual's progress ratio (switched
    /// evolution/relaxation, forced into `[÷100, ÷10]` per stage so the
    /// ramp can neither stall nor collapse). A stage that fails
    /// restores its anchor and stiffens `g` instead. The rescue
    /// succeeds the moment the *unregularized* system meets the same
    /// per-row tolerances plain Newton stops at, so a success is a
    /// true solution.
    fn ptc_rescue(
        &mut self,
        circuit: &Circuit,
        x: &mut [f64],
        mode: &AnalysisMode,
        gmin: f64,
        iters_used: usize,
    ) -> Result<usize, CircuitError> {
        let load = self.dynamic_load(circuit, x, mode, gmin);
        // Only node (KCL) rows are regularized: `g` is a conductance,
        // commensurate with current-balance rows. Element rows (source
        // constraints in volts, CNFET charge balances in C/m) live on
        // completely different scales — a Siemens-sized `g·(x − anchor)`
        // term would dwarf their natural residuals and make their
        // tolerances unreachable.
        let nodes = circuit.node_count();
        let mask: Vec<bool> = load
            .iter()
            .enumerate()
            .map(|(i, &l)| i < nodes && l < PTC_G0)
            .collect();
        let mut g = PTC_G0;
        let mut total = iters_used;
        // Switched evolution/relaxation: after each converged stage the
        // stiffness shrinks in proportion to the true residual's
        // progress, so the ramp crawls while the hard region is being
        // crossed and accelerates once the iterate closes in on the
        // solution. A failed stage restores its anchor and stiffens.
        self.assemble_into(circuit, x, mode, gmin, None);
        let mut fprev = inf_norm(&self.residual);
        // See-saw bound: failed stages that never improve on the best
        // true residual seen are counted; past PTC_MAX_STIFFENS the
        // rescue yields to gmin stepping rather than thrash.
        let mut fbest = fprev;
        let mut stiffens = 0usize;
        for _stage in 0..PTC_MAX_STAGES {
            let anchor = x.to_vec();
            let exit = {
                let term = PtcTerm {
                    g,
                    anchor: &anchor,
                    mask: &mask,
                };
                self.run_newton_loop(circuit, x, mode, gmin, Some(&term), true, true)
            };
            match exit {
                Ok(LoopExit::Converged(it)) => {
                    total += it;
                    self.ptc_steps += 1;
                    // The stage solved the *regularized* system; accept
                    // as soon as the true system meets the same per-row
                    // tolerances plain Newton stops at.
                    self.assemble_into(circuit, x, mode, gmin, None);
                    if self.converged(circuit) {
                        return Ok(total);
                    }
                    let fnow = inf_norm(&self.residual);
                    if fnow < fbest {
                        fbest = fnow;
                        stiffens = 0;
                    }
                    let ratio = if fprev > 0.0 { fnow / fprev } else { 0.1 };
                    g *= ratio.clamp(1e-2, 1e-1);
                    fprev = fnow;
                }
                Ok(LoopExit::Stalled(it)) => {
                    total += it;
                    x.copy_from_slice(&anchor);
                    stiffens += 1;
                    if g >= 1.0 || stiffens > PTC_MAX_STIFFENS {
                        break;
                    }
                    g = (g * 1e2).min(1.0);
                }
                Ok(LoopExit::Exhausted) => {
                    total += self.opts.max_iter;
                    x.copy_from_slice(&anchor);
                    stiffens += 1;
                    if g >= 1.0 || stiffens > PTC_MAX_STIFFENS {
                        break;
                    }
                    g = (g * 1e2).min(1.0);
                }
                Err(CircuitError::Cancelled) => return Err(CircuitError::Cancelled),
                Err(CircuitError::SingularSystem(_)) => {
                    // A stage stiff enough to go singular is abandoned,
                    // not fatal: restore and stiffen like any failure.
                    x.copy_from_slice(&anchor);
                    stiffens += 1;
                    if g >= 1.0 || stiffens > PTC_MAX_STIFFENS {
                        break;
                    }
                    g = (g * 1e2).min(1.0);
                }
                Err(e) => return Err(e),
            }
        }
        Err(CircuitError::NoConvergence {
            iterations: total,
            residual: inf_norm(&self.residual),
            report: ConvergenceReport::default(),
        })
    }

    /// Verifies that the DC MNA system is structurally nonsingular:
    /// assembles the Jacobian once at `x = 0` with gmin 0 and runs a
    /// maximum bipartite matching on its nonzero entries
    /// ([`cntfet_numerics::sparse::structural_rank`]). A perfect
    /// matching proves *some* value assignment makes the matrix
    /// invertible; a deficient one means no values ever can — the
    /// classic floating-node / capacitor-isolated-subnet mistakes — and
    /// the check reports exactly which unknowns are undeterminable, by
    /// name, before any factorisation runs.
    ///
    /// The verdict is cached per pattern build (`struct_ok`), so sweeps
    /// and warm-started solves pay for the matching once; failures are
    /// re-checked so the error stays reproducible.
    ///
    /// # Errors
    ///
    /// [`CircuitError::StructurallySingular`] with the names of the
    /// unmatched unknowns.
    pub fn check_dc_structure(&mut self, circuit: &Circuit) -> Result<(), CircuitError> {
        let n = circuit.unknown_count();
        if n == 0 {
            return Ok(());
        }
        self.ensure_cache(circuit, false);
        if self.caches[self.active]
            .as_ref()
            .is_some_and(|c| c.struct_ok)
        {
            return Ok(());
        }
        let x0 = vec![0.0; n];
        self.assemble_into(circuit, &x0, &AnalysisMode::Dc, 0.0, None);
        let cache = self.caches[self.active].as_mut().expect("assembled above");
        let rank = structural_rank(cache.asm.matrix().expect("assembly finished"));
        if rank.is_full() {
            cache.struct_ok = true;
            return Ok(());
        }
        let nodes = rank
            .unmatched_cols
            .iter()
            .map(|&col| unknown_name(circuit, &cache.bases, col))
            .collect();
        Err(CircuitError::StructurallySingular { nodes })
    }

    /// Solves the DC operating point: plain Newton from `initial` (or
    /// zeros) first, then a gmin ramp (1e-3 → 0) when that fails —
    /// identical strategy to the historical `solve_dc`, but running on
    /// the engine's cached pattern and solver.
    ///
    /// # Errors
    ///
    /// [`CircuitError::StructurallySingular`] (before any
    /// factorisation) when the MNA pattern cannot have full rank for
    /// any element values — see
    /// [`NewtonEngine::check_dc_structure`];
    /// [`CircuitError::NoConvergence`] if even the gmin ramp fails; or
    /// [`CircuitError::SingularSystem`] for systems that are
    /// structurally fine but numerically singular (e.g. a loop of
    /// ideal voltage sources whose constraints conflict).
    pub fn dc_operating_point(
        &mut self,
        circuit: &Circuit,
        initial: Option<&[f64]>,
    ) -> Result<Solution, CircuitError> {
        let n = circuit.unknown_count();
        if n == 0 {
            return Ok(Solution {
                x: Vec::new(),
                iterations: 0,
            });
        }
        self.check_dc_structure(circuit)?;
        let x0 = initial.map(|v| v.to_vec()).unwrap_or_else(|| vec![0.0; n]);
        match self.newton(circuit, &x0, &AnalysisMode::Dc, 0.0) {
            Ok((x, iterations)) => Ok(Solution { x, iterations }),
            Err(CircuitError::Cancelled) => Err(CircuitError::Cancelled),
            Err(_) => {
                // Gmin ramp.
                let mut x = x0;
                let mut total = 0usize;
                for exp in (0..=12).rev() {
                    let gmin = 10f64.powi(-(15 - exp));
                    let (nx, it) = self.newton(circuit, &x, &AnalysisMode::Dc, gmin)?;
                    x = nx;
                    total += it;
                }
                let (x, it) = self.newton(circuit, &x, &AnalysisMode::Dc, 0.0)?;
                Ok(Solution {
                    x,
                    iterations: total + it,
                })
            }
        }
    }
}

/// Human-readable name of MNA unknown `col`: the node name for voltage
/// unknowns, `i(NAME)` for source branch currents and `internal(NAME)`
/// for other element extra variables (the CNFET inner charge node).
fn unknown_name(circuit: &Circuit, bases: &[usize], col: usize) -> String {
    let nodes = circuit.node_count();
    if col < nodes {
        return circuit
            .node_names()
            .into_iter()
            .find(|(_, id)| id.unknown_index() == Some(col))
            .map(|(name, _)| name)
            .unwrap_or_else(|| format!("node #{}", col + 1));
    }
    for (e, &base) in circuit.elements().iter().zip(bases) {
        let extra = e.extra_vars();
        if extra > 0 && (base..base + extra).contains(&col) {
            return if e.is_source() {
                format!("i({})", e.name())
            } else {
                format!("internal({})", e.name())
            };
        }
    }
    format!("unknown #{col}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Resistor, VoltageSource};
    use crate::netlist::Circuit;

    fn divider() -> (Circuit, crate::netlist::NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 3e3));
        (c, out)
    }

    #[test]
    fn dense_and_sparse_agree_on_divider() {
        let (c, out) = divider();
        let mut dense = NewtonEngine::new(NewtonOptions {
            solver: SolverKind::Dense,
            ..NewtonOptions::default()
        });
        let mut sparse = NewtonEngine::new(NewtonOptions {
            solver: SolverKind::Sparse,
            ..NewtonOptions::default()
        });
        let sd = dense.dc_operating_point(&c, None).unwrap();
        let ss = sparse.dc_operating_point(&c, None).unwrap();
        assert!((sd.voltage(out) - 1.5).abs() < 1e-9);
        assert!((sd.voltage(out) - ss.voltage(out)).abs() < 1e-12);
        assert_eq!(dense.solver_name(), Some("dense-lu"));
        assert_eq!(sparse.solver_name(), Some("sparse-lu"));
    }

    #[test]
    fn auto_picks_dense_below_threshold() {
        let (c, _) = divider();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.solver_name(), Some("dense-lu"));
    }

    #[test]
    fn auto_picks_sparse_above_threshold() {
        // A long resistor ladder crosses the default threshold.
        let mut c = Circuit::new();
        let top = c.node("top");
        c.add(VoltageSource::dc("V1", top, Circuit::ground(), 1.0));
        let mut prev = top;
        for i in 0..40 {
            let nxt = c.node(&format!("n{i}"));
            c.add(Resistor::new(&format!("R{i}"), prev, nxt, 1e3));
            prev = nxt;
        }
        c.add(Resistor::new("Rend", prev, Circuit::ground(), 1e3));
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let sol = engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.solver_name(), Some("sparse-lu"));
        // Ladder splits 1 V over 41 equal resistors; n19 sits after 20.
        let mid = c.find_node("n19").unwrap();
        assert!((sol.voltage(mid) - 21.0 / 41.0).abs() < 1e-9);
    }

    #[test]
    fn pattern_is_cached_across_solves_and_rebuilt_on_growth() {
        let (mut c, out) = divider();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.pattern_builds(), 1);
        engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.pattern_builds(), 1, "unchanged circuit reuses it");
        // Value updates do not change structure.
        assert!(c.set_source_value("V1", 3.0));
        engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.pattern_builds(), 1);
        // Growing the circuit must rebuild the pattern.
        c.add(Resistor::new("R3", out, Circuit::ground(), 10e3));
        let sol = engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.pattern_builds(), 2, "new element rebuilds pattern");
        // 3 V over 1k into 3k ∥ 10k.
        let rp = 1.0 / (1.0 / 3e3 + 1.0 / 10e3);
        assert!((sol.voltage(out) - 3.0 * rp / (1e3 + rp)).abs() < 1e-9);
    }

    #[test]
    fn custom_tolerances_are_honoured() {
        let (c, out) = divider();
        let loose = NewtonOptions {
            node_current_tol: 1e-3,
            extra_row_tol: 1e-3,
            ..NewtonOptions::default()
        };
        let mut engine = NewtonEngine::new(loose);
        let sol = engine.dc_operating_point(&c, None).unwrap();
        // Loose tolerances accept the very first Newton step of a linear
        // circuit just like the tight defaults (linear → one exact step),
        // so the answer is still right; the point is that options thread
        // through without panicking and converge faster or equally.
        assert!((sol.voltage(out) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn engine_reused_across_different_circuits_rebuilds_cache() {
        // Two circuits with identical revision counters (2 node
        // creations + 3 element adds each), identical unknown counts
        // and identical extra-var bases, but different wiring and
        // therefore different sparsity patterns: only the circuit
        // identity in the cache key tells them apart.
        let build_divider = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add(VoltageSource::dc("V1", a, Circuit::ground(), 2.0));
            c.add(Resistor::new("R1", a, b, 1e3));
            c.add(Resistor::new("R2", b, Circuit::ground(), 1e3));
            (c, b)
        };
        let build_floating_source = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add(VoltageSource::dc("V1", a, b, 2.0));
            c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
            c.add(Resistor::new("R2", b, Circuit::ground(), 1e3));
            (c, a)
        };
        let (ca, out_a) = build_divider();
        let (cb, out_b) = build_floating_source();
        assert_eq!(ca.revision(), cb.revision());
        assert_eq!(ca.unknown_count(), cb.unknown_count());
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let sa = engine.dc_operating_point(&ca, None).unwrap();
        // Without id-keying this solve would reuse A's pattern and the
        // (extra, b) constraint entry of B's floating source would miss.
        let sb = engine.dc_operating_point(&cb, None).unwrap();
        assert!((sa.voltage(out_a) - 1.0).abs() < 1e-9);
        // Floating 2 V source over two equal resistors to ground: ±1 V.
        assert!((sb.voltage(out_b) - 1.0).abs() < 1e-9);
        assert_eq!(engine.pattern_builds(), 2);
        // And back again: structure of A must be re-recorded, not
        // misread from B's cache.
        let sa2 = engine.dc_operating_point(&ca, None).unwrap();
        assert!((sa2.voltage(out_a) - 1.0).abs() < 1e-9);
        assert_eq!(engine.pattern_builds(), 3);
    }

    #[test]
    fn dc_and_transient_kinds_cache_independently() {
        use crate::element::{AnalysisMode, Capacitor, TransientStamp};
        let (mut c, out) = divider();
        c.add(Capacitor::new("C1", out, Circuit::ground(), 1e-9));
        let n = c.unknown_count();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let tran = |t: f64| {
            AnalysisMode::Transient(TransientStamp {
                t,
                a0: 1e9,
                hist: vec![0.0; n],
            })
        };
        engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.pattern_builds(), 1);
        let x = vec![0.0; n];
        engine.newton(&c, &x, &tran(1e-9), 0.0).unwrap();
        assert_eq!(engine.pattern_builds(), 2, "transient kind builds its own");
        // Alternating kinds reuses both slots: no further builds.
        engine.dc_operating_point(&c, None).unwrap();
        engine.newton(&c, &x, &tran(2e-9), 0.0).unwrap();
        engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.pattern_builds(), 2, "kind switches must not thrash");
    }

    #[test]
    fn capacitor_isolated_node_is_structurally_singular() {
        use crate::element::Capacitor;
        // V1 drives "in"; "mid" hangs behind a capacitor with no DC
        // path to ground — its KCL row and voltage column are both
        // empty at DC, a textbook structurally singular system.
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 1.0));
        c.add(Resistor::new("R1", vin, Circuit::ground(), 1e3));
        c.add(Capacitor::new("C1", vin, mid, 1e-12));
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let err = engine.dc_operating_point(&c, None).unwrap_err();
        match err {
            CircuitError::StructurallySingular { nodes } => {
                assert_eq!(nodes, vec!["mid".to_string()]);
            }
            other => panic!("expected StructurallySingular, got {other:?}"),
        }
        // The check is re-run (and still fails) on a repeated solve.
        assert!(matches!(
            engine.dc_operating_point(&c, None),
            Err(CircuitError::StructurallySingular { .. })
        ));
    }

    #[test]
    fn current_source_cutset_is_structurally_singular() {
        use crate::element::CurrentSource;
        // A current source feeding a node with no other connection:
        // the node voltage appears in no equation.
        let mut c = Circuit::new();
        let top = c.node("top");
        c.add(CurrentSource::dc("I1", top, Circuit::ground(), 1e-3));
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let err = engine.dc_operating_point(&c, None).unwrap_err();
        match err {
            CircuitError::StructurallySingular { nodes } => {
                assert_eq!(nodes, vec!["top".to_string()]);
            }
            other => panic!("expected StructurallySingular, got {other:?}"),
        }
    }

    #[test]
    fn structural_check_does_not_add_pattern_builds_or_break_solves() {
        let (c, out) = divider();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let sol = engine.dc_operating_point(&c, None).unwrap();
        assert!((sol.voltage(out) - 1.5).abs() < 1e-9);
        assert_eq!(engine.pattern_builds(), 1, "check shares the DC cache");
        engine.dc_operating_point(&c, None).unwrap();
        assert_eq!(engine.pattern_builds(), 1);
    }

    #[test]
    fn parallel_voltage_sources_fail_before_any_lu() {
        // Two ideal sources across the same node pair: both branch
        // currents stamp the same constraint rows/columns, leaving one
        // current column unmatchable — caught structurally, without a
        // factorisation.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::dc("V1", a, Circuit::ground(), 1.0));
        c.add(VoltageSource::dc("V2", a, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let err = engine.dc_operating_point(&c, None).unwrap_err();
        match err {
            CircuitError::StructurallySingular { nodes } => {
                assert_eq!(nodes.len(), 1, "{nodes:?}");
                assert!(nodes[0].starts_with("i(V"), "{nodes:?}");
            }
            other => panic!("expected StructurallySingular, got {other:?}"),
        }
        assert_eq!(engine.total_factorizations(), 0, "failed before any LU");
    }

    #[test]
    fn empty_circuit_is_trivial() {
        let c = Circuit::new();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let sol = engine.dc_operating_point(&c, None).unwrap();
        assert!(sol.x.is_empty());
    }

    /// A resistor ladder long enough for the sparse solver.
    fn sparse_ladder() -> Circuit {
        let mut c = Circuit::new();
        let top = c.node("top");
        c.add(VoltageSource::dc("V1", top, Circuit::ground(), 1.0));
        let mut prev = top;
        for i in 0..40 {
            let nxt = c.node(&format!("n{i}"));
            c.add(Resistor::new(&format!("R{i}"), prev, nxt, 1e3));
            prev = nxt;
        }
        c.add(Resistor::new("Rend", prev, Circuit::ground(), 1e3));
        c
    }

    #[test]
    fn counters_support_per_analysis_deltas() {
        // The cumulative counters never reset; per-analysis numbers come
        // from baseline + delta_since, and must isolate each solve.
        let mut c = sparse_ladder();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        engine.dc_operating_point(&c, None).unwrap();
        let after_first = engine.counters();
        assert!(after_first.factorizations > 0);
        assert!(after_first.device_evals == 0, "linear elements never eval");
        assert!(c.set_source_value("V1", 2.0));
        engine.dc_operating_point(&c, None).unwrap();
        let after_second = engine.counters();
        let delta = after_second.delta_since(&after_first);
        // Cumulative keeps growing; the delta sees only the second solve.
        assert!(after_second.factorizations > after_first.factorizations);
        assert_eq!(
            delta.factorizations,
            after_second.factorizations - after_first.factorizations
        );
        assert!(delta.symbolic_factorizations == 0, "pattern was reused");
        // Self-delta is zero: nothing ran in between.
        let zero = after_second.delta_since(&after_second);
        assert_eq!(zero, EngineCounters::default());
    }

    #[test]
    fn source_value_change_takes_the_partial_path() {
        // A source-level change touches only the RHS of a linear
        // circuit: the Jacobian values are bitwise-unchanged, so the
        // diff finds zero changed slots and the partial refactorization
        // recomputes zero columns while still solving correctly.
        let mut c = sparse_ladder();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        engine.dc_operating_point(&c, None).unwrap();
        let base = engine.counters();
        assert_eq!(base.partial_refactorizations, 0, "first solve is full");
        assert!(c.set_source_value("V1", 2.0));
        let sol = engine.dc_operating_point(&c, None).unwrap();
        let delta = engine.counters().delta_since(&base);
        assert!(delta.partial_refactorizations > 0);
        assert_eq!(delta.columns_recomputed, 0, "no Jacobian slot changed");
        assert!(delta.columns_total > 0);
        let mid = c.find_node("n19").unwrap();
        assert!((sol.voltage(mid) - 2.0 * 21.0 / 41.0).abs() < 1e-9);
    }

    #[test]
    fn partial_refactor_off_replays_in_full() {
        let mut c = sparse_ladder();
        let mut engine = NewtonEngine::new(NewtonOptions {
            partial_refactor: false,
            ..NewtonOptions::default()
        });
        engine.dc_operating_point(&c, None).unwrap();
        assert!(c.set_source_value("V1", 2.0));
        engine.dc_operating_point(&c, None).unwrap();
        let total = engine.counters();
        assert_eq!(total.partial_refactorizations, 0);
        assert_eq!(total.columns_recomputed, total.columns_total);
    }

    #[test]
    fn rebind_carries_symbolic_work_to_an_identical_circuit() {
        // Two independently built ladders: same wiring, different ids.
        let c1 = sparse_ladder();
        let mut c2 = sparse_ladder();
        assert!(c2.set_source_value("V1", 2.0));
        assert_ne!(c1.id(), c2.id());
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        engine.dc_operating_point(&c1, None).unwrap();
        assert_eq!(engine.pattern_builds(), 1);
        let before = engine.counters();
        engine.rebind(&c2);
        assert!(engine.is_warm());
        let sol = engine.dc_operating_point(&c2, None).unwrap();
        let delta = engine.counters().delta_since(&before);
        assert_eq!(engine.pattern_builds(), 1, "rebind must not repattern");
        assert_eq!(delta.symbolic_factorizations, 0, "pivot plan was replayed");
        let mid = c2.find_node("n19").unwrap();
        assert!((sol.voltage(mid) - 2.0 * 21.0 / 41.0).abs() < 1e-9);
    }

    #[test]
    fn rebind_drops_incompatible_caches() {
        let c1 = sparse_ladder();
        let (c2, out) = divider();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        engine.dc_operating_point(&c1, None).unwrap();
        engine.rebind(&c2);
        assert!(!engine.is_warm(), "different unknown count drops the slot");
        let sol = engine.dc_operating_point(&c2, None).unwrap();
        assert!((sol.voltage(out) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn raised_cancel_flag_aborts_newton() {
        use std::sync::atomic::AtomicBool;
        let (c, _) = divider();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        let flag = Arc::new(AtomicBool::new(true));
        engine.set_cancel(Some(Arc::clone(&flag)));
        assert!(matches!(
            engine.dc_operating_point(&c, None),
            Err(CircuitError::Cancelled)
        ));
        // Lowering the flag makes the same engine usable again.
        flag.store(false, Ordering::Relaxed);
        engine.dc_operating_point(&c, None).unwrap();
        // And clearing the token removes the poll entirely.
        engine.set_cancel(None);
        assert!(!engine.cancel_requested());
        engine.dc_operating_point(&c, None).unwrap();
    }

    #[test]
    fn dense_path_never_partially_refactors() {
        let (mut c, _) = divider();
        let mut engine = NewtonEngine::new(NewtonOptions::default());
        engine.dc_operating_point(&c, None).unwrap();
        assert!(c.set_source_value("V1", 3.0));
        engine.dc_operating_point(&c, None).unwrap();
        let total = engine.counters();
        assert_eq!(engine.solver_name(), Some("dense-lu"));
        assert_eq!(total.partial_refactorizations, 0);
        assert!(total.factorizations > 0);
    }
}
