//! The CNFET circuit element — the paper's Fig. 1 equivalent circuit.
//!
//! The element owns one extra MNA unknown: the inner node Σ that "comprises
//! all the CNT charges". Its row is the charge-balance form of the
//! self-consistent voltage equation,
//!
//! ```text
//! F_Σ = C_Σ·V_SC + Q_t + qN₀ − q̂N_S(V_SC) − q̂N_S(V_SC + V_DS) = 0
//! ```
//!
//! with `V_SC = V_Σ − V_S`, `Q_t = C_G(V_G−V_S) + C_D(V_D−V_S)` (source-
//! referenced). Because the fitted charge `q̂N_S` is piecewise polynomial,
//! each Newton iteration of the *circuit* sees cheap closed-form values
//! and derivatives — no quadrature, no nested solver: this is exactly how
//! the paper intends the model to live inside a SPICE-like engine.
//!
//! The ballistic transport current `I_DS(V_SC, V_DS)` (paper eq. 14) is a
//! voltage-controlled current source from drain to source. In transient
//! analysis the three terminal capacitances carry displacement currents
//! between the terminals and Σ (backward-Euler companions), scaled by the
//! device length.
//!
//! P-type devices are modelled by mirror symmetry: an ideal p-CNFET is an
//! n-CNFET with every terminal voltage negated and every current
//! reversed. The Σ unknown of a p-device stores the *mirrored* inner
//! voltage.

use crate::element::{node_voltage, AnalysisMode, DeviceState, Element, Mna, StampOutcome};
use crate::netlist::NodeId;
use cntfet_core::CompactCntFet;
use cntfet_physics::constants::BALLISTIC_CURRENT_PREFACTOR;
use cntfet_physics::fermi::fermi_integral_zero_derivative;
use cntfet_reference::current::drain_current;
use std::sync::Arc;

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Electron conduction (the paper's device).
    N,
    /// Hole conduction, modelled by mirror symmetry.
    P,
}

/// A ballistic CNFET instance in a circuit.
///
/// # Examples
///
/// ```
/// use cntfet_circuit::netlist::Circuit;
/// use cntfet_circuit::cnfet::{CnfetElement, Polarity};
/// use cntfet_core::CompactCntFet;
/// use cntfet_reference::DeviceParams;
/// use std::sync::Arc;
///
/// let model = Arc::new(CompactCntFet::model2(DeviceParams::paper_default())?);
/// let mut c = Circuit::new();
/// let (d, g) = (c.node("d"), c.node("g"));
/// c.add(CnfetElement::new("M1", model, Polarity::N, d, g, Circuit::ground(), 100e-9));
/// # Ok::<(), cntfet_core::CompactModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CnfetElement {
    name: String,
    model: Arc<CompactCntFet>,
    polarity: Polarity,
    drain: NodeId,
    gate: NodeId,
    source: NodeId,
    /// Channel length in metres (converts per-unit-length capacitances to
    /// farads for transient terminal currents).
    length: f64,
}

impl CnfetElement {
    /// Creates a CNFET of the given polarity with channel `length`
    /// metres.
    ///
    /// # Panics
    ///
    /// Panics if `length <= 0`.
    pub fn new(
        name: &str,
        model: Arc<CompactCntFet>,
        polarity: Polarity,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        length: f64,
    ) -> Self {
        assert!(length > 0.0, "channel length must be positive");
        CnfetElement {
            name: name.to_string(),
            model,
            polarity,
            drain,
            gate,
            source,
            length,
        }
    }

    fn sign(&self) -> f64 {
        match self.polarity {
            Polarity::N => 1.0,
            Polarity::P => -1.0,
        }
    }

    /// Drain current and its partial derivatives w.r.t. `(vsc, vds)` in
    /// mirrored (n-type) space.
    fn current_core(&self, vsc: f64, vds: f64) -> (f64, f64, f64) {
        let p = self.model.params();
        let ef = p.fermi_level.value();
        let kt = p.thermal_energy_ev();
        let temperature = p.temperature.value();
        let i = drain_current(ef, vsc, vds, temperature, kt);
        let k = BALLISTIC_CURRENT_PREFACTOR * temperature / kt;
        let sig_s = fermi_integral_zero_derivative((ef - vsc) / kt);
        let sig_d = fermi_integral_zero_derivative((ef - vsc - vds) / kt);
        let di_dvsc = -k * (sig_s - sig_d);
        let di_dvds = k * sig_d;
        (i, di_dvsc, di_dvds)
    }

    /// The expensive channel quantities at a mirrored operating point
    /// `(vsc, vds)`: fitted-charge values/derivatives at both band
    /// edges and the ballistic transport current with its derivatives.
    /// Everything else in the stamp is affine in the terminal voltages,
    /// so this array is exactly what device bypass caches.
    ///
    /// Layout: `[q_src, dq_src, q_drn, dq_drn, i, di_dvsc, di_dvds]`.
    fn eval_channel(&self, vsc: f64, vds: f64) -> [f64; 7] {
        let charge = self.model.charge();
        let q_src = charge.eval(vsc);
        let dq_src = charge.eval_derivative(vsc);
        let q_drn = charge.eval(vsc + vds);
        let dq_drn = charge.eval_derivative(vsc + vds);
        let (i, di_dvsc, di_dvds) = self.current_core(vsc, vds);
        [q_src, dq_src, q_drn, dq_drn, i, di_dvsc, di_dvds]
    }

    /// Stamps residual and Jacobian from precomputed channel
    /// quantities; all remaining arithmetic is affine in the live
    /// terminal voltages.
    fn stamp_with_eval(
        &self,
        x: &[f64],
        sigma: usize,
        mode: &AnalysisMode,
        mna: &mut Mna<'_>,
        ev: &[f64; 7],
    ) {
        let s = self.sign();
        // Mirrored terminal voltages (identity for N devices).
        let vd = s * node_voltage(x, self.drain);
        let vg = s * node_voltage(x, self.gate);
        let vs = s * node_voltage(x, self.source);
        let vsig = x[sigma];
        let vsc = vsig - vs;

        let caps = self.model.params().capacitances;
        let [q_src, dq_src, q_drn, dq_drn, i_core, di_dvsc, di_dvds] = *ev;

        // --- Σ row: charge balance (units C/m). -------------------------
        let qt = caps.gate * (vg - vs) + caps.drain * (vd - vs);
        let f_sigma = caps.total() * vsc + qt + self.model.equilibrium_charge() - q_src - q_drn;
        mna.add_f_extra(sigma, f_sigma);
        // ∂F/∂vσ (mirrored unknown, no sign factor).
        mna.add_j_extra_extra(sigma, sigma, caps.total() - dq_src - dq_drn);
        // ∂F/∂(node voltages): chain through the mirror (× s).
        // vsc depends on vs; vds on vd, vs; qt on vg, vd, vs.
        let df_dvg = caps.gate;
        let df_dvd = caps.drain - dq_drn;
        let df_dvs = -caps.total() - caps.gate - caps.drain + dq_src + 2.0 * dq_drn;
        mna.add_j_extra_node(sigma, self.gate, s * df_dvg);
        mna.add_j_extra_node(sigma, self.drain, s * df_dvd);
        mna.add_j_extra_node(sigma, self.source, s * df_dvs);

        // --- Transport current source drain → source. -------------------
        // Real current into the real drain is s·i_core.
        mna.add_f_node(self.drain, s * i_core);
        mna.add_f_node(self.source, -s * i_core);
        // ∂(s·i)/∂x[node] = s · (∂i/∂v_mirror) · s = ∂i/∂v_mirror.
        let di_dvd_m = di_dvds;
        let di_dvs_m = -di_dvsc - di_dvds;
        if let Some(r) = self.drain.unknown_index() {
            mna.add_j_index(r, r, di_dvd_m);
            if let Some(c) = self.source.unknown_index() {
                mna.add_j_index(r, c, di_dvs_m);
            }
            mna.add_j_node_extra(self.drain, sigma, s * di_dvsc);
        }
        if let Some(r) = self.source.unknown_index() {
            if let Some(c) = self.drain.unknown_index() {
                mna.add_j_index(r, c, -di_dvd_m);
            }
            mna.add_j_index(r, r, -di_dvs_m);
            mna.add_j_node_extra(self.source, sigma, -s * di_dvsc);
        }

        // --- Terminal displacement currents (transient only). -----------
        if let AnalysisMode::Transient(stamp) = mode {
            // History of the mirrored Σ unknown (stored mirrored, so no
            // sign factor); node histories are raw and mirror through s.
            let hist_sig = stamp.history(sigma);
            // Per-terminal capacitor to Σ, scaled to farads by length.
            for (node, c_per_m, v_now) in [
                (self.gate, caps.gate, vg),
                (self.drain, caps.drain, vd),
                (self.source, caps.source, vs),
            ] {
                let c = c_per_m * self.length;
                let g = c * stamp.a0;
                // Mirrored d/dt of the capacitor voltage (v_node − vΣ).
                let ddt = stamp.a0 * (v_now - vsig) + s * stamp.history_node(node) - hist_sig;
                let i_core = c * ddt;
                // Mirrored current out of the mirrored node = s·i into the
                // real node's KCL.
                mna.add_f_node(node, s * i_core);
                // ∂/∂(real node voltage) = s·g·s = g.
                mna.add_j_nodes(node, node, g);
                mna.add_j_node_extra(node, sigma, -s * g);
                // The Σ row stays algebraic (charge balance), so the
                // return current exits through the other terminals via
                // their own companions; no Σ-row stamp here.
            }
        }
    }

    /// The mirrored controlling voltages `(vsc, vds)` at iterate `x`.
    fn control_voltages(&self, x: &[f64], sigma: usize) -> (f64, f64) {
        let s = self.sign();
        let vd = s * node_voltage(x, self.drain);
        let vs = s * node_voltage(x, self.source);
        let vsig = x[sigma];
        (vsig - vs, vd - vs)
    }
}

impl Element for CnfetElement {
    fn name(&self) -> &str {
        &self.name
    }

    fn extra_vars(&self) -> usize {
        1 // the inner node Σ (mirrored voltage for P devices)
    }

    fn stamp(&self, x: &[f64], sigma: usize, mode: &AnalysisMode, mna: &mut Mna<'_>) {
        let (vsc, vds) = self.control_voltages(x, sigma);
        let ev = self.eval_channel(vsc, vds);
        self.stamp_with_eval(x, sigma, mode, mna, &ev);
    }

    fn stamp_cached(
        &self,
        x: &[f64],
        sigma: usize,
        mode: &AnalysisMode,
        mna: &mut Mna<'_>,
        state: &mut DeviceState,
        vtol: f64,
    ) -> StampOutcome {
        let (vsc, vds) = self.control_voltages(x, sigma);
        let cached = state.key.filter(|&[vsc0, vds0]| {
            vtol >= 0.0
                && state.vals.len() == 7
                && (vsc - vsc0).abs() <= vtol
                && (vds - vds0).abs() <= vtol
        });
        if let Some([vsc0, vds0]) = cached {
            // Bypass: re-linearise the cached evaluation at the live
            // point (first-order in the sub-vtol voltage deltas, so the
            // residual error is O(vtol²)). The cache key stays at the
            // last true evaluation, so drift cannot accumulate.
            let dvsc = vsc - vsc0;
            let dvds = vds - vds0;
            let v: &[f64] = &state.vals;
            let ev = [
                v[0] + v[1] * dvsc,
                v[1],
                v[2] + v[3] * (dvsc + dvds),
                v[3],
                v[4] + v[5] * dvsc + v[6] * dvds,
                v[5],
                v[6],
            ];
            self.stamp_with_eval(x, sigma, mode, mna, &ev);
            StampOutcome::Bypassed
        } else {
            let ev = self.eval_channel(vsc, vds);
            state.key = Some([vsc, vds]);
            state.vals.clear();
            state.vals.extend_from_slice(&ev);
            self.stamp_with_eval(x, sigma, mode, mna, &ev);
            StampOutcome::Evaluated
        }
    }

    fn limit_step(&self, _x: &[f64], dx: &[f64], sigma: usize) -> Option<f64> {
        // fetlim-style swing cap: no controlling voltage of this device
        // may move more than MAX_SWING in one Newton iteration. 2 V is
        // generous against the 0.9 V logic rails, so healthy solves —
        // whose per-iteration swings stay well under it — are never
        // touched; only the wild multi-volt overshoots of a diverging
        // or limit-cycling iteration get clamped.
        const MAX_SWING: f64 = 2.0;
        let s = self.sign();
        let dvd = s * node_voltage(dx, self.drain);
        let dvg = s * node_voltage(dx, self.gate);
        let dvs = s * node_voltage(dx, self.source);
        let dvsc = dx[sigma] - dvs;
        let dvds = dvd - dvs;
        let dvgs = dvg - dvs;
        let worst = dvsc.abs().max(dvds.abs()).max(dvgs.abs());
        if worst > MAX_SWING {
            Some(MAX_SWING / worst)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::Solution;
    use crate::element::VoltageSource;
    use crate::engine::{NewtonEngine, NewtonOptions};
    use crate::netlist::Circuit;
    use cntfet_reference::DeviceParams;

    fn model() -> Arc<CompactCntFet> {
        Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).unwrap())
    }

    fn solve_dc(c: &Circuit) -> Solution {
        NewtonEngine::new(NewtonOptions::default())
            .dc_operating_point(c, None)
            .unwrap()
    }

    fn single_device_circuit(vg: f64, vd: f64, pol: Polarity) -> (Circuit, NodeId, usize) {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add(VoltageSource::dc("VD", d, Circuit::ground(), vd));
        c.add(VoltageSource::dc("VG", g, Circuit::ground(), vg));
        c.add(CnfetElement::new(
            "M1",
            model(),
            pol,
            d,
            g,
            Circuit::ground(),
            100e-9,
        ));
        let bases = c.extra_var_bases();
        (c, d, bases[2])
    }

    #[test]
    fn dc_inner_node_matches_compact_model() {
        let m = model();
        for &(vg, vd) in &[(0.3, 0.2), (0.5, 0.4), (0.6, 0.6)] {
            let (c, _, sigma) = single_device_circuit(vg, vd, Polarity::N);
            let sol = solve_dc(&c);
            let expect = m.vsc(vg, vd).unwrap();
            assert!(
                (sol.x[sigma] - expect).abs() < 1e-6,
                "vg {vg} vd {vd}: circuit {} vs model {expect}",
                sol.x[sigma]
            );
        }
    }

    #[test]
    fn dc_drain_current_matches_compact_model() {
        let m = model();
        let (c, _, _) = single_device_circuit(0.5, 0.4, Polarity::N);
        let sol = solve_dc(&c);
        // VD branch current = −I_D (source delivers the drain current).
        let bases = c.extra_var_bases();
        let i_vd = sol.x[bases[0]];
        let expect = m.ids(0.5, 0.4).unwrap();
        assert!(
            (i_vd + expect).abs() < 1e-9 + 1e-5 * expect,
            "branch {i_vd} vs −{expect}"
        );
    }

    #[test]
    fn p_device_mirrors_n_device() {
        let mn = {
            let (c, _, _) = single_device_circuit(0.5, 0.4, Polarity::N);
            let bases = c.extra_var_bases();
            solve_dc(&c).x[bases[0]]
        };
        let mp = {
            let (c, _, _) = single_device_circuit(-0.5, -0.4, Polarity::P);
            let bases = c.extra_var_bases();
            solve_dc(&c).x[bases[0]]
        };
        assert!(
            (mn + mp).abs() < 1e-9 + 1e-6 * mn.abs(),
            "n-branch {mn} vs p-branch {mp}"
        );
    }

    #[test]
    fn zero_bias_gives_zero_current() {
        let (c, _, _) = single_device_circuit(0.0, 0.0, Polarity::N);
        let sol = solve_dc(&c);
        let bases = c.extra_var_bases();
        assert!(sol.x[bases[0]].abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        let _ = CnfetElement::new(
            "M",
            model(),
            Polarity::N,
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
            0.0,
        );
    }
}
