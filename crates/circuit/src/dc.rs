//! Nonlinear DC operating-point solver: damped Newton with a gmin ramp.

use crate::element::{AnalysisMode, Mna};
use crate::error::CircuitError;
use crate::netlist::Circuit;
use cntfet_numerics::linalg::Matrix;

/// A converged solution of the MNA system.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Unknown vector: node voltages (order of node creation) followed by
    /// element extra variables.
    pub x: Vec<f64>,
    /// Newton iterations used (summed over gmin steps).
    pub iterations: usize,
}

impl Solution {
    /// Voltage of `node` in this solution.
    pub fn voltage(&self, node: crate::netlist::NodeId) -> f64 {
        node.unknown_index().map(|i| self.x[i]).unwrap_or(0.0)
    }
}

/// Assembles `F(x)` and `J(x)` for the circuit at iterate `x`.
pub(crate) fn assemble(
    circuit: &Circuit,
    x: &[f64],
    mode: &AnalysisMode,
    gmin: f64,
) -> (Vec<f64>, Matrix) {
    let n = circuit.unknown_count();
    let mut residual = vec![0.0; n];
    let mut jacobian = Matrix::zeros(n, n);
    let bases = circuit.extra_var_bases();
    {
        let mut mna = Mna {
            residual: &mut residual,
            jacobian: &mut jacobian,
        };
        for (e, &base) in circuit.elements().iter().zip(&bases) {
            e.stamp(x, base, mode, &mut mna);
        }
    }
    if gmin > 0.0 {
        // Leak from every node to ground keeps the matrix non-singular
        // while far from convergence.
        for i in 0..circuit.node_count() {
            residual[i] += gmin * x[i];
            jacobian[(i, i)] += gmin;
        }
    }
    (residual, jacobian)
}

pub(crate) fn newton(
    circuit: &Circuit,
    x0: &[f64],
    mode: &AnalysisMode,
    gmin: f64,
    max_iter: usize,
) -> Result<(Vec<f64>, usize), CircuitError> {
    let mut x = x0.to_vec();
    let (mut f, mut j) = assemble(circuit, &x, mode, gmin);
    let mut fnorm = inf_norm(&f);
    for it in 0..max_iter {
        if converged(&f, circuit) {
            return Ok((x, it));
        }
        let neg_f: Vec<f64> = f.iter().map(|v| -v).collect();
        let dx = j
            .solve(&neg_f)
            .map_err(|e| CircuitError::SingularSystem(format!("{e}")))?;
        // Damped update: halve the step until the residual stops growing.
        let mut alpha = 1.0;
        let mut accepted = false;
        for _ in 0..12 {
            let trial: Vec<f64> = x.iter().zip(&dx).map(|(a, d)| a + alpha * d).collect();
            let (tf, tj) = assemble(circuit, &trial, mode, gmin);
            let tnorm = inf_norm(&tf);
            if tnorm <= fnorm * (1.0 - 1e-4 * alpha) || tnorm < 1e-18 {
                x = trial;
                f = tf;
                j = tj;
                fnorm = tnorm;
                accepted = true;
                break;
            }
            alpha *= 0.5;
        }
        if !accepted {
            // Take the smallest step anyway; Newton may still escape a
            // shallow plateau.
            let trial: Vec<f64> = x.iter().zip(&dx).map(|(a, d)| a + alpha * d).collect();
            let (tf, tj) = assemble(circuit, &trial, mode, gmin);
            x = trial;
            fnorm = inf_norm(&tf);
            f = tf;
            j = tj;
        }
    }
    if converged(&f, circuit) {
        return Ok((x, max_iter));
    }
    Err(CircuitError::NoConvergence {
        iterations: max_iter,
        residual: fnorm,
    })
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// Row-wise convergence: node rows are currents (A), element rows mix
/// volts (source constraints) and C/m (CNFET charge balance); a single
/// absolute threshold per class keeps this simple and robust for the
/// µA / 1e-10 C/m scales of this workspace.
fn converged(f: &[f64], circuit: &Circuit) -> bool {
    let n_nodes = circuit.node_count();
    f.iter().enumerate().all(|(i, v)| {
        let tol: f64 = if i < n_nodes { 1e-12 } else { 1e-15 };
        v.abs() < tol
    })
}

/// Solves the DC operating point.
///
/// Plain Newton from `initial` (or all zeros) is tried first; if it
/// fails, a gmin ramp (1e-3 → 0) continues from the best available
/// iterate.
///
/// # Errors
///
/// Returns [`CircuitError::NoConvergence`] if even the gmin ramp fails,
/// or [`CircuitError::SingularSystem`] for structurally singular circuits
/// (floating nodes without any DC path).
pub fn solve_dc(circuit: &Circuit, initial: Option<&[f64]>) -> Result<Solution, CircuitError> {
    let n = circuit.unknown_count();
    if n == 0 {
        return Ok(Solution {
            x: Vec::new(),
            iterations: 0,
        });
    }
    let x0 = initial.map(|v| v.to_vec()).unwrap_or_else(|| vec![0.0; n]);
    match newton(circuit, &x0, &AnalysisMode::Dc, 0.0, 80) {
        Ok((x, iterations)) => Ok(Solution { x, iterations }),
        Err(_) => {
            // Gmin ramp.
            let mut x = x0;
            let mut total = 0usize;
            for exp in (0..=12).rev() {
                let gmin = 10f64.powi(-(15 - exp));
                let (nx, it) = newton(circuit, &x, &AnalysisMode::Dc, gmin, 80)?;
                x = nx;
                total += it;
            }
            let (x, it) = newton(circuit, &x, &AnalysisMode::Dc, 0.0, 80)?;
            Ok(Solution {
                x,
                iterations: total + it,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{CurrentSource, Resistor, VoltageSource};
    use crate::netlist::Circuit;

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 3e3));
        let sol = solve_dc(&c, None).unwrap();
        assert!((sol.voltage(out) - 1.5).abs() < 1e-9);
        assert!((sol.voltage(vin) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(CurrentSource::dc("I1", Circuit::ground(), a, 1e-3));
        c.add(Resistor::new("R1", a, Circuit::ground(), 2e3));
        let sol = solve_dc(&c, None).unwrap();
        assert!((sol.voltage(a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn branch_current_of_voltage_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::dc("V1", a, Circuit::ground(), 5.0));
        c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
        let sol = solve_dc(&c, None).unwrap();
        // Source supplies 5 mA; branch current (out of +) is −5 mA.
        let bases = c.extra_var_bases();
        assert!((sol.x[bases[0]] + 5e-3).abs() < 1e-9);
    }

    #[test]
    fn two_sources_parallel_resistors() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(VoltageSource::dc("VA", a, Circuit::ground(), 1.0));
        c.add(VoltageSource::dc("VB", b, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", a, b, 1e3));
        let sol = solve_dc(&c, None).unwrap();
        assert!((sol.voltage(a) - 1.0).abs() < 1e-12);
        assert!((sol.voltage(b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn floating_nodes_resolve_to_ground_via_gmin() {
        // Plain Newton sees a singular matrix; the gmin ramp gives every
        // node a leak to ground, so the floating pair settles at 0 V —
        // the standard SPICE resolution of floating nodes.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(Resistor::new("R1", a, b, 1e3));
        let sol = solve_dc(&c, None).unwrap();
        assert!(sol.voltage(a).abs() < 1e-9);
        assert!(sol.voltage(b).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = solve_dc(&c, None).unwrap();
        assert!(sol.x.is_empty());
    }

    #[test]
    fn warm_start_converges_faster_or_equal() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
        let cold = solve_dc(&c, None).unwrap();
        let warm = solve_dc(&c, Some(&cold.x)).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert!((warm.voltage(out) - cold.voltage(out)).abs() < 1e-12);
    }
}
