//! Nonlinear DC operating-point solver: damped Newton with a gmin ramp.
//!
//! The iteration itself lives in [`crate::engine`]; this module keeps
//! the legacy entry points ([`solve_dc`], [`solve_dc_with`] — now
//! deprecated wrappers over a throwaway engine) and the [`Solution`]
//! type. New code should call [`crate::sim::Simulator::op`], which
//! additionally shares solver caches and warm starts across analyses.

use crate::engine::{NewtonEngine, NewtonOptions};
use crate::error::CircuitError;
use crate::netlist::Circuit;

/// A converged solution of the MNA system.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Unknown vector: node voltages (order of node creation) followed by
    /// element extra variables.
    pub x: Vec<f64>,
    /// Newton iterations used (summed over gmin steps).
    pub iterations: usize,
}

impl Solution {
    /// Voltage of `node` in this solution.
    pub fn voltage(&self, node: crate::netlist::NodeId) -> f64 {
        node.unknown_index().map(|i| self.x[i]).unwrap_or(0.0)
    }
}

/// Solves the DC operating point with default [`NewtonOptions`].
///
/// Plain Newton from `initial` (or all zeros) is tried first; if it
/// fails, a gmin ramp (1e-3 → 0) continues from the best available
/// iterate.
///
/// # Errors
///
/// Returns [`CircuitError::NoConvergence`] if even the gmin ramp fails,
/// or [`CircuitError::SingularSystem`] for structurally singular circuits
/// (floating nodes without any DC path).
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session and call `op()` so the solver \
            caches and operating point are shared across analyses"
)]
pub fn solve_dc(circuit: &Circuit, initial: Option<&[f64]>) -> Result<Solution, CircuitError> {
    // Calls the engine directly (not the sibling deprecated wrapper):
    // nothing inside the crate depends on a deprecated entry point.
    NewtonEngine::new(NewtonOptions::default()).dc_operating_point(circuit, initial)
}

/// [`solve_dc`] with explicit [`NewtonOptions`] (tolerances, damping,
/// solver selection).
///
/// For repeated solves of one circuit (sweeps, bias stepping), build a
/// [`crate::sim::Simulator`] session (or a [`NewtonEngine`] directly)
/// so the sparsity pattern and solver ordering are reused across
/// solves.
///
/// # Errors
///
/// Same as [`solve_dc`].
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session with `Simulator::with_options` \
            and call `op()`"
)]
pub fn solve_dc_with(
    circuit: &Circuit,
    initial: Option<&[f64]>,
    options: &NewtonOptions,
) -> Result<Solution, CircuitError> {
    NewtonEngine::new(*options).dc_operating_point(circuit, initial)
}

#[cfg(test)]
mod tests {
    // These tests exercise the deprecated wrappers on purpose: legacy
    // entry points must keep their exact behaviour on top of the
    // session cores.
    #![allow(deprecated)]

    use super::*;
    use crate::element::{CurrentSource, Resistor, VoltageSource};
    use crate::engine::SolverKind;
    use crate::netlist::Circuit;

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 3e3));
        let sol = solve_dc(&c, None).unwrap();
        assert!((sol.voltage(out) - 1.5).abs() < 1e-9);
        assert!((sol.voltage(vin) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(CurrentSource::dc("I1", Circuit::ground(), a, 1e-3));
        c.add(Resistor::new("R1", a, Circuit::ground(), 2e3));
        let sol = solve_dc(&c, None).unwrap();
        assert!((sol.voltage(a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn branch_current_of_voltage_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::dc("V1", a, Circuit::ground(), 5.0));
        c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
        let sol = solve_dc(&c, None).unwrap();
        // Source supplies 5 mA; branch current (out of +) is −5 mA.
        let bases = c.extra_var_bases();
        assert!((sol.x[bases[0]] + 5e-3).abs() < 1e-9);
    }

    #[test]
    fn two_sources_parallel_resistors() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(VoltageSource::dc("VA", a, Circuit::ground(), 1.0));
        c.add(VoltageSource::dc("VB", b, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", a, b, 1e3));
        let sol = solve_dc(&c, None).unwrap();
        assert!((sol.voltage(a) - 1.0).abs() < 1e-12);
        assert!((sol.voltage(b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn floating_nodes_resolve_to_ground_via_gmin() {
        // Plain Newton sees a singular matrix; the gmin ramp gives every
        // node a leak to ground, so the floating pair settles at 0 V —
        // the standard SPICE resolution of floating nodes.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(Resistor::new("R1", a, b, 1e3));
        let sol = solve_dc(&c, None).unwrap();
        assert!(sol.voltage(a).abs() < 1e-9);
        assert!(sol.voltage(b).abs() < 1e-9);
    }

    #[test]
    fn floating_nodes_resolve_with_sparse_solver_too() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(Resistor::new("R1", a, b, 1e3));
        let opts = NewtonOptions {
            solver: SolverKind::Sparse,
            ..NewtonOptions::default()
        };
        let sol = solve_dc_with(&c, None, &opts).unwrap();
        assert!(sol.voltage(a).abs() < 1e-9);
        assert!(sol.voltage(b).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = solve_dc(&c, None).unwrap();
        assert!(sol.x.is_empty());
    }

    #[test]
    fn warm_start_converges_faster_or_equal() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
        let cold = solve_dc(&c, None).unwrap();
        let warm = solve_dc(&c, Some(&cold.x)).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert!((warm.voltage(out) - cold.voltage(out)).abs() < 1e-12);
    }
}
