//! Error type of the circuit simulator.

use std::fmt;

/// Error returned by circuit analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// Newton failed to converge within its budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final residual infinity norm.
        residual: f64,
    },
    /// The MNA matrix was singular (floating node, short loop of ideal
    /// sources, …).
    SingularSystem(String),
    /// An analysis was configured inconsistently.
    InvalidAnalysis(String),
    /// Adaptive transient stepping gave up: either the step controller
    /// shrank the step to the configured minimum and the step still
    /// failed (local truncation error too large or Newton divergence),
    /// or the consecutive-rejection budget ran out first.
    TimestepTooSmall {
        /// Simulation time at which the controller gave up, seconds.
        t: f64,
        /// The step size that could not be reduced further, seconds.
        dt: f64,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CircuitError::SingularSystem(msg) => write!(f, "singular mna system: {msg}"),
            CircuitError::InvalidAnalysis(msg) => write!(f, "invalid analysis: {msg}"),
            CircuitError::TimestepTooSmall { t, dt } => write!(
                f,
                "adaptive transient gave up at t = {t:.6e} s with step {dt:.3e} s \
                 (dt_min or the rejection budget was reached and the step still failed)"
            ),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = CircuitError::NoConvergence {
            iterations: 10,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("10"));
        let s = CircuitError::SingularSystem("pivot 0".into());
        assert!(s.to_string().contains("pivot 0"));
    }
}
