//! Error type of the circuit simulator.

use crate::engine::ConvergenceReport;
use std::fmt;

/// Error returned by circuit analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// Newton failed to converge within its budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final residual infinity norm.
        residual: f64,
        /// Post-mortem of the failed solve: worst-residual unknown by
        /// name and the strategy ladder that was exhausted.
        report: ConvergenceReport,
    },
    /// The MNA matrix was singular (floating node, short loop of ideal
    /// sources, …).
    SingularSystem(String),
    /// An analysis was configured inconsistently.
    InvalidAnalysis(String),
    /// An analysis referenced a source element that does not exist (or
    /// cannot be driven). Carries the names of the circuit's drivable
    /// sources so the mistake is diagnosable at request build time, not
    /// deep inside a solve.
    UnknownSource {
        /// The requested source name.
        requested: String,
        /// Names of the sources the circuit actually has.
        available: Vec<String>,
    },
    /// A probe referenced a node name the circuit does not have. Carries
    /// the circuit's node names for diagnosis.
    UnknownNode {
        /// The requested node name.
        requested: String,
        /// Names of the nodes the circuit actually has.
        available: Vec<String>,
    },
    /// The DC MNA system is **structurally** singular: maximum bipartite
    /// matching on the assembled sparsity pattern leaves at least one
    /// unknown unmatched, so no assignment of element values can make
    /// the matrix invertible. Raised *before* any factorisation — the
    /// classic causes are a node with no DC path to ground (isolated by
    /// capacitors or current sources) or a gate-only node. Carries the
    /// human-readable names of the undeterminable unknowns: node names,
    /// `i(ELEMENT)` for source branch currents, `internal(ELEMENT)` for
    /// other element unknowns.
    StructurallySingular {
        /// Names of the unknowns no equation can determine.
        nodes: Vec<String>,
    },
    /// The analysis was interrupted by a cooperative cancellation
    /// request (see `Simulator::set_cancel`). The flag is polled once
    /// per Newton iteration and once per transient step attempt, so a
    /// cancelled transient stops within one accepted step. Partial
    /// results computed before the interrupt are discarded by the
    /// analysis entry points; the engine itself stays reusable.
    Cancelled,
    /// Adaptive transient stepping gave up: either the step controller
    /// shrank the step to the configured minimum and the step still
    /// failed (local truncation error too large or Newton divergence),
    /// or the consecutive-rejection budget ran out first.
    TimestepTooSmall {
        /// Simulation time at which the controller gave up, seconds.
        t: f64,
        /// The step size that could not be reduced further, seconds.
        dt: f64,
        /// Post-mortem of the final failed Newton solve: worst unknown
        /// by name and the last strategy tried before giving up.
        report: ConvergenceReport,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::NoConvergence {
                iterations,
                residual,
                report,
            } => write!(
                f,
                "newton failed to converge after {iterations} iterations \
                 (residual {residual:.3e}); {report}"
            ),
            CircuitError::SingularSystem(msg) => write!(f, "singular mna system: {msg}"),
            CircuitError::InvalidAnalysis(msg) => write!(f, "invalid analysis: {msg}"),
            CircuitError::UnknownSource {
                requested,
                available,
            } => {
                if available.is_empty() {
                    write!(
                        f,
                        "no source named '{requested}' (the circuit has no sources)"
                    )
                } else {
                    write!(
                        f,
                        "no source named '{requested}'; available sources: {}",
                        available.join(", ")
                    )
                }
            }
            CircuitError::UnknownNode {
                requested,
                available,
            } => {
                if available.is_empty() {
                    write!(
                        f,
                        "no node named '{requested}' (the circuit has no named nodes)"
                    )
                } else {
                    write!(
                        f,
                        "no node named '{requested}'; available nodes: {}",
                        available.join(", ")
                    )
                }
            }
            CircuitError::StructurallySingular { nodes } => write!(
                f,
                "structurally singular mna system: no equation can determine {} \
                 (check for nodes isolated from ground by capacitors or current sources)",
                nodes.join(", ")
            ),
            CircuitError::Cancelled => {
                write!(
                    f,
                    "analysis cancelled by a cooperative cancellation request"
                )
            }
            CircuitError::TimestepTooSmall { t, dt, report } => write!(
                f,
                "adaptive transient gave up at t = {t:.6e} s with step {dt:.3e} s \
                 (dt_min or the rejection budget was reached and the step still failed); \
                 last solve: {report}"
            ),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = CircuitError::NoConvergence {
            iterations: 10,
            residual: 1e-3,
            report: ConvergenceReport::default(),
        };
        assert!(e.to_string().contains("10"));
        let s = CircuitError::SingularSystem("pivot 0".into());
        assert!(s.to_string().contains("pivot 0"));
    }

    #[test]
    fn no_convergence_renders_report_exactly() {
        use crate::engine::NewtonStrategy;
        let e = CircuitError::NoConvergence {
            iterations: 120,
            residual: 2.5e-4,
            report: ConvergenceReport {
                strategy: NewtonStrategy::Ptc,
                iterations: 120,
                residual: 2.5e-4,
                worst_unknown: "mid".into(),
                limiter_clamps: 3,
                armijo_backtracks: 17,
                ptc_steps: 2,
            },
        };
        assert_eq!(
            e.to_string(),
            "newton failed to converge after 120 iterations (residual 2.500e-4); \
             worst unknown mid (|F| = 2.500e-4), strategies tried: \
             newton → voltage limiting → armijo damping → pseudo-transient"
        );
    }

    #[test]
    fn timestep_too_small_renders_report_exactly() {
        use crate::engine::NewtonStrategy;
        let e = CircuitError::TimestepTooSmall {
            t: 1.23e-10,
            dt: 1e-15,
            report: ConvergenceReport {
                strategy: NewtonStrategy::Damped,
                iterations: 120,
                residual: 4.2e-9,
                worst_unknown: "i(VIN)".into(),
                limiter_clamps: 0,
                armijo_backtracks: 5,
                ptc_steps: 0,
            },
        };
        assert_eq!(
            e.to_string(),
            "adaptive transient gave up at t = 1.230000e-10 s with step 1.000e-15 s \
             (dt_min or the rejection budget was reached and the step still failed); \
             last solve: worst unknown i(VIN) (|F| = 4.200e-9), strategies tried: \
             newton → armijo damping"
        );
    }

    #[test]
    fn structurally_singular_names_unknowns() {
        let e = CircuitError::StructurallySingular {
            nodes: vec!["mid".into(), "i(V2)".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("structurally singular"), "{msg}");
        assert!(msg.contains("mid, i(V2)"), "{msg}");
    }

    #[test]
    fn unknown_source_lists_alternatives() {
        let e = CircuitError::UnknownSource {
            requested: "VX".into(),
            available: vec!["VDD".into(), "VIN".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("VX") && msg.contains("VDD, VIN"), "{msg}");
        let none = CircuitError::UnknownSource {
            requested: "VX".into(),
            available: vec![],
        };
        assert!(none.to_string().contains("no sources"));
    }

    #[test]
    fn cancelled_displays_cause() {
        assert!(CircuitError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn unknown_node_lists_alternatives() {
        let e = CircuitError::UnknownNode {
            requested: "ouy".into(),
            available: vec!["in".into(), "out".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("ouy") && msg.contains("in, out"), "{msg}");
    }
}
