//! Circuit description: nodes and the element container.
//!
//! # Unknown-vector layout
//!
//! Every solver in this crate shares one layout of the MNA unknown
//! vector: the [`Circuit::node_count`] non-ground node voltages first
//! (node `n` at index `n − 1`, see [`NodeId::unknown_index`]), followed
//! by each element's extra variables in element insertion order
//! ([`Circuit::extra_var_bases`]). Analyses exploit the split — e.g.
//! adaptive transient stepping measures its truncation-error norm over
//! the node-voltage prefix only, because the extra rows (branch
//! currents in amperes, CNFET charge balances in C/m) live in
//! different units.
//!
//! # Structural identity
//!
//! Solver caches are keyed on ([`Circuit::id`], [`Circuit::revision`]):
//! `id` is process-unique per circuit instance, and `revision` bumps on
//! every structural change (new node or element). Value-only updates
//! such as [`Circuit::set_source_value`] leave `revision` untouched, so
//! warm solver state survives sweeps and transient runs.

use crate::element::Element;
use std::collections::HashMap;
use std::fmt;

/// A circuit node. `NodeId::GROUND` is the reference node (0 V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Index of this node's voltage in the unknown vector, or `None` for
    /// ground.
    pub fn unknown_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// A circuit under construction: named nodes plus a list of elements.
///
/// # Examples
///
/// ```
/// use cntfet_circuit::netlist::Circuit;
/// use cntfet_circuit::element::{Resistor, VoltageSource};
///
/// let mut c = Circuit::new();
/// let vin = c.node("in");
/// let out = c.node("out");
/// c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 1.0));
/// c.add(Resistor::new("R1", vin, out, 1e3));
/// c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
/// assert_eq!(c.node_count(), 2);
/// ```
#[derive(Debug)]
pub struct Circuit {
    id: u64,
    names: HashMap<String, NodeId>,
    next_node: usize,
    elements: Vec<Box<dyn Element>>,
    revision: u64,
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new()
    }
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        Circuit {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            names: HashMap::new(),
            next_node: 1,
            elements: Vec::new(),
            revision: 0,
        }
    }

    /// A process-unique identity for this circuit instance. Solver
    /// caches key on `(id, revision)` so an engine reused across two
    /// different circuits can never confuse their structures.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The ground node.
    pub fn ground() -> NodeId {
        NodeId::GROUND
    }

    /// Returns the node with the given name, creating it on first use.
    /// The name `"gnd"` (or `"0"`) is the ground node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "gnd" || name == "0" {
            return NodeId::GROUND;
        }
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.revision += 1;
        self.names.insert(name.to_string(), id);
        id
    }

    /// Structural revision counter: bumped whenever the circuit gains a
    /// node or an element. Solvers key their cached sparsity patterns on
    /// this, so a grown circuit transparently rebuilds the pattern.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "gnd" || name == "0" {
            Some(NodeId::GROUND)
        } else {
            self.names.get(name).copied()
        }
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.next_node - 1
    }

    /// Adds an element.
    pub fn add(&mut self, element: impl Element + 'static) {
        self.revision += 1;
        self.elements.push(Box::new(element));
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Box<dyn Element>] {
        &self.elements
    }

    /// Mutable access to the elements (used by sweeps to update source
    /// values in place).
    pub fn elements_mut(&mut self) -> &mut [Box<dyn Element>] {
        &mut self.elements
    }

    /// Number of nonlinear device instances: elements that carry extra
    /// unknowns without being sources (today, the CNFETs and their
    /// inner charge nodes). This is the population the device-bypass
    /// counters ([`crate::engine::EngineCounters::device_evals`] /
    /// `device_bypasses`) draw from — linear R/C/V/I stamps are static
    /// and never counted.
    pub fn device_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| e.extra_vars() > 0 && !e.is_source())
            .count()
    }

    /// Total number of MNA unknowns: node voltages plus element extra
    /// variables (source branch currents, CNFET inner nodes).
    pub fn unknown_count(&self) -> usize {
        self.node_count() + self.elements.iter().map(|e| e.extra_vars()).sum::<usize>()
    }

    /// Assigns each element its base index into the extra-variable block
    /// and returns the list (same order as [`Circuit::elements`]).
    pub fn extra_var_bases(&self) -> Vec<usize> {
        let mut base = self.node_count();
        self.elements
            .iter()
            .map(|e| {
                let b = base;
                base += e.extra_vars();
                b
            })
            .collect()
    }

    /// All named nodes as `(name, id)` pairs, sorted by node id (i.e.
    /// creation order) so the listing is deterministic.
    pub fn node_names(&self) -> Vec<(String, NodeId)> {
        let mut names: Vec<(String, NodeId)> =
            self.names.iter().map(|(n, &id)| (n.clone(), id)).collect();
        names.sort_by_key(|&(_, id)| id);
        names
    }

    /// Names of the elements that can be driven as sources (accept
    /// [`Circuit::set_source_value`] / provide an AC stimulus), in
    /// element insertion order. Used to validate sweep and AC requests
    /// up front with a helpful error.
    pub fn source_names(&self) -> Vec<String> {
        self.elements
            .iter()
            .filter(|e| e.is_source())
            .map(|e| e.name().to_string())
            .collect()
    }

    /// `true` when the circuit has a drivable source with this name.
    pub fn has_source(&self, name: &str) -> bool {
        self.elements
            .iter()
            .any(|e| e.is_source() && e.name() == name)
    }

    /// Sets the value of the named source element (DC value).
    ///
    /// Returns `true` if an element with that name accepted the update.
    pub fn set_source_value(&mut self, name: &str, value: f64) -> bool {
        for e in &mut self.elements {
            if e.name() == name && e.set_value(value) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Resistor, VoltageSource};

    #[test]
    fn node_names_are_stable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("missing"), None);
    }

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("gnd"), NodeId::GROUND);
        assert_eq!(c.node("0"), NodeId::GROUND);
        assert_eq!(c.node_count(), 0);
        assert_eq!(NodeId::GROUND.unknown_index(), None);
    }

    #[test]
    fn unknown_count_includes_branch_currents() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::dc("V1", a, Circuit::ground(), 1.0));
        c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
        assert_eq!(c.unknown_count(), 2); // node a + V1 branch current
        assert_eq!(c.extra_var_bases(), vec![1, 2]);
    }

    #[test]
    fn set_source_value_finds_named_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::dc("V1", a, Circuit::ground(), 1.0));
        c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
        assert!(c.set_source_value("V1", 2.5));
        assert!(!c.set_source_value("R1", 2.5));
        assert!(!c.set_source_value("nope", 1.0));
    }

    #[test]
    fn source_and_node_listings() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add(VoltageSource::dc("V1", a, Circuit::ground(), 1.0));
        c.add(Resistor::new("R1", a, b, 1e3));
        assert_eq!(c.source_names(), vec!["V1".to_string()]);
        assert!(c.has_source("V1"));
        assert!(!c.has_source("R1"), "a resistor is not drivable");
        assert!(!c.has_source("nope"));
        let names = c.node_names();
        assert_eq!(
            names,
            vec![("a".to_string(), a), ("b".to_string(), b)],
            "sorted by creation order"
        );
    }

    #[test]
    fn display_of_nodes() {
        assert_eq!(NodeId::GROUND.to_string(), "gnd");
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
