//! The unified analysis session: one [`Simulator`] owns a circuit, a
//! Newton engine and every solver cache, and exposes all analyses as
//! typed methods.
//!
//! # Why a session?
//!
//! Historically each analysis entry point (`solve_dc`, `dc_sweep`,
//! `solve_transient_*`) privately created its own [`NewtonEngine`], so
//! the expensive state the engine accumulates — the recorded MNA
//! sparsity pattern, the sparse LU's frozen pivot order and fill
//! pattern, a converged operating point to warm-start from — was thrown
//! away between analyses of the *same* circuit. A [`Simulator`] keeps
//! that state alive across calls:
//!
//! * [`Simulator::op`] warm-starts from the last converged solution;
//! * [`Simulator::dc_sweep`] and [`Simulator::transient`] reuse the
//!   session engine's pattern and solver ordering;
//! * [`Simulator::ac`] linearises at the session's operating point and
//!   was the first analysis *designed* for the session — it only exists
//!   through this API.
//!
//! The legacy free functions still work as thin deprecated wrappers that
//! each build a throwaway session, so existing code keeps its exact
//! results while new code migrates.
//!
//! # Example
//!
//! ```
//! use cntfet_circuit::prelude::*;
//!
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let out = c.node("out");
//! c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
//! c.add(Resistor::new("R1", vin, out, 1e3));
//! c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
//!
//! let mut sim = Simulator::new(c);
//! let op = sim.op()?;
//! assert!((op.voltage("out")? - 1.0).abs() < 1e-9);
//!
//! // Same session, same caches: a sweep and its probe-by-name result.
//! let vtc = sim.dc_sweep(&SweepSpec::linspace("V1", 0.0, 2.0, 5))?;
//! assert_eq!(vtc.voltage("out")?.len(), 5);
//! # Ok::<(), cntfet_circuit::CircuitError>(())
//! ```

use crate::ac::{ac_core, AcResponse, AcSweep};
use crate::dc::Solution;
use crate::engine::{NewtonEngine, NewtonOptions};
use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId};
use crate::sweep::{sweep_core, SweepResult};
use crate::transient::TransientRun;
use crate::transient::{
    transient_adaptive_core, transient_fixed_core, StepObserver, TransientOptions,
};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, OnceLock};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Node-name lookup captured from a circuit into analysis results, so
/// results can be probed by name (`"out"`) long after the circuit moved
/// on — with an error that lists the valid names when a probe misses.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    names: Vec<(String, NodeId)>,
}

impl Probe {
    /// Captures the node-name table of `circuit` (sorted by creation
    /// order, so equal circuits give equal probes).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Probe {
            names: circuit.node_names(),
        }
    }

    /// Resolves a node name (`"gnd"`/`"0"` are the ground node).
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn node(&self, name: &str) -> Result<NodeId, CircuitError> {
        if name == "gnd" || name == "0" {
            return Ok(NodeId::GROUND);
        }
        self.names
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
            .ok_or_else(|| CircuitError::UnknownNode {
                requested: name.to_string(),
                available: self.names.iter().map(|(n, _)| n.clone()).collect(),
            })
    }

    /// The captured `(name, node)` pairs, sorted by node creation order.
    pub fn names(&self) -> &[(String, NodeId)] {
        &self.names
    }
}

/// Node-voltage waveforms with borrowed-slice probe accessors, shared
/// by [`SweepResult`] and [`TransientRun`].
///
/// The node-major copy (one contiguous slice per node) is built
/// **lazily** on the first probe: results that are only read through
/// the legacy row-major accessors never pay the extra memory or the
/// gather pass. Once built, every later probe is a pure slice borrow.
/// Equality ignores the cache state — two results probe-equal iff their
/// primary data match.
#[derive(Debug, Clone)]
pub struct NodeWaves {
    probe: Probe,
    n_nodes: usize,
    n_points: usize,
    /// Node `i`'s waveform at `data[i*n_points .. (i+1)*n_points]`,
    /// gathered from the owner's row-major states on first probe.
    data: OnceLock<Vec<f64>>,
    /// Served for ground probes (always 0 V), also lazy.
    zeros: OnceLock<Vec<f64>>,
}

impl PartialEq for NodeWaves {
    fn eq(&self, other: &Self) -> bool {
        // The caches are derived from the owner's states; whether they
        // have been materialised yet is not part of a result's value.
        self.probe == other.probe
            && self.n_nodes == other.n_nodes
            && self.n_points == other.n_points
    }
}

impl NodeWaves {
    /// Captures the probe and shape; no waveform data is copied until
    /// the first by-name/by-node probe.
    pub(crate) fn new(circuit: &Circuit, n_points: usize) -> Self {
        NodeWaves {
            probe: Probe::from_circuit(circuit),
            n_nodes: circuit.node_count(),
            n_points,
            data: OnceLock::new(),
            zeros: OnceLock::new(),
        }
    }

    /// Number of stored points per node.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// The name probe backing the by-name accessors.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Borrowed waveform of `node` (all-zero slice for ground), or
    /// `None` when the node does not belong to the originating circuit.
    /// `points` re-yields the owner's row-major states; it is only
    /// consumed on the first materialising call.
    pub(crate) fn slice_with<'a, 's>(
        &'s self,
        node: NodeId,
        points: impl FnOnce() -> Box<dyn ExactSizeIterator<Item = &'a [f64]> + 'a>,
    ) -> Option<&'s [f64]> {
        match node.unknown_index() {
            None => Some(self.zeros.get_or_init(|| vec![0.0; self.n_points])),
            Some(i) if i < self.n_nodes => {
                let data = self.data.get_or_init(|| {
                    let mut data = vec![0.0; self.n_nodes * self.n_points];
                    for (k, x) in points().enumerate() {
                        for (n, row) in data.chunks_exact_mut(self.n_points).enumerate() {
                            row[k] = x[n];
                        }
                    }
                    data
                });
                Some(&data[i * self.n_points..(i + 1) * self.n_points])
            }
            Some(_) => None,
        }
    }

    /// Borrowed waveform of the named node; see
    /// [`NodeWaves::slice_with`] for the laziness contract.
    pub(crate) fn by_name_with<'a, 's>(
        &'s self,
        name: &str,
        points: impl FnOnce() -> Box<dyn ExactSizeIterator<Item = &'a [f64]> + 'a>,
    ) -> Result<&'s [f64], CircuitError> {
        let node = self.probe.node(name)?;
        Ok(self
            .slice_with(node, points)
            .expect("probe only resolves nodes of the originating circuit"))
    }
}

/// A converged DC operating point with probe-by-name accessors — the
/// session-API counterpart of the legacy [`Solution`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpPoint {
    x: Vec<f64>,
    iterations: usize,
    probe: Probe,
}

impl OpPoint {
    pub(crate) fn new(solution: Solution, circuit: &Circuit) -> Self {
        OpPoint {
            x: solution.x,
            iterations: solution.iterations,
            probe: Probe::from_circuit(circuit),
        }
    }

    /// Voltage of the named node (0 for `"gnd"`/`"0"`).
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn voltage(&self, name: &str) -> Result<f64, CircuitError> {
        Ok(self.voltage_at(self.probe.node(name)?))
    }

    /// Voltage of `node` (0 for ground).
    pub fn voltage_at(&self, node: NodeId) -> f64 {
        node.unknown_index().map_or(0.0, |i| self.x[i])
    }

    /// The full unknown vector: node voltages then element extra
    /// variables (see the layout notes in [`crate::netlist`]).
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Newton iterations spent (summed over gmin steps).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The node-name probe of this operating point.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Converts into the legacy [`Solution`] type (e.g. to seed a
    /// legacy entry point).
    pub fn into_solution(self) -> Solution {
        Solution {
            x: self.x,
            iterations: self.iterations,
        }
    }
}

/// A DC sweep request: which source to sweep and through which values.
///
/// Source names are validated against the circuit when the request is
/// run, with an error listing the available sources on a miss.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Name of the source to sweep.
    pub source: String,
    /// Values to sweep it through (warm-started in order).
    pub values: Vec<f64>,
}

impl SweepSpec {
    /// Builds a spec from a source name and explicit sweep values.
    pub fn new(source: impl Into<String>, values: Vec<f64>) -> Self {
        SweepSpec {
            source: source.into(),
            values,
        }
    }

    /// A linearly spaced sweep of `points` values from `start` to `stop`
    /// inclusive (a single point sweeps just `start`).
    pub fn linspace(source: impl Into<String>, start: f64, stop: f64, points: usize) -> Self {
        let values = if points <= 1 {
            vec![start]
        } else {
            (0..points)
                .map(|i| start + (stop - start) * i as f64 / (points - 1) as f64)
                .collect()
        };
        SweepSpec::new(source, values)
    }
}

/// A transient request: duration, stepping mode and options.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSpec {
    /// Simulation duration, seconds.
    pub t_stop: f64,
    /// `Some(dt)` runs on a fixed grid of step `dt`; `None` runs the
    /// LTE-controlled adaptive stepper.
    pub dt: Option<f64>,
    /// Integrator, tolerance and controller options (the embedded
    /// [`NewtonOptions`] governs the Newton solves of this run).
    pub options: TransientOptions,
    /// Starting state; `None` solves the DC operating point at `t = 0`.
    pub initial: Option<Vec<f64>>,
}

impl TransientSpec {
    /// An adaptive (LTE-controlled) run of the given duration with
    /// default [`TransientOptions`].
    pub fn adaptive(t_stop: f64) -> Self {
        TransientSpec {
            t_stop,
            dt: None,
            options: TransientOptions::default(),
            initial: None,
        }
    }

    /// A fixed-grid run of the given duration and step size with
    /// default [`TransientOptions`].
    pub fn fixed(t_stop: f64, dt: f64) -> Self {
        TransientSpec {
            t_stop,
            dt: Some(dt),
            options: TransientOptions::default(),
            initial: None,
        }
    }

    /// Replaces the options (builder style).
    pub fn with_options(mut self, options: TransientOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the starting state (builder style).
    pub fn with_initial(mut self, initial: Vec<f64>) -> Self {
        self.initial = Some(initial);
        self
    }
}

/// An analysis session owning a [`Circuit`], a [`NewtonEngine`] and all
/// pattern/pivot/warm-start caches, with every analysis as a typed
/// method. See the [module docs](self) for the motivation and an
/// example.
///
/// # Cache behaviour
///
/// The engine keys its caches on the circuit's structural revision, so
/// mutating the circuit through [`Simulator::circuit_mut`] (adding
/// elements, changing source values) is always safe: value changes
/// reuse the caches, structural changes transparently rebuild them.
/// Switching between DC-kind analyses (`op`, `dc_sweep`) and
/// transient-kind ones (`transient`, `ac`) re-records the pattern for
/// the new analysis kind — within one analysis the pattern is recorded
/// at most once.
#[derive(Debug)]
pub struct Simulator {
    circuit: Circuit,
    engine: NewtonEngine,
    newton: NewtonOptions,
    /// Last converged DC solution, used to warm-start later solves.
    last_x: Option<Vec<f64>>,
}

impl Simulator {
    /// Creates a session around `circuit` with default
    /// [`NewtonOptions`].
    pub fn new(circuit: Circuit) -> Self {
        Simulator::with_options(circuit, NewtonOptions::default())
    }

    /// Creates a session with explicit Newton options (tolerances,
    /// damping, dense/sparse solver selection) used by the DC-kind
    /// analyses; transient runs use the options embedded in their
    /// [`TransientSpec`].
    pub fn with_options(circuit: Circuit, options: NewtonOptions) -> Self {
        Simulator {
            circuit,
            engine: NewtonEngine::new(options),
            newton: options,
            last_x: None,
        }
    }

    /// Creates a session around `circuit` reusing a warm
    /// [`NewtonEngine`] harvested from an earlier session with
    /// [`Simulator::into_engine`] — the warm-session seam of the
    /// persistent server. The engine is [re-keyed](NewtonEngine::rebind)
    /// onto the new circuit: when the MNA structure matches, its
    /// recorded sparsity pattern and frozen pivot plan survive and the
    /// symbolic analysis is skipped; otherwise the caches rebuild
    /// lazily and the session behaves exactly like a cold one. The
    /// session starts with no warm-start point, so the Newton iteration
    /// sequence of a resumed run matches a cold run's bit for bit.
    pub fn resume(circuit: Circuit, mut engine: NewtonEngine, options: NewtonOptions) -> Self {
        engine.rebind(&circuit);
        engine.set_options(options);
        Simulator {
            circuit,
            engine,
            newton: options,
            last_x: None,
        }
    }

    /// Dissolves the session and returns its engine so a pool can keep
    /// the warm symbolic state for a later [`Simulator::resume`]. Any
    /// installed cancellation flag is detached first.
    pub fn into_engine(mut self) -> NewtonEngine {
        self.engine.set_cancel(None);
        self.engine
    }

    /// Installs (or clears) a cooperative cancellation flag on the
    /// session engine: raise it from another thread and the running
    /// analysis returns [`CircuitError::Cancelled`] within one Newton
    /// iteration (DC/AC/sweep) or one transient step attempt. See
    /// [`NewtonEngine::set_cancel`].
    pub fn set_cancel(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.engine.set_cancel(cancel);
    }

    /// The circuit under simulation.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Mutable access to the circuit (e.g. to add elements between
    /// analyses). Structural changes are detected via the circuit's
    /// revision counter and rebuild the solver caches on the next
    /// analysis.
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// Dissolves the session and returns the circuit.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }

    /// The Newton options of the DC-kind analyses.
    pub fn options(&self) -> &NewtonOptions {
        &self.newton
    }

    /// Sets the value of the named source, validating the name.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownSource`] listing the available sources.
    pub fn set_source(&mut self, name: &str, value: f64) -> Result<(), CircuitError> {
        if self.circuit.set_source_value(name, value) {
            Ok(())
        } else {
            Err(CircuitError::UnknownSource {
                requested: name.to_string(),
                available: self.circuit.source_names(),
            })
        }
    }

    /// Solves the DC operating point, warm-starting from the session's
    /// last converged solution when one exists.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NoConvergence`] if even the gmin ramp fails, or
    /// [`CircuitError::SingularSystem`] for structurally singular
    /// circuits.
    pub fn op(&mut self) -> Result<OpPoint, CircuitError> {
        self.engine.set_options(self.newton);
        let warm = self.warm_start();
        let sol = self
            .engine
            .dc_operating_point(&self.circuit, warm.as_deref())?;
        self.last_x = Some(sol.x.clone());
        Ok(OpPoint::new(sol, &self.circuit))
    }

    /// Runs a warm-started DC sweep described by `spec`, validating the
    /// source name before the first solve. The first point warm-starts
    /// from the session's last converged solution; the swept source is
    /// left at the final value.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownSource`] (listing the available sources)
    /// for a bad source name, plus any solver failure.
    pub fn dc_sweep(&mut self, spec: &SweepSpec) -> Result<SweepResult, CircuitError> {
        self.engine.set_options(self.newton);
        let warm = self.warm_start();
        let result = sweep_core(
            &mut self.engine,
            &mut self.circuit,
            &spec.source,
            &spec.values,
            warm.as_deref(),
        )?;
        if let Some(last) = result.solutions.last() {
            self.last_x = Some(last.x.clone());
        }
        Ok(result)
    }

    /// Runs a transient analysis described by `spec` on the session
    /// engine: fixed-grid when `spec.dt` is set, LTE-controlled
    /// adaptive stepping otherwise. When `spec.initial` is `None` the
    /// starting state is the DC operating point, solved on the same
    /// engine and warm-started from the session's last converged
    /// solution (a session that just ran `op()` pays only a
    /// convergence check).
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidAnalysis`] for inconsistent options,
    /// [`CircuitError::TimestepTooSmall`] when adaptive stepping gives
    /// up, plus any solver failure.
    pub fn transient(&mut self, spec: &TransientSpec) -> Result<TransientRun, CircuitError> {
        self.transient_core(spec, None)
    }

    /// [`Simulator::transient`] with an incremental observer: `observe`
    /// is called once per **accepted** step with the simulation time and
    /// the full unknown vector, including the initial state at `t = 0`,
    /// before the run completes — the streaming seam of the persistent
    /// server. Rejected step attempts are never observed, so the
    /// observed sequence equals the returned [`TransientRun`]'s points.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Simulator::transient`].
    pub fn transient_observed(
        &mut self,
        spec: &TransientSpec,
        mut observe: impl FnMut(f64, &[f64]),
    ) -> Result<TransientRun, CircuitError> {
        self.transient_core(spec, Some(&mut observe))
    }

    fn transient_core(
        &mut self,
        spec: &TransientSpec,
        observer: Option<StepObserver<'_>>,
    ) -> Result<TransientRun, CircuitError> {
        // Resolve the starting state here so the session's warm start
        // benefits the DC solve; a caller-provided state passes through
        // to the cores, which validate its length.
        let resolved: Option<Vec<f64>> = match &spec.initial {
            Some(x) => Some(x.clone()),
            None => {
                self.engine.set_options(spec.options.newton);
                let warm = self.warm_start();
                let sol = self
                    .engine
                    .dc_operating_point(&self.circuit, warm.as_deref())?;
                self.last_x = Some(sol.x.clone());
                Some(sol.x)
            }
        };
        let run = match spec.dt {
            Some(dt) => transient_fixed_core(
                &mut self.engine,
                &self.circuit,
                spec.t_stop,
                dt,
                resolved.as_deref(),
                &spec.options,
                observer,
            )?,
            None => transient_adaptive_core(
                &mut self.engine,
                &self.circuit,
                spec.t_stop,
                resolved.as_deref(),
                &spec.options,
                observer,
            )?,
        };
        Ok(run)
    }

    /// Runs an AC small-signal frequency sweep: solves the operating
    /// point (warm-started), linearises the circuit there into
    /// conductance and capacitance stamps, and solves the complex
    /// system `(G + jωC)·X = B` at every grid frequency with one frozen
    /// sparse pattern re-valued per point.
    ///
    /// The stimulus is a unit phasor on the named source, so the
    /// response phasors *are* transfer functions (see
    /// [`AcResponse`]).
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownSource`] for a bad stimulus name,
    /// [`CircuitError::InvalidAnalysis`] for a bad frequency grid, plus
    /// any operating-point or complex-solve failure.
    pub fn ac(&mut self, sweep: &AcSweep) -> Result<AcResponse, CircuitError> {
        let op = self.op()?;
        ac_core(&mut self.engine, &self.circuit, op.x(), sweep)
    }

    /// How many times the session engine has (re)built a sparsity
    /// pattern (see [`NewtonEngine::pattern_builds`]).
    pub fn pattern_builds(&self) -> usize {
        self.engine.pattern_builds()
    }

    /// Total Jacobian factorisations over the session's lifetime.
    pub fn total_factorizations(&self) -> u64 {
        self.engine.total_factorizations()
    }

    /// Cumulative factorisation operation count over the session's
    /// lifetime.
    pub fn total_factor_ops(&self) -> u64 {
        self.engine.total_factor_ops()
    }

    /// Snapshot of every session-lifetime hot-path counter
    /// (factorisation paths, columns recomputed, device evaluations vs
    /// bypasses). Per-analysis numbers come from capturing a baseline
    /// before an analysis and calling
    /// [`EngineCounters::delta_since`] after it — the discipline
    /// [`TransientStats`](crate::transient::TransientStats) follows
    /// internally.
    ///
    /// [`EngineCounters::delta_since`]: crate::engine::EngineCounters::delta_since
    pub fn counters(&self) -> crate::engine::EngineCounters {
        self.engine.counters()
    }

    /// Name of the linear solver currently cached by the engine.
    pub fn solver_name(&self) -> Option<&'static str> {
        self.engine.solver_name()
    }

    /// A warm-start guess: the last converged solution, if its length
    /// still matches the circuit (structural growth invalidates it).
    fn warm_start(&self) -> Option<Vec<f64>> {
        self.last_x
            .as_ref()
            .filter(|x| x.len() == self.circuit.unknown_count())
            .cloned()
    }
}

/// Runs a batch of independent warm-started sweeps, each in its own
/// [`Simulator`] session, in parallel when the `parallel` feature is
/// enabled (the default). This is the session-API successor of the
/// legacy `dc_sweep_many`: `build` constructs a fresh circuit per spec
/// (jobs may differ in topology or parameters), every worker owns its
/// session outright, and results come back in `specs` order.
///
/// # Errors
///
/// Propagates the first failing job's [`CircuitError`].
///
/// # Examples
///
/// ```
/// use cntfet_circuit::prelude::*;
///
/// let corners = [1e3, 2e3, 5e3];
/// let build = |k: usize, _spec: &SweepSpec| {
///     let mut c = Circuit::new();
///     let a = c.node("a");
///     let b = c.node("b");
///     c.add(VoltageSource::dc("V1", a, Circuit::ground(), 0.0));
///     c.add(Resistor::new("R1", a, b, 1e3));
///     c.add(Resistor::new("R2", b, Circuit::ground(), corners[k]));
///     c
/// };
/// let specs = vec![SweepSpec::linspace("V1", 0.0, 1.0, 3); corners.len()];
/// let results = sweep_many(build, &specs, &NewtonOptions::default())?;
/// assert_eq!(results.len(), corners.len());
/// # Ok::<(), cntfet_circuit::CircuitError>(())
/// ```
#[cfg(feature = "parallel")]
pub fn sweep_many<F>(
    build: F,
    specs: &[SweepSpec],
    options: &NewtonOptions,
) -> Result<Vec<SweepResult>, CircuitError>
where
    F: Fn(usize, &SweepSpec) -> Circuit + Sync,
{
    let indexed: Vec<(usize, &SweepSpec)> = specs.iter().enumerate().collect();
    let ran: Vec<Result<SweepResult, CircuitError>> = indexed
        .par_iter()
        .map(|&(index, spec)| run_sweep_session(&build, index, spec, options))
        .collect();
    ran.into_iter().collect()
}

/// [`sweep_many`] (sequential build: the `parallel` feature is
/// disabled).
///
/// # Errors
///
/// Propagates the first failing job's [`CircuitError`].
#[cfg(not(feature = "parallel"))]
pub fn sweep_many<F>(
    build: F,
    specs: &[SweepSpec],
    options: &NewtonOptions,
) -> Result<Vec<SweepResult>, CircuitError>
where
    F: Fn(usize, &SweepSpec) -> Circuit + Sync,
{
    specs
        .iter()
        .enumerate()
        .map(|(index, spec)| run_sweep_session(&build, index, spec, options))
        .collect()
}

fn run_sweep_session(
    build: &(impl Fn(usize, &SweepSpec) -> Circuit + Sync),
    index: usize,
    spec: &SweepSpec,
    options: &NewtonOptions,
) -> Result<SweepResult, CircuitError> {
    let mut sim = Simulator::with_options(build(index, spec), *options);
    sim.dc_sweep(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Capacitor, Resistor, VoltageSource};

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
        c
    }

    #[test]
    fn op_probes_by_name_and_warm_starts() {
        let mut sim = Simulator::new(divider());
        let cold = sim.op().unwrap();
        assert!((cold.voltage("out").unwrap() - 1.0).abs() < 1e-9);
        assert!((cold.voltage("gnd").unwrap()).abs() == 0.0);
        assert!(cold.voltage("nope").is_err());
        // Second solve warm-starts: no more iterations than the first.
        let warm = sim.op().unwrap();
        assert!(warm.iterations() <= cold.iterations());
        assert_eq!(warm.x(), cold.x());
        // One pattern for the whole session.
        assert_eq!(sim.pattern_builds(), 1);
    }

    #[test]
    fn set_source_validates_names() {
        let mut sim = Simulator::new(divider());
        sim.set_source("V1", 4.0).unwrap();
        let op = sim.op().unwrap();
        assert!((op.voltage("out").unwrap() - 2.0).abs() < 1e-9);
        let err = sim.set_source("VX", 1.0).unwrap_err();
        match err {
            CircuitError::UnknownSource { available, .. } => {
                assert_eq!(available, vec!["V1".to_string()]);
            }
            other => panic!("expected UnknownSource, got {other:?}"),
        }
    }

    #[test]
    fn sweep_validates_source_before_solving() {
        let mut sim = Simulator::new(divider());
        let err = sim
            .dc_sweep(&SweepSpec::linspace("VTYPO", 0.0, 1.0, 3))
            .unwrap_err();
        assert!(matches!(err, CircuitError::UnknownSource { .. }));
        assert!(err.to_string().contains("V1"), "lists candidates: {err}");
    }

    #[test]
    fn sweep_result_borrows_slices() {
        let mut sim = Simulator::new(divider());
        let res = sim
            .dc_sweep(&SweepSpec::linspace("V1", 0.0, 2.0, 5))
            .unwrap();
        let out = res.voltage("out").unwrap();
        assert_eq!(out.len(), 5);
        for (v, o) in res.values.iter().zip(out) {
            assert!((o - v / 2.0).abs() < 1e-9);
        }
        // Borrowed and allocating accessors agree.
        let out_node = sim.circuit().find_node("out").unwrap();
        assert_eq!(
            res.voltages_ref(out_node).unwrap(),
            &res.voltages(out_node)[..]
        );
        assert!(res.voltage("gnd").unwrap().iter().all(|&v| v == 0.0));
        assert!(res.voltage("bogus").is_err());
    }

    #[test]
    fn transient_spec_runs_fixed_and_adaptive() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 1.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Capacitor::new("C1", out, Circuit::ground(), 1e-9));
        let mut sim = Simulator::new(c);
        let adaptive = sim.transient(&TransientSpec::adaptive(5e-6)).unwrap();
        let v_end = *adaptive.voltage("out").unwrap().last().unwrap();
        assert!((v_end - 1.0).abs() < 1e-2, "settled after 5 tau: {v_end}");
        let fixed = sim.transient(&TransientSpec::fixed(5e-6, 1e-8)).unwrap();
        let v_end_f = *fixed.voltage("out").unwrap().last().unwrap();
        assert!((v_end - v_end_f).abs() < 1e-2);
        assert!(fixed.stats.accepted > adaptive.stats.accepted);
    }

    #[test]
    fn structural_growth_rebuilds_caches_transparently() {
        let mut sim = Simulator::new(divider());
        sim.op().unwrap();
        assert_eq!(sim.pattern_builds(), 1);
        let g = Circuit::ground();
        let out = sim.circuit().find_node("out").unwrap();
        sim.circuit_mut().add(Resistor::new("R3", out, g, 1e3));
        let op = sim.op().unwrap();
        assert_eq!(sim.pattern_builds(), 2, "growth re-records the pattern");
        // 2 V over 1k into 1k ∥ 1k = 500: v_out = 2 * 500 / 1500.
        assert!((op.voltage("out").unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_many_sessions_match_single_sessions() {
        let corners = [1e3, 3e3];
        let build = |k: usize, _spec: &SweepSpec| {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
            c.add(Resistor::new("R1", vin, out, 1e3));
            c.add(Resistor::new("R2", out, Circuit::ground(), corners[k]));
            c
        };
        let specs = vec![SweepSpec::linspace("V1", 0.0, 2.0, 4); corners.len()];
        let batch = sweep_many(build, &specs, &NewtonOptions::default()).unwrap();
        for (k, (spec, got)) in specs.iter().zip(&batch).enumerate() {
            let mut sim = Simulator::new(build(k, spec));
            let alone = sim.dc_sweep(spec).unwrap();
            assert_eq!(got, &alone);
        }
    }

    #[test]
    fn empty_circuit_session_is_trivial() {
        let mut sim = Simulator::new(Circuit::new());
        let op = sim.op().unwrap();
        assert!(op.x().is_empty());
        assert!(op.voltage("gnd").unwrap() == 0.0);
    }
}
