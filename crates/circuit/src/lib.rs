//! SPICE-like circuit simulator with a ballistic CNFET compact device.
//!
//! The DATE 2008 paper motivates its fast CNFET model by "implementation
//! in circuit-level, e.g. SPICE-like, simulators where large numbers of
//! such devices may be used". This crate is that substrate: a modified-
//! nodal-analysis engine with
//!
//! * [`netlist`] — nodes and element containers;
//! * [`element`] — R, C, V (DC/pulse/sine), I sources and the stamping
//!   interface;
//! * [`cnfet`] — the CNFET element implementing the paper's Fig. 1
//!   equivalent circuit (inner charge node Σ + ballistic current source),
//!   with n- and mirror-symmetric p-type polarity;
//! * [`engine`] — the unified damped-Newton core ([`engine::NewtonEngine`])
//!   with pattern-cached sparse assembly and dense/sparse solver
//!   selection, shared by every analysis;
//! * [`sim`] — **the public analysis API**: a [`sim::Simulator`] session
//!   owns the circuit, the engine and every cache, and exposes all
//!   analyses as typed methods (`op`, `dc_sweep`, `transient`, `ac`)
//!   returning result types with probe-by-node-name accessors;
//! * [`dc`] / [`sweep`] / [`transient`] — the analysis cores plus the
//!   historical free-function entry points (deprecated wrappers over a
//!   throwaway session);
//! * [`ac`] — AC small-signal analysis: linearisation at the operating
//!   point into `G + jωC` and complex sparse solves over one frozen
//!   pattern per sweep;
//! * [`logic`] — complementary inverter / NAND / ring-oscillator builders
//!   (the paper's future-work "practical logic circuit structures");
//! * [`deck`] — the SPICE deck front-end: parse external netlist text
//!   (R/C/V/I and CNFET `M` cards, `.model`/`.param`, `.op`/`.dc`/
//!   `.tran`/`.ac`) into [`sim::Simulator`] sessions, with spanned
//!   errors and "did you mean" suggestions; the `cntfet-sim` binary
//!   wraps it as a command-line tool.
//!
//! # Examples
//!
//! ```
//! use cntfet_circuit::prelude::*;
//!
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let out = c.node("out");
//! c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
//! c.add(Resistor::new("R1", vin, out, 1e3));
//! c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
//! c.add(Capacitor::new("C1", out, Circuit::ground(), 1e-9));
//!
//! // One session shares the engine caches across every analysis.
//! let mut sim = Simulator::new(c);
//! let op = sim.op()?;
//! assert!((op.voltage("out")? - 1.0).abs() < 1e-9);
//!
//! // AC small-signal: RC low-pass corner at 1/(2π·500Ω·1nF) ≈ 318 kHz.
//! let ac = sim.ac(&AcSweep::decade("V1", 1e3, 1e8, 5))?;
//! let mag = ac.magnitude("out")?;
//! assert!(mag[0] > 0.49 && *mag.last().unwrap() < 1e-2);
//! # Ok::<(), cntfet_circuit::CircuitError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ac;
pub mod cnfet;
pub mod dc;
pub mod deck;
pub mod element;
pub mod engine;
pub mod error;
pub mod logic;
pub mod netlist;
pub mod sim;
pub mod sweep;
pub mod transient;

pub use error::CircuitError;

/// Convenient glob import for building and solving circuits.
///
/// Exposes the session API ([`sim::Simulator`] and its request/result
/// types) alongside the element builders; the deprecated free-function
/// entry points are *not* re-exported here — import them from their
/// modules while migrating.
pub mod prelude {
    pub use crate::ac::{AcResponse, AcStats, AcSweep, FreqGrid};
    pub use crate::cnfet::{CnfetElement, Polarity};
    pub use crate::dc::Solution;
    pub use crate::deck::{AnalysisReport, Deck, DeckError, DeckRun};
    pub use crate::element::{Capacitor, CurrentSource, Resistor, VoltageSource, Waveform};
    pub use crate::engine::{EngineCounters, NewtonEngine, NewtonOptions, SolverKind};
    pub use crate::error::CircuitError;
    pub use crate::logic::{
        add_inverter, add_inverter_array, add_inverter_chain, add_nand2, add_ring_oscillator,
        CntTechnology,
    };
    pub use crate::netlist::{Circuit, NodeId};
    pub use crate::sim::{sweep_many, OpPoint, Probe, Simulator, SweepSpec, TransientSpec};
    pub use crate::sweep::SweepResult;
    pub use crate::transient::{
        TimeIntegrator, TransientOptions, TransientResult, TransientRun, TransientStats,
    };
}
