//! SPICE-like circuit simulator with a ballistic CNFET compact device.
//!
//! The DATE 2008 paper motivates its fast CNFET model by "implementation
//! in circuit-level, e.g. SPICE-like, simulators where large numbers of
//! such devices may be used". This crate is that substrate: a modified-
//! nodal-analysis engine with
//!
//! * [`netlist`] — nodes and element containers;
//! * [`element`] — R, C, V (DC/pulse/sine), I sources and the stamping
//!   interface;
//! * [`cnfet`] — the CNFET element implementing the paper's Fig. 1
//!   equivalent circuit (inner charge node Σ + ballistic current source),
//!   with n- and mirror-symmetric p-type polarity;
//! * [`engine`] — the unified damped-Newton core ([`engine::NewtonEngine`])
//!   with pattern-cached sparse assembly and dense/sparse solver
//!   selection, shared by every analysis;
//! * [`dc`] — DC operating-point entry points (gmin ramp);
//! * [`sweep`] — warm-started DC sweeps (VTCs);
//! * [`transient`] — transient integration: fixed-step backward Euler
//!   plus LTE-controlled adaptive stepping (backward Euler with step
//!   doubling, variable-step BDF2 with predictor–corrector error
//!   estimation, PI step controller);
//! * [`logic`] — complementary inverter / NAND / ring-oscillator builders
//!   (the paper's future-work "practical logic circuit structures").
//!
//! # Examples
//!
//! ```
//! use cntfet_circuit::prelude::*;
//!
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let out = c.node("out");
//! c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 2.0));
//! c.add(Resistor::new("R1", vin, out, 1e3));
//! c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
//! let sol = solve_dc(&c, None)?;
//! assert!((sol.voltage(out) - 1.0).abs() < 1e-9);
//! # Ok::<(), cntfet_circuit::CircuitError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cnfet;
pub mod dc;
pub mod element;
pub mod engine;
pub mod error;
pub mod logic;
pub mod netlist;
pub mod sweep;
pub mod transient;

pub use error::CircuitError;

/// Convenient glob import for building and solving circuits.
pub mod prelude {
    pub use crate::cnfet::{CnfetElement, Polarity};
    pub use crate::dc::{solve_dc, solve_dc_with, Solution};
    pub use crate::element::{Capacitor, CurrentSource, Resistor, VoltageSource, Waveform};
    pub use crate::engine::{NewtonEngine, NewtonOptions, SolverKind};
    pub use crate::error::CircuitError;
    pub use crate::logic::{
        add_inverter, add_inverter_chain, add_nand2, add_ring_oscillator, CntTechnology,
    };
    pub use crate::netlist::{Circuit, NodeId};
    pub use crate::sweep::{
        dc_sweep, dc_sweep_many, dc_sweep_many_with, dc_sweep_with, SweepJob, SweepResult,
    };
    pub use crate::transient::{
        solve_transient, solve_transient_adaptive, solve_transient_fixed, solve_transient_with,
        TimeIntegrator, TransientOptions, TransientResult, TransientRun, TransientStats,
    };
}
