//! Complementary CNT logic building blocks — the "practical logic
//! circuit structures based on CNT devices" of the paper's future-work
//! section, built on the compact model.

use crate::cnfet::{CnfetElement, Polarity};
use crate::element::Capacitor;
use crate::netlist::{Circuit, NodeId};
use cntfet_core::CompactCntFet;
use std::sync::Arc;

/// A complementary CNFET technology: one shared n-device model and one
/// p-device model (mirror-symmetric by default), a supply voltage and a
/// nominal channel length.
#[derive(Debug, Clone)]
pub struct CntTechnology {
    /// Model used for pull-down (n) transistors.
    pub n_model: Arc<CompactCntFet>,
    /// Model used for pull-up (p) transistors.
    pub p_model: Arc<CompactCntFet>,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Channel length, m.
    pub length: f64,
    /// Output load capacitance per gate, F.
    pub load_capacitance: f64,
}

impl CntTechnology {
    /// Builds a symmetric complementary technology from a single compact
    /// model (the p-device is its electrical mirror).
    pub fn symmetric(model: Arc<CompactCntFet>, vdd: f64) -> Self {
        CntTechnology {
            p_model: Arc::clone(&model),
            n_model: model,
            vdd,
            length: 100e-9,
            // Large enough that a stage delay spans many backward-Euler
            // steps at picosecond resolution; too small a load lets the
            // integrator's numerical damping quench ring oscillations.
            load_capacitance: 1e-16,
        }
    }
}

/// Instantiates a complementary inverter between `input` and `output`.
///
/// `vdd_node` must already be tied to the supply. Device names are
/// prefixed with `name`.
pub fn add_inverter(
    circuit: &mut Circuit,
    tech: &CntTechnology,
    name: &str,
    input: NodeId,
    output: NodeId,
    vdd_node: NodeId,
) {
    // Pull-up: p-device, source at VDD.
    circuit.add(CnfetElement::new(
        &format!("{name}_mp"),
        Arc::clone(&tech.p_model),
        Polarity::P,
        output,
        input,
        vdd_node,
        tech.length,
    ));
    // Pull-down: n-device, source at ground.
    circuit.add(CnfetElement::new(
        &format!("{name}_mn"),
        Arc::clone(&tech.n_model),
        Polarity::N,
        output,
        input,
        Circuit::ground(),
        tech.length,
    ));
    circuit.add(Capacitor::new(
        &format!("{name}_cl"),
        output,
        Circuit::ground(),
        tech.load_capacitance,
    ));
}

/// Instantiates a chain of `stages` inverters driven by `input` and
/// returns the stage output nodes (created as `{name}_c{i}`).
///
/// Inverter chains are the canonical scaling workload for the MNA
/// engine: node count grows linearly while each node couples only to
/// its neighbours, so the Jacobian stays banded-sparse at any size.
///
/// # Panics
///
/// Panics if `stages` is 0.
pub fn add_inverter_chain(
    circuit: &mut Circuit,
    tech: &CntTechnology,
    name: &str,
    input: NodeId,
    stages: usize,
    vdd_node: NodeId,
) -> Vec<NodeId> {
    assert!(stages > 0, "chain needs at least one stage");
    let mut outputs = Vec::with_capacity(stages);
    let mut prev = input;
    for i in 0..stages {
        let out = circuit.node(&format!("{name}_c{i}"));
        add_inverter(
            circuit,
            tech,
            &format!("{name}_inv{i}"),
            prev,
            out,
            vdd_node,
        );
        outputs.push(out);
        prev = out;
    }
    outputs
}

/// Instantiates a `rows × stages` array of independent inverter
/// chains, all driven by `input`, and returns every stage output node
/// (row-major; nodes are created as `{name}_r{row}_c{stage}`).
///
/// Where a single chain grows the unknown count linearly in one banded
/// strand, the array is the fast-SPICE scaling workload: thousands of
/// gates whose Jacobian is block-banded — each row an independent
/// block coupled only through the shared input and supply — so
/// fill-reducing orderings, partial refactorization and device bypass
/// all have structure to exploit (the `fastspice_scaling` bench builds
/// its ≥1000-gate netlist here).
///
/// # Panics
///
/// Panics if `rows` or `stages` is 0.
pub fn add_inverter_array(
    circuit: &mut Circuit,
    tech: &CntTechnology,
    name: &str,
    input: NodeId,
    rows: usize,
    stages: usize,
    vdd_node: NodeId,
) -> Vec<NodeId> {
    assert!(rows > 0, "array needs at least one row");
    assert!(stages > 0, "array needs at least one stage per row");
    let mut outputs = Vec::with_capacity(rows * stages);
    for r in 0..rows {
        outputs.extend(add_inverter_chain(
            circuit,
            tech,
            &format!("{name}_r{r}"),
            input,
            stages,
            vdd_node,
        ));
    }
    outputs
}

/// Instantiates a two-input complementary NAND gate.
///
/// Topology: parallel p-devices to VDD, series n-devices to ground via an
/// internal node.
pub fn add_nand2(
    circuit: &mut Circuit,
    tech: &CntTechnology,
    name: &str,
    a: NodeId,
    b: NodeId,
    output: NodeId,
    vdd_node: NodeId,
) {
    circuit.add(CnfetElement::new(
        &format!("{name}_mpa"),
        Arc::clone(&tech.p_model),
        Polarity::P,
        output,
        a,
        vdd_node,
        tech.length,
    ));
    circuit.add(CnfetElement::new(
        &format!("{name}_mpb"),
        Arc::clone(&tech.p_model),
        Polarity::P,
        output,
        b,
        vdd_node,
        tech.length,
    ));
    let mid = circuit.node(&format!("{name}_mid"));
    circuit.add(CnfetElement::new(
        &format!("{name}_mna"),
        Arc::clone(&tech.n_model),
        Polarity::N,
        output,
        a,
        mid,
        tech.length,
    ));
    circuit.add(CnfetElement::new(
        &format!("{name}_mnb"),
        Arc::clone(&tech.n_model),
        Polarity::N,
        mid,
        b,
        Circuit::ground(),
        tech.length,
    ));
    circuit.add(Capacitor::new(
        &format!("{name}_cl"),
        output,
        Circuit::ground(),
        tech.load_capacitance,
    ));
}

/// Instantiates a ring oscillator of `stages` inverters (must be odd and
/// ≥ 3) and returns the stage output nodes.
///
/// # Panics
///
/// Panics if `stages` is even or < 3.
pub fn add_ring_oscillator(
    circuit: &mut Circuit,
    tech: &CntTechnology,
    name: &str,
    stages: usize,
    vdd_node: NodeId,
) -> Vec<NodeId> {
    assert!(
        stages >= 3 && stages % 2 == 1,
        "ring needs an odd stage count >= 3"
    );
    let nodes: Vec<NodeId> = (0..stages)
        .map(|i| circuit.node(&format!("{name}_s{i}")))
        .collect();
    for i in 0..stages {
        let input = nodes[i];
        let output = nodes[(i + 1) % stages];
        add_inverter(
            circuit,
            tech,
            &format!("{name}_inv{i}"),
            input,
            output,
            vdd_node,
        );
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::Solution;
    use crate::element::VoltageSource;
    use crate::engine::{NewtonEngine, NewtonOptions};
    use crate::sim::{Simulator, SweepSpec};
    use cntfet_reference::DeviceParams;

    fn solve_dc(c: &Circuit, initial: Option<&[f64]>) -> Solution {
        NewtonEngine::new(NewtonOptions::default())
            .dc_operating_point(c, initial)
            .unwrap()
    }

    fn tech() -> CntTechnology {
        let model = Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).unwrap());
        CntTechnology::symmetric(model, 0.8)
    }

    fn inverter_circuit(tech: &CntTechnology) -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
        c.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
        add_inverter(&mut c, tech, "inv", vin, out, vdd);
        (c, vin, out)
    }

    #[test]
    fn inverter_logic_levels() {
        let t = tech();
        let (mut c, _, out) = inverter_circuit(&t);
        // Input low → output high.
        c.set_source_value("VIN", 0.0);
        let hi = solve_dc(&c, None).voltage(out);
        assert!(hi > 0.9 * t.vdd, "output high {hi} (vdd {})", t.vdd);
        // Input high → output low.
        c.set_source_value("VIN", t.vdd);
        let lo = solve_dc(&c, None).voltage(out);
        assert!(lo < 0.1 * t.vdd, "output low {lo}");
    }

    #[test]
    fn inverter_vtc_is_monotone_decreasing() {
        let t = tech();
        let (c, _, out) = inverter_circuit(&t);
        let vals: Vec<f64> = (0..=16).map(|i| t.vdd * i as f64 / 16.0).collect();
        let mut sim = Simulator::new(c);
        let res = sim.dc_sweep(&SweepSpec::new("VIN", vals.clone())).unwrap();
        let outs = res.voltages(out);
        for w in outs.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "VTC not monotone: {outs:?}");
        }
        // Switching threshold near mid-rail for the symmetric pair.
        let mid = outs
            .iter()
            .zip(&vals)
            .min_by(|(o1, _), (o2, _)| {
                (*o1 - t.vdd / 2.0)
                    .abs()
                    .partial_cmp(&(*o2 - t.vdd / 2.0).abs())
                    .unwrap()
            })
            .map(|(_, v)| *v)
            .unwrap();
        assert!(
            (mid - t.vdd / 2.0).abs() < 0.2 * t.vdd,
            "threshold {mid} vs mid-rail {}",
            t.vdd / 2.0
        );
    }

    #[test]
    fn nand_truth_table() {
        let t = tech();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let a = c.node("a");
        let b = c.node("b");
        let out = c.node("out");
        c.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), t.vdd));
        c.add(VoltageSource::dc("VA", a, Circuit::ground(), 0.0));
        c.add(VoltageSource::dc("VB", b, Circuit::ground(), 0.0));
        add_nand2(&mut c, &t, "g", a, b, out, vdd);
        let cases = [
            (0.0, 0.0, true),
            (0.0, t.vdd, true),
            (t.vdd, 0.0, true),
            (t.vdd, t.vdd, false),
        ];
        let mut prev: Option<Vec<f64>> = None;
        for (va, vb, high) in cases {
            c.set_source_value("VA", va);
            c.set_source_value("VB", vb);
            let sol = solve_dc(&c, prev.as_deref());
            let v = sol.voltage(out);
            if high {
                assert!(v > 0.75 * t.vdd, "A={va} B={vb}: out {v} should be high");
            } else {
                assert!(v < 0.25 * t.vdd, "A={va} B={vb}: out {v} should be low");
            }
            prev = Some(sol.x);
        }
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_ring_is_rejected() {
        let t = tech();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let _ = add_ring_oscillator(&mut c, &t, "ring", 4, vdd);
    }
}
