//! Circuit elements and the MNA stamping interface.
//!
//! The solver works on the residual form `F(x) = 0`: every element adds
//! its Kirchhoff current contributions to `F` and the matching partial
//! derivatives to the Jacobian. Linear elements (R, sources) contribute
//! affine terms; the CNFET (in [`crate::cnfet`]) is fully nonlinear.

use crate::netlist::NodeId;
use cntfet_numerics::sparse::PatternAssembler;
use std::fmt;

/// What kind of solve is being assembled.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisMode {
    /// DC operating point; `gmin` is a node-to-ground leak added by the
    /// solver for convergence (not by elements).
    Dc,
    /// One implicit transient step, described by a [`TransientStamp`].
    Transient(TransientStamp),
}

/// Companion-model data for one implicit transient step.
///
/// Every implicit linear multistep method this simulator uses (backward
/// Euler, variable-step BDF2) approximates a time derivative at the end
/// of the step as an affine function of the new unknown vector:
///
/// ```text
/// d/dt u_i  ≈  a0 · x[i] + hist[i]
/// ```
///
/// where `a0` is the method's leading differentiation coefficient (units
/// 1/s) and `hist[i]` folds the weighted history states into a single
/// per-unknown value. Elements with charge storage stamp `a0`-scaled
/// conductances into the Jacobian and the full affine expression into
/// the residual — so the *sparsity pattern* of a transient Jacobian is
/// independent of both the step size and the integration method, and a
/// solver cache recorded at one `dt` can be re-valued (never
/// re-patterned) at any other.
///
/// Construct stamps with [`TransientStamp::backward_euler`] or
/// [`TransientStamp::bdf2`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransientStamp {
    /// Absolute time at the end of the step, seconds.
    pub t: f64,
    /// Leading differentiation coefficient `a0`, 1/s.
    pub a0: f64,
    /// Per-unknown history term `hist[i]` (same length as the unknown
    /// vector), units of the unknown per second.
    pub hist: Vec<f64>,
}

impl TransientStamp {
    /// Backward-Euler stencil for a step of size `dt` ending at `t`:
    /// `d/dt u ≈ (x − prev) / dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn backward_euler(t: f64, dt: f64, prev: &[f64]) -> Self {
        assert!(dt > 0.0, "step size must be positive");
        TransientStamp {
            t,
            a0: 1.0 / dt,
            hist: prev.iter().map(|&p| -p / dt).collect(),
        }
    }

    /// Variable-step BDF2 stencil for a step of size `dt` ending at `t`,
    /// where the previous accepted step (from `prev2` to `prev`) had
    /// size `dt_prev`:
    ///
    /// ```text
    /// d/dt u ≈ a0·x + a1·prev + a2·prev2
    /// a0 = (2h+g)/(h(h+g)),  a1 = −(h+g)/(hg),  a2 = h/(g(h+g))
    /// ```
    ///
    /// with `h = dt`, `g = dt_prev`. For `h = g` this reduces to the
    /// classic `(3x − 4·prev + prev2) / (2h)`.
    ///
    /// # Panics
    ///
    /// Panics if either step size is non-positive or the history vectors
    /// disagree in length.
    pub fn bdf2(t: f64, dt: f64, dt_prev: f64, prev: &[f64], prev2: &[f64]) -> Self {
        assert!(dt > 0.0 && dt_prev > 0.0, "step sizes must be positive");
        assert_eq!(prev.len(), prev2.len(), "history length mismatch");
        let (h, g) = (dt, dt_prev);
        let a0 = (2.0 * h + g) / (h * (h + g));
        let a1 = -(h + g) / (h * g);
        let a2 = h / (g * (h + g));
        TransientStamp {
            t,
            a0,
            hist: prev
                .iter()
                .zip(prev2)
                .map(|(&p, &p2)| a1 * p + a2 * p2)
                .collect(),
        }
    }

    /// The history term of raw unknown index `i`.
    pub fn history(&self, i: usize) -> f64 {
        self.hist[i]
    }

    /// The history term of `node`'s voltage (0 for ground).
    pub fn history_node(&self, node: NodeId) -> f64 {
        node.unknown_index().map_or(0.0, |i| self.hist[i])
    }

    /// The discretised time derivative of `node`'s voltage at the
    /// iterate `x`: `a0 · v(node) + hist(node)`.
    pub fn ddt_node(&self, x: &[f64], node: NodeId) -> f64 {
        self.a0 * node_voltage(x, node) + self.history_node(node)
    }
}

/// Assembly target handed to [`Element::stamp`].
///
/// Jacobian writes go through a pattern-aware [`PatternAssembler`]: the
/// first assembly of a circuit records the sparsity pattern; every later
/// Newton iteration writes values into the preallocated slots with no
/// per-iteration allocation. The solver layer decides whether the
/// assembled CSR matrix is factored densely or sparsely.
#[derive(Debug)]
pub struct Mna<'a> {
    residual: &'a mut [f64],
    jacobian: &'a mut PatternAssembler,
}

impl<'a> Mna<'a> {
    /// Wraps a residual vector and a Jacobian assembler for one assembly
    /// pass. The caller is responsible for `begin`/`finish` on the
    /// assembler.
    pub fn new(residual: &'a mut [f64], jacobian: &'a mut PatternAssembler) -> Self {
        Mna { residual, jacobian }
    }

    /// Adds `v` to the residual row of `node` (no-op for ground).
    pub fn add_f_node(&mut self, node: NodeId, v: f64) {
        if let Some(i) = node.unknown_index() {
            self.residual[i] += v;
        }
    }

    /// Adds `v` to the residual of an extra-variable row.
    pub fn add_f_extra(&mut self, row: usize, v: f64) {
        self.residual[row] += v;
    }

    /// Adds `v` to the Jacobian entry at raw unknown indices (`row`,
    /// `col`). Prefer the typed helpers below; this exists for stamps
    /// that have already resolved their node indices.
    pub fn add_j_index(&mut self, row: usize, col: usize, v: f64) {
        self.jacobian.add(row, col, v);
    }

    /// Adds `v` to the Jacobian entry (`row` node, `col` node).
    pub fn add_j_nodes(&mut self, row: NodeId, col: NodeId, v: f64) {
        if let (Some(r), Some(c)) = (row.unknown_index(), col.unknown_index()) {
            self.jacobian.add(r, c, v);
        }
    }

    /// Adds `v` to the Jacobian entry (node row, extra-variable column).
    pub fn add_j_node_extra(&mut self, row: NodeId, col: usize, v: f64) {
        if let Some(r) = row.unknown_index() {
            self.jacobian.add(r, col, v);
        }
    }

    /// Adds `v` to the Jacobian entry (extra-variable row, node column).
    pub fn add_j_extra_node(&mut self, row: usize, col: NodeId, v: f64) {
        if let Some(c) = col.unknown_index() {
            self.jacobian.add(row, c, v);
        }
    }

    /// Adds `v` to the Jacobian entry (extra row, extra column).
    pub fn add_j_extra_extra(&mut self, row: usize, col: usize, v: f64) {
        self.jacobian.add(row, col, v);
    }

    /// Number of Jacobian adds issued so far this assembly cycle (the
    /// assembler's recorded write count while recording). The engine
    /// captures the count before/after each element's stamp to learn
    /// which Jacobian slots the element owns.
    pub fn jacobian_write_count(&self) -> usize {
        self.jacobian.write_count()
    }
}

/// Reads a node voltage out of the unknown vector (0 for ground).
pub fn node_voltage(x: &[f64], node: NodeId) -> f64 {
    node.unknown_index().map(|i| x[i]).unwrap_or(0.0)
}

/// Per-instance evaluation cache for [`Element::stamp_cached`], owned by
/// the engine (one per element per analysis cache) so elements stay
/// immutable and shareable.
///
/// `key` is the controlling-voltage operating point of the cached
/// evaluation (device-defined meaning; the CNFET uses `[vsc, vds]`) and
/// `vals` the expensive intermediates computed there. `None` means no
/// evaluation is cached yet.
#[derive(Debug, Clone, Default)]
pub struct DeviceState {
    /// Controlling voltages of the cached evaluation.
    pub key: Option<[f64; 2]>,
    /// Device-defined cached intermediates.
    pub vals: Vec<f64>,
}

/// What [`Element::stamp_cached`] did with its evaluation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampOutcome {
    /// The element has no expensive evaluation to cache (linear R/C/V/I
    /// stamps).
    Static,
    /// The element evaluated its device equations and refreshed the
    /// cache.
    Evaluated,
    /// The element re-stamped cached values because its controlling
    /// voltages moved less than the bypass tolerance.
    Bypassed,
}

/// A circuit element that can stamp itself into the MNA system.
pub trait Element: fmt::Debug {
    /// Unique name used for lookups (e.g. sweeping a source).
    fn name(&self) -> &str;

    /// Number of extra unknowns this element owns (branch currents,
    /// internal nodes).
    fn extra_vars(&self) -> usize {
        0
    }

    /// Adds this element's residual and Jacobian contributions at the
    /// current iterate `x`. `extra_base` is the index of the element's
    /// first extra variable (meaningless when [`Element::extra_vars`] is
    /// 0).
    fn stamp(&self, x: &[f64], extra_base: usize, mode: &AnalysisMode, mna: &mut Mna<'_>);

    /// Like [`Element::stamp`], but with an engine-owned evaluation
    /// cache and a bypass tolerance: when `vtol >= 0` and the element's
    /// controlling voltages moved less than `vtol` since the cached
    /// evaluation, the element may re-stamp its cached expensive
    /// intermediates (re-linearised at the *cached* operating point)
    /// instead of re-evaluating its device equations — the SPICE3
    /// device-bypass move. A negative `vtol` disables bypassing but
    /// still maintains the cache. The default implementation forwards
    /// to `stamp` (correct for elements with nothing expensive to
    /// skip).
    fn stamp_cached(
        &self,
        x: &[f64],
        extra_base: usize,
        mode: &AnalysisMode,
        mna: &mut Mna<'_>,
        state: &mut DeviceState,
        vtol: f64,
    ) -> StampOutcome {
        let _ = (state, vtol);
        self.stamp(x, extra_base, mode, mna);
        StampOutcome::Static
    }

    /// Updates the element's primary value (source voltage/current).
    /// Returns `false` if the element has no such notion.
    fn set_value(&mut self, _value: f64) -> bool {
        false
    }

    /// `true` when this element is a drivable source — the targets of
    /// sweep and AC requests. Lets analyses validate a requested source
    /// name up front (with the full list of candidates in the error)
    /// instead of failing deep inside a solve.
    fn is_source(&self) -> bool {
        false
    }

    /// Adds this element's *unit* small-signal stimulus to the AC
    /// right-hand side: the linearised system is `(G + jωC)·X = −∂F/∂u`,
    /// so a source contributes `−∂F/∂u` for a unit phasor `u = 1` on its
    /// drive value. Returns `false` (leaving `rhs` untouched) when the
    /// element cannot be AC-driven.
    fn ac_stimulus(&self, _extra_base: usize, _rhs: &mut [f64]) -> bool {
        false
    }

    /// SPICE3 `pnjlim`/`fetlim`-lineage voltage limiting: given the
    /// current iterate `x` and the proposed Newton step `dx`, returns
    /// `Some(s)` with `s ∈ (0, 1)` when this element wants the step
    /// scaled down to keep its controlling-voltage swing physically
    /// reasonable, `None` to accept the step as proposed. The engine
    /// takes the minimum over all elements and scales the *whole* step
    /// (preserving the Newton direction); returning `None` whenever the
    /// step is already in-bounds keeps converging solves bitwise
    /// untouched. The default never limits (linear elements cannot
    /// overshoot).
    fn limit_step(&self, _x: &[f64], _dx: &[f64], _extra_base: usize) -> Option<f64> {
        None
    }
}

/// A linear resistor.
#[derive(Debug, Clone, PartialEq)]
pub struct Resistor {
    name: String,
    a: NodeId,
    b: NodeId,
    resistance: f64,
}

impl Resistor {
    /// Creates a resistor of `resistance` ohms between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `resistance <= 0`.
    pub fn new(name: &str, a: NodeId, b: NodeId, resistance: f64) -> Self {
        assert!(resistance > 0.0, "resistance must be positive");
        Resistor {
            name: name.to_string(),
            a,
            b,
            resistance,
        }
    }
}

impl Element for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, x: &[f64], _extra: usize, _mode: &AnalysisMode, mna: &mut Mna<'_>) {
        let g = 1.0 / self.resistance;
        let i = g * (node_voltage(x, self.a) - node_voltage(x, self.b));
        mna.add_f_node(self.a, i);
        mna.add_f_node(self.b, -i);
        mna.add_j_nodes(self.a, self.a, g);
        mna.add_j_nodes(self.a, self.b, -g);
        mna.add_j_nodes(self.b, self.a, -g);
        mna.add_j_nodes(self.b, self.b, g);
    }
}

/// A linear capacitor (open at DC, implicit companion model in
/// transient).
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    name: String,
    a: NodeId,
    b: NodeId,
    capacitance: f64,
}

impl Capacitor {
    /// Creates a capacitor of `capacitance` farads between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance <= 0`.
    pub fn new(name: &str, a: NodeId, b: NodeId, capacitance: f64) -> Self {
        assert!(capacitance > 0.0, "capacitance must be positive");
        Capacitor {
            name: name.to_string(),
            a,
            b,
            capacitance,
        }
    }
}

impl Element for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, x: &[f64], _extra: usize, mode: &AnalysisMode, mna: &mut Mna<'_>) {
        if let AnalysisMode::Transient(stamp) = mode {
            // i = C · d/dt (v_a − v_b); the Jacobian sees only the
            // method's leading coefficient a0, so a step-size change
            // re-values this stamp without touching the pattern.
            let g = self.capacitance * stamp.a0;
            let i = self.capacitance * (stamp.ddt_node(x, self.a) - stamp.ddt_node(x, self.b));
            mna.add_f_node(self.a, i);
            mna.add_f_node(self.b, -i);
            mna.add_j_nodes(self.a, self.a, g);
            mna.add_j_nodes(self.a, self.b, -g);
            mna.add_j_nodes(self.b, self.a, -g);
            mna.add_j_nodes(self.b, self.b, g);
        }
    }
}

/// Time-dependent source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Trapezoidal pulse: `low` before `delay`, ramp to `high` over
    /// `rise`, hold for `width`, ramp back over `fall`, repeat with
    /// `period` (0 = single shot).
    Pulse {
        /// Initial/low level.
        low: f64,
        /// Pulsed/high level.
        high: f64,
        /// Time before the first edge, s.
        delay: f64,
        /// Rise time, s.
        rise: f64,
        /// High hold time, s.
        width: f64,
        /// Fall time, s.
        fall: f64,
        /// Repetition period (0 disables repetition), s.
        period: f64,
    },
    /// `offset + amplitude·sin(2π f t)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency, Hz.
        frequency: f64,
    },
}

impl Waveform {
    /// Value of the waveform at time `t` (DC analyses use `t = 0`).
    pub fn value_at(&self, t: f64) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Pulse {
                low,
                high,
                delay,
                rise,
                width,
                fall,
                period,
            } => {
                let mut tau = t - delay;
                if tau < 0.0 {
                    return low;
                }
                if period > 0.0 {
                    tau %= period;
                }
                if tau < rise {
                    low + (high - low) * tau / rise.max(1e-18)
                } else if tau < rise + width {
                    high
                } else if tau < rise + width + fall {
                    high - (high - low) * (tau - rise - width) / fall.max(1e-18)
                } else {
                    low
                }
            }
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * frequency * t).sin(),
        }
    }
}

/// An ideal voltage source with a branch-current extra variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSource {
    name: String,
    plus: NodeId,
    minus: NodeId,
    waveform: Waveform,
}

impl VoltageSource {
    /// A DC source of `volts` from `minus` to `plus`.
    pub fn dc(name: &str, plus: NodeId, minus: NodeId, volts: f64) -> Self {
        VoltageSource {
            name: name.to_string(),
            plus,
            minus,
            waveform: Waveform::Dc(volts),
        }
    }

    /// A source driven by an arbitrary waveform.
    pub fn with_waveform(name: &str, plus: NodeId, minus: NodeId, waveform: Waveform) -> Self {
        VoltageSource {
            name: name.to_string(),
            plus,
            minus,
            waveform,
        }
    }
}

impl Element for VoltageSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn extra_vars(&self) -> usize {
        1
    }

    fn stamp(&self, x: &[f64], extra: usize, mode: &AnalysisMode, mna: &mut Mna<'_>) {
        let t = match mode {
            AnalysisMode::Dc => 0.0,
            AnalysisMode::Transient(stamp) => stamp.t,
        };
        let target = self.waveform.value_at(t);
        let i_branch = x[extra];
        // Branch current leaves the + node through the source.
        mna.add_f_node(self.plus, i_branch);
        mna.add_f_node(self.minus, -i_branch);
        mna.add_j_node_extra(self.plus, extra, 1.0);
        mna.add_j_node_extra(self.minus, extra, -1.0);
        // Constraint row: V(+) − V(−) − target = 0.
        let v = node_voltage(x, self.plus) - node_voltage(x, self.minus);
        mna.add_f_extra(extra, v - target);
        mna.add_j_extra_node(extra, self.plus, 1.0);
        mna.add_j_extra_node(extra, self.minus, -1.0);
    }

    fn set_value(&mut self, value: f64) -> bool {
        self.waveform = Waveform::Dc(value);
        true
    }

    fn is_source(&self) -> bool {
        true
    }

    fn ac_stimulus(&self, extra: usize, rhs: &mut [f64]) -> bool {
        // Constraint row: F = V(+) − V(−) − u, so ∂F/∂u = −1 and the
        // unit-stimulus right-hand side gets +1 in the branch row.
        rhs[extra] += 1.0;
        true
    }
}

/// An ideal current source pushing `amps` from `from` into `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSource {
    name: String,
    from: NodeId,
    to: NodeId,
    amps: f64,
}

impl CurrentSource {
    /// Creates a DC current source.
    pub fn dc(name: &str, from: NodeId, to: NodeId, amps: f64) -> Self {
        CurrentSource {
            name: name.to_string(),
            from,
            to,
            amps,
        }
    }
}

impl Element for CurrentSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&self, _x: &[f64], _extra: usize, _mode: &AnalysisMode, mna: &mut Mna<'_>) {
        // Current leaves `from`, enters `to`.
        mna.add_f_node(self.from, self.amps);
        mna.add_f_node(self.to, -self.amps);
    }

    fn set_value(&mut self, value: f64) -> bool {
        self.amps = value;
        true
    }

    fn is_source(&self) -> bool {
        true
    }

    fn ac_stimulus(&self, _extra: usize, rhs: &mut [f64]) -> bool {
        // F gains +u at `from` and −u at `to`; rhs = −∂F/∂u.
        if let Some(i) = self.from.unknown_index() {
            rhs[i] -= 1.0;
        }
        if let Some(i) = self.to.unknown_index() {
            rhs[i] += 1.0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_dc_is_constant() {
        let w = Waveform::Dc(1.5);
        assert_eq!(w.value_at(0.0), 1.5);
        assert_eq!(w.value_at(1e-3), 1.5);
    }

    #[test]
    fn waveform_pulse_shape() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-9,
            width: 2e-9,
            fall: 1e-9,
            period: 0.0,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.5e-9) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value_at(3e-9), 1.0); // high
        assert!((w.value_at(4.5e-9) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value_at(10e-9), 0.0);
    }

    #[test]
    fn waveform_pulse_repeats_with_period() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 1e-9,
            width: 1e-9,
            fall: 1e-9,
            period: 4e-9,
        };
        assert_eq!(w.value_at(1.5e-9), 1.0);
        assert_eq!(w.value_at(1.5e-9 + 4e-9), 1.0);
        assert_eq!(w.value_at(3.5e-9), 0.0);
        assert_eq!(w.value_at(3.5e-9 + 8e-9), 0.0);
    }

    #[test]
    fn waveform_sine() {
        let w = Waveform::Sine {
            offset: 0.5,
            amplitude: 0.5,
            frequency: 1e9,
        };
        assert!((w.value_at(0.0) - 0.5).abs() < 1e-12);
        assert!((w.value_at(0.25e-9) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_panics() {
        let _ = Resistor::new("R", NodeId::GROUND, NodeId::GROUND, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacitance_panics() {
        let _ = Capacitor::new("C", NodeId::GROUND, NodeId::GROUND, 0.0);
    }
}
