//! Transient analysis: fixed-step and LTE-controlled adaptive stepping.
//!
//! The stepping cores run on a caller-provided engine so a
//! [`crate::sim::Simulator`] session shares its pattern/solver caches
//! with every other analysis — run transients through
//! [`crate::sim::Simulator::transient`] with a
//! [`crate::sim::TransientSpec`] (`dt: Some(..)` for a fixed grid,
//! `None` for adaptive stepping). Two legacy entry-point families
//! remain as deprecated wrappers that build a throwaway engine:
//!
//! * [`solve_transient`] / [`solve_transient_with`] — the historical
//!   fixed-step interface (backward Euler on a uniform grid), thin
//!   wrappers around [`solve_transient_fixed`];
//! * [`solve_transient_adaptive`] — local-truncation-error-controlled
//!   stepping with a [`TimeIntegrator`] (backward Euler or variable-step
//!   BDF2), a PI step-size controller and reject-and-retry on LTE or
//!   Newton failure. It returns a [`TransientRun`] carrying both the
//!   waveform and per-run [`TransientStats`].
//!
//! Backward Euler is L-stable, which matters here because the CNFET's Σ
//! row is an algebraic constraint (index-1 DAE) — trapezoidal rules ring
//! on such systems. BDF2 keeps the L-stability (its stability region
//! contains the whole left half-plane) while gaining an order: on the
//! ring-oscillator workload it takes several times fewer accepted steps
//! than fixed backward Euler at equal period accuracy (measured by the
//! `transient_scaling` bench).
//!
//! Variable step sizes are cheap on this engine: the companion-model
//! stamps only scale with the leading integration coefficient
//! (see [`crate::element::TransientStamp`]), so a step-size change
//! re-values the cached Jacobian pattern instead of rebuilding it, and
//! the sparse solver replays its frozen elimination ordering.

use crate::dc::Solution;
use crate::element::{AnalysisMode, TransientStamp};
use crate::engine::{NewtonEngine, NewtonOptions};
use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId};
use crate::sim::NodeWaves;

/// Result of a transient run: time points and the full unknown history.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Time points, seconds (first entry is 0 with the initial
    /// condition). Uniformly spaced for fixed-step runs, variably spaced
    /// for adaptive runs; the final entry is exactly `t_stop`.
    pub time: Vec<f64>,
    /// Unknown vector at each time point.
    pub states: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Voltage waveform of `node`.
    pub fn waveform(&self, node: NodeId) -> Vec<f64> {
        match node.unknown_index() {
            Some(i) => self.states.iter().map(|x| x[i]).collect(),
            None => vec![0.0; self.states.len()],
        }
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// `true` when no time points were stored.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Times at which `node`'s waveform crosses `level`, linearly
    /// interpolated between stored points, each paired with the
    /// crossing direction (`true` = rising). Works identically on
    /// uniform and adaptively (nonuniformly) spaced results — the
    /// interpolation resolves crossings far below the local step size,
    /// which is what makes e.g. oscillation-period measurement on
    /// coarse adaptive grids accurate.
    pub fn crossings(&self, node: NodeId, level: f64) -> Vec<(f64, bool)> {
        let w = self.waveform(node);
        let mut out = Vec::new();
        for i in 0..w.len().saturating_sub(1) {
            let (a, b) = (w[i], w[i + 1]);
            let rising = a < level && b >= level;
            let falling = a > level && b <= level;
            if rising || falling {
                let frac = (level - a) / (b - a);
                out.push((
                    self.time[i] + frac * (self.time[i + 1] - self.time[i]),
                    rising,
                ));
            }
        }
        out
    }
}

/// Implicit integration method used for transient stepping.
///
/// Both methods are L-stable and therefore safe on the simulator's
/// index-1 DAE systems (the CNFET Σ rows are algebraic constraints).
///
/// # Examples
///
/// ```
/// use cntfet_circuit::transient::TimeIntegrator;
///
/// assert_eq!(TimeIntegrator::BackwardEuler.order(), 1);
/// assert_eq!(TimeIntegrator::Bdf2.order(), 2);
/// // BDF2 is the default for adaptive runs.
/// assert_eq!(TimeIntegrator::default(), TimeIntegrator::Bdf2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeIntegrator {
    /// First-order backward Euler. In adaptive mode its local truncation
    /// error is estimated by step doubling (one full step vs two half
    /// steps) and the Richardson-extrapolated combination of the two is
    /// accepted, so the *accepted* solution is locally second-order
    /// while the controller stays conservative (first-order estimate).
    BackwardEuler,
    /// Second-order backward differentiation formula with genuinely
    /// variable step sizes. The LTE is estimated from the
    /// predictor–corrector difference (quadratic extrapolation through
    /// the last three accepted points vs the implicit solution). Each
    /// adaptive run starts with backward-Euler steps until enough
    /// history exists, and restarts the same way after a Newton failure.
    #[default]
    Bdf2,
}

impl TimeIntegrator {
    /// Classical order of accuracy of the method (1 or 2).
    pub fn order(self) -> usize {
        match self {
            TimeIntegrator::BackwardEuler => 1,
            TimeIntegrator::Bdf2 => 2,
        }
    }
}

/// Callback handed to the transient stepping cores; it receives every
/// accepted `(t, x)` point in order, including the initial state.
pub(crate) type StepObserver<'a> = &'a mut dyn FnMut(f64, &[f64]);

/// Tuning knobs of transient analysis — integrator choice, step bounds,
/// LTE tolerances and controller behaviour. [`TransientOptions::default`]
/// is a reasonable starting point for logic-style waveforms: BDF2,
/// `rel_tol = 1e-3`, `abs_tol = 1e-6` V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Newton-iteration options forwarded to the [`NewtonEngine`].
    /// Default: [`NewtonOptions::transient`].
    pub newton: NewtonOptions,
    /// Integration method for adaptive runs (fixed-step entry points
    /// always use backward Euler unless called through
    /// [`solve_transient_fixed`] with BDF2). Default:
    /// [`TimeIntegrator::Bdf2`].
    pub integrator: TimeIntegrator,
    /// First step size of an adaptive run, seconds. `None` derives
    /// `t_stop / 1000`, clamped into `[dt_min, dt_max]`.
    pub dt_init: Option<f64>,
    /// Smallest step the controller may take, seconds. When a step at
    /// `dt_min` still fails the run aborts with
    /// [`CircuitError::TimestepTooSmall`]. `None` derives
    /// `t_stop * 1e-12`. (The final step is allowed below `dt_min` when
    /// clamping onto `t_stop`.)
    pub dt_min: Option<f64>,
    /// Largest step the controller may take, seconds. `None` derives
    /// `t_stop / 10`.
    pub dt_max: Option<f64>,
    /// Relative LTE tolerance on node voltages. Default `1e-3`.
    pub rel_tol: f64,
    /// Absolute LTE tolerance on node voltages, volts. Default `1e-6`.
    pub abs_tol: f64,
    /// Safety factor of the step controller, in `(0, 1]`. Default `0.9`.
    pub safety: f64,
    /// Largest step-growth factor per accepted step. Default `2.0`,
    /// which also keeps consecutive BDF2 step ratios inside the method's
    /// zero-stability bound (`1 + √2 ≈ 2.414`).
    pub max_growth: f64,
    /// Consecutive rejections (LTE or Newton) tolerated before the run
    /// aborts. Default `30`.
    pub max_rejects: usize,
    /// Hard cap on attempted steps (accepted + rejected), a runaway
    /// guard for pathological tolerance/step-bound combinations.
    /// Default `10_000_000`.
    pub max_steps: usize,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            newton: NewtonOptions::transient(),
            integrator: TimeIntegrator::Bdf2,
            dt_init: None,
            dt_min: None,
            dt_max: None,
            rel_tol: 1e-3,
            abs_tol: 1e-6,
            safety: 0.9,
            max_growth: 2.0,
            max_rejects: 30,
            max_steps: 10_000_000,
        }
    }
}

impl TransientOptions {
    /// Resolves the optional step bounds against `t_stop` and validates
    /// the controller parameters.
    fn resolve(&self, t_stop: f64) -> Result<(f64, f64, f64), CircuitError> {
        if !(self.rel_tol >= 0.0 && self.abs_tol >= 0.0 && self.rel_tol + self.abs_tol > 0.0) {
            return Err(CircuitError::InvalidAnalysis(format!(
                "LTE tolerances must be non-negative and not both zero \
                 (rel_tol {}, abs_tol {})",
                self.rel_tol, self.abs_tol
            )));
        }
        if !(self.safety > 0.0 && self.safety <= 1.0 && self.max_growth > 1.0) {
            return Err(CircuitError::InvalidAnalysis(format!(
                "controller needs 0 < safety <= 1 and max_growth > 1 \
                 (safety {}, max_growth {})",
                self.safety, self.max_growth
            )));
        }
        let dt_min = self.dt_min.unwrap_or(t_stop * 1e-12);
        let dt_max = self.dt_max.unwrap_or(t_stop / 10.0).min(t_stop);
        if !(dt_min > 0.0 && dt_min <= dt_max) {
            return Err(CircuitError::InvalidAnalysis(format!(
                "need 0 < dt_min <= dt_max (dt_min {dt_min}, dt_max {dt_max})"
            )));
        }
        let dt_init = self
            .dt_init
            .unwrap_or(t_stop / 1000.0)
            .clamp(dt_min, dt_max);
        Ok((dt_init, dt_min, dt_max))
    }
}

/// Per-run stepping statistics of a transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransientStats {
    /// Accepted time steps (equals `result.len() - 1`).
    pub accepted: usize,
    /// Steps rejected because the LTE estimate exceeded tolerance.
    pub rejected_lte: usize,
    /// Steps rejected because Newton failed to converge (retried at a
    /// smaller step size).
    pub rejected_newton: usize,
    /// Total Newton iterations across all attempted steps (including
    /// the extra solves of backward-Euler step doubling).
    pub newton_iterations: usize,
    /// Jacobian factorisations performed by the engine.
    pub factorizations: u64,
    /// Cumulative multiply–accumulate/divide operations across those
    /// factorisations.
    pub factor_ops: u64,
    /// Full pivot-searching factorisations among `factorizations` (the
    /// rest replayed a frozen plan, fully or partially).
    pub symbolic_factorizations: u64,
    /// Factorisations that replayed only the columns reached from
    /// changed matrix values ([`NewtonOptions::partial_refactor`]).
    ///
    /// [`NewtonOptions::partial_refactor`]: crate::engine::NewtonOptions
    pub partial_refactorizations: u64,
    /// Columns actually recomputed across all factorisations.
    pub columns_recomputed: u64,
    /// Columns a full-replay run would have recomputed.
    pub columns_total: u64,
    /// Nonlinear device model evaluations that ran in full.
    pub device_evals: u64,
    /// Device evaluations skipped by the bypass layer
    /// ([`NewtonOptions::bypass`]).
    ///
    /// [`NewtonOptions::bypass`]: crate::engine::NewtonOptions
    pub device_bypasses: u64,
    /// Newton steps scaled down by per-device voltage limiting.
    pub limiter_clamps: u64,
    /// Armijo line-search backtracks (step halvings actually taken).
    pub armijo_backtracks: u64,
    /// Pseudo-transient continuation stages that converged.
    pub ptc_steps: u64,
    /// Backward-Euler sub-steps taken by the fixed-grid rescue: grid
    /// intervals whose one-shot step system had no reachable solution
    /// were split internally (the output grid is unchanged).
    pub substeps: u64,
    /// Times the BDF2 history was discarded and the method restarted
    /// from backward Euler (after a Newton failure).
    pub bdf2_restarts: usize,
}

impl TransientStats {
    /// Copies the engine's per-analysis counter delta into the solver
    /// cost fields (step counters are untouched).
    pub(crate) fn absorb_counters(&mut self, delta: crate::engine::EngineCounters) {
        self.factorizations = delta.factorizations;
        self.factor_ops = delta.factor_ops;
        self.symbolic_factorizations = delta.symbolic_factorizations;
        self.partial_refactorizations = delta.partial_refactorizations;
        self.columns_recomputed = delta.columns_recomputed;
        self.columns_total = delta.columns_total;
        self.device_evals = delta.device_evals;
        self.device_bypasses = delta.device_bypasses;
        self.limiter_clamps = delta.limiter_clamps;
        self.armijo_backtracks = delta.armijo_backtracks;
        self.ptc_steps = delta.ptc_steps;
    }
}

/// A transient waveform together with the stepping statistics that
/// produced it, plus probe-by-node-name accessors shared with the sweep
/// and AC result types.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientRun {
    /// Time points and states.
    pub result: TransientResult,
    /// Accepted/rejected-step and solver-cost counters.
    pub stats: TransientStats,
    waves: NodeWaves,
}

impl TransientRun {
    pub(crate) fn new(result: TransientResult, stats: TransientStats, circuit: &Circuit) -> Self {
        let waves = NodeWaves::new(circuit, result.states.len());
        TransientRun {
            result,
            stats,
            waves,
        }
    }

    /// Borrowed voltage waveform of the named node. The node-major
    /// waveform cache is materialised on the first probe and borrowed
    /// thereafter.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn voltage(&self, name: &str) -> Result<&[f64], CircuitError> {
        self.waves
            .by_name_with(name, || Box::new(self.result.states.iter().map(|x| &x[..])))
    }

    /// Borrowed voltage waveform of `node` (all-zero for ground), or
    /// `None` for a node outside the simulated circuit.
    pub fn voltage_ref(&self, node: NodeId) -> Option<&[f64]> {
        self.waves
            .slice_with(node, || Box::new(self.result.states.iter().map(|x| &x[..])))
    }

    /// The stored time points, seconds.
    pub fn time(&self) -> &[f64] {
        &self.result.time
    }
}

/// Runs a backward-Euler transient of duration `t_stop` with fixed step
/// `dt`, starting from `initial` (or the DC operating point at `t = 0`).
///
/// When `t_stop` is not an integer multiple of `dt` the final step is
/// shortened so the last time point lands exactly on `t_stop`; a `dt`
/// larger than `t_stop` degenerates to a single step of size `t_stop`.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidAnalysis`] for non-positive `dt` or
/// `t_stop`, and propagates solver failures at any step.
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session and call \
            `transient(&TransientSpec::fixed(t_stop, dt))`"
)]
pub fn solve_transient(
    circuit: &Circuit,
    t_stop: f64,
    dt: f64,
    initial: Option<&[f64]>,
) -> Result<TransientResult, CircuitError> {
    // Calls the core directly (not the sibling deprecated wrapper):
    // nothing inside the crate depends on a deprecated entry point.
    let opts = TransientOptions {
        newton: NewtonOptions::transient(),
        integrator: TimeIntegrator::BackwardEuler,
        ..TransientOptions::default()
    };
    let mut engine = NewtonEngine::new(opts.newton);
    transient_fixed_core(&mut engine, circuit, t_stop, dt, initial, &opts, None)
        .map(|run| run.result)
}

/// [`solve_transient`] with explicit [`NewtonOptions`].
///
/// # Errors
///
/// Same as [`solve_transient`].
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session and call \
            `transient(&TransientSpec::fixed(t_stop, dt))` with the Newton \
            options embedded in the spec's `TransientOptions`"
)]
pub fn solve_transient_with(
    circuit: &Circuit,
    t_stop: f64,
    dt: f64,
    initial: Option<&[f64]>,
    options: &NewtonOptions,
) -> Result<TransientResult, CircuitError> {
    let opts = TransientOptions {
        newton: *options,
        integrator: TimeIntegrator::BackwardEuler,
        ..TransientOptions::default()
    };
    let mut engine = NewtonEngine::new(opts.newton);
    transient_fixed_core(&mut engine, circuit, t_stop, dt, initial, &opts, None)
        .map(|run| run.result)
}

/// Fixed-step transient with full [`TransientStats`] and a choice of
/// integrator (`options.integrator`; BDF2 starts with one backward-Euler
/// step to build history).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidAnalysis`] for non-positive `dt` or
/// `t_stop` or an invalid initial-state length, and propagates solver
/// failures at any step.
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session and call \
            `transient(&TransientSpec::fixed(t_stop, dt).with_options(options))`"
)]
pub fn solve_transient_fixed(
    circuit: &Circuit,
    t_stop: f64,
    dt: f64,
    initial: Option<&[f64]>,
    options: &TransientOptions,
) -> Result<TransientRun, CircuitError> {
    let mut engine = NewtonEngine::new(options.newton);
    transient_fixed_core(&mut engine, circuit, t_stop, dt, initial, options, None)
}

/// The engine-sharing fixed-grid stepping core behind
/// [`solve_transient_fixed`] and
/// [`crate::sim::Simulator::transient`]. No LTE control is performed —
/// every Newton-converged step is accepted, and a Newton failure aborts
/// the run. The final step is shortened to land exactly on `t_stop`.
/// `observer`, when present, sees every accepted `(t, x)` point in
/// order (including the initial state) before the run completes; the
/// engine's cancellation flag is additionally polled once per step.
/// Maximum halvings of one fixed-grid interval before the rescue gives
/// up: `2^6 = 64` sub-steps, matching the dt reduction an adaptive run
/// would try before declaring [`CircuitError::TimestepTooSmall`].
const FIXED_SUBSTEP_DEPTH: usize = 6;

/// Solves one fixed-grid interval `[t0, t1]` by backward Euler,
/// recursively halving the interval when the step system cannot be
/// converged (see the call site in [`transient_fixed_core`] for why a
/// solution may not exist at the full `h`). `iterations` accumulates
/// Newton iterations across every attempt; `substeps` counts the extra
/// internal steps taken beyond the one the grid asked for.
///
/// # Errors
///
/// The deepest [`CircuitError::NoConvergence`] (still carrying its
/// [`crate::engine::ConvergenceReport`]) when even the smallest
/// sub-interval fails; any other engine error is propagated untouched.
#[allow(clippy::too_many_arguments)]
fn fixed_substep(
    engine: &mut NewtonEngine,
    circuit: &Circuit,
    x: &[f64],
    t0: f64,
    t1: f64,
    depth: usize,
    iterations: &mut usize,
    substeps: &mut u64,
) -> Result<Vec<f64>, CircuitError> {
    let stamp = TransientStamp::backward_euler(t1, t1 - t0, x);
    match engine.newton(circuit, x, &AnalysisMode::Transient(stamp), 0.0) {
        Ok((nx, it)) => {
            *iterations += it;
            Ok(nx)
        }
        Err(CircuitError::NoConvergence { iterations: it, .. }) if depth > 0 => {
            *iterations += it;
            let tm = 0.5 * (t0 + t1);
            let xm = fixed_substep(engine, circuit, x, t0, tm, depth - 1, iterations, substeps)?;
            *substeps += 1;
            fixed_substep(
                engine,
                circuit,
                &xm,
                tm,
                t1,
                depth - 1,
                iterations,
                substeps,
            )
        }
        Err(e) => Err(e),
    }
}

pub(crate) fn transient_fixed_core(
    engine: &mut NewtonEngine,
    circuit: &Circuit,
    t_stop: f64,
    dt: f64,
    initial: Option<&[f64]>,
    options: &TransientOptions,
    mut observer: Option<StepObserver<'_>>,
) -> Result<TransientRun, CircuitError> {
    if dt <= 0.0 || t_stop <= 0.0 {
        return Err(CircuitError::InvalidAnalysis(format!(
            "t_stop ({t_stop}) and dt ({dt}) must be positive"
        )));
    }
    engine.set_options(options.newton);
    let x0 = initial_state(engine, circuit, initial)?;
    // Counter baseline: the run's stats report this analysis only, not
    // whatever the (possibly session-shared) engine did before.
    let base_counters = engine.counters();
    // The small backoff keeps `ceil` from scheduling a degenerate extra
    // step when t_stop/dt rounds just above an integer (a near-zero
    // final step would make the companion coefficient 1/h explode).
    let steps = ((t_stop / dt - 1e-9).ceil() as usize).max(1);
    let mut time = Vec::with_capacity(steps + 1);
    let mut states = Vec::with_capacity(steps + 1);
    time.push(0.0);
    states.push(x0.clone());
    if let Some(obs) = observer.as_deref_mut() {
        obs(0.0, &x0);
    }
    let mut stats = TransientStats::default();
    let mut x = x0;
    let mut t_prev = 0.0;
    // (previous-previous point, step that led from it to `x`): BDF2
    // history, populated after the first accepted step.
    let mut bdf2_hist: Option<(Vec<f64>, f64)> = None;
    for k in 1..=steps {
        engine.check_cancel()?;
        // The final step lands exactly on t_stop (shortened when t_stop
        // is not an integer multiple of dt).
        let t = if k == steps {
            t_stop
        } else {
            (k as f64 * dt).min(t_stop)
        };
        let h = t - t_prev;
        if h <= 0.0 {
            break;
        }
        let stamp = match (&bdf2_hist, options.integrator) {
            (Some((prev2, g)), TimeIntegrator::Bdf2) => TransientStamp::bdf2(t, h, *g, &x, prev2),
            _ => TransientStamp::backward_euler(t, h, &x),
        };
        let mut substepped = false;
        let (nx, it) = match engine.newton(circuit, &x, &AnalysisMode::Transient(stamp), 0.0) {
            Ok(r) => r,
            // Hard-switching steps over purely algebraic internal nodes
            // can fold the one-shot step system so that no solution is
            // reachable at this `h` — no Newton variant can converge to
            // a point that does not exist. Splitting the interval
            // restores solvability while keeping the output grid (and
            // every already-produced sample) untouched; the rescue only
            // runs where the historical behavior was a hard error.
            Err(CircuitError::NoConvergence { iterations, .. }) => {
                let mut its = iterations;
                let tm = 0.5 * (t_prev + t);
                let depth = FIXED_SUBSTEP_DEPTH - 1;
                let xm = fixed_substep(
                    engine,
                    circuit,
                    &x,
                    t_prev,
                    tm,
                    depth,
                    &mut its,
                    &mut stats.substeps,
                )?;
                stats.substeps += 1;
                let nx = fixed_substep(
                    engine,
                    circuit,
                    &xm,
                    tm,
                    t,
                    depth,
                    &mut its,
                    &mut stats.substeps,
                )?;
                substepped = true;
                (nx, its)
            }
            Err(e) => return Err(e),
        };
        stats.newton_iterations += it;
        stats.accepted += 1;
        if options.integrator == TimeIntegrator::Bdf2 {
            // Sub-stepping leaves `x` one (internal) BE step away from
            // `nx`, so the two-point grid history is no longer valid:
            // restart BDF2 from backward Euler, as after any rescue.
            bdf2_hist = if substepped {
                stats.bdf2_restarts += 1;
                None
            } else {
                Some((x.clone(), h))
            };
        }
        x = nx;
        t_prev = t;
        time.push(t);
        states.push(x.clone());
        if let Some(obs) = observer.as_deref_mut() {
            obs(t, &x);
        }
    }
    stats.absorb_counters(engine.counters().delta_since(&base_counters));
    Ok(TransientRun::new(
        TransientResult { time, states },
        stats,
        circuit,
    ))
}

/// Adaptive transient: LTE-controlled variable stepping from `t = 0` to
/// `t_stop`, starting from `initial` (or the DC operating point).
///
/// Each attempted step produces a local-truncation-error estimate —
/// step doubling for backward Euler, the predictor–corrector difference
/// for BDF2 — which is measured in a weighted RMS norm over the node
/// voltages (`abs_tol + rel_tol · |v|` per node). Steps with an error
/// norm above 1 are rejected and retried smaller; accepted steps feed a
/// PI controller that grows or shrinks the next step within
/// `[dt_min, dt_max]`. Newton failures shrink the step by 4× and restart
/// BDF2 from backward Euler. When a step at `dt_min` still fails, the
/// run aborts with [`CircuitError::TimestepTooSmall`].
///
/// # Errors
///
/// [`CircuitError::InvalidAnalysis`] for inconsistent options (bad
/// tolerances or step bounds, non-positive `t_stop`, wrong
/// initial-state length), [`CircuitError::TimestepTooSmall`] when the
/// controller collapses onto `dt_min`, and any solver error of the
/// initial DC operating point.
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session and call \
            `transient(&TransientSpec::adaptive(t_stop).with_options(options))`"
)]
pub fn solve_transient_adaptive(
    circuit: &Circuit,
    t_stop: f64,
    initial: Option<&[f64]>,
    options: &TransientOptions,
) -> Result<TransientRun, CircuitError> {
    let mut engine = NewtonEngine::new(options.newton);
    transient_adaptive_core(&mut engine, circuit, t_stop, initial, options, None)
}

/// The engine-sharing adaptive stepping core behind
/// [`solve_transient_adaptive`] and
/// [`crate::sim::Simulator::transient`]. `observer`, when present, sees
/// every **accepted** `(t, x)` point in order (including the initial
/// state); rejected attempts are invisible to it. The engine's
/// cancellation flag is polled once per step attempt on top of the
/// per-Newton-iteration polls, so cancellation lands within one
/// accepted step.
pub(crate) fn transient_adaptive_core(
    engine: &mut NewtonEngine,
    circuit: &Circuit,
    t_stop: f64,
    initial: Option<&[f64]>,
    options: &TransientOptions,
    mut observer: Option<StepObserver<'_>>,
) -> Result<TransientRun, CircuitError> {
    if t_stop <= 0.0 {
        return Err(CircuitError::InvalidAnalysis(format!(
            "t_stop ({t_stop}) must be positive"
        )));
    }
    let (mut dt, dt_min, dt_max) = options.resolve(t_stop)?;
    engine.set_options(options.newton);
    let x0 = initial_state(engine, circuit, initial)?;
    let base_counters = engine.counters();
    let n_nodes = circuit.node_count();
    let mut stats = TransientStats::default();
    let mut time = vec![0.0];
    let mut states = vec![x0.clone()];
    if let Some(obs) = observer.as_deref_mut() {
        obs(0.0, &x0);
    }
    // Accepted history since the last integrator restart, oldest first,
    // capped at the three points BDF2's predictor needs.
    let mut hist: Vec<(f64, Vec<f64>)> = vec![(0.0, x0)];
    let mut prev_err = 1.0f64;
    let mut rejects_in_a_row = 0usize;
    let mut attempts = 0usize;
    // Points this close to t_stop count as arrived: a sliver step below
    // this would make the companion coefficient 1/h blow up roundoff
    // past the Newton tolerances.
    let end_eps = t_stop * 1e-9;
    loop {
        let t_n = hist.last().expect("history is never empty").0;
        if t_stop - t_n <= end_eps {
            break;
        }
        engine.check_cancel()?;
        attempts += 1;
        if attempts > options.max_steps {
            return Err(CircuitError::InvalidAnalysis(format!(
                "adaptive transient exceeded max_steps ({}) at t = {t_n:.6e} s",
                options.max_steps
            )));
        }
        dt = dt.clamp(dt_min, dt_max);
        // Land the final step exactly on t_stop (may go below dt_min).
        let final_step = t_n + dt >= t_stop - end_eps;
        if final_step {
            dt = t_stop - t_n;
        }
        let use_bdf2 = options.integrator == TimeIntegrator::Bdf2 && hist.len() >= 3;
        let attempt = if use_bdf2 {
            bdf2_step(engine, circuit, &hist, dt, &mut stats)
        } else {
            be_doubled_step(engine, circuit, &hist, dt, &mut stats)
        };
        // Controller exponent: estimate order + 1.
        let k = if use_bdf2 { 3.0 } else { 2.0 };
        match attempt {
            Ok((x_new, lte)) => {
                let err = wrms(
                    &lte,
                    &x_new,
                    &hist.last().expect("non-empty").1,
                    n_nodes,
                    options,
                );
                if err <= 1.0 {
                    rejects_in_a_row = 0;
                    stats.accepted += 1;
                    let t_new = if final_step { t_stop } else { t_n + dt };
                    time.push(t_new);
                    states.push(x_new.clone());
                    if let Some(obs) = observer.as_deref_mut() {
                        obs(t_new, &x_new);
                    }
                    if hist.len() == 3 {
                        hist.remove(0);
                    }
                    hist.push((t_new, x_new));
                    // PI controller (Hairer's recommendation for stiff
                    // problems: fac = safety · err^(−0.7/k) · prev^(0.4/k)).
                    let errc = err.max(1e-10);
                    let fac = options.safety * errc.powf(-0.7 / k) * prev_err.powf(0.4 / k);
                    dt *= fac.clamp(0.2, options.max_growth);
                    prev_err = errc;
                } else {
                    stats.rejected_lte += 1;
                    rejects_in_a_row += 1;
                    if dt <= dt_min * (1.0 + 1e-9) {
                        return Err(CircuitError::TimestepTooSmall {
                            t: t_n,
                            dt,
                            report: engine.last_report(circuit).unwrap_or_default(),
                        });
                    }
                    // A non-finite norm (overflowing LTE) gives no usable
                    // magnitude — take the maximum shrink instead.
                    let fac = if err.is_finite() {
                        (options.safety * err.powf(-1.0 / k)).clamp(0.1, 0.5)
                    } else {
                        0.1
                    };
                    dt *= fac;
                }
            }
            Err(CircuitError::NoConvergence { .. }) | Err(CircuitError::SingularSystem(_)) => {
                stats.rejected_newton += 1;
                rejects_in_a_row += 1;
                if dt <= dt_min * (1.0 + 1e-9) {
                    return Err(CircuitError::TimestepTooSmall {
                        t: t_n,
                        dt,
                        report: engine.last_report(circuit).unwrap_or_default(),
                    });
                }
                dt = (dt * 0.25).max(dt_min);
                // Stale history after a hard failure: restart from BE.
                if use_bdf2 {
                    stats.bdf2_restarts += 1;
                }
                let last = hist.pop().expect("history is never empty");
                hist.clear();
                hist.push(last);
            }
            Err(e) => return Err(e),
        }
        if rejects_in_a_row > options.max_rejects {
            let t_n = hist.last().expect("non-empty").0;
            return Err(CircuitError::TimestepTooSmall {
                t: t_n,
                dt,
                report: engine.last_report(circuit).unwrap_or_default(),
            });
        }
    }
    stats.absorb_counters(engine.counters().delta_since(&base_counters));
    Ok(TransientRun::new(
        TransientResult { time, states },
        stats,
        circuit,
    ))
}

/// Resolves the starting state: validated caller-provided vector or the
/// DC operating point, solved on the shared engine.
fn initial_state(
    engine: &mut NewtonEngine,
    circuit: &Circuit,
    initial: Option<&[f64]>,
) -> Result<Vec<f64>, CircuitError> {
    match initial {
        Some(x) => {
            if x.len() != circuit.unknown_count() {
                return Err(CircuitError::InvalidAnalysis(format!(
                    "initial state has {} entries, circuit has {} unknowns",
                    x.len(),
                    circuit.unknown_count()
                )));
            }
            Ok(x.to_vec())
        }
        None => Ok(engine.dc_operating_point(circuit, None)?.x),
    }
}

/// Weighted RMS of an LTE estimate over the node-voltage unknowns
/// (branch currents and CNFET Σ rows are excluded: they live in
/// different units and the voltages are what the tolerance means).
fn wrms(lte: &[f64], x_new: &[f64], x_old: &[f64], n_nodes: usize, o: &TransientOptions) -> f64 {
    if n_nodes == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..n_nodes {
        // The floor keeps the norm finite when abs_tol is 0 and a node
        // sits at exactly 0 V (a zero-LTE node then contributes 0, not
        // 0/0 = NaN).
        let scale =
            (o.abs_tol + o.rel_tol * x_new[i].abs().max(x_old[i].abs())).max(f64::MIN_POSITIVE);
        let r = lte[i] / scale;
        sum += r * r;
    }
    (sum / n_nodes as f64).sqrt()
}

/// One backward-Euler attempt with step-doubling error estimation:
/// solves the full step and two half steps, returns the Richardson
/// combination `2·x_half − x_full` (locally second-order) and the LTE
/// estimate `x_half − x_full` (first-order, conservative).
fn be_doubled_step(
    engine: &mut NewtonEngine,
    circuit: &Circuit,
    hist: &[(f64, Vec<f64>)],
    dt: f64,
    stats: &mut TransientStats,
) -> Result<(Vec<f64>, Vec<f64>), CircuitError> {
    let (t_n, x_n) = hist.last().expect("history is never empty");
    let solve = |engine: &mut NewtonEngine,
                 stats: &mut TransientStats,
                 t: f64,
                 h: f64,
                 from: &[f64],
                 guess: &[f64]| {
        let stamp = TransientStamp::backward_euler(t, h, from);
        let r = engine.newton(circuit, guess, &AnalysisMode::Transient(stamp), 0.0);
        if let Ok((_, it)) = &r {
            stats.newton_iterations += *it;
        } else {
            stats.newton_iterations += engine.options().max_iter;
        }
        r.map(|(x, _)| x)
    };
    let x_full = solve(engine, stats, t_n + dt, dt, x_n, x_n)?;
    let x_h1 = solve(engine, stats, t_n + 0.5 * dt, 0.5 * dt, x_n, x_n)?;
    let x_h2 = solve(engine, stats, t_n + dt, 0.5 * dt, &x_h1, &x_full)?;
    let lte: Vec<f64> = x_h2.iter().zip(&x_full).map(|(h, f)| h - f).collect();
    let x_acc: Vec<f64> = x_h2.iter().zip(&x_full).map(|(h, f)| 2.0 * h - f).collect();
    Ok((x_acc, lte))
}

/// One variable-step BDF2 attempt: quadratic-extrapolation predictor
/// through the last three accepted points, implicit corrector, and the
/// scaled predictor–corrector difference as the LTE estimate.
fn bdf2_step(
    engine: &mut NewtonEngine,
    circuit: &Circuit,
    hist: &[(f64, Vec<f64>)],
    dt: f64,
    stats: &mut TransientStats,
) -> Result<(Vec<f64>, Vec<f64>), CircuitError> {
    let [(t2, x2), (t1, x1), (t0, x0)] = hist else {
        unreachable!("bdf2_step requires exactly three history points");
    };
    let h = dt;
    let g = t0 - t1;
    let f = t1 - t2;
    let t = t0 + h;
    // Lagrange extrapolation of the last three points to the new time.
    let c2 = ((t - t1) * (t - t0)) / ((t2 - t1) * (t2 - t0));
    let c1 = ((t - t2) * (t - t0)) / ((t1 - t2) * (t1 - t0));
    let c0 = ((t - t2) * (t - t1)) / ((t0 - t2) * (t0 - t1));
    let pred: Vec<f64> = x0
        .iter()
        .zip(x1)
        .zip(x2)
        .map(|((&a, &b), &c)| c0 * a + c1 * b + c2 * c)
        .collect();
    let stamp = TransientStamp::bdf2(t, h, g, x0, x1);
    let r = engine.newton(circuit, &pred, &AnalysisMode::Transient(stamp), 0.0);
    if let Ok((_, it)) = &r {
        stats.newton_iterations += *it;
    } else {
        stats.newton_iterations += engine.options().max_iter;
    }
    let x_new = r.map(|(x, _)| x)?;
    // Error-constant split of the predictor–corrector difference: the
    // corrector's solution-error constant is C2 = h²(h+g)²/(6(2h+g)),
    // the predictor's Cp = h(h+g)(h+g+f)/6, both multiplying y'''.
    // LTE ≈ C2/(C2+Cp) · (x − pred); uniform steps give the classic 2/11.
    let c_corr = h * h * (h + g) * (h + g) / (6.0 * (2.0 * h + g));
    let c_pred = h * (h + g) * (h + g + f) / 6.0;
    let gamma = c_corr / (c_corr + c_pred);
    let lte: Vec<f64> = x_new
        .iter()
        .zip(&pred)
        .map(|(x, p)| gamma * (x - p))
        .collect();
    Ok((x_new, lte))
}

/// Convenience: DC operating point with default options.
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session and call `op()`"
)]
pub fn operating_point(circuit: &Circuit) -> Result<Solution, CircuitError> {
    NewtonEngine::new(NewtonOptions::default()).dc_operating_point(circuit, None)
}

#[cfg(test)]
mod tests {
    // These tests exercise the deprecated wrappers on purpose: legacy
    // entry points must keep their exact behaviour on top of the
    // session cores.
    #![allow(deprecated)]

    use super::*;
    use crate::element::{Capacitor, Resistor, VoltageSource, Waveform};
    use crate::netlist::Circuit;

    /// RC low-pass driven by a step: analytic exponential response.
    fn rc_circuit(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(VoltageSource::with_waveform(
            "V1",
            vin,
            Circuit::ground(),
            Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 0.0,
                rise: 1e-12,
                width: 1.0,
                fall: 1e-12,
                period: 0.0,
            },
        ));
        ckt.add(Resistor::new("R1", vin, out, r));
        ckt.add(Capacitor::new("C1", out, Circuit::ground(), c));
        (ckt, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (r, c) = (1e3, 1e-9); // tau = 1 µs
        let tau = r * c;
        let (ckt, out) = rc_circuit(r, c);
        let res = solve_transient(&ckt, 5.0 * tau, tau / 500.0, None).unwrap();
        let w = res.waveform(out);
        for (t, v) in res.time.iter().zip(&w) {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (v - expect).abs() < 0.01,
                "t = {t}: {v} vs analytic {expect}"
            );
        }
        // Fully settled at the end.
        assert!((w.last().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn rc_final_value_is_supply() {
        let (ckt, out) = rc_circuit(10e3, 1e-12);
        let res = solve_transient(&ckt, 1e-6, 1e-9, None).unwrap();
        assert!((res.waveform(out).last().unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn invalid_steps_are_rejected() {
        let (ckt, _) = rc_circuit(1e3, 1e-9);
        assert!(solve_transient(&ckt, -1.0, 1e-9, None).is_err());
        assert!(solve_transient(&ckt, 1e-6, 0.0, None).is_err());
        assert!(solve_transient(&ckt, 1e-6, 1e-9, Some(&[0.0])).is_err());
    }

    #[test]
    fn waveform_of_ground_is_zero() {
        let (ckt, _) = rc_circuit(1e3, 1e-9);
        let res = solve_transient(&ckt, 1e-8, 1e-9, None).unwrap();
        assert!(res.waveform(Circuit::ground()).iter().all(|&v| v == 0.0));
        assert_eq!(res.len(), res.time.len());
        assert!(!res.is_empty());
    }

    #[test]
    fn sine_drive_passes_through_at_low_frequency() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(VoltageSource::with_waveform(
            "V1",
            vin,
            Circuit::ground(),
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                frequency: 1e3, // far below RC corner
            },
        ));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::ground(), 1e-12));
        let res = solve_transient(&ckt, 1e-3, 1e-6, None).unwrap();
        let w = res.waveform(out);
        let peak = w.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 1.0).abs() < 0.01, "peak {peak}");
    }

    #[test]
    fn fixed_step_lands_exactly_on_t_stop() {
        // t_stop is not an integer multiple of dt: the last step is
        // shortened, never overshot.
        let (ckt, out) = rc_circuit(1e3, 1e-9);
        let res = solve_transient(&ckt, 1e-6, 3e-7, None).unwrap();
        assert_eq!(res.time.len(), 5); // 0, .3, .6, .9, 1.0 µs
        assert_eq!(*res.time.last().unwrap(), 1e-6);
        let v = *res.waveform(out).last().unwrap();
        let expect = 1.0 - (-1e-6_f64 / 1e-6).exp();
        assert!((v - expect).abs() < 0.1, "{v} vs {expect}");
    }

    #[test]
    fn dt_larger_than_t_stop_is_one_clamped_step() {
        let (ckt, _) = rc_circuit(1e3, 1e-9);
        let res = solve_transient(&ckt, 1e-6, 5e-6, None).unwrap();
        assert_eq!(res.time, vec![0.0, 1e-6]);
    }

    #[test]
    fn adaptive_rc_uses_far_fewer_steps_than_fixed() {
        let (r, c) = (1e3, 1e-9); // tau = 1 µs
        let tau = r * c;
        let (ckt, out) = rc_circuit(r, c);
        let run =
            solve_transient_adaptive(&ckt, 5.0 * tau, None, &TransientOptions::default()).unwrap();
        let w = run.result.waveform(out);
        for (t, v) in run.result.time.iter().zip(&w) {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (v - expect).abs() < 5e-3,
                "t = {t}: {v} vs analytic {expect}"
            );
        }
        assert_eq!(*run.result.time.last().unwrap(), 5.0 * tau);
        assert_eq!(run.stats.accepted, run.result.len() - 1);
        assert!(
            run.stats.accepted < 500,
            "adaptive should be coarse: {} steps",
            run.stats.accepted
        );
        assert!(run.stats.factorizations > 0 && run.stats.factor_ops > 0);
    }

    #[test]
    fn be_and_bdf2_agree_with_analytic_rc_response() {
        // Tight tolerances: the accepted solutions of both integrators
        // (Richardson-extrapolated BE, BDF2) track the analytic
        // exponential to ≤ 1e-6 everywhere. The per-step tolerances
        // differ because BE's accepted value is far more accurate than
        // its conservative first-order estimate, while BDF2's global
        // error genuinely accumulates at ~n_steps × per-step tolerance.
        let (r, c) = (1e3, 1e-9); // tau = 1 µs
        let tau = r * c;
        let (ckt, out) = rc_circuit(r, c);
        let tight = |integrator| {
            let (rel_tol, abs_tol) = match integrator {
                TimeIntegrator::BackwardEuler => (1e-7, 1e-10),
                TimeIntegrator::Bdf2 => (2e-9, 1e-11),
            };
            TransientOptions {
                integrator,
                rel_tol,
                abs_tol,
                ..TransientOptions::default()
            }
        };
        let mut finals = Vec::new();
        for integ in [TimeIntegrator::BackwardEuler, TimeIntegrator::Bdf2] {
            let run = solve_transient_adaptive(&ckt, 2.0 * tau, None, &tight(integ)).unwrap();
            let w = run.result.waveform(out);
            let max_err = run
                .result
                .time
                .iter()
                .zip(&w)
                .map(|(t, v)| (v - (1.0 - (-t / tau).exp())).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_err <= 1e-6,
                "{integ:?}: max |v - analytic| = {max_err:.3e}"
            );
            finals.push(*w.last().unwrap());
        }
        assert!(
            (finals[0] - finals[1]).abs() <= 1e-6,
            "BE vs BDF2 at t_stop: {} vs {}",
            finals[0],
            finals[1]
        );
    }

    #[test]
    fn dt_min_collision_gives_up_cleanly() {
        // dt_min == dt_max == 10 τ: the only allowed step is far too
        // coarse for the default tolerance and the controller cannot
        // shrink it, so the run must abort with TimestepTooSmall.
        let (ckt, _) = rc_circuit(1e3, 1e-9); // tau = 1 µs
        let opts = TransientOptions {
            dt_min: Some(1e-5),
            dt_max: Some(1e-5),
            ..TransientOptions::default()
        };
        let err = solve_transient_adaptive(&ckt, 4e-5, None, &opts).unwrap_err();
        assert!(
            matches!(err, CircuitError::TimestepTooSmall { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn adaptive_rejects_invalid_options() {
        let (ckt, _) = rc_circuit(1e3, 1e-9);
        let bad_tol = TransientOptions {
            rel_tol: 0.0,
            abs_tol: 0.0,
            ..TransientOptions::default()
        };
        assert!(solve_transient_adaptive(&ckt, 1e-6, None, &bad_tol).is_err());
        let bad_bounds = TransientOptions {
            dt_min: Some(1e-6),
            dt_max: Some(1e-9),
            ..TransientOptions::default()
        };
        assert!(solve_transient_adaptive(&ckt, 1e-6, None, &bad_bounds).is_err());
        assert!(solve_transient_adaptive(&ckt, -1.0, None, &TransientOptions::default()).is_err());
    }

    #[test]
    fn crossings_are_interpolated_and_directed() {
        let (r, c) = (1e3, 1e-9); // tau = 1 µs
        let tau = r * c;
        let (ckt, out) = rc_circuit(r, c);
        let res = solve_transient(&ckt, 5.0 * tau, tau / 400.0, None).unwrap();
        // The charging exponential crosses 0.5 exactly once, rising, at
        // t = tau·ln 2. The residual offset is backward Euler's own
        // first-order bias (~dt/2), so the interpolated crossing must
        // land well within one grid step of the analytic time.
        let xs = res.crossings(out, 0.5);
        assert_eq!(xs.len(), 1);
        let (t, rising) = xs[0];
        assert!(rising);
        assert!(
            (t - tau * 2.0_f64.ln()).abs() < tau / 300.0,
            "crossing at {t:.4e} vs ln2·tau {:.4e}",
            tau * 2.0_f64.ln()
        );
        // Ground never crosses a positive level.
        assert!(res.crossings(Circuit::ground(), 0.5).is_empty());
    }

    #[test]
    fn dt_changes_revalue_but_never_repattern() {
        // An engine shared across steps of wildly different sizes and
        // both integration stencils must record the Jacobian sparsity
        // pattern exactly once: companion stamps scale with a0, they
        // never add or remove entries.
        use crate::element::{AnalysisMode, TransientStamp};
        let (ckt, _) = rc_circuit(1e3, 1e-9);
        let mut engine = NewtonEngine::new(NewtonOptions::transient());
        let x = vec![0.0; ckt.unknown_count()];
        let mut state = x.clone();
        for (i, dt) in [1e-9, 1e-12, 3.7e-8, 2.5e-10].into_iter().enumerate() {
            let t = (i + 1) as f64 * 1e-7;
            let stamp = if i % 2 == 0 {
                TransientStamp::backward_euler(t, dt, &state)
            } else {
                TransientStamp::bdf2(t, dt, 2.0 * dt, &state, &x)
            };
            let (nx, _) = engine
                .newton(&ckt, &state, &AnalysisMode::Transient(stamp), 0.0)
                .unwrap();
            state = nx;
        }
        assert_eq!(engine.pattern_builds(), 1, "dt/method changes re-pattern");
    }

    #[test]
    fn fixed_bdf2_matches_be_on_rc() {
        // Fixed-grid BDF2 (BE start-up step) should be at least as
        // accurate as fixed BE at the same step size.
        let (r, c) = (1e3, 1e-9);
        let tau = r * c;
        let (ckt, out) = rc_circuit(r, c);
        let max_err = |integrator| {
            let opts = TransientOptions {
                integrator,
                ..TransientOptions::default()
            };
            let run = solve_transient_fixed(&ckt, 3.0 * tau, tau / 100.0, None, &opts).unwrap();
            let w = run.result.waveform(out);
            run.result
                .time
                .iter()
                .zip(&w)
                .map(|(t, v)| (v - (1.0 - (-t / tau).exp())).abs())
                .fold(0.0f64, f64::max)
        };
        let be = max_err(TimeIntegrator::BackwardEuler);
        let bdf2 = max_err(TimeIntegrator::Bdf2);
        assert!(bdf2 < be / 5.0, "bdf2 {bdf2:.3e} vs be {be:.3e}");
    }
}
