//! Transient analysis: fixed-step backward Euler.
//!
//! Backward Euler is L-stable, which matters here because the CNFET's Σ
//! row is an algebraic constraint (index-1 DAE) — trapezoidal rules ring
//! on such systems. The step size is caller-chosen; the ring-oscillator
//! benchmark uses ~1000 steps per period.

use crate::dc::{solve_dc_with, Solution};
use crate::element::AnalysisMode;
use crate::engine::{NewtonEngine, NewtonOptions};
use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId};

/// Result of a transient run: time points and the full unknown history.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Time points, seconds (first entry is 0 with the initial
    /// condition).
    pub time: Vec<f64>,
    /// Unknown vector at each time point.
    pub states: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Voltage waveform of `node`.
    pub fn waveform(&self, node: NodeId) -> Vec<f64> {
        match node.unknown_index() {
            Some(i) => self.states.iter().map(|x| x[i]).collect(),
            None => vec![0.0; self.states.len()],
        }
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// `true` when no time points were stored.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }
}

/// Runs a backward-Euler transient of duration `t_stop` with fixed step
/// `dt`, starting from `initial` (or the DC operating point at `t = 0`).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidAnalysis`] for non-positive `dt` or
/// `t_stop`, and propagates solver failures at any step.
pub fn solve_transient(
    circuit: &Circuit,
    t_stop: f64,
    dt: f64,
    initial: Option<&[f64]>,
) -> Result<TransientResult, CircuitError> {
    solve_transient_with(circuit, t_stop, dt, initial, &NewtonOptions::transient())
}

/// [`solve_transient`] with explicit [`NewtonOptions`].
///
/// One [`NewtonEngine`] is shared by every backward-Euler step, so the
/// MNA sparsity pattern is recorded once at the first step and every
/// later step assembles into preallocated slots and reuses the solver's
/// elimination ordering.
///
/// # Errors
///
/// Same as [`solve_transient`].
pub fn solve_transient_with(
    circuit: &Circuit,
    t_stop: f64,
    dt: f64,
    initial: Option<&[f64]>,
    options: &NewtonOptions,
) -> Result<TransientResult, CircuitError> {
    if dt <= 0.0 || t_stop <= 0.0 {
        return Err(CircuitError::InvalidAnalysis(format!(
            "t_stop ({t_stop}) and dt ({dt}) must be positive"
        )));
    }
    let x0 = match initial {
        Some(x) => {
            if x.len() != circuit.unknown_count() {
                return Err(CircuitError::InvalidAnalysis(format!(
                    "initial state has {} entries, circuit has {} unknowns",
                    x.len(),
                    circuit.unknown_count()
                )));
            }
            x.to_vec()
        }
        None => solve_dc_with(circuit, None, options)?.x,
    };
    let mut engine = NewtonEngine::new(*options);
    let steps = (t_stop / dt).ceil() as usize;
    let mut time = Vec::with_capacity(steps + 1);
    let mut states = Vec::with_capacity(steps + 1);
    time.push(0.0);
    states.push(x0.clone());
    let mut x = x0;
    for k in 1..=steps {
        let t = k as f64 * dt;
        let mode = AnalysisMode::Transient {
            dt,
            t,
            prev: x.clone(),
        };
        let (nx, _) = engine.newton(circuit, &x, &mode, 0.0)?;
        x = nx;
        time.push(t);
        states.push(x.clone());
    }
    Ok(TransientResult { time, states })
}

/// Convenience: DC operating point (re-exported through the prelude).
pub fn operating_point(circuit: &Circuit) -> Result<Solution, CircuitError> {
    solve_dc_with(circuit, None, &NewtonOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Capacitor, Resistor, VoltageSource, Waveform};
    use crate::netlist::Circuit;

    /// RC low-pass driven by a step: analytic exponential response.
    fn rc_circuit(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(VoltageSource::with_waveform(
            "V1",
            vin,
            Circuit::ground(),
            Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 0.0,
                rise: 1e-12,
                width: 1.0,
                fall: 1e-12,
                period: 0.0,
            },
        ));
        ckt.add(Resistor::new("R1", vin, out, r));
        ckt.add(Capacitor::new("C1", out, Circuit::ground(), c));
        (ckt, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (r, c) = (1e3, 1e-9); // tau = 1 µs
        let tau = r * c;
        let (ckt, out) = rc_circuit(r, c);
        let res = solve_transient(&ckt, 5.0 * tau, tau / 500.0, None).unwrap();
        let w = res.waveform(out);
        for (t, v) in res.time.iter().zip(&w) {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (v - expect).abs() < 0.01,
                "t = {t}: {v} vs analytic {expect}"
            );
        }
        // Fully settled at the end.
        assert!((w.last().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn rc_final_value_is_supply() {
        let (ckt, out) = rc_circuit(10e3, 1e-12);
        let res = solve_transient(&ckt, 1e-6, 1e-9, None).unwrap();
        assert!((res.waveform(out).last().unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn invalid_steps_are_rejected() {
        let (ckt, _) = rc_circuit(1e3, 1e-9);
        assert!(solve_transient(&ckt, -1.0, 1e-9, None).is_err());
        assert!(solve_transient(&ckt, 1e-6, 0.0, None).is_err());
        assert!(solve_transient(&ckt, 1e-6, 1e-9, Some(&[0.0])).is_err());
    }

    #[test]
    fn waveform_of_ground_is_zero() {
        let (ckt, _) = rc_circuit(1e3, 1e-9);
        let res = solve_transient(&ckt, 1e-8, 1e-9, None).unwrap();
        assert!(res.waveform(Circuit::ground()).iter().all(|&v| v == 0.0));
        assert_eq!(res.len(), res.time.len());
        assert!(!res.is_empty());
    }

    #[test]
    fn sine_drive_passes_through_at_low_frequency() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(VoltageSource::with_waveform(
            "V1",
            vin,
            Circuit::ground(),
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                frequency: 1e3, // far below RC corner
            },
        ));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::ground(), 1e-12));
        let res = solve_transient(&ckt, 1e-3, 1e-6, None).unwrap();
        let w = res.waveform(out);
        let peak = w.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 1.0).abs() < 0.01, "peak {peak}");
    }
}
