//! DC sweeps (transfer curves, VTCs), including parallel multi-sweep
//! batches.
//!
//! [`dc_sweep`] runs one warm-started sweep on one circuit. For the
//! many-scenario workloads the paper motivates (corner analyses, VTC
//! families, per-device parameter sweeps), [`dc_sweep_many`] fans a batch
//! of independent sweeps out across threads — each worker builds its own
//! circuit from a shared builder closure and warm-starts along its own
//! sweep, so no locking is involved. With the `parallel` feature off the
//! same batch runs sequentially and produces identical results.

use crate::dc::Solution;
use crate::engine::{NewtonEngine, NewtonOptions};
use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Result of a DC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Swept source values.
    pub values: Vec<f64>,
    /// Converged solution at each value.
    pub solutions: Vec<Solution>,
}

impl SweepResult {
    /// Voltage of `node` across the sweep.
    pub fn voltages(&self, node: NodeId) -> Vec<f64> {
        self.solutions.iter().map(|s| s.voltage(node)).collect()
    }
}

/// Sweeps the named source through `values`, warm-starting each point
/// from the previous solution.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidAnalysis`] when no source has the given
/// name, and propagates solver failures.
pub fn dc_sweep(
    circuit: &mut Circuit,
    source: &str,
    values: &[f64],
) -> Result<SweepResult, CircuitError> {
    dc_sweep_with(circuit, source, values, &NewtonOptions::default())
}

/// [`dc_sweep`] with explicit [`NewtonOptions`].
///
/// One [`NewtonEngine`] is shared by every sweep point, so the MNA
/// sparsity pattern is recorded once at the first point and the rest of
/// the sweep assembles into preallocated slots and reuses the solver's
/// elimination ordering (the swept value changes numbers, not
/// structure).
///
/// # Errors
///
/// Same as [`dc_sweep`].
pub fn dc_sweep_with(
    circuit: &mut Circuit,
    source: &str,
    values: &[f64],
    options: &NewtonOptions,
) -> Result<SweepResult, CircuitError> {
    let mut engine = NewtonEngine::new(*options);
    let mut solutions = Vec::with_capacity(values.len());
    let mut prev: Option<Vec<f64>> = None;
    for &v in values {
        if !circuit.set_source_value(source, v) {
            return Err(CircuitError::InvalidAnalysis(format!(
                "no sweepable source named {source}"
            )));
        }
        let sol = engine.dc_operating_point(circuit, prev.as_deref())?;
        prev = Some(sol.x.clone());
        solutions.push(sol);
    }
    Ok(SweepResult {
        values: values.to_vec(),
        solutions,
    })
}

/// One independent sweep job for [`dc_sweep_many`]: which source to
/// sweep and through which values.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// Name of the source to sweep.
    pub source: String,
    /// Values to sweep it through (warm-started in order).
    pub values: Vec<f64>,
}

impl SweepJob {
    /// Builds a job from a source name and its sweep values.
    pub fn new(source: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            source: source.into(),
            values,
        }
    }
}

fn run_sweep_job(
    build: &(impl Fn(usize, &SweepJob) -> Circuit + Sync),
    index: usize,
    job: &SweepJob,
    options: &NewtonOptions,
) -> Result<SweepResult, CircuitError> {
    let mut circuit = build(index, job);
    dc_sweep_with(&mut circuit, &job.source, &job.values, options)
}

/// Runs a batch of independent warm-started sweeps, in parallel when the
/// `parallel` feature is enabled (the default).
///
/// `build` constructs a fresh circuit for each job from the job's index
/// and the job itself — so jobs can differ in topology or parameters
/// (supply corners, per-device variants), not just in what they sweep.
/// Every worker owns its circuit outright; the builder is the only thing
/// shared across threads. Results are in `jobs` order and identical to
/// running [`dc_sweep`] per job yourself.
///
/// # Errors
///
/// Propagates the first failing job's [`CircuitError`].
///
/// # Examples
///
/// ```
/// use cntfet_circuit::prelude::*;
/// use cntfet_circuit::sweep::{dc_sweep_many, SweepJob};
///
/// // Four corners of the lower divider resistor, one sweep each.
/// let corners = [1e3, 2e3, 5e3, 1e4];
/// let build = |k: usize, _job: &SweepJob| {
///     let mut c = Circuit::new();
///     let a = c.node("a");
///     let b = c.node("b");
///     c.add(VoltageSource::dc("V1", a, Circuit::ground(), 0.0));
///     c.add(Resistor::new("R1", a, b, 1e3));
///     c.add(Resistor::new("R2", b, Circuit::ground(), corners[k]));
///     c
/// };
/// let jobs = vec![SweepJob::new("V1", vec![0.0, 0.5, 1.0]); corners.len()];
/// let results = dc_sweep_many(build, &jobs)?;
/// assert_eq!(results.len(), corners.len());
/// # Ok::<(), cntfet_circuit::CircuitError>(())
/// ```
pub fn dc_sweep_many<F>(build: F, jobs: &[SweepJob]) -> Result<Vec<SweepResult>, CircuitError>
where
    F: Fn(usize, &SweepJob) -> Circuit + Sync,
{
    dc_sweep_many_with(build, jobs, &NewtonOptions::default())
}

/// [`dc_sweep_many`] with explicit [`NewtonOptions`] shared by every
/// job. Each worker still owns its circuit and its own
/// [`NewtonEngine`], so no pattern cache is shared across threads.
///
/// # Errors
///
/// Propagates the first failing job's [`CircuitError`].
#[cfg(feature = "parallel")]
pub fn dc_sweep_many_with<F>(
    build: F,
    jobs: &[SweepJob],
    options: &NewtonOptions,
) -> Result<Vec<SweepResult>, CircuitError>
where
    F: Fn(usize, &SweepJob) -> Circuit + Sync,
{
    let indexed: Vec<(usize, &SweepJob)> = jobs.iter().enumerate().collect();
    let ran: Vec<Result<SweepResult, CircuitError>> = indexed
        .par_iter()
        .map(|&(index, job)| run_sweep_job(&build, index, job, options))
        .collect();
    ran.into_iter().collect()
}

/// [`dc_sweep_many`] with explicit [`NewtonOptions`] (sequential build:
/// the `parallel` feature is disabled).
///
/// # Errors
///
/// Propagates the first failing job's [`CircuitError`].
#[cfg(not(feature = "parallel"))]
pub fn dc_sweep_many_with<F>(
    build: F,
    jobs: &[SweepJob],
    options: &NewtonOptions,
) -> Result<Vec<SweepResult>, CircuitError>
where
    F: Fn(usize, &SweepJob) -> Circuit + Sync,
{
    jobs.iter()
        .enumerate()
        .map(|(index, job)| run_sweep_job(&build, index, job, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Resistor, VoltageSource};

    #[test]
    fn sweep_tracks_divider_linearly() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
        let vals = [0.0, 0.5, 1.0, 1.5];
        let res = dc_sweep(&mut c, "V1", &vals).unwrap();
        let outs = res.voltages(out);
        for (v, o) in vals.iter().zip(&outs) {
            assert!((o - v / 2.0).abs() < 1e-9, "{v} -> {o}");
        }
    }

    #[test]
    fn many_sweeps_match_individual_sweeps() {
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
            c.add(Resistor::new("R1", vin, out, 2e3));
            c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
            c
        };
        let jobs: Vec<SweepJob> = (0..6)
            .map(|k| {
                let vals = (0..5).map(|i| 0.25 * i as f64 + k as f64).collect();
                SweepJob::new("V1", vals)
            })
            .collect();
        let batch = dc_sweep_many(|_, _| build(), &jobs).unwrap();
        assert_eq!(batch.len(), jobs.len());
        for (job, got) in jobs.iter().zip(&batch) {
            let mut c = build();
            let alone = dc_sweep(&mut c, &job.source, &job.values).unwrap();
            assert_eq!(got, &alone, "batched sweep must equal the lone sweep");
        }
    }

    #[test]
    fn builder_sees_job_index_and_job() {
        // Per-job circuits: job k's divider halves the source through a
        // lower resistor of k-dependent value.
        let lowers = [1e3, 3e3];
        let build = |k: usize, job: &SweepJob| {
            assert_eq!(job.source, "V1");
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
            c.add(Resistor::new("R1", vin, out, 1e3));
            c.add(Resistor::new("R2", out, Circuit::ground(), lowers[k]));
            c
        };
        let jobs = vec![SweepJob::new("V1", vec![2.0]); lowers.len()];
        let batch = dc_sweep_many(build, &jobs).unwrap();
        // Node "out" is unknown index 1 in both circuits; check the
        // divider ratio reflects each job's own lower resistor.
        let expect = [2.0 * 1e3 / 2e3, 2.0 * 3e3 / 4e3];
        for (res, want) in batch.iter().zip(expect) {
            let got = res.solutions[0].x[1];
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn many_sweeps_propagate_bad_source() {
        let build = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
            c
        };
        let jobs = [SweepJob::new("VX", vec![0.0])];
        assert!(matches!(
            dc_sweep_many(|_, _| build(), &jobs),
            Err(CircuitError::InvalidAnalysis(_))
        ));
    }

    #[test]
    fn unknown_source_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
        assert!(matches!(
            dc_sweep(&mut c, "VX", &[0.0]),
            Err(CircuitError::InvalidAnalysis(_))
        ));
    }
}
