//! DC sweeps (transfer curves, VTCs).

use crate::dc::{solve_dc, Solution};
use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId};

/// Result of a DC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Swept source values.
    pub values: Vec<f64>,
    /// Converged solution at each value.
    pub solutions: Vec<Solution>,
}

impl SweepResult {
    /// Voltage of `node` across the sweep.
    pub fn voltages(&self, node: NodeId) -> Vec<f64> {
        self.solutions.iter().map(|s| s.voltage(node)).collect()
    }
}

/// Sweeps the named source through `values`, warm-starting each point
/// from the previous solution.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidAnalysis`] when no source has the given
/// name, and propagates solver failures.
pub fn dc_sweep(
    circuit: &mut Circuit,
    source: &str,
    values: &[f64],
) -> Result<SweepResult, CircuitError> {
    let mut solutions = Vec::with_capacity(values.len());
    let mut prev: Option<Vec<f64>> = None;
    for &v in values {
        if !circuit.set_source_value(source, v) {
            return Err(CircuitError::InvalidAnalysis(format!(
                "no sweepable source named {source}"
            )));
        }
        let sol = solve_dc(circuit, prev.as_deref())?;
        prev = Some(sol.x.clone());
        solutions.push(sol);
    }
    Ok(SweepResult {
        values: values.to_vec(),
        solutions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Resistor, VoltageSource};

    #[test]
    fn sweep_tracks_divider_linearly() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
        let vals = [0.0, 0.5, 1.0, 1.5];
        let res = dc_sweep(&mut c, "V1", &vals).unwrap();
        let outs = res.voltages(out);
        for (v, o) in vals.iter().zip(&outs) {
            assert!((o - v / 2.0).abs() < 1e-9, "{v} -> {o}");
        }
    }

    #[test]
    fn unknown_source_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
        assert!(matches!(
            dc_sweep(&mut c, "VX", &[0.0]),
            Err(CircuitError::InvalidAnalysis(_))
        ));
    }
}
