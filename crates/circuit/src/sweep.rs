//! DC sweeps (transfer curves, VTCs) and their result type.
//!
//! The sweep loop itself (`sweep_core`) runs on a caller-provided
//! [`NewtonEngine`], so a [`crate::sim::Simulator`] session shares one
//! engine — one recorded sparsity pattern, one solver ordering, one
//! warm-start chain — across every analysis of a circuit. The free
//! functions of this module ([`dc_sweep`], [`dc_sweep_many`], …) are
//! the legacy entry points, kept as deprecated wrappers that build a
//! throwaway engine per call; new code should use
//! [`crate::sim::Simulator::dc_sweep`] and [`crate::sim::sweep_many`].

use crate::dc::Solution;
use crate::engine::{NewtonEngine, NewtonOptions};
use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId};
use crate::sim::{NodeWaves, SweepSpec};

/// Result of a DC sweep: swept values, per-point solutions, and a
/// node-major waveform cache with probe-by-name accessors shared with
/// the transient and AC result types.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Swept source values.
    pub values: Vec<f64>,
    /// Converged solution at each value.
    pub solutions: Vec<Solution>,
    waves: NodeWaves,
}

impl SweepResult {
    pub(crate) fn new(values: Vec<f64>, solutions: Vec<Solution>, circuit: &Circuit) -> Self {
        let waves = NodeWaves::new(circuit, solutions.len());
        SweepResult {
            values,
            solutions,
            waves,
        }
    }

    /// Voltage of `node` across the sweep, as a freshly allocated
    /// vector. Prefer [`SweepResult::voltages_ref`] (borrowed, no
    /// allocation after the first probe) or [`SweepResult::voltage`]
    /// (by node name).
    pub fn voltages(&self, node: NodeId) -> Vec<f64> {
        self.solutions.iter().map(|s| s.voltage(node)).collect()
    }

    /// Borrowed voltage waveform of `node` across the sweep (all-zero
    /// for ground), or `None` for a node outside the swept circuit.
    /// The node-major waveform cache is materialised on the first
    /// probe and borrowed thereafter.
    pub fn voltages_ref(&self, node: NodeId) -> Option<&[f64]> {
        self.waves
            .slice_with(node, || Box::new(self.solutions.iter().map(|s| &s.x[..])))
    }

    /// Borrowed voltage waveform of the named node across the sweep.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] listing the available names.
    pub fn voltage(&self, name: &str) -> Result<&[f64], CircuitError> {
        self.waves
            .by_name_with(name, || Box::new(self.solutions.iter().map(|s| &s.x[..])))
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The engine-sharing sweep loop: validates the source name up front
/// (listing the circuit's sources on a miss), then warm-starts each
/// point from the previous solution — the first point from `warm` when
/// provided.
pub(crate) fn sweep_core(
    engine: &mut NewtonEngine,
    circuit: &mut Circuit,
    source: &str,
    values: &[f64],
    warm: Option<&[f64]>,
) -> Result<SweepResult, CircuitError> {
    if !circuit.has_source(source) {
        return Err(CircuitError::UnknownSource {
            requested: source.to_string(),
            available: circuit.source_names(),
        });
    }
    let mut solutions = Vec::with_capacity(values.len());
    let mut prev: Option<Vec<f64>> = warm
        .filter(|x| x.len() == circuit.unknown_count())
        .map(<[f64]>::to_vec);
    for &v in values {
        circuit.set_source_value(source, v);
        let sol = engine.dc_operating_point(circuit, prev.as_deref())?;
        prev = Some(sol.x.clone());
        solutions.push(sol);
    }
    Ok(SweepResult::new(values.to_vec(), solutions, circuit))
}

/// Sweeps the named source through `values`, warm-starting each point
/// from the previous solution.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownSource`] when no source has the given
/// name, and propagates solver failures.
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session and call `dc_sweep(&SweepSpec)` \
            so solver caches are shared across analyses"
)]
pub fn dc_sweep(
    circuit: &mut Circuit,
    source: &str,
    values: &[f64],
) -> Result<SweepResult, CircuitError> {
    sweep_core(
        &mut NewtonEngine::new(NewtonOptions::default()),
        circuit,
        source,
        values,
        None,
    )
}

/// [`dc_sweep`] with explicit [`NewtonOptions`].
///
/// # Errors
///
/// Same as [`dc_sweep`].
#[deprecated(
    since = "0.1.0",
    note = "build a `sim::Simulator` session with `Simulator::with_options` and \
            call `dc_sweep(&SweepSpec)`"
)]
pub fn dc_sweep_with(
    circuit: &mut Circuit,
    source: &str,
    values: &[f64],
    options: &NewtonOptions,
) -> Result<SweepResult, CircuitError> {
    sweep_core(
        &mut NewtonEngine::new(*options),
        circuit,
        source,
        values,
        None,
    )
}

/// Legacy name of [`crate::sim::SweepSpec`].
#[deprecated(since = "0.1.0", note = "use `sim::SweepSpec`")]
pub type SweepJob = SweepSpec;

/// Runs a batch of independent warm-started sweeps, in parallel when
/// the `parallel` feature is enabled (the default).
///
/// # Errors
///
/// Propagates the first failing job's [`CircuitError`].
#[deprecated(
    since = "0.1.0",
    note = "use `sim::sweep_many`, which runs each job in its own `Simulator` session"
)]
pub fn dc_sweep_many<F>(build: F, jobs: &[SweepSpec]) -> Result<Vec<SweepResult>, CircuitError>
where
    F: Fn(usize, &SweepSpec) -> Circuit + Sync,
{
    crate::sim::sweep_many(build, jobs, &NewtonOptions::default())
}

/// [`dc_sweep_many`] with explicit [`NewtonOptions`] shared by every
/// job.
///
/// # Errors
///
/// Propagates the first failing job's [`CircuitError`].
#[deprecated(since = "0.1.0", note = "use `sim::sweep_many`")]
pub fn dc_sweep_many_with<F>(
    build: F,
    jobs: &[SweepSpec],
    options: &NewtonOptions,
) -> Result<Vec<SweepResult>, CircuitError>
where
    F: Fn(usize, &SweepSpec) -> Circuit + Sync,
{
    crate::sim::sweep_many(build, jobs, options)
}

#[cfg(test)]
mod tests {
    // These tests deliberately exercise the deprecated wrappers: the
    // acceptance contract is that legacy entry points keep their exact
    // behaviour while delegating to the session machinery.
    #![allow(deprecated)]

    use super::*;
    use crate::element::{Resistor, VoltageSource};

    #[test]
    fn sweep_tracks_divider_linearly() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
        c.add(Resistor::new("R1", vin, out, 1e3));
        c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
        let vals = [0.0, 0.5, 1.0, 1.5];
        let res = dc_sweep(&mut c, "V1", &vals).unwrap();
        let outs = res.voltages(out);
        for (v, o) in vals.iter().zip(&outs) {
            assert!((o - v / 2.0).abs() < 1e-9, "{v} -> {o}");
        }
        // The cached waveform agrees with the allocating accessor.
        assert_eq!(res.voltages_ref(out).unwrap(), &outs[..]);
        assert_eq!(res.voltage("out").unwrap(), &outs[..]);
        assert_eq!(res.len(), vals.len());
        assert!(!res.is_empty());
    }

    #[test]
    fn many_sweeps_match_individual_sweeps() {
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
            c.add(Resistor::new("R1", vin, out, 2e3));
            c.add(Resistor::new("R2", out, Circuit::ground(), 1e3));
            c
        };
        let jobs: Vec<SweepJob> = (0..6)
            .map(|k| {
                let vals = (0..5).map(|i| 0.25 * i as f64 + k as f64).collect();
                SweepJob::new("V1", vals)
            })
            .collect();
        let batch = dc_sweep_many(|_, _| build(), &jobs).unwrap();
        assert_eq!(batch.len(), jobs.len());
        for (job, got) in jobs.iter().zip(&batch) {
            let mut c = build();
            let alone = dc_sweep(&mut c, &job.source, &job.values).unwrap();
            assert_eq!(got, &alone, "batched sweep must equal the lone sweep");
        }
    }

    #[test]
    fn builder_sees_job_index_and_job() {
        // Per-job circuits: job k's divider halves the source through a
        // lower resistor of k-dependent value.
        let lowers = [1e3, 3e3];
        let build = |k: usize, job: &SweepJob| {
            assert_eq!(job.source, "V1");
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.add(VoltageSource::dc("V1", vin, Circuit::ground(), 0.0));
            c.add(Resistor::new("R1", vin, out, 1e3));
            c.add(Resistor::new("R2", out, Circuit::ground(), lowers[k]));
            c
        };
        let jobs = vec![SweepJob::new("V1", vec![2.0]); lowers.len()];
        let batch = dc_sweep_many(build, &jobs).unwrap();
        // Node "out" is unknown index 1 in both circuits; check the
        // divider ratio reflects each job's own lower resistor.
        let expect = [2.0 * 1e3 / 2e3, 2.0 * 3e3 / 4e3];
        for (res, want) in batch.iter().zip(expect) {
            let got = res.solutions[0].x[1];
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn many_sweeps_propagate_bad_source() {
        let build = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
            c
        };
        let jobs = [SweepJob::new("VX", vec![0.0])];
        assert!(matches!(
            dc_sweep_many(|_, _| build(), &jobs),
            Err(CircuitError::UnknownSource { .. })
        ));
    }

    #[test]
    fn unknown_source_is_rejected_with_candidates() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::dc("V1", a, Circuit::ground(), 1.0));
        c.add(Resistor::new("R1", a, Circuit::ground(), 1e3));
        let err = dc_sweep(&mut c, "VX", &[0.0]).unwrap_err();
        match &err {
            CircuitError::UnknownSource {
                requested,
                available,
            } => {
                assert_eq!(requested, "VX");
                assert_eq!(available, &["V1".to_string()]);
            }
            other => panic!("expected UnknownSource, got {other:?}"),
        }
        assert!(err.to_string().contains("V1"));
    }
}
