//! Deck-level errors: source spans, rendered carets and "did you mean"
//! suggestions.
//!
//! Every parse- or build-time failure of the deck front-end carries a
//! [`Span`] pointing at the offending token plus the source line it came
//! from, so [`DeckError`]'s `Display` can render a compiler-style
//! diagnostic:
//!
//! ```text
//! deck:4:10: no model named 'nfett'; available models: nfet, pfet
//!     4 | MN out in 0 nfett L=100n
//!       |             ^^^^^
//!       = help: did you mean 'nfet'?
//! ```
//!
//! Name-lookup failures reuse the circuit crate's
//! [`CircuitError::UnknownSource`] / [`CircuitError::UnknownNode`]
//! machinery for their message text (via [`DeckError::from_circuit`]),
//! and add an edit-distance suggestion ([`suggest`]) on top.

use crate::error::CircuitError;
use std::fmt;

/// A half-open region of one deck source line: 1-based `line` and
/// `col`, `len` characters long.
///
/// Spans are diagnostic metadata, not card values: **two spans always
/// compare equal**, so a parsed deck compares equal to its
/// serialised-and-reparsed self (round-trip equivalence) even though
/// the token positions moved.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    /// 1-based source line number.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
    /// Length in characters (at least 1 for rendering).
    pub len: u32,
}

impl PartialEq for Span {
    fn eq(&self, _other: &Self) -> bool {
        true // see the type docs: spans never participate in equality
    }
}

impl Eq for Span {}

impl Span {
    /// Builds a span (lengths below 1 render as a single caret).
    pub fn new(line: u32, col: u32, len: u32) -> Self {
        Span { line, col, len }
    }

    /// A span covering both `self` and `other` when they share a line,
    /// otherwise `self` unchanged.
    pub fn to_span(self, other: Span) -> Span {
        if self.line == other.line && other.col >= self.col {
            Span {
                line: self.line,
                col: self.col,
                len: other.col + other.len - self.col,
            }
        } else {
            self
        }
    }
}

/// Where a parsed card (or one of its fields) came from: a [`Span`]
/// plus the text of the physical line it started on, kept so build- and
/// run-time failures (model fit errors, non-convergence during `.tran`)
/// can still render a source-anchored diagnostic long after parsing.
///
/// Like [`Span`], a `SourceRef` is diagnostic metadata: **two source
/// refs always compare equal**, keeping round-trip deck equality
/// meaningful.
#[derive(Debug, Clone, Default)]
pub struct SourceRef {
    /// Location of the token or card.
    pub span: Span,
    /// Text of the physical line the span points into.
    pub line_text: String,
    /// Provenance of cards synthesized by subcircuit flattening: the
    /// instance path, the `.subckt` name and the definition-local
    /// location the card expanded from, pre-rendered. Diagnostics
    /// anchored here carry it as a `= note:` line, so a lint finding on
    /// `x3.x1.m2` points at the offending `X` card *and* at the line
    /// inside the definition.
    pub note: Option<String>,
}

impl PartialEq for SourceRef {
    fn eq(&self, _other: &Self) -> bool {
        true // diagnostic metadata; see the type docs
    }
}

impl Eq for SourceRef {}

impl SourceRef {
    /// Captures a location.
    pub fn new(span: Span, line_text: impl Into<String>) -> Self {
        SourceRef {
            span,
            line_text: line_text.into(),
            note: None,
        }
    }

    /// Attaches a flattening-provenance note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// A [`DeckError`] anchored here (carrying this location's
    /// provenance note, when present).
    pub fn error(&self, message: impl Into<String>) -> DeckError {
        let mut err = DeckError::at(self.span, &self.line_text, message);
        err.note = self.note.clone();
        err
    }

    /// Wraps a [`CircuitError`] anchored here (with a "did you mean"
    /// suggestion for the unknown-name variants and this location's
    /// provenance note, when present).
    pub fn circuit_error(&self, err: &CircuitError) -> DeckError {
        let mut deck_err = DeckError::from_circuit(err, self.span, &self.line_text);
        deck_err.note = self.note.clone();
        deck_err
    }
}

/// An error from parsing, building or running a SPICE deck.
///
/// Rendered by `Display` as a multi-line, compiler-style diagnostic
/// with the source line and a caret under the offending token (when a
/// span is available — errors surfaced while *running* analyses carry
/// only a message).
#[derive(Debug, Clone, PartialEq)]
pub struct DeckError {
    /// What went wrong.
    pub message: String,
    /// Where, when known.
    pub span: Option<Span>,
    /// The full text of the offending source line, for rendering.
    pub line_text: Option<String>,
    /// An optional "did you mean …" / usage hint.
    pub help: Option<String>,
    /// An optional context line — where inside a `.subckt` definition a
    /// flattened card expanded from (rendered before `help`).
    pub note: Option<String>,
}

impl DeckError {
    /// An error anchored at `span` within `line_text`.
    pub fn at(span: Span, line_text: impl Into<String>, message: impl Into<String>) -> Self {
        DeckError {
            message: message.into(),
            span: Some(span),
            line_text: Some(line_text.into()),
            help: None,
            note: None,
        }
    }

    /// A position-less error (analysis failures, I/O wrappers).
    pub fn message(message: impl Into<String>) -> Self {
        DeckError {
            message: message.into(),
            span: None,
            line_text: None,
            help: None,
            note: None,
        }
    }

    /// Attaches a help line (builder style).
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Attaches a context note line (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// Wraps a [`CircuitError`] at a deck location, adding a
    /// "did you mean" suggestion for the unknown-name variants (whose
    /// message already lists the valid candidates).
    pub fn from_circuit(err: &CircuitError, span: Span, line_text: &str) -> Self {
        let help = match err {
            CircuitError::UnknownSource {
                requested,
                available,
            }
            | CircuitError::UnknownNode {
                requested,
                available,
            } => suggest(requested, available.iter().map(String::as_str)),
            _ => None,
        };
        DeckError {
            message: err.to_string(),
            span: Some(span),
            line_text: Some(line_text.to_string()),
            help,
            note: None,
        }
    }
}

impl fmt::Display for DeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.span, &self.line_text) {
            (Some(span), Some(text)) => {
                writeln!(f, "deck:{}:{}: {}", span.line, span.col, self.message)?;
                writeln!(f, "{:>5} | {}", span.line, text)?;
                let pad = " ".repeat(span.col.saturating_sub(1) as usize);
                let carets = "^".repeat(span.len.max(1) as usize);
                write!(f, "      | {pad}{carets}")?;
            }
            _ => write!(f, "deck: {}", self.message)?,
        }
        if let Some(note) = &self.note {
            write!(f, "\n      = note: {note}")?;
        }
        if let Some(help) = &self.help {
            write!(f, "\n      = help: {help}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DeckError {}

impl From<CircuitError> for DeckError {
    fn from(err: CircuitError) -> Self {
        DeckError::message(err.to_string())
    }
}

/// Damerau–Levenshtein distance (optimal string alignment) between two
/// ASCII-insensitively compared strings.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(char::to_lowercase).collect();
    let b: Vec<char> = b.chars().flat_map(char::to_lowercase).collect();
    let (n, m) = (a.len(), b.len());
    let mut rows = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in rows.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in rows[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (rows[i - 1][j] + 1)
                .min(rows[i][j - 1] + 1)
                .min(rows[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(rows[i - 2][j - 2] + 1); // transposition
            }
            rows[i][j] = best;
        }
    }
    rows[n][m]
}

/// Picks the candidate closest to `target` in edit distance and phrases
/// it as a `did you mean '…'?` help line — or `None` when nothing is
/// close enough to be a plausible typo (distance above ⌈len/3⌉,
/// minimum 2).
pub fn suggest<'a>(target: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    let budget = target.chars().count().div_ceil(3).max(2);
    candidates
        .map(|c| (edit_distance(target, c), c))
        .filter(|&(d, _)| d <= budget)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| format!("did you mean '{c}'?"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_never_differ() {
        assert_eq!(Span::new(1, 2, 3), Span::new(9, 9, 9));
    }

    #[test]
    fn suggestion_picks_nearest_typo() {
        let names = ["VDD", "VIN", "out"];
        assert_eq!(
            suggest("VINN", names.iter().copied()),
            Some("did you mean 'VIN'?".to_string())
        );
        assert_eq!(
            suggest("vdd", names.iter().copied()),
            Some("did you mean 'VDD'?".to_string())
        );
        assert_eq!(suggest("zzzzzz", names.iter().copied()), None);
    }

    #[test]
    fn transpositions_cost_one() {
        assert_eq!(edit_distance("nfet", "nfte"), 1);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("", "ab"), 2);
    }

    #[test]
    fn display_renders_caret_under_span() {
        let e = DeckError::at(Span::new(4, 13, 5), "MN out in 0 nfett L=100n", "no model")
            .with_help("did you mean 'nfet'?");
        let rendered = e.to_string();
        assert!(rendered.contains("deck:4:13: no model"), "{rendered}");
        assert!(rendered.contains("    4 | MN out in 0 nfett L=100n"));
        assert!(rendered.contains("      |             ^^^^^"));
        assert!(rendered.ends_with("= help: did you mean 'nfet'?"));
    }

    #[test]
    fn from_circuit_adds_suggestion() {
        let err = CircuitError::UnknownNode {
            requested: "ouy".into(),
            available: vec!["in".into(), "out".into()],
        };
        let d = DeckError::from_circuit(&err, Span::new(1, 1, 3), ".print v(ouy)");
        assert!(d.message.contains("available nodes: in, out"));
        assert_eq!(d.help.as_deref(), Some("did you mean 'out'?"));
    }
}
