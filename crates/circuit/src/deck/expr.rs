//! Arithmetic expressions for `.param` cards and `{ … }` value blocks.
//!
//! The grammar is conventional infix arithmetic over f64:
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := ('+' | '-') factor | primary ('^' factor)?
//! primary := number | param-name | '(' expr ')'
//! ```
//!
//! Numbers use the full SPICE notation of
//! [`parse_number`](super::lex::parse_number) — suffixes included, so
//! `{2 * 10k}` is 20 000. Parameter names resolve against the `.param`
//! definitions *earlier in the deck* (forward references are errors,
//! keeping evaluation a single pass), and `^` is right-associative
//! exponentiation. Division by zero and other non-finite results are
//! reported as errors rather than propagating `inf`/`NaN` into element
//! values.

use super::lex::parse_number;
use std::collections::{BTreeSet, HashMap};

/// Evaluates `text` against the given parameter table, additionally
/// inserting every parameter name the expression resolves into `used`
/// — the parser's raw material for the unused-`.param` lint.
///
/// # Errors
///
/// A human-readable message (no span: the caller anchors it at the
/// expression's location in the deck).
pub fn eval_with_uses(
    text: &str,
    params: &HashMap<String, f64>,
    used: &mut BTreeSet<String>,
) -> Result<f64, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
        params,
        used,
    };
    p.skip_ws();
    if p.pos == p.chars.len() {
        return Err("empty expression".to_string());
    }
    let v = p.expr()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!(
            "unexpected '{}' after the expression",
            p.rest_preview()
        ));
    }
    if !v.is_finite() {
        return Err("expression is not finite (division by zero or overflow?)".to_string());
    }
    Ok(v)
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    params: &'a HashMap<String, f64>,
    used: &'a mut BTreeSet<String>,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn rest_preview(&self) -> String {
        self.chars[self.pos..].iter().take(12).collect()
    }

    fn expr(&mut self) -> Result<f64, String> {
        let mut v = self.term()?;
        while let Some(op @ ('+' | '-')) = self.peek() {
            self.pos += 1;
            let rhs = self.term()?;
            v = if op == '+' { v + rhs } else { v - rhs };
        }
        Ok(v)
    }

    fn term(&mut self) -> Result<f64, String> {
        let mut v = self.factor()?;
        while let Some(op @ ('*' | '/')) = self.peek() {
            self.pos += 1;
            let rhs = self.factor()?;
            if op == '/' {
                if rhs == 0.0 {
                    return Err("division by zero".to_string());
                }
                v /= rhs;
            } else {
                v *= rhs;
            }
        }
        Ok(v)
    }

    fn factor(&mut self) -> Result<f64, String> {
        match self.peek() {
            Some('-') => {
                self.pos += 1;
                Ok(-self.factor()?)
            }
            Some('+') => {
                self.pos += 1;
                self.factor()
            }
            _ => {
                let base = self.primary()?;
                if self.peek() == Some('^') {
                    self.pos += 1;
                    let exp = self.factor()?; // right-associative
                    Ok(base.powf(exp))
                } else {
                    Ok(base)
                }
            }
        }
    }

    fn primary(&mut self) -> Result<f64, String> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let v = self.expr()?;
                if self.peek() != Some(')') {
                    return Err("missing ')'".to_string());
                }
                self.pos += 1;
                Ok(v)
            }
            Some(c) if c.is_ascii_digit() || c == '.' => {
                let start = self.pos;
                // A number token: digits/dot, optional exponent, then
                // any alphabetic suffix letters.
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_digit() || *c == '.')
                {
                    self.pos += 1;
                }
                if self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| *c == 'e' || *c == 'E')
                {
                    let mut j = self.pos + 1;
                    if self.chars.get(j).is_some_and(|c| *c == '+' || *c == '-') {
                        j += 1;
                    }
                    if self.chars.get(j).is_some_and(char::is_ascii_digit) {
                        self.pos = j;
                        while self.chars.get(self.pos).is_some_and(char::is_ascii_digit) {
                            self.pos += 1;
                        }
                    }
                }
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(char::is_ascii_alphabetic)
                {
                    self.pos += 1;
                }
                let word: String = self.chars[start..self.pos].iter().collect();
                parse_number(&word).ok_or_else(|| format!("malformed number '{word}'"))
            }
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
                {
                    self.pos += 1;
                }
                let name: String = self.chars[start..self.pos].iter().collect();
                if self.params.contains_key(&name) {
                    self.used.insert(name.clone());
                }
                self.params.get(&name).copied().ok_or_else(|| {
                    let mut msg = format!("unknown parameter '{name}'");
                    if let Some(help) =
                        super::error::suggest(&name, self.params.keys().map(String::as_str))
                    {
                        msg.push_str(&format!(" ({help})"));
                    } else if self.params.is_empty() {
                        msg.push_str(" (no .param cards defined before this point)");
                    }
                    msg
                })
            }
            Some(c) => Err(format!("unexpected character '{c}' in expression")),
            None => Err("expression ended unexpectedly".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(text: &str, params: &HashMap<String, f64>) -> Result<f64, String> {
        eval_with_uses(text, params, &mut BTreeSet::new())
    }

    fn params() -> HashMap<String, f64> {
        [("vdd".to_string(), 0.8), ("rload".to_string(), 10e3)]
            .into_iter()
            .collect()
    }

    #[test]
    fn precedence_and_parens() {
        let p = params();
        assert_eq!(eval("1 + 2 * 3", &p).unwrap(), 7.0);
        assert_eq!(eval("(1 + 2) * 3", &p).unwrap(), 9.0);
        assert_eq!(eval("2^3^2", &p).unwrap(), 512.0); // right-assoc
        assert_eq!(eval("-vdd / 2", &p).unwrap(), -0.4);
        assert_eq!(eval("2 * 10k", &p).unwrap(), 20e3);
        assert_eq!(eval("rload / 2", &p).unwrap(), 5e3);
        assert_eq!(eval("1.5u * 2", &p).unwrap(), 3e-6);
    }

    #[test]
    fn eval_records_resolved_param_names() {
        let p = params();
        let mut used = BTreeSet::new();
        assert_eq!(
            eval_with_uses("vdd * 2 + rload / rload", &p, &mut used).unwrap(),
            2.6
        );
        let names: Vec<&str> = used.iter().map(String::as_str).collect();
        assert_eq!(names, ["rload", "vdd"]);
        // Unknown names error without being recorded.
        let mut used = BTreeSet::new();
        assert!(eval_with_uses("nope + 1", &p, &mut used).is_err());
        assert!(used.is_empty());
    }

    #[test]
    fn errors_are_descriptive() {
        let p = params();
        assert!(eval("1 / 0", &p).unwrap_err().contains("division by zero"));
        assert!(eval("", &p).unwrap_err().contains("empty"));
        assert!(eval("(1 + 2", &p).unwrap_err().contains("missing ')'"));
        assert!(eval("1 + ", &p).unwrap_err().contains("unexpectedly"));
        assert!(eval("1 2", &p).unwrap_err().contains("unexpected '2'"));
        let e = eval("vddd * 2", &p).unwrap_err();
        assert!(e.contains("did you mean 'vdd'?"), "{e}");
        assert!(eval("1..2", &p).unwrap_err().contains("malformed number"));
    }
}
