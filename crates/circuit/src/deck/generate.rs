//! Hierarchical benchmark-deck generation — the engine behind the
//! `cntfet-gen` binary and the `hierarchy_scaling` bench.
//!
//! A [`Workload`] describes a scalable digital topology (inverter ring
//! arrays, ripple-carry adders, shift registers) built from a small
//! CNFET standard-cell library (`inv`, `nand2`, `nor2`, `dff`, plus a
//! NAND-only full adder `fa`). [`Workload::deck`] renders it either
//! **hierarchically** — the cell `.subckt` blocks plus `X` instance
//! cards, exercising the parser's flattener — or **pre-flattened** by
//! the generator itself, reproducing the exact element order, node
//! names and parameter values the flattener would produce. The two
//! decks share a title and `.print` cards, so their `cntfet-sim --csv`
//! outputs compare byte-for-byte: the flat deck is the independent
//! witness that flattening is correct at scale.
//!
//! The canonical cell text is shared with `examples/cells/*.cir`
//! through [`cell_subckt`]; a repo test pins the two in sync.

use std::fmt::Write as _;

/// One card in a standard-cell body.
enum CellCard {
    /// `<name> <drain> <gate> <source> <model>` — a CNFET.
    Fet(&'static str, [&'static str; 3], &'static str),
    /// `<name> <plus> <minus> <value>` — a capacitor; the value may
    /// name a cell parameter.
    Cap(&'static str, [&'static str; 2], &'static str),
    /// `<name> <nodes…> <cell>` — a nested cell instance.
    Inst(&'static str, &'static [&'static str], &'static str),
}

/// A standard cell: ports, parameter defaults and body cards — enough
/// to render its `.subckt` block *and* to emit it pre-flattened.
struct Cell {
    name: &'static str,
    ports: &'static [&'static str],
    defaults: &'static [(&'static str, &'static str)],
    cards: &'static [CellCard],
}

/// Static CMOS-style inverter with an explicit output load.
const INV: Cell = Cell {
    name: "inv",
    ports: &["out", "in", "vdd"],
    defaults: &[("cl", "2f")],
    cards: &[
        CellCard::Fet("mp", ["out", "in", "vdd"], "pfet"),
        CellCard::Fet("mn", ["out", "in", "0"], "nfet"),
        CellCard::Cap("cl", ["out", "0"], "cl"),
    ],
};

/// Two-input NAND: parallel p-network, series n-network. The stack
/// node `mid` is purely algebraic (no parasitic): the engine's
/// convergence ladder (voltage limiting → Armijo damping →
/// pseudo-transient continuation) handles the hard-switching series
/// stack that historically needed a 0.2 fF `cm` workaround capacitor.
const NAND2: Cell = Cell {
    name: "nand2",
    ports: &["out", "a", "b", "vdd"],
    defaults: &[("cl", "2f")],
    cards: &[
        CellCard::Fet("mpa", ["out", "a", "vdd"], "pfet"),
        CellCard::Fet("mpb", ["out", "b", "vdd"], "pfet"),
        CellCard::Fet("mna", ["out", "a", "mid"], "nfet"),
        CellCard::Fet("mnb", ["mid", "b", "0"], "nfet"),
        CellCard::Cap("cl", ["out", "0"], "cl"),
    ],
};

/// Two-input NOR: series p-network, parallel n-network. `top` is the
/// p-stack node, algebraic like [`NAND2`]'s `mid`.
const NOR2: Cell = Cell {
    name: "nor2",
    ports: &["out", "a", "b", "vdd"],
    defaults: &[("cl", "2f")],
    cards: &[
        CellCard::Fet("mpa", ["top", "a", "vdd"], "pfet"),
        CellCard::Fet("mpb", ["out", "b", "top"], "pfet"),
        CellCard::Fet("mna", ["out", "a", "0"], "nfet"),
        CellCard::Fet("mnb", ["out", "b", "0"], "nfet"),
        CellCard::Cap("cl", ["out", "0"], "cl"),
    ],
};

/// Master–slave D flip-flop: two gated NAND latches plus a clock
/// inverter (9 gates).
const DFF: Cell = Cell {
    name: "dff",
    ports: &["d", "clk", "q", "vdd"],
    defaults: &[],
    cards: &[
        CellCard::Inst("xc", &["cb", "clk", "vdd"], "inv"),
        CellCard::Inst("xm1", &["ms", "d", "cb", "vdd"], "nand2"),
        CellCard::Inst("xm2", &["mr", "ms", "cb", "vdd"], "nand2"),
        CellCard::Inst("xm3", &["mq", "ms", "mqb", "vdd"], "nand2"),
        CellCard::Inst("xm4", &["mqb", "mr", "mq", "vdd"], "nand2"),
        CellCard::Inst("xs1", &["ss", "mq", "clk", "vdd"], "nand2"),
        CellCard::Inst("xs2", &["sr", "ss", "clk", "vdd"], "nand2"),
        CellCard::Inst("xs3", &["q", "ss", "qb", "vdd"], "nand2"),
        CellCard::Inst("xs4", &["qb", "sr", "q", "vdd"], "nand2"),
    ],
};

/// NAND-only full adder (9 NAND2 gates: XOR/XOR for the sum, the
/// shared `n1`/`n5` intermediates for the carry).
const FA: Cell = Cell {
    name: "fa",
    ports: &["sum", "cout", "a", "b", "cin", "vdd"],
    defaults: &[],
    cards: &[
        CellCard::Inst("x1", &["n1", "a", "b", "vdd"], "nand2"),
        CellCard::Inst("x2", &["n2", "a", "n1", "vdd"], "nand2"),
        CellCard::Inst("x3", &["n3", "b", "n1", "vdd"], "nand2"),
        CellCard::Inst("x4", &["n4", "n2", "n3", "vdd"], "nand2"),
        CellCard::Inst("x5", &["n5", "n4", "cin", "vdd"], "nand2"),
        CellCard::Inst("x6", &["n6", "n4", "n5", "vdd"], "nand2"),
        CellCard::Inst("x7", &["n7", "cin", "n5", "vdd"], "nand2"),
        CellCard::Inst("x8", &["sum", "n6", "n7", "vdd"], "nand2"),
        CellCard::Inst("x9", &["cout", "n1", "n5", "vdd"], "nand2"),
    ],
};

const CELLS: [&Cell; 5] = [&INV, &NAND2, &NOR2, &DFF, &FA];

fn cell_by_name(name: &str) -> &'static Cell {
    CELLS
        .iter()
        .find(|c| c.name == name)
        .expect("cell instances reference known cells")
}

impl Cell {
    /// The canonical `.subckt` block text of this cell.
    fn subckt_text(&self) -> String {
        let mut s = format!(".subckt {} {}", self.name, self.ports.join(" "));
        for (k, v) in self.defaults {
            let _ = write!(s, " {k}={v}");
        }
        s.push('\n');
        for card in self.cards {
            match card {
                CellCard::Fet(name, [d, g, src], model) => {
                    let _ = writeln!(s, "{name} {d} {g} {src} {model}");
                }
                CellCard::Cap(name, [p, m], value) => {
                    let _ = writeln!(s, "{name} {p} {m} {value}");
                }
                CellCard::Inst(name, nodes, child) => {
                    let _ = writeln!(s, "{name} {} {child}", nodes.join(" "));
                }
            }
        }
        let _ = writeln!(s, ".ends {}", self.name);
        s
    }
}

/// The canonical `.subckt` block of a library cell (`inv`, `nand2`,
/// `nor2`, `dff`, `fa`) — the exact text [`Workload::deck`] embeds.
/// The standard-cell example decks under `examples/cells/` carry the
/// same blocks; a repo test keeps them in sync.
pub fn cell_subckt(name: &str) -> Option<String> {
    CELLS
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.subckt_text())
}

/// Emits `cell` pre-flattened at `path`, reproducing exactly what the
/// deck parser's flattener produces for the equivalent `X` card: same
/// card order (body order, depth-first), same dotted node names, same
/// parameter values. Element names become `<name>_<path with dots as
/// underscores>` — they keep their type letter, and element names
/// never appear in analysis output, so this is the only naming
/// difference between the two emissions.
fn emit_flat(
    out: &mut String,
    cell: &Cell,
    path: &str,
    nodes: &[String],
    overrides: &[(String, String)],
) {
    let env: Vec<(&str, String)> = cell
        .defaults
        .iter()
        .map(|(k, v)| match overrides.iter().find(|(ok, _)| ok == k) {
            Some((_, ov)) => (*k, ov.clone()),
            None => (*k, (*v).to_string()),
        })
        .collect();
    let flat = path.replace('.', "_");
    let map = |w: &str| -> String {
        if w == "0" {
            return w.to_string();
        }
        match cell.ports.iter().position(|p| *p == w) {
            Some(i) => nodes[i].clone(),
            None => format!("{path}.{w}"),
        }
    };
    for card in cell.cards {
        match card {
            CellCard::Fet(name, [d, g, src], model) => {
                let _ = writeln!(
                    out,
                    "{name}_{flat} {} {} {} {model}",
                    map(d),
                    map(g),
                    map(src)
                );
            }
            CellCard::Cap(name, [p, m], value) => {
                let v = env
                    .iter()
                    .find(|(k, _)| k == value)
                    .map_or_else(|| (*value).to_string(), |(_, v)| v.clone());
                let _ = writeln!(out, "{name}_{flat} {} {} {v}", map(p), map(m));
            }
            CellCard::Inst(name, bound, child) => {
                let child_nodes: Vec<String> = bound.iter().map(|w| map(w)).collect();
                emit_flat(
                    out,
                    cell_by_name(child),
                    &format!("{path}.{name}"),
                    &child_nodes,
                    &[],
                );
            }
        }
    }
}

/// A generated benchmark topology. Sizes below 1 are clamped to 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `rows` parallel chains of `stages` inverters, every chain driven
    /// by one shared pulse input (each row is a `.subckt row` of `inv`
    /// instances — two levels of hierarchy).
    RingArray {
        /// Number of parallel inverter chains.
        rows: usize,
        /// Inverters per chain.
        stages: usize,
    },
    /// An N-bit ripple-carry adder of NAND-only full adders (9 NAND2
    /// gates per bit), with `b = 1…1` and a pulse on `a0` so every
    /// carry ripples through the whole chain.
    Adder {
        /// Adder width in bits.
        bits: usize,
    },
    /// An N-stage master–slave D-flip-flop shift register (9 gates per
    /// stage) clocked by a pulse, shifting a slower data pulse.
    ShiftRegister {
        /// Number of flip-flop stages.
        bits: usize,
    },
}

impl Workload {
    /// Number of logic gates (inverters and NAND2s) in the deck.
    pub fn gate_count(&self) -> usize {
        match *self {
            Workload::RingArray { rows, stages } => rows.max(1) * stages.max(1),
            Workload::Adder { bits } => bits.max(1) * 9,
            Workload::ShiftRegister { bits } => bits.max(1) * 9,
        }
    }

    /// The deck title — identical between hierarchical and flat
    /// emission, so `cntfet-sim --csv` outputs compare byte-for-byte.
    pub fn title(&self) -> String {
        let gates = self.gate_count();
        match *self {
            Workload::RingArray { rows, stages } => {
                format!(
                    "ring-array {}x{} ({gates} gates)",
                    rows.max(1),
                    stages.max(1)
                )
            }
            Workload::Adder { bits } => {
                format!("adder {}-bit ripple ({gates} gates)", bits.max(1))
            }
            Workload::ShiftRegister { bits } => {
                format!("shift-register {}-bit ({gates} gates)", bits.max(1))
            }
        }
    }

    /// Renders the deck text: hierarchical (`.subckt` definitions plus
    /// `X` instance cards) by default, or pre-flattened by the
    /// generator itself when `flat` — see `emit_flat` for the
    /// equivalence contract.
    pub fn deck(&self, flat: bool) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.title());
        s.push_str(".model nfet cnfet polarity=n\n");
        s.push_str(".model pfet cnfet polarity=p\n");
        match *self {
            Workload::RingArray { rows, stages } => {
                let (rows, stages) = (rows.max(1), stages.max(1));
                if !flat {
                    s.push_str(&INV.subckt_text());
                    // The row: `stages` inverters in series, with a
                    // heavier load (cl override) on the last one.
                    let _ = writeln!(s, ".subckt row out in vdd");
                    for k in 1..=stages {
                        let src = if k == 1 {
                            "in".to_string()
                        } else {
                            format!("n{}", k - 1)
                        };
                        let dst = if k == stages {
                            "out".to_string()
                        } else {
                            format!("n{k}")
                        };
                        let tail = if k == stages { " cl=4f" } else { "" };
                        let _ = writeln!(s, "x{k} {dst} {src} vdd inv{tail}");
                    }
                    s.push_str(".ends row\n");
                }
                s.push_str("V1 vdd 0 DC 0.9\n");
                s.push_str("VIN in 0 PULSE(0 0.9 0 40p 40p 400p 1n)\n");
                for r in 0..rows {
                    if flat {
                        for k in 1..=stages {
                            let src = if k == 1 {
                                "in".to_string()
                            } else {
                                format!("xr{r}.n{}", k - 1)
                            };
                            let dst = if k == stages {
                                format!("o{r}")
                            } else {
                                format!("xr{r}.n{k}")
                            };
                            let ov: Vec<(String, String)> = if k == stages {
                                vec![("cl".to_string(), "4f".to_string())]
                            } else {
                                Vec::new()
                            };
                            emit_flat(
                                &mut s,
                                &INV,
                                &format!("xr{r}.x{k}"),
                                &[dst, src, "vdd".to_string()],
                                &ov,
                            );
                        }
                    } else {
                        let _ = writeln!(s, "xr{r} o{r} in vdd row");
                    }
                }
                let _ = writeln!(s, ".tran 10p 400p");
                if rows == 1 {
                    let _ = writeln!(s, ".print tran v(o0)");
                } else {
                    let _ = writeln!(s, ".print tran v(o0) v(o{})", rows - 1);
                }
            }
            Workload::Adder { bits } => {
                let bits = bits.max(1);
                if !flat {
                    s.push_str(&NAND2.subckt_text());
                    s.push_str(&FA.subckt_text());
                }
                s.push_str("V1 vdd 0 DC 0.9\n");
                s.push_str("VA0 a0 0 PULSE(0 0.9 0 40p 40p 400p 1n)\n");
                for i in 1..bits {
                    let _ = writeln!(s, "VA{i} a{i} 0 DC 0");
                }
                for i in 0..bits {
                    let _ = writeln!(s, "VB{i} b{i} 0 DC 0.9");
                }
                for i in 0..bits {
                    let cin = if i == 0 {
                        "0".to_string()
                    } else {
                        format!("c{i}")
                    };
                    if flat {
                        let nodes = [
                            format!("sum{i}"),
                            format!("c{}", i + 1),
                            format!("a{i}"),
                            format!("b{i}"),
                            cin,
                            "vdd".to_string(),
                        ];
                        emit_flat(&mut s, &FA, &format!("xfa{i}"), &nodes, &[]);
                    } else {
                        let _ = writeln!(s, "xfa{i} sum{i} c{} a{i} b{i} {cin} vdd fa", i + 1);
                    }
                }
                let _ = writeln!(s, ".tran 10p 400p");
                if bits == 1 {
                    let _ = writeln!(s, ".print tran v(sum0) v(c1)");
                } else {
                    let _ = writeln!(s, ".print tran v(sum0) v(sum{}) v(c{bits})", bits - 1);
                }
            }
            Workload::ShiftRegister { bits } => {
                let bits = bits.max(1);
                if !flat {
                    s.push_str(&INV.subckt_text());
                    s.push_str(&NAND2.subckt_text());
                    s.push_str(&DFF.subckt_text());
                }
                s.push_str("V1 vdd 0 DC 0.9\n");
                s.push_str("VCLK clk 0 PULSE(0 0.9 100p 40p 40p 160p 400p)\n");
                s.push_str("VD q0 0 PULSE(0 0.9 0 40p 40p 600p 1200p)\n");
                for i in 1..=bits {
                    let d = format!("q{}", i - 1);
                    if flat {
                        let nodes = [d, "clk".to_string(), format!("q{i}"), "vdd".to_string()];
                        emit_flat(&mut s, &DFF, &format!("xd{i}"), &nodes, &[]);
                    } else {
                        let _ = writeln!(s, "xd{i} {d} clk q{i} vdd dff");
                    }
                }
                let _ = writeln!(s, ".tran 20p 800p");
                if bits == 1 {
                    let _ = writeln!(s, ".print tran v(q1)");
                } else {
                    let _ = writeln!(s, ".print tran v(q1) v(q{bits})");
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::Deck;

    #[test]
    fn hier_and_flat_parse_to_identical_circuits() {
        for w in [
            Workload::RingArray { rows: 3, stages: 4 },
            Workload::Adder { bits: 2 },
            Workload::ShiftRegister { bits: 1 },
        ] {
            let hier = Deck::parse(&w.deck(false)).expect("hier deck parses");
            let flat = Deck::parse(&w.deck(true)).expect("flat deck parses");
            // Same node layout (names and first-appearance order) …
            assert_eq!(hier.node_names(), flat.node_names(), "{w:?}");
            // … and element-for-element identical values: only the
            // names differ (dots vs underscores).
            assert_eq!(hier.elements.len(), flat.elements.len(), "{w:?}");
            for (h, f) in hier.elements.iter().zip(&flat.elements) {
                match h.name().rsplit_once('.') {
                    // A flattened cell card: `path.elem` ↔ `elem_path`.
                    Some((path, elem)) => {
                        assert_eq!(format!("{elem}_{}", path.replace('.', "_")), f.name());
                    }
                    // A top-level card (supply, stimulus): same name.
                    None => assert_eq!(h.name(), f.name()),
                }
                assert_eq!(h.nodes(), f.nodes());
            }
        }
    }

    #[test]
    fn gate_counts_scale() {
        assert_eq!(
            Workload::RingArray {
                rows: 200,
                stages: 5
            }
            .gate_count(),
            1000
        );
        assert_eq!(Workload::Adder { bits: 4 }.gate_count(), 36);
        assert_eq!(Workload::ShiftRegister { bits: 8 }.gate_count(), 72);
    }

    #[test]
    fn generated_decks_lint_clean() {
        use crate::deck::LintOptions;
        for w in [
            Workload::RingArray { rows: 2, stages: 3 },
            Workload::Adder { bits: 2 },
            Workload::ShiftRegister { bits: 1 },
        ] {
            for flat in [false, true] {
                let deck = Deck::parse(&w.deck(flat)).expect("deck parses");
                let report = deck.lint(&LintOptions::default());
                assert!(report.is_clean(), "{w:?} flat={flat}:\n{report}");
            }
        }
    }
}
