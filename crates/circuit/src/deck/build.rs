//! Lowering a parsed [`Deck`] onto the circuit layer: `.model` cards
//! become fitted [`CompactCntFet`] models (fitted once, shared across
//! rebuilds), element cards become [`Circuit`] elements in card order —
//! which fixes the node-creation order and therefore the whole MNA
//! unknown layout, making deck-built and programmatically-built
//! circuits bitwise comparable.

use super::cache::ModelCache;
use super::error::DeckError;
use super::{CnfetCard, Deck, ElementCard};
use crate::cnfet::{CnfetElement, Polarity};
use crate::element::{Capacitor, CurrentSource, Resistor, VoltageSource};
use crate::netlist::Circuit;
use cntfet_core::CompactCntFet;
use std::collections::HashMap;
use std::sync::Arc;

/// A fitted `.model` card.
#[derive(Debug, Clone)]
pub(crate) struct BuiltModel {
    model: Arc<CompactCntFet>,
    polarity: Polarity,
    default_length_m: f64,
}

/// The deck's fitted models, keyed by model name.
#[derive(Debug, Clone, Default)]
pub(crate) struct ModelTable {
    map: HashMap<String, BuiltModel>,
}

impl ModelTable {
    fn lookup(&self, card: &CnfetCard) -> &BuiltModel {
        // Parse-time validation guarantees the reference resolves.
        &self.map[&card.model]
    }
}

impl Deck {
    /// Fits every `.model` card (the expensive one-off step — the
    /// piecewise charge fit), shared across per-analysis circuit
    /// rebuilds in [`Deck::run`](super::Deck::run).
    pub(crate) fn build_models(&self) -> Result<ModelTable, DeckError> {
        self.build_models_with(&ModelCache::new())
    }

    /// [`Deck::build_models`] through a shared [`ModelCache`]: each
    /// card's fit is served from the cache when its `(ef, temp)` pair
    /// was fitted before (there, or by a previous run sharing the
    /// cache).
    pub(crate) fn build_models_with(&self, cache: &ModelCache) -> Result<ModelTable, DeckError> {
        let mut map = HashMap::new();
        for card in &self.models {
            let built = BuiltModel {
                model: cache.fit(card)?,
                polarity: card.polarity,
                default_length_m: card.default_length_m,
            };
            map.insert(card.name.clone(), built);
        }
        Ok(ModelTable { map })
    }

    /// Lowers the deck into a fresh [`Circuit`], fitting the CNFET
    /// models first. Node names intern in first-appearance order and
    /// elements are added in card order, so two builds of the same deck
    /// (or a deck and the equivalent programmatic construction) share
    /// the identical unknown layout.
    ///
    /// # Errors
    ///
    /// [`DeckError`] when a `.model` card fails to fit (everything
    /// else was validated at parse time).
    pub fn circuit(&self) -> Result<Circuit, DeckError> {
        let models = self.build_models()?;
        Ok(self.circuit_with(&models))
    }

    /// [`Deck::circuit`] over pre-fitted models.
    pub(crate) fn circuit_with(&self, models: &ModelTable) -> Circuit {
        let mut circuit = Circuit::new();
        for card in &self.elements {
            match card {
                ElementCard::Resistor(c) => {
                    let plus = circuit.node(&c.plus);
                    let minus = circuit.node(&c.minus);
                    circuit.add(Resistor::new(&c.name, plus, minus, c.ohms));
                }
                ElementCard::Capacitor(c) => {
                    let plus = circuit.node(&c.plus);
                    let minus = circuit.node(&c.minus);
                    circuit.add(Capacitor::new(&c.name, plus, minus, c.farads));
                }
                ElementCard::Voltage(c) => {
                    let plus = circuit.node(&c.plus);
                    let minus = circuit.node(&c.minus);
                    circuit.add(VoltageSource::with_waveform(
                        &c.name,
                        plus,
                        minus,
                        c.waveform.clone(),
                    ));
                }
                ElementCard::Current(c) => {
                    let plus = circuit.node(&c.plus);
                    let minus = circuit.node(&c.minus);
                    circuit.add(CurrentSource::dc(&c.name, plus, minus, c.amps));
                }
                ElementCard::Cnfet(c) => {
                    let drain = circuit.node(&c.drain);
                    let gate = circuit.node(&c.gate);
                    let source = circuit.node(&c.source);
                    let built = models.lookup(c);
                    circuit.add(CnfetElement::new(
                        &c.name,
                        Arc::clone(&built.model),
                        built.polarity,
                        drain,
                        gate,
                        source,
                        c.length.unwrap_or(built.default_length_m),
                    ));
                }
            }
        }
        circuit
    }
}
