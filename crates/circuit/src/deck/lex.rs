//! Deck lexer: logical lines, tokens with source spans, and SPICE
//! numbers with engineering suffixes.
//!
//! A deck is line-oriented. The lexer resolves the classic SPICE line
//! discipline before any card is parsed:
//!
//! * the **first line is always the title** (never a card);
//! * lines whose first non-blank character is `*` are comments;
//! * `;` starts an inline comment running to the end of the line;
//! * a line starting with `+` continues the previous logical line;
//! * `.end` stops the lexer — anything after it is ignored.
//!
//! Each surviving logical line becomes a vector of [`Token`]s. Words
//! are split on whitespace and commas; `(`, `)` and `=` are
//! single-character punctuation tokens; `{ … }` is captured whole as an
//! expression token (evaluated by [`crate::deck::expr`]). Tokens keep
//! the line/column they came from — across continuations — so every
//! later error can point at real source text.

use super::error::{DeckError, Span};

/// What a token is, with its text payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare word: element name, node name, number, keyword.
    Word(String),
    /// The body of a `{ … }` expression block (braces stripped).
    Expr(String),
    /// One of `(`, `)`, `=`.
    Punct(char),
}

/// One lexed token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Payload.
    pub kind: TokenKind,
    /// Location of the token's first character.
    pub span: Span,
}

impl Token {
    /// The word text, if this token is a word.
    pub fn word(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// A logical line: tokens (possibly joined across `+` continuations)
/// plus the text of every physical line it spans, so a diagnostic
/// anchored at a continuation-line token renders that line's own text.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalLine {
    /// The tokens of the line, in order.
    pub tokens: Vec<Token>,
    /// 1-based number of the first physical line.
    pub line: u32,
    /// `(line number, comment-stripped text)` of each physical line —
    /// the card line first, then its `+` continuations in order.
    pub texts: Vec<(u32, String)>,
}

impl LogicalLine {
    /// Text of the physical line the card started on.
    pub fn text(&self) -> &str {
        &self.texts[0].1
    }

    /// Text of physical line `line` (falling back to the card line for
    /// spans that do not belong to this logical line).
    pub fn text_for(&self, line: u32) -> &str {
        self.texts
            .iter()
            .find(|(n, _)| *n == line)
            .map_or_else(|| self.text(), |(_, t)| t)
    }

    /// Span of token `i`, or a caret at the end of the last physical
    /// line when the card has fewer tokens (for "expected more fields"
    /// errors).
    pub fn span_at(&self, i: usize) -> Span {
        match self.tokens.get(i) {
            Some(t) => t.span,
            None => match self.texts.last() {
                Some((line, text)) => {
                    let col = text.chars().count() as u32 + 1;
                    Span::new(*line, col.max(1), 1)
                }
                // A logical line always carries its card line, but a
                // diagnostic helper must never be the thing that
                // panics — point at the card's start instead.
                None => Span::new(self.line, 1, 1),
            },
        }
    }
}

/// The lexed deck: title plus logical lines.
#[derive(Debug, Clone, PartialEq)]
pub struct RawDeck {
    /// The mandatory title line (first line of the file).
    pub title: String,
    /// The card lines, comments stripped and continuations joined.
    pub lines: Vec<LogicalLine>,
}

/// Strips an inline `;` comment.
fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Lexes deck text into a title and logical lines.
///
/// The title is the first line **unconditionally** — even when it is
/// blank or a `;` comment empties it — so a deck with an empty title
/// still round-trips through the serialiser (a blank first line must
/// never promote the first card to the title). Only a whole-file-blank
/// deck is an error.
///
/// # Errors
///
/// [`DeckError`] for an empty deck, a leading `+` continuation with
/// nothing to continue, an unterminated `{` expression block, or a
/// stray character that is not part of any token.
pub fn lex(text: &str) -> Result<RawDeck, DeckError> {
    if text.chars().all(char::is_whitespace) {
        return Err(DeckError::message(
            "empty deck: the first line must be a title, followed by cards",
        ));
    }
    let mut physical = text.lines().enumerate();
    let Some((_, first)) = physical.next() else {
        // Unreachable past the all-whitespace check above, but an
        // error beats a panic if that invariant ever shifts.
        return Err(DeckError::message(
            "empty deck: the first line must be a title, followed by cards",
        ));
    };
    let title = strip_comment(first).trim().to_string();
    let mut lines: Vec<LogicalLine> = Vec::new();
    for (index, raw) in physical {
        let line_no = index as u32 + 1;
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            let col0 = (stripped.len() - cont.len()) as u32 + 1;
            let Some(last) = lines.last_mut() else {
                return Err(DeckError::at(
                    Span::new(line_no, (stripped.len() - trimmed.len()) as u32 + 1, 1),
                    stripped,
                    "continuation line '+' with no card to continue",
                ));
            };
            let tokens = tokenize(cont, line_no, col0, stripped)?;
            last.tokens.extend(tokens);
            last.texts.push((line_no, stripped.to_string()));
            continue;
        }
        // `.end` terminates the deck.
        if trimmed
            .split_whitespace()
            .next()
            .is_some_and(|w| w.eq_ignore_ascii_case(".end"))
        {
            break;
        }
        let tokens = tokenize(stripped, line_no, 1, stripped)?;
        lines.push(LogicalLine {
            tokens,
            line: line_no,
            texts: vec![(line_no, stripped.to_string())],
        });
    }
    Ok(RawDeck { title, lines })
}

/// Tokenizes one physical line fragment starting at column `col0`.
fn tokenize(s: &str, line: u32, col0: u32, line_text: &str) -> Result<Vec<Token>, DeckError> {
    let chars: Vec<char> = s.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let col = |i: usize| col0 + i as u32;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() || c == ',' {
            i += 1;
        } else if c == '(' || c == ')' || c == '=' {
            tokens.push(Token {
                kind: TokenKind::Punct(c),
                span: Span::new(line, col(i), 1),
            });
            i += 1;
        } else if c == '{' {
            let start = i;
            i += 1;
            while i < chars.len() && chars[i] != '}' {
                i += 1;
            }
            if i == chars.len() {
                return Err(DeckError::at(
                    Span::new(line, col(start), (i - start) as u32),
                    line_text,
                    "unterminated '{' expression (missing '}')",
                ));
            }
            let body: String = chars[start + 1..i].iter().collect();
            i += 1; // consume '}'
            tokens.push(Token {
                kind: TokenKind::Expr(body),
                span: Span::new(line, col(start), (i - start) as u32),
            });
        } else if c == '}' {
            return Err(DeckError::at(
                Span::new(line, col(i), 1),
                line_text,
                "stray '}' without a matching '{'",
            ));
        } else {
            let start = i;
            while i < chars.len() {
                let c = chars[i];
                if c.is_whitespace() || "(),={}".contains(c) {
                    break;
                }
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            tokens.push(Token {
                kind: TokenKind::Word(word),
                span: Span::new(line, col(start), (i - start) as u32),
            });
        }
    }
    Ok(tokens)
}

/// Parses a SPICE number: a decimal float in plain or scientific
/// notation, optionally followed by an engineering suffix and trailing
/// unit letters (which are ignored, as in `100nF` or `1kOhm`).
///
/// | suffix | factor | | suffix | factor |
/// |--------|--------|-|--------|--------|
/// | `t`    | 1e12   | | `m`    | 1e-3   |
/// | `g`    | 1e9    | | `u`    | 1e-6   |
/// | `meg`  | 1e6    | | `n`    | 1e-9   |
/// | `k`    | 1e3    | | `p`    | 1e-12  |
/// |        |        | | `f`    | 1e-15  |
///
/// Suffixes are case-insensitive; `meg` is matched before `m`.
/// Returns `None` for anything that is not a well-formed number
/// (callers attach the span and a message).
pub fn parse_number(word: &str) -> Option<f64> {
    let chars: Vec<char> = word.chars().collect();
    let mut i = 0usize;
    if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
        i += 1;
    }
    let int_digits = eat_digits(&chars, &mut i);
    let mut frac_digits = 0;
    if i < chars.len() && chars[i] == '.' {
        i += 1;
        frac_digits = eat_digits(&chars, &mut i);
    }
    if int_digits + frac_digits == 0 {
        return None;
    }
    // Exponent: 'e'/'E' only counts when digits follow, otherwise the
    // letter belongs to the unit text (e.g. `3eV` is 3 electron-volts).
    if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
        let mut j = i + 1;
        if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
            j += 1;
        }
        let exp_digits = eat_digits(&chars, &mut j);
        if exp_digits > 0 {
            i = j;
        }
    }
    let mantissa: f64 = chars[..i].iter().collect::<String>().parse().ok()?;
    let rest: String = chars[i..].iter().collect::<String>().to_ascii_lowercase();
    if !rest.chars().all(|c| c.is_ascii_alphabetic()) {
        return None; // digits or punctuation after the number: malformed
    }
    let scale = if rest.starts_with("meg") {
        1e6
    } else {
        match rest.chars().next() {
            None => 1.0,
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            Some(_) => 1.0, // plain unit letters, e.g. `5V`
        }
    };
    Some(mantissa * scale)
}

fn eat_digits(chars: &[char], i: &mut usize) -> usize {
    let start = *i;
    while *i < chars.len() && chars[*i].is_ascii_digit() {
        *i += 1;
    }
    *i - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_scale_correctly() {
        for (text, expect) in [
            ("1k", 1e3),
            ("2.5u", 2.5e-6),
            ("10meg", 1e7),
            ("10MEG", 1e7),
            ("3m", 3e-3),
            ("1.5n", 1.5e-9),
            ("2p", 2e-12),
            ("4f", 4e-15),
            ("1t", 1e12),
            ("7g", 7e9),
            ("100nF", 1e-7),
            ("1kOhm", 1e3),
            ("5V", 5.0),
            ("-0.32", -0.32),
            ("1e3", 1e3),
            ("1.5e-9", 1.5e-9),
            ("1E6", 1e6),
            ("3eV", 3.0), // 'e' with no digits is a unit, not an exponent
            (".5", 0.5),
            ("2.", 2.0),
        ] {
            let got = parse_number(text).unwrap_or_else(|| panic!("{text} should parse"));
            assert!(
                (got - expect).abs() <= 1e-15 * expect.abs(),
                "{text}: {got} != {expect}"
            );
        }
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        for text in ["", "k", "--1", "1.2.3", "1e+", "1k2", "1..", "+", "nan"] {
            assert!(parse_number(text).is_none(), "{text} should not parse");
        }
    }

    #[test]
    fn title_comments_continuations() {
        let deck = "\
my title ; with a comment
* a full-line comment
R1 a b 1k ; trailing comment
+ 2k
V1 a 0 DC 1
.end
R2 ignored after end 1k";
        let raw = lex(deck).unwrap();
        assert_eq!(raw.title, "my title");
        assert_eq!(raw.lines.len(), 2);
        // Continuation joined R1's tokens.
        let words: Vec<&str> = raw.lines[0].tokens.iter().filter_map(Token::word).collect();
        assert_eq!(words, ["R1", "a", "b", "1k", "2k"]);
        // Spans survive the join: "2k" sits on physical line 4.
        assert_eq!(raw.lines[0].tokens.last().unwrap().span.line, 4);
    }

    #[test]
    fn empty_deck_is_an_error() {
        let err = lex("").unwrap_err();
        assert!(err.message.contains("empty deck"), "{err}");
        let err = lex("\n  \n").unwrap_err();
        assert!(err.message.contains("empty deck"), "{err}");
    }

    #[test]
    fn orphan_continuation_is_an_error() {
        let err = lex("title\n+ R1 a b 1k").unwrap_err();
        assert!(err.message.contains("no card to continue"), "{err}");
    }

    #[test]
    fn braces_capture_expressions() {
        let raw = lex("t\nR1 a b {2 * rload}").unwrap();
        let t = &raw.lines[0].tokens[3];
        assert_eq!(t.kind, TokenKind::Expr("2 * rload".into()));
        let err = lex("t\nR1 a b {2 * rload").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }
}
