//! Executing a deck's analysis cards and rendering the probe output.
//!
//! [`Deck::run`] walks the analysis cards in source order. Each card
//! gets a **fresh** circuit and [`Simulator`] session (the SPICE
//! convention: every analysis sees the pristine netlist — a `.dc`
//! sweep overwrites its swept source's waveform and must not leak that
//! into a later `.tran`), while the fitted CNFET models are built once
//! and shared. Each analysis lowers to the session's typed request —
//! `.dc` → [`SweepSpec`](crate::sim::SweepSpec), `.tran` →
//! [`TransientSpec`], `.ac` → [`AcSweep`] — and the probed waveforms
//! come back as an [`AnalysisReport`] that renders as an aligned table
//! or CSV.

use super::error::DeckError;
use super::{AcCard, AcScale, AnalysisCard, AnalysisKind, DcCard, Deck, OpCard, TranCard};
use crate::ac::{AcSweep, FreqGrid};
use crate::engine::EngineCounters;
use crate::sim::{Simulator, TransientSpec};
use std::fmt::Write as _;

/// Hot-path solver counters of one analysis card, printed by
/// `cntfet-sim --stats`. Each card runs on a fresh session, so these
/// are exact per-card numbers, not session-cumulative ones. AC cards
/// fold their complex per-frequency factorisations into the same
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CardStats {
    /// Linear-system factorisations, full and partial alike.
    pub factorizations: u64,
    /// Factorisations that took a full path: pivot-searching symbolic
    /// factorisations plus full replays of a frozen plan.
    pub full_refactorizations: u64,
    /// Factorisations that replayed only the columns reached from
    /// changed matrix values.
    pub partial_refactorizations: u64,
    /// Columns actually recomputed across all factorisations.
    pub columns_recomputed: u64,
    /// Columns a full-replay run would have recomputed.
    pub columns_total: u64,
    /// Nonlinear device model evaluations that ran in full.
    pub device_evals: u64,
    /// Device evaluations skipped by the bypass layer.
    pub device_bypasses: u64,
}

impl CardStats {
    fn from_counters(c: EngineCounters) -> Self {
        CardStats {
            factorizations: c.factorizations,
            full_refactorizations: c.symbolic_factorizations + c.replay_refactorizations,
            partial_refactorizations: c.partial_refactorizations,
            columns_recomputed: c.columns_recomputed,
            columns_total: c.columns_total,
            device_evals: c.device_evals,
            device_bypasses: c.device_bypasses,
        }
    }

    /// One-line human-readable rendering (the `--stats` output body).
    pub fn summary(&self) -> String {
        format!(
            "factorizations {} (full {}, partial {}), columns recomputed {}/{}, \
             device evals {}, bypassed {}",
            self.factorizations,
            self.full_refactorizations,
            self.partial_refactorizations,
            self.columns_recomputed,
            self.columns_total,
            self.device_evals,
            self.device_bypasses,
        )
    }
}

/// The probe output of one analysis card: named columns over f64 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// The analysis card in canonical text form (e.g. `.dc VIN 0e0 8e-1 5e-2`).
    pub label: String,
    /// Column names: the independent variable first (`VIN`, `time`,
    /// `freq`; none for `.op`), then one (`.ac`: two) per probed node.
    pub columns: Vec<String>,
    /// One row per point, in column order.
    pub rows: Vec<Vec<f64>>,
    /// Per-card solver-cost counters (see [`CardStats`]).
    pub stats: CardStats,
}

impl AnalysisReport {
    /// Renders as CSV: a header line, then one line per row. Numbers
    /// are printed exactly (shortest text that reparses to the same
    /// f64), so CSV output round-trips bit-for-bit.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:e}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned, human-readable table (`%.6e` cells).
    pub fn to_table(&self) -> String {
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| format!("{v:.6e}")).collect())
            .collect();
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(j, name)| {
                cells
                    .iter()
                    .map(|row| row[j].len())
                    .chain([name.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        for (j, name) in self.columns.iter().enumerate() {
            if j > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{name:>width$}", width = widths[j]);
        }
        out.push('\n');
        for row in &cells {
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[j]);
            }
            out.push('\n');
        }
        out
    }
}

/// The result of running every analysis card of a deck.
#[derive(Debug, Clone, PartialEq)]
pub struct DeckRun {
    /// The deck's title line.
    pub title: String,
    /// One report per analysis card, in source order.
    pub reports: Vec<AnalysisReport>,
}

impl Deck {
    /// Runs every analysis card (see the [module docs](super) for the
    /// fresh-session-per-card semantics) and collects the probe
    /// reports.
    ///
    /// # Errors
    ///
    /// [`DeckError`] when a model fails to fit or an analysis fails to
    /// converge — run-time failures are anchored at the analysis
    /// card's source line.
    pub fn run(&self) -> Result<DeckRun, DeckError> {
        let models = self.build_models()?;
        let mut reports = Vec::with_capacity(self.analyses.len());
        for analysis in &self.analyses {
            let mut sim = Simulator::new(self.circuit_with(&models));
            let report = match analysis {
                AnalysisCard::Op(card) => self.run_op(&mut sim, card, analysis)?,
                AnalysisCard::Dc(card) => self.run_dc(&mut sim, card, analysis)?,
                AnalysisCard::Tran(card) => self.run_tran(&mut sim, card, analysis)?,
                AnalysisCard::Ac(card) => self.run_ac(&mut sim, card, analysis)?,
            };
            reports.push(report);
        }
        Ok(DeckRun {
            title: self.title.clone(),
            reports,
        })
    }

    fn run_op(
        &self,
        sim: &mut Simulator,
        card: &OpCard,
        analysis: &AnalysisCard,
    ) -> Result<AnalysisReport, DeckError> {
        let probes = self.probes(AnalysisKind::Op);
        let op = sim.op().map_err(|e| card.origin.circuit_error(&e))?;
        let mut row = Vec::with_capacity(probes.len());
        for node in &probes {
            row.push(
                op.voltage(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
        }
        Ok(AnalysisReport {
            label: analysis.to_string(),
            columns: probes.iter().map(|n| format!("v({n})")).collect(),
            rows: vec![row],
            stats: CardStats::from_counters(sim.counters()),
        })
    }

    fn run_dc(
        &self,
        sim: &mut Simulator,
        card: &DcCard,
        analysis: &AnalysisCard,
    ) -> Result<AnalysisReport, DeckError> {
        let probes = self.probes(AnalysisKind::Dc);
        let result = sim
            .dc_sweep(&card.spec())
            .map_err(|e| card.origin.circuit_error(&e))?;
        let mut columns = vec![card.source.clone()];
        columns.extend(probes.iter().map(|n| format!("v({n})")));
        let mut waves = Vec::with_capacity(probes.len());
        for node in &probes {
            waves.push(
                result
                    .voltage(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
        }
        let rows = result
            .values
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let mut row = Vec::with_capacity(columns.len());
                row.push(v);
                row.extend(waves.iter().map(|w| w[k]));
                row
            })
            .collect();
        Ok(AnalysisReport {
            label: analysis.to_string(),
            columns,
            rows,
            stats: CardStats::from_counters(sim.counters()),
        })
    }

    fn run_tran(
        &self,
        sim: &mut Simulator,
        card: &TranCard,
        analysis: &AnalysisCard,
    ) -> Result<AnalysisReport, DeckError> {
        let probes = self.probes(AnalysisKind::Tran);
        let mut spec = match card.dt {
            Some(dt) => TransientSpec::fixed(card.t_stop, dt),
            None => TransientSpec::adaptive(card.t_stop),
        };
        // `.ic` cards: start from the operating point with the listed
        // node voltages overridden.
        if self.ics.iter().any(|ic| !ic.entries.is_empty()) {
            let op = sim.op().map_err(|e| card.origin.circuit_error(&e))?;
            let mut x0 = op.x().to_vec();
            for ic in &self.ics {
                for (probe, volts) in &ic.entries {
                    // Node names were validated at parse time; ground
                    // entries (fixed at 0 V) are ignored.
                    if let Some(i) = sim
                        .circuit()
                        .find_node(&probe.node)
                        .and_then(|n| n.unknown_index())
                    {
                        x0[i] = *volts;
                    }
                }
            }
            spec = spec.with_initial(x0);
        }
        let run = sim
            .transient(&spec)
            .map_err(|e| card.origin.circuit_error(&e))?;
        let mut columns = vec!["time".to_string()];
        columns.extend(probes.iter().map(|n| format!("v({n})")));
        let mut waves = Vec::with_capacity(probes.len());
        for node in &probes {
            waves.push(
                run.voltage(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
        }
        let rows = run
            .time()
            .iter()
            .enumerate()
            .map(|(k, &t)| {
                let mut row = Vec::with_capacity(columns.len());
                row.push(t);
                row.extend(waves.iter().map(|w| w[k]));
                row
            })
            .collect();
        Ok(AnalysisReport {
            label: analysis.to_string(),
            columns,
            rows,
            stats: CardStats::from_counters(sim.counters()),
        })
    }

    fn run_ac(
        &self,
        sim: &mut Simulator,
        card: &AcCard,
        analysis: &AnalysisCard,
    ) -> Result<AnalysisReport, DeckError> {
        let probes = self.probes(AnalysisKind::Ac);
        let grid = match card.scale {
            AcScale::Dec => FreqGrid::Decade {
                f_start: card.f_start,
                f_stop: card.f_stop,
                points_per_decade: card.points,
            },
            AcScale::Lin => FreqGrid::Linear {
                f_start: card.f_start,
                f_stop: card.f_stop,
                points: card.points,
            },
        };
        let sweep = AcSweep {
            source: card.stimulus.clone(),
            grid,
        };
        let response = sim.ac(&sweep).map_err(|e| card.origin.circuit_error(&e))?;
        let mut columns = vec!["freq".to_string()];
        for node in &probes {
            columns.push(format!("vm({node})"));
            columns.push(format!("vp({node})"));
        }
        let mut mags = Vec::with_capacity(probes.len());
        let mut phases = Vec::with_capacity(probes.len());
        for node in &probes {
            mags.push(
                response
                    .magnitude(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
            phases.push(
                response
                    .phase_deg(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
        }
        let rows = response
            .frequencies()
            .iter()
            .enumerate()
            .map(|(k, &f)| {
                let mut row = Vec::with_capacity(columns.len());
                row.push(f);
                for (m, p) in mags.iter().zip(&phases) {
                    row.push(m[k]);
                    row.push(p[k]);
                }
                row
            })
            .collect();
        // Fold the AC sweep's complex factorisations into the card
        // stats on top of the engine's real-valued operating-point
        // work (sweeps reuse the frozen ordering partially per
        // frequency, same as the Newton path).
        let mut stats = CardStats::from_counters(sim.counters());
        let s = response.stats();
        stats.factorizations +=
            s.symbolic_factorizations + s.refactorizations + s.partial_refactorizations;
        stats.full_refactorizations += s.symbolic_factorizations + s.refactorizations;
        stats.partial_refactorizations += s.partial_refactorizations;
        stats.columns_recomputed += s.columns_recomputed;
        stats.columns_total += s.columns_total;
        Ok(AnalysisReport {
            label: analysis.to_string(),
            columns,
            rows,
            stats,
        })
    }
}
