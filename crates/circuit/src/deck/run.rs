//! Executing a deck's analysis cards and rendering the probe output.
//!
//! [`Deck::run`] walks the analysis cards in source order. Each card
//! gets a **fresh** circuit (the SPICE convention: every analysis sees
//! the pristine netlist — a `.dc` sweep overwrites its swept source's
//! waveform and must not leak that into a later `.tran`), while the
//! fitted CNFET models are built once and shared, and one Newton
//! engine carries its symbolic caches (sparsity pattern, pivot plan)
//! across the per-card sessions via
//! [`Simulator::resume`](crate::sim::Simulator::resume). Each analysis
//! lowers to the session's typed request — `.dc` →
//! [`SweepSpec`](crate::sim::SweepSpec), `.tran` → [`TransientSpec`],
//! `.ac` → [`AcSweep`] — and the probed waveforms come back as an
//! [`AnalysisReport`] that renders as an aligned table or CSV.
//!
//! [`Deck::run_with`] is the warm-serving entry point: a
//! [`RunContext`] can share a [`ModelCache`] and [`EnginePool`] across
//! runs (keyed by fitting parameters and
//! [`Deck::topology_hash`](super::Deck::topology_hash) respectively),
//! carry a cooperative cancellation flag, and
//! [`Deck::run_streaming`] additionally emits [`RunEvent`]s — headers,
//! row batches (transient rows arrive per accepted step), per-card
//! stats — as the run progresses, the seam the `cntfet-serve` job
//! streaming rides on. Every cache is semantically invisible: a warm
//! run's reports are bitwise-equal to a cold run's (see the
//! [`cache`](super::cache) module docs for why).

use super::cache::{CacheStats, EnginePool, ModelCache};
use super::error::DeckError;
use super::{AcCard, AcScale, AnalysisCard, AnalysisKind, DcCard, Deck, OpCard, TranCard};
use crate::ac::{AcSweep, FreqGrid};
use crate::engine::{EngineCounters, NewtonEngine};
use crate::sim::{Simulator, TransientSpec};
use std::fmt::Write as _;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Hot-path solver counters of one analysis card, printed by
/// `cntfet-sim --stats`. Each card runs on a fresh session, so these
/// are exact per-card numbers, not session-cumulative ones. AC cards
/// fold their complex per-frequency factorisations into the same
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CardStats {
    /// Linear-system factorisations, full and partial alike.
    pub factorizations: u64,
    /// Factorisations that took a full path: pivot-searching symbolic
    /// factorisations plus full replays of a frozen plan.
    pub full_refactorizations: u64,
    /// Factorisations that replayed only the columns reached from
    /// changed matrix values.
    pub partial_refactorizations: u64,
    /// Columns actually recomputed across all factorisations.
    pub columns_recomputed: u64,
    /// Columns a full-replay run would have recomputed.
    pub columns_total: u64,
    /// Nonlinear device model evaluations that ran in full.
    pub device_evals: u64,
    /// Device evaluations skipped by the bypass layer.
    pub device_bypasses: u64,
    /// Newton steps scaled down by per-device voltage limiting.
    pub limiter_clamps: u64,
    /// Armijo line-search backtracks (step halvings actually taken).
    pub armijo_backtracks: u64,
    /// Pseudo-transient continuation stages that converged.
    pub ptc_steps: u64,
}

impl CardStats {
    fn from_counters(c: EngineCounters) -> Self {
        CardStats {
            factorizations: c.factorizations,
            full_refactorizations: c.symbolic_factorizations + c.replay_refactorizations,
            partial_refactorizations: c.partial_refactorizations,
            columns_recomputed: c.columns_recomputed,
            columns_total: c.columns_total,
            device_evals: c.device_evals,
            device_bypasses: c.device_bypasses,
            limiter_clamps: c.limiter_clamps,
            armijo_backtracks: c.armijo_backtracks,
            ptc_steps: c.ptc_steps,
        }
    }

    /// One-line human-readable rendering (the `--stats` output body).
    pub fn summary(&self) -> String {
        format!(
            "factorizations {} (full {}, partial {}), columns recomputed {}/{}, \
             device evals {}, bypassed {}, limiter clamps {}, armijo backtracks {}, \
             ptc stages {}",
            self.factorizations,
            self.full_refactorizations,
            self.partial_refactorizations,
            self.columns_recomputed,
            self.columns_total,
            self.device_evals,
            self.device_bypasses,
            self.limiter_clamps,
            self.armijo_backtracks,
            self.ptc_steps,
        )
    }
}

/// The probe output of one analysis card: named columns over f64 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// The analysis card in canonical text form (e.g. `.dc VIN 0e0 8e-1 5e-2`).
    pub label: String,
    /// Column names: the independent variable first (`VIN`, `time`,
    /// `freq`; none for `.op`), then one (`.ac`: two) per probed node.
    pub columns: Vec<String>,
    /// One row per point, in column order.
    pub rows: Vec<Vec<f64>>,
    /// Per-card solver-cost counters (see [`CardStats`]).
    pub stats: CardStats,
}

impl AnalysisReport {
    /// Renders as CSV: a header line, then one line per row. Numbers
    /// are printed exactly (shortest text that reparses to the same
    /// f64), so CSV output round-trips bit-for-bit.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:e}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned, human-readable table (`%.6e` cells).
    pub fn to_table(&self) -> String {
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| format!("{v:.6e}")).collect())
            .collect();
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(j, name)| {
                cells
                    .iter()
                    .map(|row| row[j].len())
                    .chain([name.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        for (j, name) in self.columns.iter().enumerate() {
            if j > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{name:>width$}", width = widths[j]);
        }
        out.push('\n');
        for row in &cells {
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[j]);
            }
            out.push('\n');
        }
        out
    }
}

/// The result of running every analysis card of a deck.
#[derive(Debug, Clone, PartialEq)]
pub struct DeckRun {
    /// The deck's title line.
    pub title: String,
    /// One report per analysis card, in source order.
    pub reports: Vec<AnalysisReport>,
    /// This run's cache traffic (zeroes for a cold [`Deck::run`]).
    pub caches: RunCaches,
}

/// Per-run cache hit/miss counts, carried on [`DeckRun`]. Like
/// [`ParamUses`](super::ParamUses) this is diagnostic metadata: it
/// compares equal to every other value, so cache luck never breaks
/// result equality.
#[derive(Debug, Clone, Copy, Default, Eq)]
pub struct RunCaches {
    /// Fitted-model cache traffic (one lookup per `.model` card).
    pub models: CacheStats,
    /// Warm-engine pool traffic (one lookup per run).
    pub engines: CacheStats,
}

impl PartialEq for RunCaches {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// Shared state a [`Deck::run_with`] call may draw on. The default
/// context (used by [`Deck::run`]) shares nothing: every run fits its
/// models and builds its symbolic factorization cold.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunContext<'a> {
    /// Fitted-model cache shared across runs, keyed by fitting
    /// parameters. `None` fits cold.
    pub models: Option<&'a ModelCache>,
    /// Warm-engine pool shared across runs, keyed by
    /// [`Deck::topology_hash`](super::Deck::topology_hash). `None`
    /// builds the symbolic factorization cold.
    pub engines: Option<&'a EnginePool>,
}

/// A cooperative cancellation flag for [`Deck::run_streaming`]:
/// raising it makes the run return a [`DeckError`] wrapping
/// [`CircuitError::Cancelled`](crate::error::CircuitError::Cancelled)
/// within one Newton iteration / accepted transient step / AC
/// frequency point.
pub type CancelFlag = Arc<AtomicBool>;

/// One progress event of a [`Deck::run_streaming`] call, emitted in
/// order: for every card `ReportStart`, then one or more `Rows`
/// batches (`.tran` cards stream one row per accepted step; other
/// cards deliver all rows at once), then `ReportEnd`. Events carry the
/// card's index into [`Deck::analyses`] so interleaving consumers
/// don't need positional state.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// A card started: its label and column names.
    ReportStart(ReportHeader),
    /// A batch of result rows for card `index`, in column order.
    Rows {
        /// Index of the card into [`Deck::analyses`].
        index: usize,
        /// The new rows, appended to any previously delivered ones.
        rows: Vec<Vec<f64>>,
    },
    /// Card `index` finished; its rows are complete.
    ReportEnd {
        /// Index of the card into [`Deck::analyses`].
        index: usize,
        /// The card's solver-cost counters.
        stats: CardStats,
    },
}

/// The header of one streamed report — see [`RunEvent::ReportStart`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportHeader {
    /// Index of the card into [`Deck::analyses`].
    pub index: usize,
    /// The analysis card in canonical text form.
    pub label: String,
    /// Column names (see [`AnalysisReport::columns`]).
    pub columns: Vec<String>,
}

impl Deck {
    /// Runs every analysis card (see the [module docs](super) for the
    /// per-card semantics) and collects the probe reports.
    ///
    /// # Errors
    ///
    /// [`DeckError`] when a model fails to fit or an analysis fails to
    /// converge — run-time failures are anchored at the analysis
    /// card's source line.
    pub fn run(&self) -> Result<DeckRun, DeckError> {
        self.run_with(&RunContext::default())
    }

    /// [`Deck::run`] drawing on shared caches — see [`RunContext`].
    /// Results are bitwise-equal to a cold [`Deck::run`] regardless of
    /// cache hits.
    ///
    /// # Errors
    ///
    /// As [`Deck::run`].
    pub fn run_with(&self, ctx: &RunContext<'_>) -> Result<DeckRun, DeckError> {
        self.run_streaming(ctx, None, &mut |_| {})
    }

    /// [`Deck::run_with`] with cooperative cancellation and progress
    /// streaming: `emit` receives [`RunEvent`]s as cards start, rows
    /// land (transient rows one accepted step at a time) and cards
    /// finish. The returned [`DeckRun`] carries the same rows the
    /// events delivered.
    ///
    /// # Errors
    ///
    /// As [`Deck::run`]; additionally, raising `cancel` aborts the run
    /// with a [`DeckError`] wrapping
    /// [`CircuitError::Cancelled`](crate::error::CircuitError::Cancelled).
    pub fn run_streaming(
        &self,
        ctx: &RunContext<'_>,
        cancel: Option<&CancelFlag>,
        emit: &mut dyn FnMut(RunEvent),
    ) -> Result<DeckRun, DeckError> {
        let local_models;
        let model_cache = match ctx.models {
            Some(shared) => shared,
            None => {
                local_models = ModelCache::new();
                &local_models
            }
        };
        let model_base = model_cache.stats();
        let engine_base = ctx.engines.map(|p| p.stats()).unwrap_or_default();
        let models = self.build_models_with(model_cache)?;
        let newton = self.newton_options();
        let topology = self.topology_hash();
        // One engine serves the whole run: taken warm from the pool
        // when a structurally identical deck ran before, then carried
        // from card to card. Every card still sees a pristine circuit,
        // so the engine's frozen elimination plan replays the exact
        // arithmetic a cold pivot-searching factorization performs —
        // reports stay bitwise-equal to a cold run.
        let mut warm: Option<NewtonEngine> = ctx.engines.and_then(|pool| pool.take(topology));
        let mut reports = Vec::with_capacity(self.analyses.len());
        for (index, analysis) in self.analyses.iter().enumerate() {
            let circuit = self.circuit_with(&models);
            let mut sim = match warm.take() {
                Some(engine) => Simulator::resume(circuit, engine, newton),
                None => Simulator::with_options(circuit, newton),
            };
            if let Some(flag) = cancel {
                sim.set_cancel(Some(Arc::clone(flag)));
            }
            // Counters are engine-lifetime cumulative; baseline them so
            // per-card stats stay exact with a shared engine.
            let base = sim.counters();
            let report = match analysis {
                AnalysisCard::Op(card) => self.run_op(&mut sim, card, analysis, index, base, emit),
                AnalysisCard::Dc(card) => self.run_dc(&mut sim, card, analysis, index, base, emit),
                AnalysisCard::Tran(card) => {
                    self.run_tran(&mut sim, card, analysis, index, base, emit)
                }
                AnalysisCard::Ac(card) => self.run_ac(&mut sim, card, analysis, index, base, emit),
            }?;
            emit(RunEvent::ReportEnd {
                index,
                stats: report.stats,
            });
            warm = Some(sim.into_engine());
            reports.push(report);
        }
        if let (Some(pool), Some(engine)) = (ctx.engines, warm) {
            pool.put(topology, engine);
        }
        Ok(DeckRun {
            title: self.title.clone(),
            reports,
            caches: RunCaches {
                models: model_cache.stats().delta_since(&model_base),
                engines: ctx
                    .engines
                    .map(|p| p.stats().delta_since(&engine_base))
                    .unwrap_or_default(),
            },
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_op(
        &self,
        sim: &mut Simulator,
        card: &OpCard,
        analysis: &AnalysisCard,
        index: usize,
        base: EngineCounters,
        emit: &mut dyn FnMut(RunEvent),
    ) -> Result<AnalysisReport, DeckError> {
        let probes = self.probes(AnalysisKind::Op);
        let columns: Vec<String> = probes.iter().map(|n| format!("v({n})")).collect();
        emit(RunEvent::ReportStart(ReportHeader {
            index,
            label: analysis.to_string(),
            columns: columns.clone(),
        }));
        let op = sim.op().map_err(|e| card.origin.circuit_error(&e))?;
        let mut row = Vec::with_capacity(probes.len());
        for node in &probes {
            row.push(
                op.voltage(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
        }
        let rows = vec![row];
        emit(RunEvent::Rows {
            index,
            rows: rows.clone(),
        });
        Ok(AnalysisReport {
            label: analysis.to_string(),
            columns,
            rows,
            stats: CardStats::from_counters(sim.counters().delta_since(&base)),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_dc(
        &self,
        sim: &mut Simulator,
        card: &DcCard,
        analysis: &AnalysisCard,
        index: usize,
        base: EngineCounters,
        emit: &mut dyn FnMut(RunEvent),
    ) -> Result<AnalysisReport, DeckError> {
        let probes = self.probes(AnalysisKind::Dc);
        let mut columns = vec![card.source.clone()];
        columns.extend(probes.iter().map(|n| format!("v({n})")));
        emit(RunEvent::ReportStart(ReportHeader {
            index,
            label: analysis.to_string(),
            columns: columns.clone(),
        }));
        let result = sim
            .dc_sweep(&card.spec())
            .map_err(|e| card.origin.circuit_error(&e))?;
        let mut waves = Vec::with_capacity(probes.len());
        for node in &probes {
            waves.push(
                result
                    .voltage(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
        }
        let rows: Vec<Vec<f64>> = result
            .values
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let mut row = Vec::with_capacity(columns.len());
                row.push(v);
                row.extend(waves.iter().map(|w| w[k]));
                row
            })
            .collect();
        emit(RunEvent::Rows {
            index,
            rows: rows.clone(),
        });
        Ok(AnalysisReport {
            label: analysis.to_string(),
            columns,
            rows,
            stats: CardStats::from_counters(sim.counters().delta_since(&base)),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_tran(
        &self,
        sim: &mut Simulator,
        card: &TranCard,
        analysis: &AnalysisCard,
        index: usize,
        base: EngineCounters,
        emit: &mut dyn FnMut(RunEvent),
    ) -> Result<AnalysisReport, DeckError> {
        let probes = self.probes(AnalysisKind::Tran);
        let mut spec = match card.dt {
            Some(dt) => TransientSpec::fixed(card.t_stop, dt),
            None => TransientSpec::adaptive(card.t_stop),
        };
        spec = spec.with_options(self.transient_options());
        // `.ic` cards: start from the operating point with the listed
        // node voltages overridden.
        if self.ics.iter().any(|ic| !ic.entries.is_empty()) {
            let op = sim.op().map_err(|e| card.origin.circuit_error(&e))?;
            let mut x0 = op.x().to_vec();
            for ic in &self.ics {
                for (probe, volts) in &ic.entries {
                    // Node names were validated at parse time; ground
                    // entries (fixed at 0 V) are ignored.
                    if let Some(i) = sim
                        .circuit()
                        .find_node(&probe.node)
                        .and_then(|n| n.unknown_index())
                    {
                        x0[i] = *volts;
                    }
                }
            }
            spec = spec.with_initial(x0);
        }
        let mut columns = vec!["time".to_string()];
        columns.extend(probes.iter().map(|n| format!("v({n})")));
        emit(RunEvent::ReportStart(ReportHeader {
            index,
            label: analysis.to_string(),
            columns: columns.clone(),
        }));
        // Stream one row per accepted step straight from the solver's
        // observer seam. The state slices the observer sees are the
        // exact values the final report reads back through
        // `run.voltage`, so streamed and collected rows are bitwise
        // identical.
        let unknown_of: Vec<Option<usize>> = probes
            .iter()
            .map(|node| {
                sim.circuit()
                    .find_node(node)
                    .and_then(|n| n.unknown_index())
            })
            .collect();
        let run = sim
            .transient_observed(&spec, |t, x| {
                let mut row = Vec::with_capacity(unknown_of.len() + 1);
                row.push(t);
                row.extend(unknown_of.iter().map(|i| i.map_or(0.0, |i| x[i])));
                emit(RunEvent::Rows {
                    index,
                    rows: vec![row],
                });
            })
            .map_err(|e| card.origin.circuit_error(&e))?;
        let mut waves = Vec::with_capacity(probes.len());
        for node in &probes {
            waves.push(
                run.voltage(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
        }
        let rows = run
            .time()
            .iter()
            .enumerate()
            .map(|(k, &t)| {
                let mut row = Vec::with_capacity(columns.len());
                row.push(t);
                row.extend(waves.iter().map(|w| w[k]));
                row
            })
            .collect();
        Ok(AnalysisReport {
            label: analysis.to_string(),
            columns,
            rows,
            stats: CardStats::from_counters(sim.counters().delta_since(&base)),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_ac(
        &self,
        sim: &mut Simulator,
        card: &AcCard,
        analysis: &AnalysisCard,
        index: usize,
        base: EngineCounters,
        emit: &mut dyn FnMut(RunEvent),
    ) -> Result<AnalysisReport, DeckError> {
        let probes = self.probes(AnalysisKind::Ac);
        let grid = match card.scale {
            AcScale::Dec => FreqGrid::Decade {
                f_start: card.f_start,
                f_stop: card.f_stop,
                points_per_decade: card.points,
            },
            AcScale::Lin => FreqGrid::Linear {
                f_start: card.f_start,
                f_stop: card.f_stop,
                points: card.points,
            },
        };
        let sweep = AcSweep {
            source: card.stimulus.clone(),
            grid,
        };
        let mut columns = vec!["freq".to_string()];
        for node in &probes {
            columns.push(format!("vm({node})"));
            columns.push(format!("vp({node})"));
        }
        emit(RunEvent::ReportStart(ReportHeader {
            index,
            label: analysis.to_string(),
            columns: columns.clone(),
        }));
        let response = sim.ac(&sweep).map_err(|e| card.origin.circuit_error(&e))?;
        let mut mags = Vec::with_capacity(probes.len());
        let mut phases = Vec::with_capacity(probes.len());
        for node in &probes {
            mags.push(
                response
                    .magnitude(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
            phases.push(
                response
                    .phase_deg(node)
                    .map_err(|e| card.origin.circuit_error(&e))?,
            );
        }
        let rows: Vec<Vec<f64>> = response
            .frequencies()
            .iter()
            .enumerate()
            .map(|(k, &f)| {
                let mut row = Vec::with_capacity(columns.len());
                row.push(f);
                for (m, p) in mags.iter().zip(&phases) {
                    row.push(m[k]);
                    row.push(p[k]);
                }
                row
            })
            .collect();
        emit(RunEvent::Rows {
            index,
            rows: rows.clone(),
        });
        // Fold the AC sweep's complex factorisations into the card
        // stats on top of the engine's real-valued operating-point
        // work (sweeps reuse the frozen ordering partially per
        // frequency, same as the Newton path).
        let mut stats = CardStats::from_counters(sim.counters().delta_since(&base));
        let s = response.stats();
        stats.factorizations +=
            s.symbolic_factorizations + s.refactorizations + s.partial_refactorizations;
        stats.full_refactorizations += s.symbolic_factorizations + s.refactorizations;
        stats.partial_refactorizations += s.partial_refactorizations;
        stats.columns_recomputed += s.columns_recomputed;
        stats.columns_total += s.columns_total;
        Ok(AnalysisReport {
            label: analysis.to_string(),
            columns,
            rows,
            stats,
        })
    }
}
