//! Content-hash caches for warm deck serving: fitted CNFET models
//! keyed by fitting parameters ([`ModelCache`]) and warm Newton
//! engines — symbolic factorizations, pivot plans, solver buffers —
//! keyed by deck topology ([`EnginePool`]).
//!
//! Both caches are `Sync`: a server shares one of each across its
//! worker threads. Both are *semantically invisible* — a run served
//! from a warm cache produces output bitwise-equal to a cold run:
//!
//! * Model fitting is a pure function of `(ef, temp)`, so a cache hit
//!   returns the identical `Arc<CompactCntFet>` a cold fit would have
//!   produced (asserted by `model_cache_hit_is_bitwise_invisible`).
//! * A warm engine replays its frozen elimination plan, and the replay
//!   performs the same arithmetic sequence a fresh pivot-searching
//!   factorization performs on equal values (see
//!   [`NewtonEngine::rebind`](crate::engine::NewtonEngine::rebind)).
//!   The cache-correctness tests in `tests/deck_cache.rs` assert the
//!   resulting CSVs are bitwise-equal to cold runs.

use super::error::DeckError;
use super::ModelCard;
use crate::engine::NewtonEngine;
use cntfet_core::CompactCntFet;
use cntfet_physics::units::{ElectronVolts, Kelvin};
use cntfet_reference::DeviceParams;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters of a cache, taken with [`ModelCache::stats`] /
/// [`EnginePool::stats`]. Subtract snapshots
/// ([`CacheStats::delta_since`]) to scope counts to one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to do the work cold.
    pub misses: u64,
}

impl CacheStats {
    /// The counts accumulated since `baseline` (saturating).
    pub fn delta_since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
        }
    }
}

/// Key of a fitted model: the bit patterns of the two fitting inputs
/// (`ef`, `temp`). Polarity and default length are element-level
/// attributes applied after fitting, so they don't key the cache.
type ModelKey = (u64, u64);

/// A thread-safe cache of fitted CNFET models keyed by fitting
/// parameters. Fitting (the piecewise charge fit behind every `.model`
/// card) is the most expensive one-off step of a deck run; decks served
/// repeatedly — or many decks sharing the paper's standard models — fit
/// each distinct `(ef, temp)` once per process instead of once per run.
#[derive(Debug, Default)]
pub struct ModelCache {
    map: Mutex<HashMap<ModelKey, Arc<CompactCntFet>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        ModelCache::default()
    }

    /// Fits the model of a `.model` card, reusing a previous fit with
    /// the same `(ef, temp)` when one is cached.
    ///
    /// # Errors
    ///
    /// [`DeckError`] (anchored at the card) when the fit fails; failed
    /// fits are not cached, so a retry re-runs the fit.
    pub(crate) fn fit(&self, card: &ModelCard) -> Result<Arc<CompactCntFet>, DeckError> {
        let key = (card.fermi_level_ev.to_bits(), card.temperature_k.to_bits());
        if let Some(model) = self.map.lock().expect("model cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(model));
        }
        // Fit outside the lock: fits are slow and independent, and a
        // racing duplicate fit is pure-function idempotent.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let params = DeviceParams::paper_default()
            .with_fermi_level(ElectronVolts(card.fermi_level_ev))
            .with_temperature(Kelvin(card.temperature_k));
        let model = CompactCntFet::model2(params).map_err(|e| {
            card.origin
                .error(format!("model '{}' failed to fit: {e}", card.name))
        })?;
        let model = Arc::new(model);
        self.map
            .lock()
            .expect("model cache poisoned")
            .entry(key)
            .or_insert_with(|| Arc::clone(&model));
        Ok(model)
    }

    /// Distinct fitted models currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("model cache poisoned").len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// How many warm engines one topology shelf retains. Beyond this the
/// oldest returned engine is dropped — a pool serving `P` concurrent
/// workers never needs more than `P` engines per topology, and
/// unbounded retention would pin every pattern a busy server ever saw.
const SHELF_DEPTH: usize = 16;

/// A thread-safe pool of warm [`NewtonEngine`]s keyed by
/// [`Deck::topology_hash`](super::Deck::topology_hash). Taking an
/// engine for a deck with a previously-seen topology skips the
/// symbolic factorization (pattern build, structural-rank check,
/// pivot-order search) — the dominant per-run cost for small decks —
/// leaving only the value-dependent numeric replay.
#[derive(Debug, Default)]
pub struct EnginePool {
    shelves: Mutex<HashMap<u64, Vec<NewtonEngine>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EnginePool {
    /// An empty pool.
    pub fn new() -> Self {
        EnginePool::default()
    }

    /// Takes a warm engine for the given topology, if one is shelved.
    /// The caller owns it for the duration of a run and should
    /// [`put`](EnginePool::put) it back after.
    pub fn take(&self, topology: u64) -> Option<NewtonEngine> {
        let taken = self
            .shelves
            .lock()
            .expect("engine pool poisoned")
            .get_mut(&topology)
            .and_then(Vec::pop);
        match taken {
            Some(engine) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(engine)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Shelves an engine for the given topology. Engines beyond
    /// the per-topology depth limit are dropped.
    pub fn put(&self, topology: u64, engine: NewtonEngine) {
        let mut shelves = self.shelves.lock().expect("engine pool poisoned");
        let shelf = shelves.entry(topology).or_default();
        if shelf.len() < SHELF_DEPTH {
            shelf.push(engine);
        }
    }

    /// Warm engines currently shelved, over all topologies.
    pub fn len(&self) -> usize {
        self.shelves
            .lock()
            .expect("engine pool poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// `true` when no engine is shelved.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss counters (one count per
    /// [`take`](EnginePool::take)).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::Deck;

    fn model_card(ef: f64, temp: f64) -> ModelCard {
        ModelCard {
            name: "nfet".into(),
            polarity: crate::cnfet::Polarity::N,
            fermi_level_ev: ef,
            temperature_k: temp,
            default_length_m: 100e-9,
            origin: Default::default(),
        }
    }

    #[test]
    fn model_cache_hits_on_equal_params_only() {
        let cache = ModelCache::new();
        let a = cache.fit(&model_card(-0.32, 300.0)).unwrap();
        let b = cache.fit(&model_card(-0.32, 300.0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "equal params must share one fit");
        let c = cache.fit(&model_card(-0.30, 300.0)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different ef must refit");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn engine_pool_counts_hits_and_misses() {
        let pool = EnginePool::new();
        assert!(pool.take(42).is_none());
        pool.put(42, NewtonEngine::new(Default::default()));
        assert!(pool.take(42).is_some());
        assert!(pool.take(42).is_none(), "taking removes the engine");
        assert_eq!(pool.stats(), CacheStats { hits: 1, misses: 2 });
        assert!(pool.is_empty());
    }

    #[test]
    fn shelf_depth_is_bounded() {
        let pool = EnginePool::new();
        for _ in 0..(SHELF_DEPTH + 4) {
            pool.put(7, NewtonEngine::new(Default::default()));
        }
        assert_eq!(pool.len(), SHELF_DEPTH);
    }

    #[test]
    fn topology_hash_ignores_values_and_names_but_not_wiring() {
        let base =
            Deck::parse("divider\nV1 in 0 DC 2\nR1 in out 1k\nR2 out 0 1k\n.op\n.end").unwrap();
        let values =
            Deck::parse("divider\nV1 in 0 DC 5\nR1 in out 2k\nR2 out 0 7k\n.op\n.end").unwrap();
        let renamed =
            Deck::parse("divider\nV9 top 0 DC 2\nRa top mid 1k\nRb mid 0 1k\n.op\n.end").unwrap();
        let rewired =
            Deck::parse("divider\nV1 in 0 DC 2\nR1 in out 1k\nR2 in 0 1k\n.op\n.end").unwrap();
        let grown =
            Deck::parse("divider\nV1 in 0 DC 2\nR1 in out 1k\nR2 out 0 1k\nR3 out 0 1k\n.op\n.end")
                .unwrap();
        assert_eq!(base.topology_hash(), values.topology_hash());
        assert_eq!(base.topology_hash(), renamed.topology_hash());
        assert_ne!(base.topology_hash(), rewired.topology_hash());
        assert_ne!(base.topology_hash(), grown.topology_hash());
    }
}
