//! SPICE deck front-end: parse external netlists into [`Simulator`]
//! sessions.
//!
//! Everything else in this crate builds circuits programmatically
//! against [`Circuit`](crate::netlist::Circuit); this module is the
//! text front door. A *deck* is a SPICE-like netlist — a title line,
//! element cards (`R`/`C`/`V`/`I` and CNFET `M` cards), `.model` and
//! `.param` definitions, analysis cards (`.op`, `.dc`, `.tran`, `.ac`)
//! and `.print` probe selections — that parses into a [`Deck`], lowers
//! onto the existing node/element layout, and runs each analysis card
//! through the typed [`Simulator`] API ([`SweepSpec`],
//! [`TransientSpec`](crate::sim::TransientSpec),
//! [`AcSweep`](crate::ac::AcSweep)).
//!
//! The accepted dialect is documented card-by-card in
//! `docs/DECK_FORMAT.md` at the repository root; the `cntfet-sim`
//! binary wraps [`Deck::run`] as a command-line tool.
//!
//! # Pipeline
//!
//! ```text
//! text ──lex──▶ logical lines ──parse──▶ Deck (cards, validated names)
//!      ──build──▶ Circuit + fitted CNFET models
//!      ──run──▶ one fresh Simulator session per analysis card ──▶ DeckRun
//! ```
//!
//! Parsing validates everything that does not require a solver: card
//! syntax, SPICE numbers (`1k`, `2.5u`, `10meg`), `.param` arithmetic,
//! duplicate element/model/parameter names, `.dc` sweep sources,
//! `.print` probe nodes and the `.ac` stimulus flag. Failures carry
//! line/column spans and render compiler-style diagnostics with
//! "did you mean" suggestions (see [`DeckError`]).
//!
//! Each analysis card runs on a **fresh circuit**, so an earlier card
//! can never perturb a later one (a `.dc` sweep overwrites its swept
//! source's waveform, for example) — the SPICE convention of analysing
//! the pristine netlist. Fitted CNFET models are shared across those
//! rebuilds, and one Newton engine carries its symbolic caches from
//! card to card (and, through [`Deck::run_with`], from run to run via
//! a [`ModelCache`] / [`EnginePool`]) without changing any result bit.
//!
//! # Example
//!
//! ```
//! use cntfet_circuit::deck::Deck;
//!
//! let deck = Deck::parse(
//!     "resistive divider
//!      V1 in 0 DC 2
//!      R1 in out 1k
//!      R2 out 0 1k
//!      .op
//!      .print op v(out)",
//! )?;
//! let run = deck.run()?;
//! assert_eq!(run.reports[0].columns, ["v(out)"]);
//! assert!((run.reports[0].rows[0][0] - 1.0).abs() < 1e-9);
//! # Ok::<(), cntfet_circuit::deck::DeckError>(())
//! ```
//!
//! # Round-tripping
//!
//! [`Deck::to_text`] serialises a deck back to card text that reparses
//! to an equal `Deck` (spans are diagnostic metadata and never
//! participate in equality), and the two decks lower to circuits whose
//! analysis results are bitwise identical — asserted by the round-trip
//! tests in `tests/deck_parser.rs`.

mod build;
mod cache;
mod error;
mod expr;
pub mod generate;
mod lex;
mod lint;
mod parse;
mod run;

pub use cache::{CacheStats, EnginePool, ModelCache};
pub use error::{suggest, DeckError, SourceRef, Span};
pub use lex::parse_number;
pub use lint::{Finding, LintCode, LintOptions, LintReport, Severity};
pub use run::{AnalysisReport, CardStats, DeckRun, ReportHeader, RunCaches, RunContext, RunEvent};

use crate::cnfet::Polarity;
use crate::element::Waveform;
use crate::sim::Simulator;
use crate::sim::SweepSpec;
use std::fmt;

/// A parsed SPICE deck: title, element cards, model/parameter
/// definitions, analysis cards and probe selections, in source order.
///
/// Obtain one with [`Deck::parse`]; lower it with [`Deck::circuit`] /
/// [`Deck::simulator`]; execute its analysis cards with [`Deck::run`].
/// See the [module docs](self) for the dialect and an example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Deck {
    /// The title line (always the first line of the deck).
    pub title: String,
    /// Element cards in source order — this order fixes the node and
    /// unknown-vector layout of the lowered circuit.
    pub elements: Vec<ElementCard>,
    /// `.model` cards.
    pub models: Vec<ModelCard>,
    /// `.param` cards with their evaluated values.
    pub params: Vec<ParamCard>,
    /// `.option` cards tuning the solver (see [`OptionEntry`]).
    pub options: Vec<OptionCard>,
    /// Analysis cards in source order.
    pub analyses: Vec<AnalysisCard>,
    /// `.print` probe selections.
    pub prints: Vec<PrintCard>,
    /// `.ic` transient initial-condition overrides.
    pub ics: Vec<IcCard>,
    /// `.subckt … .ends` definitions, in source order.
    pub subckts: Vec<SubcktDef>,
    /// Top-level `X` instance cards, in source order. Each records the
    /// contiguous range of [`Deck::elements`] its (recursive)
    /// flattening produced, so the serialiser can re-emit the `X` card
    /// in place of those synthesized elements.
    pub instances: Vec<InstanceCard>,
    /// Which `.param` names the deck's cards actually referenced (bare
    /// or inside `{…}` / `.param` expressions) — raw material for the
    /// unused-parameter lint. Diagnostic metadata: like [`Span`], it
    /// never participates in deck equality (serialising inlines every
    /// parameter value, so a round-tripped deck has no uses left).
    pub param_uses: ParamUses,
    /// Which `.subckt` names the deck instantiated (directly or through
    /// nested instances) — raw material for the unused-subcircuit lint.
    /// Diagnostic metadata, like [`Deck::param_uses`].
    pub subckt_uses: ParamUses,
}

/// The set of `.param` names a parse resolved — see
/// [`Deck::param_uses`]. Compares equal to every other value so that
/// diagnostic metadata never breaks deck equality or round-tripping.
#[derive(Debug, Clone, Default, Eq)]
pub struct ParamUses(pub std::collections::BTreeSet<String>);

impl ParamUses {
    /// `true` when some card referenced the parameter `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.0.contains(name)
    }
}

impl PartialEq for ParamUses {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// One element card.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementCard {
    /// An `R` card.
    Resistor(ResistorCard),
    /// A `C` card.
    Capacitor(CapacitorCard),
    /// A `V` card.
    Voltage(VoltageCard),
    /// An `I` card.
    Current(CurrentCard),
    /// An `M` (CNFET) card.
    Cnfet(CnfetCard),
}

impl ElementCard {
    /// The element's name (with its leading type letter, e.g. `R1`).
    pub fn name(&self) -> &str {
        match self {
            ElementCard::Resistor(c) => &c.name,
            ElementCard::Capacitor(c) => &c.name,
            ElementCard::Voltage(c) => &c.name,
            ElementCard::Current(c) => &c.name,
            ElementCard::Cnfet(c) => &c.name,
        }
    }

    /// Where the card was parsed from.
    pub fn origin(&self) -> &SourceRef {
        match self {
            ElementCard::Resistor(c) => &c.origin,
            ElementCard::Capacitor(c) => &c.origin,
            ElementCard::Voltage(c) => &c.origin,
            ElementCard::Current(c) => &c.origin,
            ElementCard::Cnfet(c) => &c.origin,
        }
    }

    /// The node names this card connects to, in card order.
    pub fn nodes(&self) -> Vec<&str> {
        match self {
            ElementCard::Resistor(c) => vec![&c.plus, &c.minus],
            ElementCard::Capacitor(c) => vec![&c.plus, &c.minus],
            ElementCard::Voltage(c) => vec![&c.plus, &c.minus],
            ElementCard::Current(c) => vec![&c.plus, &c.minus],
            ElementCard::Cnfet(c) => vec![&c.drain, &c.gate, &c.source],
        }
    }
}

/// `R<name> <n+> <n-> <ohms>` — a linear resistor.
#[derive(Debug, Clone, PartialEq)]
pub struct ResistorCard {
    /// Element name (`R…`).
    pub name: String,
    /// Positive node.
    pub plus: String,
    /// Negative node.
    pub minus: String,
    /// Resistance, ohms (validated positive at parse time).
    pub ohms: f64,
    /// Card location.
    pub origin: SourceRef,
}

/// `C<name> <n+> <n-> <farads>` — a linear capacitor.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitorCard {
    /// Element name (`C…`).
    pub name: String,
    /// Positive node.
    pub plus: String,
    /// Negative node.
    pub minus: String,
    /// Capacitance, farads (validated positive at parse time).
    pub farads: f64,
    /// Card location.
    pub origin: SourceRef,
}

/// `V<name> <n+> <n-> <waveform> [AC [1]]` — an ideal voltage source.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageCard {
    /// Element name (`V…`).
    pub name: String,
    /// Positive node.
    pub plus: String,
    /// Negative node.
    pub minus: String,
    /// The drive waveform (`DC`, `PULSE(…)` or `SIN(…)`).
    pub waveform: Waveform,
    /// `true` when the card carries the `AC` flag — this source is the
    /// unit-phasor stimulus of every `.ac` analysis in the deck.
    pub ac_stimulus: bool,
    /// Card location.
    pub origin: SourceRef,
}

/// `I<name> <n+> <n-> <amps> [AC [1]]` — an ideal DC current source
/// pushing conventional current from `n+` through itself into `n-`.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentCard {
    /// Element name (`I…`).
    pub name: String,
    /// The node current is drawn from.
    pub plus: String,
    /// The node current is delivered into.
    pub minus: String,
    /// Current, amperes.
    pub amps: f64,
    /// `true` when the card carries the `AC` flag.
    pub ac_stimulus: bool,
    /// Card location.
    pub origin: SourceRef,
}

/// `M<name> <drain> <gate> <source> <model> [L=<metres>]` — a ballistic
/// CNFET instance referencing a `.model` card.
#[derive(Debug, Clone, PartialEq)]
pub struct CnfetCard {
    /// Element name (`M…`).
    pub name: String,
    /// Drain node.
    pub drain: String,
    /// Gate node.
    pub gate: String,
    /// Source node.
    pub source: String,
    /// Name of the `.model` card (validated to exist at parse time).
    pub model: String,
    /// Location of the model-name token (for unknown-model errors).
    pub model_origin: SourceRef,
    /// Channel length override, metres; `None` takes the model's `l`.
    pub length: Option<f64>,
    /// Card location.
    pub origin: SourceRef,
}

/// `.model <name> cnfet [polarity=n|p] [ef=<eV>] [temp=<K>] [l=<m>]` —
/// a CNFET model: the paper's default device with the listed
/// overrides. Fitting happens when the deck is lowered (once per
/// [`Deck::run`], shared across the per-analysis circuit rebuilds).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCard {
    /// Model name referenced by `M` cards.
    pub name: String,
    /// Channel polarity (default `n`; `p` devices are electrical
    /// mirrors).
    pub polarity: Polarity,
    /// Source Fermi level relative to the band edge, eV (default
    /// −0.32, the paper's fitting centre).
    pub fermi_level_ev: f64,
    /// Lattice temperature, kelvin (default 300).
    pub temperature_k: f64,
    /// Default channel length for instances without `L=`, metres
    /// (default 100 nm).
    pub default_length_m: f64,
    /// Card location.
    pub origin: SourceRef,
}

/// `.param <name> = <expr>` — a named value usable in any later card
/// (bare, or inside `{ … }` expressions). The expression is evaluated
/// at parse time; see [`crate::deck`] module docs and
/// `docs/DECK_FORMAT.md` for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamCard {
    /// Parameter name.
    pub name: String,
    /// Evaluated value.
    pub value: f64,
    /// Card location.
    pub origin: SourceRef,
}

/// `.option <key>=<value> …` — solver tuning knobs, applied to every
/// analysis card in the deck. Multiple `.option` cards merge in source
/// order (later entries win). Keys map onto
/// [`NewtonOptions`](crate::engine::NewtonOptions) and
/// [`TransientOptions`](crate::transient::TransientOptions) — see
/// [`OptionEntry`] for the accepted keys and [`Deck::newton_options`] /
/// [`Deck::transient_options`] for the lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionCard {
    /// `key=value` entries in card order.
    pub entries: Vec<OptionEntry>,
    /// Card location.
    pub origin: SourceRef,
}

/// One `key=value` entry of an `.option` card.
#[derive(Debug, Clone, PartialEq)]
pub enum OptionEntry {
    /// `reltol=<r>` — relative LTE tolerance of the adaptive transient
    /// stepper ([`TransientOptions::rel_tol`](crate::transient::TransientOptions::rel_tol),
    /// default `1e-3`). Validated positive at parse time.
    RelTol(f64),
    /// `abstol=<v>` — absolute LTE floor of the adaptive transient
    /// stepper, volts ([`TransientOptions::abs_tol`](crate::transient::TransientOptions::abs_tol),
    /// default `1e-6`). Validated positive at parse time.
    AbsTol(f64),
    /// `dtmin=<s>` — minimum adaptive step size, seconds
    /// ([`TransientOptions::dt_min`](crate::transient::TransientOptions::dt_min)).
    /// Validated positive at parse time.
    DtMin(f64),
    /// `bypass=0|1` — the SPICE3-lineage device bypass
    /// ([`NewtonOptions::bypass`](crate::engine::NewtonOptions::bypass),
    /// default off).
    Bypass(bool),
    /// `bypassvtol=<v>` — controlling-voltage tolerance of the device
    /// bypass, volts
    /// ([`NewtonOptions::bypass_vtol`](crate::engine::NewtonOptions::bypass_vtol),
    /// default `1e-6`). Validated positive at parse time.
    BypassVtol(f64),
    /// `solver=auto|dense|sparse` — linear-solver selection
    /// ([`NewtonOptions::solver`](crate::engine::NewtonOptions::solver),
    /// default `auto`).
    Solver(crate::engine::SolverKind),
    /// `limiting=0|1` — per-device voltage limiting of Newton steps
    /// ([`NewtonOptions::limiting`](crate::engine::NewtonOptions::limiting),
    /// default on).
    Limiting(bool),
    /// `armijo_c1=<c>` — sufficient-decrease constant of the Armijo
    /// line search
    /// ([`NewtonOptions::armijo_c1`](crate::engine::NewtonOptions::armijo_c1),
    /// default `1e-4`). Validated inside `(0, 1)` at parse time.
    ArmijoC1(f64),
    /// `ptc=0|1` — pseudo-transient continuation rescue for stalled
    /// solves ([`NewtonOptions::ptc`](crate::engine::NewtonOptions::ptc),
    /// default on).
    Ptc(bool),
}

impl OptionEntry {
    /// The canonical key text of this entry.
    pub fn key(&self) -> &'static str {
        match self {
            OptionEntry::RelTol(_) => "reltol",
            OptionEntry::AbsTol(_) => "abstol",
            OptionEntry::DtMin(_) => "dtmin",
            OptionEntry::Bypass(_) => "bypass",
            OptionEntry::BypassVtol(_) => "bypassvtol",
            OptionEntry::Solver(_) => "solver",
            OptionEntry::Limiting(_) => "limiting",
            OptionEntry::ArmijoC1(_) => "armijo_c1",
            OptionEntry::Ptc(_) => "ptc",
        }
    }

    fn value_text(&self) -> String {
        match self {
            OptionEntry::RelTol(v) | OptionEntry::AbsTol(v) | OptionEntry::DtMin(v) => num(*v),
            OptionEntry::Bypass(b) | OptionEntry::Limiting(b) | OptionEntry::Ptc(b) => {
                String::from(if *b { "1" } else { "0" })
            }
            OptionEntry::BypassVtol(v) | OptionEntry::ArmijoC1(v) => num(*v),
            OptionEntry::Solver(kind) => String::from(match kind {
                crate::engine::SolverKind::Auto => "auto",
                crate::engine::SolverKind::Dense => "dense",
                crate::engine::SolverKind::Sparse => "sparse",
            }),
        }
    }
}

/// Which analysis a `.print` card scopes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisKind {
    /// `.op`.
    Op,
    /// `.dc`.
    Dc,
    /// `.tran`.
    Tran,
    /// `.ac`.
    Ac,
}

impl AnalysisKind {
    fn keyword(self) -> &'static str {
        match self {
            AnalysisKind::Op => "op",
            AnalysisKind::Dc => "dc",
            AnalysisKind::Tran => "tran",
            AnalysisKind::Ac => "ac",
        }
    }
}

/// An analysis card, lowered to the matching [`Simulator`] typed spec
/// when run.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisCard {
    /// `.op` — DC operating point.
    Op(OpCard),
    /// `.dc` — swept DC analysis.
    Dc(DcCard),
    /// `.tran` — transient analysis.
    Tran(TranCard),
    /// `.ac` — small-signal frequency sweep.
    Ac(AcCard),
}

impl AnalysisCard {
    /// The kind of this analysis (for `.print` scoping).
    pub fn kind(&self) -> AnalysisKind {
        match self {
            AnalysisCard::Op(_) => AnalysisKind::Op,
            AnalysisCard::Dc(_) => AnalysisKind::Dc,
            AnalysisCard::Tran(_) => AnalysisKind::Tran,
            AnalysisCard::Ac(_) => AnalysisKind::Ac,
        }
    }

    /// Where the card was parsed from.
    pub fn origin(&self) -> &SourceRef {
        match self {
            AnalysisCard::Op(c) => &c.origin,
            AnalysisCard::Dc(c) => &c.origin,
            AnalysisCard::Tran(c) => &c.origin,
            AnalysisCard::Ac(c) => &c.origin,
        }
    }
}

/// `.op` — solve the DC operating point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpCard {
    /// Card location.
    pub origin: SourceRef,
}

/// `.dc <source> <start> <stop> <step>` — sweep a source, lowered to a
/// [`SweepSpec`] (warm-started point to point).
#[derive(Debug, Clone, PartialEq)]
pub struct DcCard {
    /// Name of the swept `V` or `I` card (validated at parse time).
    pub source: String,
    /// Location of the source-name token (for unknown-source errors).
    pub source_origin: SourceRef,
    /// First swept value.
    pub start: f64,
    /// Last swept value (inclusive, within one part in 10⁹ of a step).
    pub stop: f64,
    /// Increment per point; its sign must move `start` toward `stop`.
    pub step: f64,
    /// Card location.
    pub origin: SourceRef,
}

impl DcCard {
    /// The explicit sweep values `start, start+step, …` up to and
    /// including `stop` (within one part in 10⁹ of a step, absorbing
    /// accumulated rounding).
    pub fn values(&self) -> Vec<f64> {
        if self.step == 0.0 || self.start == self.stop {
            return vec![self.start];
        }
        let n = ((self.stop - self.start) / self.step + 1e-9).floor() as usize + 1;
        (0..n).map(|i| self.start + self.step * i as f64).collect()
    }

    /// The equivalent [`SweepSpec`].
    pub fn spec(&self) -> SweepSpec {
        SweepSpec::new(&self.source, self.values())
    }
}

/// `.tran [<dt>] <t_stop>` — transient analysis: adaptive
/// (LTE-controlled) when `dt` is omitted, fixed-grid otherwise. Both
/// forms use default
/// [`TransientOptions`](crate::transient::TransientOptions).
#[derive(Debug, Clone, PartialEq)]
pub struct TranCard {
    /// Fixed step size, seconds; `None` runs the adaptive stepper.
    pub dt: Option<f64>,
    /// Duration, seconds.
    pub t_stop: f64,
    /// Card location.
    pub origin: SourceRef,
}

/// Frequency-grid spacing of an `.ac` card.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcScale {
    /// `dec` — `points` per decade, logarithmic.
    Dec,
    /// `lin` — `points` total, linear.
    Lin,
}

/// `.ac dec|lin <points> <f_start> <f_stop>` — small-signal sweep. The
/// stimulus is the deck's unique `AC`-flagged source card (resolved at
/// parse time into [`AcCard::stimulus`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AcCard {
    /// Grid spacing.
    pub scale: AcScale,
    /// Points per decade (`dec`) or total points (`lin`).
    pub points: usize,
    /// First frequency, Hz.
    pub f_start: f64,
    /// Last frequency, Hz.
    pub f_stop: f64,
    /// Name of the `AC`-flagged source card carrying the unit phasor.
    pub stimulus: String,
    /// Card location.
    pub origin: SourceRef,
}

/// One probed node of a `.print` card, with its own location for
/// unknown-node diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRef {
    /// Node name (validated against the deck's nodes at parse time).
    pub node: String,
    /// Probe location.
    pub origin: SourceRef,
}

/// `.ic v(<node>)=<volts> …` — initial conditions for `.tran`
/// analyses: the transient starts from the DC operating point with the
/// listed node voltages overridden (the classic way to kick a ring
/// oscillator off its metastable point). Multiple `.ic` cards merge.
#[derive(Debug, Clone, PartialEq)]
pub struct IcCard {
    /// `(node, volts)` overrides in card order.
    pub entries: Vec<(ProbeRef, f64)>,
    /// Card location.
    pub origin: SourceRef,
}

/// `.print [op|dc|tran|ac] v(<node>) …` — selects the nodes reported
/// by matching analyses. Without the leading analysis keyword the card
/// applies to every analysis; without any `.print` card an analysis
/// reports all named nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct PrintCard {
    /// Scope; `None` applies to all analyses.
    pub analysis: Option<AnalysisKind>,
    /// Probed nodes, in card order.
    pub nodes: Vec<ProbeRef>,
    /// Card location.
    pub origin: SourceRef,
}

/// `.subckt <name> <ports…> [param=default …]` … `.ends [name]` — a
/// subcircuit definition. The body is kept as raw card lines and
/// re-parsed at every instantiation with that instance's parameter
/// environment (globals, then declared defaults, shadowed by the `X`
/// card's overrides), so defaults and body values may be `{…}`
/// expressions over any of those parameters.
///
/// Instantiation *flattens*: body elements land in [`Deck::elements`]
/// under dotted instance paths (`x1.mn`, internal nodes `x1.mid`,
/// nested `x3.x1.m2`), with diagnostics anchored at the offending `X`
/// card and the definition-local location carried as a note.
#[derive(Debug, Clone)]
pub struct SubcktDef {
    /// Subcircuit name, referenced by `X` cards.
    pub name: String,
    /// Port (interface node) names, in declaration order.
    pub ports: Vec<String>,
    /// Declared parameter names with the token index of each default
    /// value on the header line (defaults evaluate lazily, per
    /// instantiation).
    pub(crate) defaults: Vec<(String, usize)>,
    /// The `.subckt` header line (re-parsed per instantiation for
    /// default values).
    pub(crate) header: lex::LogicalLine,
    /// Body card lines, re-parsed per instantiation.
    pub(crate) body: Vec<lex::LogicalLine>,
    /// Location of the `.subckt` card.
    pub origin: SourceRef,
}

impl SubcktDef {
    /// The declared parameter names, in declaration order.
    pub fn param_names(&self) -> impl Iterator<Item = &str> {
        self.defaults.iter().map(|(name, _)| name.as_str())
    }
}

// Definitions compare by token content, not by source position: like
// [`Span`], line numbers are diagnostic metadata, so a serialised deck
// (whose `.subckt` blocks land on different lines) reparses equal.
impl PartialEq for SubcktDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.ports == other.ports
            && self
                .defaults
                .iter()
                .map(|(n, _)| n)
                .eq(other.defaults.iter().map(|(n, _)| n))
            && self.header.tokens == other.header.tokens
            && self.body.len() == other.body.len()
            && self
                .body
                .iter()
                .zip(&other.body)
                .all(|(a, b)| a.tokens == b.tokens)
    }
}

/// `X<name> <nodes…> <subckt> [param=val …]` — a subcircuit instance.
/// The node list binds the definition's ports in order; `param=val`
/// overrides shadow the definition's defaults (values may be `{…}`
/// expressions over the enclosing scope's parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceCard {
    /// Instance name (`X…`, kept as written) — the first component of
    /// every flattened element/node path under this instance.
    pub name: String,
    /// Actual nodes bound to the definition's ports, in port order.
    pub nodes: Vec<String>,
    /// Name of the instantiated `.subckt`.
    pub subckt: String,
    /// Evaluated `param=val` overrides, in card order.
    pub overrides: Vec<(String, f64)>,
    /// First index into [`Deck::elements`] of the cards this instance
    /// flattened to.
    pub elements_start: usize,
    /// How many flattened cards this instance produced (including
    /// nested instances).
    pub elements_len: usize,
    /// Card location.
    pub origin: SourceRef,
}

impl Deck {
    /// Parses deck text (see the [module docs](self) for the dialect).
    ///
    /// # Errors
    ///
    /// [`DeckError`] with a line/column span for lexical, syntactic or
    /// deck-consistency failures (duplicate names, unknown models,
    /// unknown `.dc` sources or `.print` nodes, a missing or ambiguous
    /// `.ac` stimulus).
    pub fn parse(text: &str) -> Result<Deck, DeckError> {
        parse::parse(text)
    }

    /// Serialises the deck back to card text. The output reparses to a
    /// deck equal to `self` (spans excluded — they never participate
    /// in equality) whose lowered circuit is bitwise-equivalent.
    pub fn to_text(&self) -> String {
        self.to_string()
    }

    /// The deck's node names in first-appearance order (matching the
    /// node-creation order of the lowered circuit), ground excluded.
    pub fn node_names(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for card in &self.elements {
            for node in card.nodes() {
                if node != "0" && node != "gnd" && !seen.contains(&node) {
                    seen.push(node);
                }
            }
        }
        seen
    }

    /// Names of the deck's source cards (`V` and `I`), in card order.
    pub fn source_names(&self) -> Vec<&str> {
        self.elements
            .iter()
            .filter_map(|card| match card {
                ElementCard::Voltage(v) => Some(v.name.as_str()),
                ElementCard::Current(i) => Some(i.name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The probe node names for an analysis of the given kind: the
    /// union of matching `.print` cards in card order, or every named
    /// node when no `.print` card matches.
    pub fn probes(&self, kind: AnalysisKind) -> Vec<&str> {
        let mut nodes: Vec<&str> = Vec::new();
        for print in &self.prints {
            if print.analysis.is_none() || print.analysis == Some(kind) {
                for probe in &print.nodes {
                    if !nodes.contains(&probe.node.as_str()) {
                        nodes.push(&probe.node);
                    }
                }
            }
        }
        if nodes.is_empty() {
            self.node_names()
        } else {
            nodes
        }
    }

    /// Lowers the deck into a fresh [`Simulator`] session (fitting the
    /// CNFET models of this build). The deck's `.option` cards are
    /// applied as the session's Newton options.
    ///
    /// # Errors
    ///
    /// [`DeckError`] when a `.model` card fails to fit.
    pub fn simulator(&self) -> Result<Simulator, DeckError> {
        Ok(Simulator::with_options(
            self.circuit()?,
            self.newton_options(),
        ))
    }

    /// The Newton options the deck's `.option` cards select: defaults
    /// with `bypass`, `bypassvtol` and `solver` entries applied in
    /// source order (later entries win). These drive `.op` and `.dc`
    /// cards directly; `.tran` cards take them through
    /// [`Deck::transient_options`].
    pub fn newton_options(&self) -> crate::engine::NewtonOptions {
        let mut newton = crate::engine::NewtonOptions::default();
        self.apply_newton_entries(&mut newton);
        newton
    }

    /// The transient options the deck's `.option` cards select:
    /// [`TransientOptions::default`](crate::transient::TransientOptions)
    /// with `reltol`, `abstol` and `dtmin` applied, and the embedded
    /// Newton options adjusted like [`Deck::newton_options`] (on top of
    /// the transient iteration budget).
    pub fn transient_options(&self) -> crate::transient::TransientOptions {
        let mut tran = crate::transient::TransientOptions::default();
        self.apply_newton_entries(&mut tran.newton);
        for card in &self.options {
            for entry in &card.entries {
                match entry {
                    OptionEntry::RelTol(v) => tran.rel_tol = *v,
                    OptionEntry::AbsTol(v) => tran.abs_tol = *v,
                    OptionEntry::DtMin(v) => tran.dt_min = Some(*v),
                    _ => {}
                }
            }
        }
        tran
    }

    fn apply_newton_entries(&self, newton: &mut crate::engine::NewtonOptions) {
        for card in &self.options {
            for entry in &card.entries {
                match entry {
                    OptionEntry::Bypass(b) => newton.bypass = *b,
                    OptionEntry::BypassVtol(v) => newton.bypass_vtol = *v,
                    OptionEntry::Solver(kind) => newton.solver = *kind,
                    OptionEntry::Limiting(b) => newton.limiting = *b,
                    OptionEntry::ArmijoC1(c) => newton.armijo_c1 = *c,
                    OptionEntry::Ptc(b) => newton.ptc = *b,
                    _ => {}
                }
            }
        }
    }

    /// A content hash of the deck's circuit **topology**: the element
    /// kinds and their node wiring in card order (exactly what fixes
    /// the lowered circuit's unknown layout and MNA sparsity pattern),
    /// with every element *value* excluded. Two decks with equal hashes
    /// assemble structurally identical MNA systems, so one deck's
    /// symbolic factorization (sparsity pattern, write plan, pivot
    /// order) can seed the other's engine via
    /// [`NewtonEngine::rebind`](crate::engine::NewtonEngine::rebind) —
    /// the key of the warm-engine pool
    /// ([`EnginePool`]).
    ///
    /// FNV-1a over the per-card kind tag and first-appearance node
    /// indices (ground is index 0), so node *names* don't matter but
    /// wiring order does — matching how the circuit interns nodes.
    pub fn topology_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        let mut ids: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for card in &self.elements {
            let kind = match card {
                ElementCard::Resistor(_) => 1u64,
                ElementCard::Capacitor(_) => 2,
                ElementCard::Voltage(_) => 3,
                ElementCard::Current(_) => 4,
                ElementCard::Cnfet(_) => 5,
            };
            mix(kind);
            for node in card.nodes() {
                let id = if node == "0" || node == "gnd" {
                    0
                } else {
                    let next = ids.len() as u64 + 1;
                    *ids.entry(node).or_insert(next)
                };
                mix(id);
            }
        }
        mix(self.elements.len() as u64);
        hash
    }
}

/// Formats an f64 exactly (shortest text that reparses to the same
/// bits, in exponent form so SPICE suffix parsing never applies).
fn num(v: f64) -> String {
    format!("{v:e}")
}

fn waveform_text(w: &Waveform) -> String {
    match *w {
        Waveform::Dc(v) => format!("DC {}", num(v)),
        Waveform::Pulse {
            low,
            high,
            delay,
            rise,
            width,
            fall,
            period,
        } => format!(
            "PULSE({} {} {} {} {} {} {})",
            num(low),
            num(high),
            num(delay),
            num(rise),
            num(fall),
            num(width),
            num(period)
        ),
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
        } => format!("SIN({} {} {})", num(offset), num(amplitude), num(frequency)),
    }
}

impl fmt::Display for AnalysisCard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisCard::Op(_) => write!(f, ".op"),
            AnalysisCard::Dc(c) => write!(
                f,
                ".dc {} {} {} {}",
                c.source,
                num(c.start),
                num(c.stop),
                num(c.step)
            ),
            AnalysisCard::Tran(c) => match c.dt {
                Some(dt) => write!(f, ".tran {} {}", num(dt), num(c.t_stop)),
                None => write!(f, ".tran {}", num(c.t_stop)),
            },
            AnalysisCard::Ac(c) => write!(
                f,
                ".ac {} {} {} {}",
                match c.scale {
                    AcScale::Dec => "dec",
                    AcScale::Lin => "lin",
                },
                c.points,
                num(c.f_start),
                num(c.f_stop)
            ),
        }
    }
}

impl fmt::Display for Deck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        for p in &self.params {
            writeln!(f, ".param {} = {}", p.name, num(p.value))?;
        }
        for card in &self.options {
            write!(f, ".option")?;
            for entry in &card.entries {
                write!(f, " {}={}", entry.key(), entry.value_text())?;
            }
            writeln!(f)?;
        }
        for m in &self.models {
            writeln!(
                f,
                ".model {} cnfet polarity={} ef={} temp={} l={}",
                m.name,
                match m.polarity {
                    Polarity::N => "n",
                    Polarity::P => "p",
                },
                num(m.fermi_level_ev),
                num(m.temperature_k),
                num(m.default_length_m)
            )?;
        }
        for def in &self.subckts {
            // Header and body lines are kept verbatim (comment-stripped,
            // continuations on their own `+` lines), so definitions —
            // including `{…}` expressions over still-named parameters —
            // survive the round trip token-for-token.
            for (_, text) in &def.header.texts {
                writeln!(f, "{text}")?;
            }
            for line in &def.body {
                for (_, text) in &line.texts {
                    writeln!(f, "{text}")?;
                }
            }
            writeln!(f, ".ends {}", def.name)?;
        }
        // Directly-written elements interleave with `X` instance cards:
        // each instance stands in for the contiguous run of flattened
        // elements it produced.
        let mut instances = self.instances.iter().peekable();
        let mut i = 0;
        while i < self.elements.len() || instances.peek().is_some() {
            if let Some(x) = instances.peek() {
                if x.elements_start <= i {
                    write!(f, "{} {} {}", x.name, x.nodes.join(" "), x.subckt)?;
                    for (k, v) in &x.overrides {
                        write!(f, " {k}={}", num(*v))?;
                    }
                    writeln!(f)?;
                    i = x.elements_start + x.elements_len;
                    instances.next();
                    continue;
                }
            }
            if let Some(card) = self.elements.get(i) {
                write_element(f, card)?;
            }
            i += 1;
        }
        for a in &self.analyses {
            writeln!(f, "{a}")?;
        }
        for ic in &self.ics {
            write!(f, ".ic")?;
            for (probe, volts) in &ic.entries {
                write!(f, " v({})={}", probe.node, num(*volts))?;
            }
            writeln!(f)?;
        }
        for p in &self.prints {
            write!(f, ".print")?;
            if let Some(kind) = p.analysis {
                write!(f, " {}", kind.keyword())?;
            }
            for probe in &p.nodes {
                write!(f, " v({})", probe.node)?;
            }
            writeln!(f)?;
        }
        write!(f, ".end")
    }
}

/// Writes one element card in canonical form.
fn write_element(f: &mut fmt::Formatter<'_>, card: &ElementCard) -> fmt::Result {
    match card {
        ElementCard::Resistor(c) => {
            writeln!(f, "{} {} {} {}", c.name, c.plus, c.minus, num(c.ohms))?;
        }
        ElementCard::Capacitor(c) => {
            writeln!(f, "{} {} {} {}", c.name, c.plus, c.minus, num(c.farads))?;
        }
        ElementCard::Voltage(c) => {
            let ac = if c.ac_stimulus { " AC 1" } else { "" };
            writeln!(
                f,
                "{} {} {} {}{}",
                c.name,
                c.plus,
                c.minus,
                waveform_text(&c.waveform),
                ac
            )?;
        }
        ElementCard::Current(c) => {
            let ac = if c.ac_stimulus { " AC 1" } else { "" };
            writeln!(
                f,
                "{} {} {} DC {}{}",
                c.name,
                c.plus,
                c.minus,
                num(c.amps),
                ac
            )?;
        }
        ElementCard::Cnfet(c) => {
            write!(
                f,
                "{} {} {} {} {}",
                c.name, c.drain, c.gate, c.source, c.model
            )?;
            if let Some(len) = c.length {
                write!(f, " L={}", num(len))?;
            }
            writeln!(f)?;
        }
    }
    Ok(())
}
