//! Card parsing: logical lines → the [`Deck`] AST, with full
//! deck-consistency validation.
//!
//! Parsing is a single pass over the lexed lines (so `.param`
//! definitions are visible to everything after them) followed by a
//! consistency pass that needs the whole deck: duplicate
//! element/model names, `M`-card model references (forward references
//! are fine), `.dc` sweep sources, `.print` probe nodes, and the
//! resolution of the unique `AC`-flagged stimulus source for `.ac`
//! cards. Everything that can fail without a solver fails *here*, with
//! a span.

use super::error::{suggest, DeckError, SourceRef};
use super::expr;
use super::lex::{lex, LogicalLine, Token, TokenKind};
use super::{
    AcCard, AcScale, AnalysisCard, AnalysisKind, CapacitorCard, CnfetCard, CurrentCard, DcCard,
    Deck, ElementCard, ModelCard, OpCard, ParamCard, PrintCard, ProbeRef, ResistorCard, TranCard,
    VoltageCard,
};
use crate::cnfet::Polarity;
use crate::element::Waveform;
use crate::error::CircuitError;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

/// Parses deck text. See [`Deck::parse`].
pub fn parse(text: &str) -> Result<Deck, DeckError> {
    let raw = lex(text)?;
    let mut deck = Deck {
        title: raw.title,
        ..Deck::default()
    };
    let mut params: HashMap<String, f64> = HashMap::new();
    let used = RefCell::new(BTreeSet::new());
    for line in &raw.lines {
        if line.tokens.is_empty() {
            continue;
        }
        let mut cur = Cursor {
            line,
            i: 0,
            params: &params,
            used: &used,
        };
        let (head, head_span) = cur.next_word("a card")?;
        let head = head.to_string();
        let origin = SourceRef::new(head_span, line.text());
        if let Some(dot) = head.strip_prefix('.') {
            match dot.to_ascii_lowercase().as_str() {
                "model" => deck.models.push(parse_model(&mut cur, origin)?),
                "param" => {
                    let card = parse_param(&mut cur, origin)?;
                    if params.contains_key(&card.name) {
                        return Err(card
                            .origin
                            .error(format!("duplicate parameter name '{}'", card.name)));
                    }
                    params.insert(card.name.clone(), card.value);
                    deck.params.push(card);
                }
                "op" => {
                    cur.done()?;
                    deck.analyses.push(AnalysisCard::Op(OpCard { origin }));
                }
                "dc" => deck
                    .analyses
                    .push(AnalysisCard::Dc(parse_dc(&mut cur, origin)?)),
                "tran" => deck
                    .analyses
                    .push(AnalysisCard::Tran(parse_tran(&mut cur, origin)?)),
                "ac" => deck
                    .analyses
                    .push(AnalysisCard::Ac(parse_ac(&mut cur, origin)?)),
                "print" => deck.prints.push(parse_print(&mut cur, origin)?),
                "ic" => deck.ics.push(parse_ic(&mut cur, origin)?),
                other => {
                    let known = [
                        ".model", ".param", ".op", ".dc", ".tran", ".ac", ".print", ".ic", ".end",
                    ];
                    let mut err = origin.error(format!(
                        "unknown directive '.{other}'; this dialect has {}",
                        known.join(", ")
                    ));
                    if let Some(help) = suggest(&head, known.iter().copied()) {
                        err = err.with_help(help);
                    }
                    return Err(err);
                }
            }
            continue;
        }
        match head.chars().next().map(|c| c.to_ascii_uppercase()) {
            Some('R') => deck.elements.push(ElementCard::Resistor(parse_resistor(
                &mut cur, head, origin,
            )?)),
            Some('C') => deck.elements.push(ElementCard::Capacitor(parse_capacitor(
                &mut cur, head, origin,
            )?)),
            Some('V') => deck
                .elements
                .push(ElementCard::Voltage(parse_voltage(&mut cur, head, origin)?)),
            Some('I') => deck
                .elements
                .push(ElementCard::Current(parse_current(&mut cur, head, origin)?)),
            Some('M') => deck
                .elements
                .push(ElementCard::Cnfet(parse_cnfet(&mut cur, head, origin)?)),
            _ => {
                return Err(origin.error(format!(
                    "unknown card '{head}': element cards start with R, C, V, I or M \
                     (directives with '.')"
                )));
            }
        }
    }
    deck.param_uses = super::ParamUses(used.into_inner());
    validate(&mut deck)?;
    Ok(deck)
}

/// The whole-deck consistency pass.
fn validate(deck: &mut Deck) -> Result<(), DeckError> {
    // Duplicate element names.
    let mut seen: HashMap<&str, u32> = HashMap::new();
    for card in &deck.elements {
        let origin = card.origin();
        if let Some(first) = seen.get(card.name()) {
            return Err(origin.error(format!(
                "duplicate element name '{}' (first defined on line {first})",
                card.name()
            )));
        }
        seen.insert(card.name(), origin.span.line);
    }
    // Duplicate model names.
    let mut models: HashMap<&str, u32> = HashMap::new();
    for model in &deck.models {
        if let Some(first) = models.get(model.name.as_str()) {
            return Err(model.origin.error(format!(
                "duplicate model name '{}' (first defined on line {first})",
                model.name
            )));
        }
        models.insert(&model.name, model.origin.span.line);
    }
    // M-card model references (forward references are fine).
    for card in &deck.elements {
        if let ElementCard::Cnfet(m) = card {
            if !models.contains_key(m.model.as_str()) {
                let available: Vec<&str> = models.keys().copied().collect();
                let mut err = m.model_origin.error(if available.is_empty() {
                    format!(
                        "no model named '{}' (the deck has no .model cards)",
                        m.model
                    )
                } else {
                    format!(
                        "no model named '{}'; available models: {}",
                        m.model,
                        available.join(", ")
                    )
                });
                if let Some(help) = suggest(&m.model, available.into_iter()) {
                    err = err.with_help(help);
                }
                return Err(err);
            }
        }
    }
    // `.dc` sweep sources, via the circuit crate's unknown-source error.
    let sources: Vec<String> = deck.source_names().iter().map(|s| s.to_string()).collect();
    for analysis in &deck.analyses {
        if let AnalysisCard::Dc(dc) = analysis {
            if !sources.iter().any(|s| s == &dc.source) {
                let err = CircuitError::UnknownSource {
                    requested: dc.source.clone(),
                    available: sources.clone(),
                };
                return Err(dc.source_origin.circuit_error(&err));
            }
        }
    }
    // `.print` probe and `.ic` target nodes, via the unknown-node error.
    let nodes: Vec<String> = deck.node_names().iter().map(|s| s.to_string()).collect();
    let probes = deck.prints.iter().flat_map(|p| p.nodes.iter()).chain(
        deck.ics
            .iter()
            .flat_map(|ic| ic.entries.iter().map(|(p, _)| p)),
    );
    for probe in probes {
        let known =
            probe.node == "0" || probe.node == "gnd" || nodes.iter().any(|n| n == &probe.node);
        if !known {
            let err = CircuitError::UnknownNode {
                requested: probe.node.clone(),
                available: nodes.clone(),
            };
            return Err(probe.origin.circuit_error(&err));
        }
    }
    // Resolve the `.ac` stimulus: exactly one AC-flagged source card.
    if deck
        .analyses
        .iter()
        .any(|a| matches!(a, AnalysisCard::Ac(_)))
    {
        let flagged: Vec<&str> = deck
            .elements
            .iter()
            .filter_map(|card| match card {
                ElementCard::Voltage(v) if v.ac_stimulus => Some(v.name.as_str()),
                ElementCard::Current(i) if i.ac_stimulus => Some(i.name.as_str()),
                _ => None,
            })
            .collect();
        let stimulus = match flagged.as_slice() {
            [one] => one.to_string(),
            [] => {
                let origin = first_ac_origin(deck);
                return Err(origin
                    .error(".ac analysis needs a stimulus, but no source card carries the AC flag")
                    .with_help("append `AC 1` to the V or I card that drives the sweep"));
            }
            many => {
                let origin = first_ac_origin(deck);
                return Err(origin.error(format!(
                    "ambiguous .ac stimulus: {} source cards carry the AC flag ({})",
                    many.len(),
                    many.join(", ")
                )));
            }
        };
        for analysis in &mut deck.analyses {
            if let AnalysisCard::Ac(ac) = analysis {
                ac.stimulus = stimulus.clone();
            }
        }
    }
    Ok(())
}

fn first_ac_origin(deck: &Deck) -> SourceRef {
    deck.analyses
        .iter()
        .find_map(|a| match a {
            AnalysisCard::Ac(c) => Some(c.origin.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// A token cursor over one logical line.
struct Cursor<'a> {
    line: &'a LogicalLine,
    i: usize,
    params: &'a HashMap<String, f64>,
    /// Parameter names any card resolved (bare or inside `{…}` / `.param`
    /// expressions) — shared across the whole parse for the unused-param
    /// lint. A `RefCell` because the cursor also borrows `params`.
    used: &'a RefCell<BTreeSet<String>>,
}

impl<'a> Cursor<'a> {
    /// An error at `span`, rendered against the physical line the span
    /// actually points into (which may be a `+` continuation line).
    fn at(&self, span: super::Span, message: String) -> DeckError {
        DeckError::at(span, self.line.text_for(span.line), message)
    }

    /// A [`SourceRef`] capturing `span` with its own physical line.
    fn source_ref(&self, span: super::Span) -> SourceRef {
        SourceRef::new(span, self.line.text_for(span.line))
    }

    fn error_at(&self, i: usize, message: String) -> DeckError {
        self.at(self.line.span_at(i), message)
    }

    fn peek(&self) -> Option<&'a Token> {
        self.line.tokens.get(self.i)
    }

    /// Is the next token a word equal (ASCII case-insensitively) to
    /// `kw`?
    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek()
            .and_then(Token::word)
            .is_some_and(|w| w.eq_ignore_ascii_case(kw))
    }

    fn next_token(&mut self, what: &str) -> Result<&'a Token, DeckError> {
        match self.line.tokens.get(self.i) {
            Some(t) => {
                self.i += 1;
                Ok(t)
            }
            None => Err(self.error_at(self.i, format!("expected {what}, but the card ended"))),
        }
    }

    /// Next token as a bare word.
    fn next_word(&mut self, what: &str) -> Result<(&'a str, super::Span), DeckError> {
        let i = self.i;
        let t = self.next_token(what)?;
        match &t.kind {
            TokenKind::Word(w) => Ok((w, t.span)),
            TokenKind::Punct(c) => Err(self.error_at(i, format!("expected {what}, got '{c}'"))),
            TokenKind::Expr(_) => Err(self.error_at(
                i,
                format!("expected {what}, got a {{…}} expression (only values may be expressions)"),
            )),
        }
    }

    /// Next token as a numeric value: a SPICE number, a `{ … }`
    /// expression, or a bare parameter name.
    fn next_value(&mut self, what: &str) -> Result<(f64, super::Span), DeckError> {
        let i = self.i;
        let t = self.next_token(what)?;
        match &t.kind {
            TokenKind::Word(w) => {
                if let Some(v) = super::lex::parse_number(w) {
                    Ok((v, t.span))
                } else if let Some(&v) = self.params.get(w.as_str()) {
                    self.used.borrow_mut().insert(w.clone());
                    Ok((v, t.span))
                } else {
                    let mut err = self.error_at(
                        i,
                        format!("expected {what}, but '{w}' is not a number or known parameter"),
                    );
                    if let Some(help) = suggest(w, self.params.keys().map(String::as_str)) {
                        err = err.with_help(help);
                    }
                    Err(err)
                }
            }
            TokenKind::Expr(body) => {
                expr::eval_with_uses(body, self.params, &mut self.used.borrow_mut())
                    .map(|v| (v, t.span))
                    .map_err(|msg| self.error_at(i, format!("in {what} expression: {msg}")))
            }
            TokenKind::Punct(c) => Err(self.error_at(i, format!("expected {what}, got '{c}'"))),
        }
    }

    /// A strictly positive value (resistance, capacitance, length, …).
    fn next_positive(&mut self, what: &str) -> Result<f64, DeckError> {
        let (v, span) = self.next_value(what)?;
        if v > 0.0 {
            Ok(v)
        } else {
            Err(self.at(span, format!("{what} must be positive, got {v}")))
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), DeckError> {
        let i = self.i;
        let t = self.next_token(&format!("'{c}'"))?;
        if t.kind == TokenKind::Punct(c) {
            Ok(())
        } else {
            Err(self.error_at(i, format!("expected '{c}' here")))
        }
    }

    /// Errors if any token is left unconsumed.
    fn done(&mut self) -> Result<(), DeckError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => {
                let text = match &t.kind {
                    TokenKind::Word(w) => w.clone(),
                    TokenKind::Expr(b) => format!("{{{b}}}"),
                    TokenKind::Punct(c) => c.to_string(),
                };
                Err(self.error_at(self.i, format!("unexpected trailing '{text}' on this card")))
            }
        }
    }

    /// Consumes a trailing `AC [magnitude]` flag; the magnitude, when
    /// given, must be exactly 1 (responses are transfer functions of a
    /// unit phasor).
    fn take_ac_flag(&mut self) -> Result<bool, DeckError> {
        if !self.peek_keyword("ac") {
            return Ok(false);
        }
        self.i += 1;
        // Optional magnitude.
        if self.peek().is_some() {
            let (mag, span) = self.next_value("AC magnitude")?;
            if mag != 1.0 {
                return Err(self.at(
                    span,
                    format!(
                        "only unit AC stimuli are supported (responses are \
                         transfer functions); got {mag}"
                    ),
                ));
            }
        }
        Ok(true)
    }
}

fn parse_resistor(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<ResistorCard, DeckError> {
    let (plus, _) = cur.next_word("the + node")?;
    let (minus, _) = cur.next_word("the - node")?;
    let plus = plus.to_string();
    let minus = minus.to_string();
    let ohms = cur.next_positive("resistance")?;
    cur.done()?;
    Ok(ResistorCard {
        name,
        plus,
        minus,
        ohms,
        origin,
    })
}

fn parse_capacitor(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<CapacitorCard, DeckError> {
    let (plus, _) = cur.next_word("the + node")?;
    let (minus, _) = cur.next_word("the - node")?;
    let plus = plus.to_string();
    let minus = minus.to_string();
    let farads = cur.next_positive("capacitance")?;
    cur.done()?;
    Ok(CapacitorCard {
        name,
        plus,
        minus,
        farads,
        origin,
    })
}

fn parse_voltage(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<VoltageCard, DeckError> {
    let (plus, _) = cur.next_word("the + node")?;
    let (minus, _) = cur.next_word("the - node")?;
    let plus = plus.to_string();
    let minus = minus.to_string();
    let mut waveform = None;
    if cur.peek_keyword("pulse") {
        cur.i += 1;
        let args = paren_values(cur, "PULSE", 7)?;
        // SPICE order: PULSE(v1 v2 td tr tf pw per).
        waveform = Some(Waveform::Pulse {
            low: args[0],
            high: args[1],
            delay: args[2],
            rise: args[3],
            fall: args[4],
            width: args[5],
            period: args[6],
        });
    } else if cur.peek_keyword("sin") {
        cur.i += 1;
        let args = paren_values(cur, "SIN", 3)?;
        waveform = Some(Waveform::Sine {
            offset: args[0],
            amplitude: args[1],
            frequency: args[2],
        });
    } else if cur.peek_keyword("dc") {
        cur.i += 1;
        waveform = Some(Waveform::Dc(cur.next_value("the DC value")?.0));
    } else if !cur.peek_keyword("ac") && cur.peek().is_some() {
        waveform = Some(Waveform::Dc(cur.next_value("the source value")?.0));
    }
    let ac_stimulus = cur.take_ac_flag()?;
    let Some(waveform) = waveform else {
        if ac_stimulus {
            // SPICE-style: an AC-only source sits at 0 V DC.
            cur.done()?;
            return Ok(VoltageCard {
                name,
                plus,
                minus,
                waveform: Waveform::Dc(0.0),
                ac_stimulus,
                origin,
            });
        }
        return Err(origin
            .error(format!(
                "voltage source {name} needs a drive: `DC <v>`, `PULSE(v1 v2 td tr tf pw per)` \
                 or `SIN(offset amplitude freq)`"
            ))
            .with_help("e.g. `V1 in 0 DC 1` or `V1 in 0 PULSE(0 1 0 1n 1n 5n 10n)`"));
    };
    cur.done()?;
    Ok(VoltageCard {
        name,
        plus,
        minus,
        waveform,
        ac_stimulus,
        origin,
    })
}

fn parse_current(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<CurrentCard, DeckError> {
    let (plus, _) = cur.next_word("the + node")?;
    let (minus, _) = cur.next_word("the - node")?;
    let plus = plus.to_string();
    let minus = minus.to_string();
    if cur.peek_keyword("dc") {
        cur.i += 1;
    }
    let (amps, _) = cur.next_value("the current in amperes")?;
    let ac_stimulus = cur.take_ac_flag()?;
    cur.done()?;
    Ok(CurrentCard {
        name,
        plus,
        minus,
        amps,
        ac_stimulus,
        origin,
    })
}

fn parse_cnfet(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<CnfetCard, DeckError> {
    let (drain, _) = cur.next_word("the drain node")?;
    let (gate, _) = cur.next_word("the gate node")?;
    let (source, _) = cur.next_word("the source node")?;
    let drain = drain.to_string();
    let gate = gate.to_string();
    let source = source.to_string();
    let (model, model_span) = cur.next_word("the model name")?;
    let model = model.to_string();
    let model_origin = cur.source_ref(model_span);
    let mut length = None;
    if cur.peek().is_some() {
        let (key, span) = cur.next_word("an instance parameter")?;
        if !key.eq_ignore_ascii_case("l") {
            return Err(cur.at(
                span,
                format!("unknown instance parameter '{key}'; M cards accept only L=<metres>"),
            ));
        }
        cur.expect_punct('=')?;
        length = Some(cur.next_positive("channel length")?);
    }
    cur.done()?;
    Ok(CnfetCard {
        name,
        drain,
        gate,
        source,
        model,
        model_origin,
        length,
        origin,
    })
}

fn parse_model(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<ModelCard, DeckError> {
    let (name, _) = cur.next_word("the model name")?;
    let name = name.to_string();
    let (kind, kind_span) = cur.next_word("the model type")?;
    if !kind.eq_ignore_ascii_case("cnfet") {
        return Err(cur.at(
            kind_span,
            format!("unknown model type '{kind}'; this simulator models 'cnfet' devices"),
        ));
    }
    let mut card = ModelCard {
        name,
        polarity: Polarity::N,
        fermi_level_ev: -0.32,
        temperature_k: 300.0,
        default_length_m: 100e-9,
        origin,
    };
    while cur.peek().is_some() {
        let (key, key_span) = cur.next_word("a model parameter")?;
        let key_lc = key.to_ascii_lowercase();
        let key = key.to_string();
        cur.expect_punct('=')?;
        match key_lc.as_str() {
            "polarity" => {
                let (v, span) = cur.next_word("the polarity (n or p)")?;
                card.polarity = match v.to_ascii_lowercase().as_str() {
                    "n" => Polarity::N,
                    "p" => Polarity::P,
                    other => {
                        return Err(
                            cur.at(span, format!("polarity must be 'n' or 'p', got '{other}'"))
                        )
                    }
                };
            }
            "ef" => card.fermi_level_ev = cur.next_value("the Fermi level in eV")?.0,
            "temp" => card.temperature_k = cur.next_positive("the temperature in kelvin")?,
            "l" => card.default_length_m = cur.next_positive("the default channel length")?,
            _ => {
                let known = ["polarity", "ef", "temp", "l"];
                let mut err = cur.at(
                    key_span,
                    format!(
                        "unknown model parameter '{key}'; cnfet models accept {}",
                        known.join(", ")
                    ),
                );
                if let Some(help) = suggest(&key, known.iter().copied()) {
                    err = err.with_help(help);
                }
                return Err(err);
            }
        }
    }
    Ok(card)
}

fn parse_param(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<ParamCard, DeckError> {
    let (name, name_span) = cur.next_word("the parameter name")?;
    let name = name.to_string();
    if super::lex::parse_number(&name).is_some() {
        return Err(cur.at(
            name_span,
            format!("parameter name '{name}' would shadow a number"),
        ));
    }
    cur.expect_punct('=')?;
    // Reassemble the remaining tokens into one expression string and
    // hand it to the char-level expression parser.
    let first = cur.i;
    if cur.peek().is_none() {
        return Err(cur.error_at(cur.i, "expected an expression after '='".to_string()));
    }
    let mut pieces: Vec<String> = Vec::new();
    let mut last = first;
    while let Some(t) = cur.peek() {
        pieces.push(match &t.kind {
            TokenKind::Word(w) => w.clone(),
            TokenKind::Expr(b) => format!("({b})"),
            TokenKind::Punct(c) => c.to_string(),
        });
        last = cur.i;
        cur.i += 1;
    }
    let span = cur.line.span_at(first).to_span(cur.line.span_at(last));
    let text = pieces.join(" ");
    let value = expr::eval_with_uses(&text, cur.params, &mut cur.used.borrow_mut())
        .map_err(|msg| cur.at(span, format!("in .param expression: {msg}")))?;
    Ok(ParamCard {
        name,
        value,
        origin,
    })
}

fn parse_dc(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<DcCard, DeckError> {
    let (source, source_span) = cur.next_word("the swept source name")?;
    let source = source.to_string();
    let source_origin = cur.source_ref(source_span);
    let (start, _) = cur.next_value("the start value")?;
    let (stop, _) = cur.next_value("the stop value")?;
    let (step, step_span) = cur.next_value("the step")?;
    cur.done()?;
    if start != stop && (step == 0.0 || (stop - start).signum() != step.signum()) {
        return Err(cur.at(
            step_span,
            format!("step {step} cannot move the sweep from {start} to {stop}"),
        ));
    }
    Ok(DcCard {
        source,
        source_origin,
        start,
        stop,
        step,
        origin,
    })
}

fn parse_tran(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<TranCard, DeckError> {
    let (first, first_span) = cur.next_value("the stop time (or a step size)")?;
    let card = if cur.peek().is_some() {
        let (t_stop, stop_span) = cur.next_value("the stop time")?;
        cur.done()?;
        if first <= 0.0 {
            return Err(cur.at(
                first_span,
                format!("the step size must be positive, got {first}"),
            ));
        }
        if t_stop <= 0.0 {
            return Err(cur.at(
                stop_span,
                format!("the stop time must be positive, got {t_stop}"),
            ));
        }
        TranCard {
            dt: Some(first),
            t_stop,
            origin,
        }
    } else {
        if first <= 0.0 {
            return Err(cur.at(
                first_span,
                format!("the stop time must be positive, got {first}"),
            ));
        }
        TranCard {
            dt: None,
            t_stop: first,
            origin,
        }
    };
    Ok(card)
}

fn parse_ac(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<AcCard, DeckError> {
    let (scale_word, scale_span) = cur.next_word("the grid scale (dec or lin)")?;
    let scale = match scale_word.to_ascii_lowercase().as_str() {
        "dec" => AcScale::Dec,
        "lin" => AcScale::Lin,
        other => {
            return Err(cur.at(
                scale_span,
                format!("grid scale must be 'dec' or 'lin', got '{other}'"),
            ))
        }
    };
    let (points_v, points_span) = cur.next_value("the point count")?;
    if points_v < 1.0 || points_v.fract() != 0.0 {
        return Err(cur.at(
            points_span,
            format!("the point count must be a positive integer, got {points_v}"),
        ));
    }
    let (f_start, f_start_span) = cur.next_value("the start frequency")?;
    let (f_stop, f_stop_span) = cur.next_value("the stop frequency")?;
    cur.done()?;
    // Mirror the FreqGrid constraints here so an impossible sweep is a
    // *parse* error (caught by `cntfet-sim --check`), not a run-time one.
    match scale {
        AcScale::Dec => {
            if !(f_start > 0.0 && f_start.is_finite()) {
                return Err(cur.at(
                    f_start_span,
                    format!("a decade sweep needs a positive start frequency, got {f_start}"),
                ));
            }
            if !(f_stop > f_start && f_stop.is_finite()) {
                return Err(cur.at(
                    f_stop_span,
                    format!("a decade sweep needs f_stop > f_start, got [{f_start}, {f_stop}] Hz"),
                ));
            }
        }
        AcScale::Lin => {
            if !(f_start >= 0.0 && f_start.is_finite()) {
                return Err(cur.at(
                    f_start_span,
                    format!("a linear sweep needs a non-negative start frequency, got {f_start}"),
                ));
            }
            if !(f_stop >= f_start && f_stop.is_finite()) {
                return Err(cur.at(
                    f_stop_span,
                    format!("a linear sweep needs f_stop >= f_start, got [{f_start}, {f_stop}] Hz"),
                ));
            }
        }
    }
    Ok(AcCard {
        scale,
        points: points_v as usize,
        f_start,
        f_stop,
        stimulus: String::new(), // resolved by the validation pass
        origin,
    })
}

fn parse_print(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<PrintCard, DeckError> {
    let analysis = match cur.peek().and_then(Token::word) {
        Some(w) if w.eq_ignore_ascii_case("op") => Some(AnalysisKind::Op),
        Some(w) if w.eq_ignore_ascii_case("dc") => Some(AnalysisKind::Dc),
        Some(w) if w.eq_ignore_ascii_case("tran") => Some(AnalysisKind::Tran),
        Some(w) if w.eq_ignore_ascii_case("ac") => Some(AnalysisKind::Ac),
        _ => None,
    };
    if analysis.is_some() {
        cur.i += 1;
    }
    let mut nodes = Vec::new();
    while cur.peek().is_some() {
        let (word, span) = cur.next_word("a probe (v(<node>) or a node name)")?;
        if word.eq_ignore_ascii_case("v")
            && cur.peek().map(|t| &t.kind) == Some(&TokenKind::Punct('('))
        {
            cur.expect_punct('(')?;
            let (node, node_span) = cur.next_word("the probed node name")?;
            let node = node.to_string();
            cur.expect_punct(')')?;
            nodes.push(ProbeRef {
                node,
                origin: cur.source_ref(node_span),
            });
        } else {
            nodes.push(ProbeRef {
                node: word.to_string(),
                origin: cur.source_ref(span),
            });
        }
    }
    if nodes.is_empty() {
        return Err(origin.error(".print needs at least one probe, e.g. `.print dc v(out)`"));
    }
    Ok(PrintCard {
        analysis,
        nodes,
        origin,
    })
}

fn parse_ic(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<super::IcCard, DeckError> {
    let mut entries = Vec::new();
    while cur.peek().is_some() {
        let (word, span) = cur.next_word("an initial condition (v(<node>)=<volts>)")?;
        let (node, node_span) = if word.eq_ignore_ascii_case("v")
            && cur.peek().map(|t| &t.kind) == Some(&TokenKind::Punct('('))
        {
            cur.expect_punct('(')?;
            let (node, node_span) = cur.next_word("the node name")?;
            let node = node.to_string();
            cur.expect_punct(')')?;
            (node, node_span)
        } else {
            (word.to_string(), span)
        };
        cur.expect_punct('=')?;
        let (volts, _) = cur.next_value("the initial voltage")?;
        entries.push((
            ProbeRef {
                node,
                origin: cur.source_ref(node_span),
            },
            volts,
        ));
    }
    if entries.is_empty() {
        return Err(origin.error(".ic needs at least one entry, e.g. `.ic v(out)=0.8`"));
    }
    Ok(super::IcCard { entries, origin })
}

/// Parses `( v v … )` with exactly `n` values.
fn paren_values(cur: &mut Cursor<'_>, what: &str, n: usize) -> Result<Vec<f64>, DeckError> {
    cur.expect_punct('(')?;
    let mut values = Vec::with_capacity(n);
    while cur.peek().map(|t| &t.kind) != Some(&TokenKind::Punct(')')) {
        if cur.peek().is_none() {
            return Err(cur.error_at(cur.i, format!("unterminated {what}(…) — missing ')'")));
        }
        values.push(cur.next_value(&format!("a {what} argument"))?.0);
    }
    cur.expect_punct(')')?;
    if values.len() != n {
        return Err(cur.error_at(
            cur.i.saturating_sub(1),
            format!(
                "{what}(…) takes exactly {n} arguments, got {}",
                values.len()
            ),
        ));
    }
    Ok(values)
}
