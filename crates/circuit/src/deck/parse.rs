//! Card parsing: logical lines → the [`Deck`] AST, with full
//! deck-consistency validation.
//!
//! Parsing is a single pass over the lexed lines (so `.param`
//! definitions are visible to everything after them) followed by a
//! consistency pass that needs the whole deck: duplicate
//! element/model names, `M`-card model references (forward references
//! are fine), `.dc` sweep sources, `.print` probe nodes, and the
//! resolution of the unique `AC`-flagged stimulus source for `.ac`
//! cards. Everything that can fail without a solver fails *here*, with
//! a span.

use super::error::{suggest, DeckError, SourceRef, Span};
use super::expr;
use super::lex::{lex, LogicalLine, Token, TokenKind};
use super::{
    AcCard, AcScale, AnalysisCard, AnalysisKind, CapacitorCard, CnfetCard, CurrentCard, DcCard,
    Deck, ElementCard, InstanceCard, ModelCard, OpCard, OptionCard, OptionEntry, ParamCard,
    PrintCard, ProbeRef, ResistorCard, SubcktDef, TranCard, VoltageCard,
};
use crate::cnfet::Polarity;
use crate::element::Waveform;
use crate::engine::SolverKind;
use crate::error::CircuitError;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

/// Parses deck text. See [`Deck::parse`].
pub fn parse(text: &str) -> Result<Deck, DeckError> {
    let raw = lex(text)?;
    // First pass: split `.subckt … .ends` blocks out of the line
    // stream, so `X` cards may reference definitions written later.
    let (top_lines, subckts) = collect_subckts(raw.lines)?;
    let mut deck = Deck {
        title: raw.title,
        subckts,
        ..Deck::default()
    };
    let mut params: HashMap<String, f64> = HashMap::new();
    let used = RefCell::new(BTreeSet::new());
    let subckt_used = RefCell::new(BTreeSet::new());
    let mut instance_names: HashMap<String, u32> = HashMap::new();
    for line in &top_lines {
        if line.tokens.is_empty() {
            continue;
        }
        let mut cur = Cursor {
            line,
            i: 0,
            params: &params,
            used: &used,
        };
        let (head, head_span) = cur.next_word("a card")?;
        let head = head.to_string();
        let origin = SourceRef::new(head_span, line.text());
        if let Some(dot) = head.strip_prefix('.') {
            match dot.to_ascii_lowercase().as_str() {
                "model" => deck.models.push(parse_model(&mut cur, origin)?),
                "param" => {
                    let card = parse_param(&mut cur, origin)?;
                    if params.contains_key(&card.name) {
                        return Err(card
                            .origin
                            .error(format!("duplicate parameter name '{}'", card.name)));
                    }
                    params.insert(card.name.clone(), card.value);
                    deck.params.push(card);
                }
                "option" => deck.options.push(parse_option(&mut cur, origin)?),
                "op" => {
                    cur.done()?;
                    deck.analyses.push(AnalysisCard::Op(OpCard { origin }));
                }
                "dc" => deck
                    .analyses
                    .push(AnalysisCard::Dc(parse_dc(&mut cur, origin)?)),
                "tran" => deck
                    .analyses
                    .push(AnalysisCard::Tran(parse_tran(&mut cur, origin)?)),
                "ac" => deck
                    .analyses
                    .push(AnalysisCard::Ac(parse_ac(&mut cur, origin)?)),
                "print" => deck.prints.push(parse_print(&mut cur, origin)?),
                "ic" => deck.ics.push(parse_ic(&mut cur, origin)?),
                "ends" => {
                    return Err(origin.error("found .ends without a matching .subckt"));
                }
                other => {
                    let known = [
                        ".model", ".param", ".option", ".subckt", ".ends", ".op", ".dc", ".tran",
                        ".ac", ".print", ".ic", ".end",
                    ];
                    let mut err = origin.error(format!(
                        "unknown directive '.{other}'; this dialect has {}",
                        known.join(", ")
                    ));
                    if let Some(help) = suggest(&head, known.iter().copied()) {
                        err = err.with_help(help);
                    }
                    return Err(err);
                }
            }
            continue;
        }
        if head.starts_with(['x', 'X']) {
            let x = parse_x(&mut cur, head, origin.clone())?;
            if let Some(first) = instance_names.get(&x.name) {
                return Err(origin.error(format!(
                    "duplicate instance name '{}' (first defined on line {first})",
                    x.name
                )));
            }
            instance_names.insert(x.name.clone(), origin.span.line);
            let subckt_site = cur.source_ref(x.subckt_span);
            let bound: Vec<String> = x.nodes.iter().map(|(w, _)| w.clone()).collect();
            let start = deck.elements.len();
            let mut expansion = Expansion {
                defs: &deck.subckts,
                globals: &params,
                used: &used,
                subckt_used: &subckt_used,
                anchor: &origin,
                elements: &mut deck.elements,
                stack: Vec::new(),
            };
            expansion.instantiate(
                &x.name,
                &bound,
                &x.overrides,
                &x.subckt,
                &origin,
                &subckt_site,
            )?;
            deck.instances.push(InstanceCard {
                name: x.name,
                nodes: x.nodes.into_iter().map(|(w, _)| w).collect(),
                subckt: x.subckt,
                overrides: x.overrides,
                elements_start: start,
                elements_len: deck.elements.len() - start,
                origin,
            });
            continue;
        }
        deck.elements.push(parse_element(&mut cur, head, origin)?);
    }
    deck.param_uses = super::ParamUses(used.into_inner());
    deck.subckt_uses = super::ParamUses(subckt_used.into_inner());
    validate(&mut deck)?;
    Ok(deck)
}

/// Parses one element card dispatched on its leading type letter.
fn parse_element(
    cur: &mut Cursor<'_>,
    head: String,
    origin: SourceRef,
) -> Result<ElementCard, DeckError> {
    match head.chars().next().map(|c| c.to_ascii_uppercase()) {
        Some('R') => Ok(ElementCard::Resistor(parse_resistor(cur, head, origin)?)),
        Some('C') => Ok(ElementCard::Capacitor(parse_capacitor(cur, head, origin)?)),
        Some('V') => Ok(ElementCard::Voltage(parse_voltage(cur, head, origin)?)),
        Some('I') => Ok(ElementCard::Current(parse_current(cur, head, origin)?)),
        Some('M') => Ok(ElementCard::Cnfet(parse_cnfet(cur, head, origin)?)),
        _ => Err(origin.error(format!(
            "unknown card '{head}': element cards start with R, C, V, I or M, \
             subcircuit instances with X (directives with '.')"
        ))),
    }
}

/// Splits `.subckt … .ends` blocks out of the lexed line stream,
/// structurally parsing each header (name, ports, parameter defaults)
/// and eagerly validating body card heads — even for definitions no
/// `X` card ends up using. Default values are *not* evaluated here;
/// their token index into the header line is recorded so each
/// instantiation can evaluate them against its own parameter
/// environment.
fn collect_subckts(
    lines: Vec<LogicalLine>,
) -> Result<(Vec<LogicalLine>, Vec<SubcktDef>), DeckError> {
    let no_params: HashMap<String, f64> = HashMap::new();
    let scratch = RefCell::new(BTreeSet::new());
    let mut top: Vec<LogicalLine> = Vec::new();
    let mut defs: Vec<SubcktDef> = Vec::new();
    let mut open: Option<SubcktDef> = None;
    for line in lines {
        if line.tokens.is_empty() {
            if open.is_none() {
                top.push(line);
            }
            continue;
        }
        let head_lc = line.tokens[0].word().map(str::to_ascii_lowercase);
        match head_lc.as_deref() {
            Some(".subckt") => {
                let parsed = {
                    let mut cur = Cursor {
                        line: &line,
                        i: 0,
                        params: &no_params,
                        used: &scratch,
                    };
                    let (_, head_span) = cur.next_word("a card")?;
                    let origin = SourceRef::new(head_span, line.text());
                    if let Some(outer) = &open {
                        return Err(origin
                            .error(format!(
                                "subcircuit definitions cannot nest: '.subckt' inside \
                                 '.subckt {}'",
                                outer.name
                            ))
                            .with_help(format!(
                                "close '.subckt {}' with `.ends` first",
                                outer.name
                            )));
                    }
                    let (name, name_span) = cur.next_word("the subcircuit name")?;
                    let name = name.to_string();
                    if super::lex::parse_number(&name).is_some() {
                        return Err(cur.at(
                            name_span,
                            format!("subcircuit name '{name}' would shadow a number"),
                        ));
                    }
                    if let Some(first) = defs.iter().find(|d| d.name == name) {
                        return Err(cur.at(
                            name_span,
                            format!(
                                "duplicate subcircuit name '{name}' (first defined on line {})",
                                first.origin.span.line
                            ),
                        ));
                    }
                    let mut ports: Vec<String> = Vec::new();
                    let mut defaults: Vec<(String, usize)> = Vec::new();
                    while cur.peek().is_some() {
                        // A word followed by `=` starts the parameter
                        // defaults; everything before is a port.
                        if cur.line.tokens.get(cur.i + 1).map(|t| &t.kind)
                            == Some(&TokenKind::Punct('='))
                        {
                            while cur.peek().is_some() {
                                let (key, key_span) =
                                    cur.next_word("a parameter default (name=value)")?;
                                let key = key.to_string();
                                if super::lex::parse_number(&key).is_some() {
                                    return Err(cur.at(
                                        key_span,
                                        format!("parameter name '{key}' would shadow a number"),
                                    ));
                                }
                                if defaults.iter().any(|(k, _)| *k == key) {
                                    return Err(cur.at(
                                        key_span,
                                        format!("duplicate parameter default '{key}'"),
                                    ));
                                }
                                cur.expect_punct('=')?;
                                let value_idx = cur.i;
                                cur.next_token("the default value")?;
                                defaults.push((key, value_idx));
                            }
                            break;
                        }
                        let (port, port_span) = cur.next_word("a port node")?;
                        if port == "0" || port == "gnd" {
                            return Err(cur.at(
                                port_span,
                                format!(
                                    "the ground node '{port}' cannot be a subcircuit port \
                                     (it is global)"
                                ),
                            ));
                        }
                        if ports.iter().any(|p| p == port) {
                            return Err(cur.at(port_span, format!("duplicate port node '{port}'")));
                        }
                        ports.push(port.to_string());
                    }
                    if ports.is_empty() {
                        return Err(origin
                            .error(format!(".subckt '{name}' needs at least one port"))
                            .with_help("e.g. `.subckt inv out in vdd`"));
                    }
                    (name, ports, defaults, origin)
                };
                let (name, ports, defaults, origin) = parsed;
                open = Some(SubcktDef {
                    name,
                    ports,
                    defaults,
                    header: line,
                    body: Vec::new(),
                    origin,
                });
            }
            Some(".ends") => match open.take() {
                Some(def) => {
                    let mut cur = Cursor {
                        line: &line,
                        i: 0,
                        params: &no_params,
                        used: &scratch,
                    };
                    cur.next_word("a card")?;
                    if cur.peek().is_some() {
                        let (ends_name, span) = cur.next_word("the subcircuit name")?;
                        if ends_name != def.name {
                            return Err(cur.at(
                                span,
                                format!(
                                    "this .ends closes '.subckt {}', not '{ends_name}'",
                                    def.name
                                ),
                            ));
                        }
                    }
                    cur.done()?;
                    defs.push(def);
                }
                // A stray `.ends` falls through to the top-level
                // directive dispatch, which reports it with a span.
                None => top.push(line),
            },
            _ => match &mut open {
                Some(def) => {
                    let span = line.tokens[0].span;
                    let text = line.text_for(span.line).to_string();
                    let Some(w) = line.tokens[0].word() else {
                        return Err(DeckError::at(span, text, "expected a card".to_string()));
                    };
                    if w.starts_with('.') {
                        return Err(DeckError::at(
                            span,
                            text,
                            format!(
                                "directives are not allowed inside a .subckt body \
                                 (found '{w}' in '.subckt {}')",
                                def.name
                            ),
                        )
                        .with_help(
                            "only R, C, V, I, M and X cards may appear between \
                             .subckt and .ends",
                        ));
                    }
                    let first = w.chars().next().unwrap_or(' ').to_ascii_uppercase();
                    if !matches!(first, 'R' | 'C' | 'V' | 'I' | 'M' | 'X') {
                        return Err(DeckError::at(
                            span,
                            text,
                            format!(
                                "unknown card '{w}' in '.subckt {}': element cards start \
                                 with R, C, V, I or M, subcircuit instances with X",
                                def.name
                            ),
                        ));
                    }
                    def.body.push(line);
                }
                None => top.push(line),
            },
        }
    }
    if let Some(def) = open {
        return Err(def
            .origin
            .error(format!("missing .ends for '.subckt {}'", def.name))
            .with_help(format!(
                "close the definition with `.ends` (or `.ends {}`)",
                def.name
            )));
    }
    Ok((top, defs))
}

/// A parsed `X<name> <nodes…> <subckt> [param=val …]` instance card,
/// before flattening.
struct RawInstance {
    name: String,
    nodes: Vec<(String, Span)>,
    subckt: String,
    subckt_span: Span,
    overrides: Vec<(String, f64)>,
}

/// Parses an `X` card: leading words are the bound nodes, the last
/// word before any `name=value` overrides names the subcircuit.
/// Override values are evaluated with the *caller's* parameter
/// environment (the cursor's), per SPICE scoping.
fn parse_x(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<RawInstance, DeckError> {
    let mut words: Vec<(String, Span)> = Vec::new();
    while let Some(t) = cur.peek() {
        if !matches!(t.kind, TokenKind::Word(_)) {
            break;
        }
        // Stop at the first `key=value` override.
        if cur.line.tokens.get(cur.i + 1).map(|t| &t.kind) == Some(&TokenKind::Punct('=')) {
            break;
        }
        let (w, span) = cur.next_word("a node or subcircuit name")?;
        words.push((w.to_string(), span));
    }
    if words.len() < 2 {
        return Err(origin
            .error(format!(
                "instance {name} needs at least one node and a subcircuit name"
            ))
            .with_help("e.g. `X1 in out vdd inv` (nodes first, the .subckt name last)"));
    }
    let (subckt, subckt_span) = words.pop().expect("length checked above");
    let mut overrides: Vec<(String, f64)> = Vec::new();
    while cur.peek().is_some() {
        let (key, key_span) = cur.next_word("a parameter override (name=value)")?;
        let key = key.to_string();
        if overrides.iter().any(|(k, _)| *k == key) {
            return Err(cur.at(key_span, format!("duplicate parameter override '{key}'")));
        }
        cur.expect_punct('=')?;
        let (value, _) = cur.next_value(&format!("the value of '{key}'"))?;
        overrides.push((key, value));
    }
    cur.done()?;
    Ok(RawInstance {
        name,
        nodes: words,
        subckt,
        subckt_span,
        overrides,
    })
}

/// Flattening state for one top-level `X` card: rewrites each body
/// card of the instantiated definition (and, recursively, of nested
/// `X` cards) into `deck.elements`, dotting element names and internal
/// nodes through the instance path and re-anchoring every diagnostic
/// on the top-level instance card with a definition-local note.
struct Expansion<'a> {
    defs: &'a [SubcktDef],
    globals: &'a HashMap<String, f64>,
    used: &'a RefCell<BTreeSet<String>>,
    subckt_used: &'a RefCell<BTreeSet<String>>,
    /// The top-level `X` card every flattened diagnostic anchors to.
    anchor: &'a SourceRef,
    elements: &'a mut Vec<ElementCard>,
    /// Definition names on the current instantiation path, for
    /// recursion detection.
    stack: Vec<String>,
}

impl Expansion<'_> {
    /// The `= note:` text tying a flattened card back to its
    /// definition-local source line.
    fn note_for(&self, path: &str, def_name: &str, span: Span, text: &str) -> String {
        format!(
            "in {path} (.subckt '{def_name}'), expanded from deck:{}:{}: {}",
            span.line,
            span.col,
            text.trim()
        )
    }

    /// An anchor-located [`SourceRef`] whose note records the
    /// definition-local site `local`.
    fn anchored(&self, path: &str, def_name: &str, local: &SourceRef) -> SourceRef {
        SourceRef::new(self.anchor.span, self.anchor.line_text.clone()).with_note(self.note_for(
            path,
            def_name,
            local.span,
            &local.line_text,
        ))
    }

    /// Re-anchors a definition-local parse error on the top-level
    /// instance card, demoting the local site to a note — unless the
    /// error already carries one (it came through a deeper level).
    fn reanchor(&self, mut err: DeckError, path: &str, def_name: &str) -> DeckError {
        if err.note.is_some() {
            return err;
        }
        err.note = Some(match (&err.span, &err.line_text) {
            (Some(span), Some(text)) => self.note_for(path, def_name, *span, text),
            _ => format!("in {path} (.subckt '{def_name}')"),
        });
        err.span = Some(self.anchor.span);
        err.line_text = Some(self.anchor.line_text.clone());
        err
    }

    /// Dots the card's name through the instance path, maps its nodes
    /// and appends it to the flattened element list.
    fn push_rewritten(
        &mut self,
        card: ElementCard,
        path: &str,
        def_name: &str,
        map: &dyn Fn(&str) -> String,
    ) {
        let card = match card {
            ElementCard::Resistor(mut r) => {
                r.name = format!("{path}.{}", r.name);
                r.plus = map(&r.plus);
                r.minus = map(&r.minus);
                ElementCard::Resistor(r)
            }
            ElementCard::Capacitor(mut c) => {
                c.name = format!("{path}.{}", c.name);
                c.plus = map(&c.plus);
                c.minus = map(&c.minus);
                ElementCard::Capacitor(c)
            }
            ElementCard::Voltage(mut v) => {
                v.name = format!("{path}.{}", v.name);
                v.plus = map(&v.plus);
                v.minus = map(&v.minus);
                ElementCard::Voltage(v)
            }
            ElementCard::Current(mut i) => {
                i.name = format!("{path}.{}", i.name);
                i.plus = map(&i.plus);
                i.minus = map(&i.minus);
                ElementCard::Current(i)
            }
            ElementCard::Cnfet(mut m) => {
                m.name = format!("{path}.{}", m.name);
                m.drain = map(&m.drain);
                m.gate = map(&m.gate);
                m.source = map(&m.source);
                m.model_origin = self.anchored(path, def_name, &m.model_origin);
                ElementCard::Cnfet(m)
            }
        };
        self.elements.push(card);
    }

    /// Expands one instance: binds `nodes` to the definition's ports,
    /// builds the parameter environment (globals, then defaults in
    /// declaration order with `overrides` shadowing), and re-parses the
    /// stored body lines under it.
    fn instantiate(
        &mut self,
        path: &str,
        nodes: &[String],
        overrides: &[(String, f64)],
        subckt: &str,
        card_site: &SourceRef,
        subckt_site: &SourceRef,
    ) -> Result<(), DeckError> {
        let defs = self.defs;
        let Some(def) = defs.iter().find(|d| d.name == subckt) else {
            let available: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
            let mut err = subckt_site.error(if available.is_empty() {
                format!("no subcircuit named '{subckt}' (the deck has no .subckt definitions)")
            } else {
                format!(
                    "no subcircuit named '{subckt}'; available subcircuits: {}",
                    available.join(", ")
                )
            });
            if let Some(help) = suggest(subckt, available.into_iter()) {
                err = err.with_help(help);
            }
            return Err(err);
        };
        self.subckt_used.borrow_mut().insert(def.name.clone());
        if let Some(pos) = self.stack.iter().position(|s| s == subckt) {
            let mut chain: Vec<&str> = self.stack[pos..].iter().map(String::as_str).collect();
            chain.push(subckt);
            return Err(subckt_site
                .error(format!(
                    "recursive subcircuit instantiation: {}",
                    chain.join(" -> ")
                ))
                .with_help(
                    "a .subckt body cannot instantiate itself, directly or through \
                     other subcircuits",
                ));
        }
        if def.ports.len() != nodes.len() {
            return Err(card_site
                .error(format!(
                    "subcircuit '{}' takes {} nodes (ports: {}), but {} {} given",
                    def.name,
                    def.ports.len(),
                    def.ports.join(" "),
                    nodes.len(),
                    if nodes.len() == 1 { "is" } else { "are" }
                ))
                .with_help(format!(
                    "'.subckt {}' is defined on line {}",
                    def.name, def.origin.span.line
                )));
        }
        for (key, _) in overrides {
            if !def.defaults.iter().any(|(k, _)| k == key) {
                let declared: Vec<&str> = def.param_names().collect();
                let mut err = card_site.error(if declared.is_empty() {
                    format!(
                        "subcircuit '{}' declares no parameters, but '{key}' was given",
                        def.name
                    )
                } else {
                    format!(
                        "unknown parameter '{key}' for subcircuit '{}'; it declares {}",
                        def.name,
                        declared.join(", ")
                    )
                });
                if let Some(help) = suggest(key, declared.into_iter()) {
                    err = err.with_help(help);
                }
                return Err(err);
            }
        }
        // Instance parameter environment: globals, then the defaults in
        // declaration order (each may reference globals and earlier
        // parameters), with instance overrides shadowing defaults.
        let mut env = self.globals.clone();
        for (pname, tokidx) in &def.defaults {
            if let Some((_, v)) = overrides.iter().find(|(k, _)| k == pname) {
                env.insert(pname.clone(), *v);
                continue;
            }
            let value = {
                let mut cur = Cursor {
                    line: &def.header,
                    i: *tokidx,
                    params: &env,
                    used: self.used,
                };
                cur.next_value(&format!("the default of parameter '{pname}'"))
                    .map_err(|e| self.reanchor(e, path, &def.name))?
                    .0
            };
            env.insert(pname.clone(), value);
        }
        self.stack.push(def.name.clone());
        let mut child_names: HashMap<String, u32> = HashMap::new();
        for line in &def.body {
            if line.tokens.is_empty() {
                continue;
            }
            let mut cur = Cursor {
                line,
                i: 0,
                params: &env,
                used: self.used,
            };
            let (head, head_span) = match cur.next_word("a card") {
                Ok(ok) => ok,
                Err(e) => return Err(self.reanchor(e, path, &def.name)),
            };
            let head = head.to_string();
            let local = cur.source_ref(head_span);
            let map = |w: &str| -> String {
                if w == "0" || w == "gnd" {
                    return w.to_string();
                }
                match def.ports.iter().position(|p| p == w) {
                    Some(idx) => nodes[idx].clone(),
                    None => format!("{path}.{w}"),
                }
            };
            if head.starts_with(['x', 'X']) {
                let x = parse_x(&mut cur, head, self.anchored(path, &def.name, &local))
                    .map_err(|e| self.reanchor(e, path, &def.name))?;
                if let Some(first) = child_names.get(&x.name) {
                    return Err(self.anchored(path, &def.name, &local).error(format!(
                        "duplicate instance name '{}' in '.subckt {}' (first defined on \
                         line {first})",
                        x.name, def.name
                    )));
                }
                child_names.insert(x.name.clone(), head_span.line);
                let child_path = format!("{path}.{}", x.name);
                let child_nodes: Vec<String> = x.nodes.iter().map(|(w, _)| map(w)).collect();
                let subckt_local = cur.source_ref(x.subckt_span);
                let child_card_site = self.anchored(&child_path, &def.name, &local);
                let child_subckt_site = self.anchored(&child_path, &def.name, &subckt_local);
                self.instantiate(
                    &child_path,
                    &child_nodes,
                    &x.overrides,
                    &x.subckt,
                    &child_card_site,
                    &child_subckt_site,
                )?;
            } else {
                let origin = self.anchored(path, &def.name, &local);
                let card = match parse_element(&mut cur, head, origin) {
                    Ok(card) => card,
                    Err(e) => return Err(self.reanchor(e, path, &def.name)),
                };
                self.push_rewritten(card, path, &def.name, &map);
            }
        }
        self.stack.pop();
        Ok(())
    }
}

/// The whole-deck consistency pass.
fn validate(deck: &mut Deck) -> Result<(), DeckError> {
    // Duplicate element names.
    let mut seen: HashMap<&str, u32> = HashMap::new();
    for card in &deck.elements {
        let origin = card.origin();
        if let Some(first) = seen.get(card.name()) {
            return Err(origin.error(format!(
                "duplicate element name '{}' (first defined on line {first})",
                card.name()
            )));
        }
        seen.insert(card.name(), origin.span.line);
    }
    // Duplicate model names.
    let mut models: HashMap<&str, u32> = HashMap::new();
    for model in &deck.models {
        if let Some(first) = models.get(model.name.as_str()) {
            return Err(model.origin.error(format!(
                "duplicate model name '{}' (first defined on line {first})",
                model.name
            )));
        }
        models.insert(&model.name, model.origin.span.line);
    }
    // M-card model references (forward references are fine).
    for card in &deck.elements {
        if let ElementCard::Cnfet(m) = card {
            if !models.contains_key(m.model.as_str()) {
                let available: Vec<&str> = models.keys().copied().collect();
                let mut err = m.model_origin.error(if available.is_empty() {
                    format!(
                        "no model named '{}' (the deck has no .model cards)",
                        m.model
                    )
                } else {
                    format!(
                        "no model named '{}'; available models: {}",
                        m.model,
                        available.join(", ")
                    )
                });
                if let Some(help) = suggest(&m.model, available.into_iter()) {
                    err = err.with_help(help);
                }
                return Err(err);
            }
        }
    }
    // `.dc` sweep sources, via the circuit crate's unknown-source error.
    let sources: Vec<String> = deck.source_names().iter().map(|s| s.to_string()).collect();
    for analysis in &deck.analyses {
        if let AnalysisCard::Dc(dc) = analysis {
            if !sources.iter().any(|s| s == &dc.source) {
                let err = CircuitError::UnknownSource {
                    requested: dc.source.clone(),
                    available: sources.clone(),
                };
                return Err(dc.source_origin.circuit_error(&err));
            }
        }
    }
    // `.print` probe and `.ic` target nodes, via the unknown-node error.
    let nodes: Vec<String> = deck.node_names().iter().map(|s| s.to_string()).collect();
    let probes = deck.prints.iter().flat_map(|p| p.nodes.iter()).chain(
        deck.ics
            .iter()
            .flat_map(|ic| ic.entries.iter().map(|(p, _)| p)),
    );
    for probe in probes {
        let known =
            probe.node == "0" || probe.node == "gnd" || nodes.iter().any(|n| n == &probe.node);
        if !known {
            let err = CircuitError::UnknownNode {
                requested: probe.node.clone(),
                available: nodes.clone(),
            };
            return Err(probe.origin.circuit_error(&err));
        }
    }
    // Resolve the `.ac` stimulus: exactly one AC-flagged source card.
    if deck
        .analyses
        .iter()
        .any(|a| matches!(a, AnalysisCard::Ac(_)))
    {
        let flagged: Vec<&str> = deck
            .elements
            .iter()
            .filter_map(|card| match card {
                ElementCard::Voltage(v) if v.ac_stimulus => Some(v.name.as_str()),
                ElementCard::Current(i) if i.ac_stimulus => Some(i.name.as_str()),
                _ => None,
            })
            .collect();
        let stimulus = match flagged.as_slice() {
            [one] => one.to_string(),
            [] => {
                let origin = first_ac_origin(deck);
                return Err(origin
                    .error(".ac analysis needs a stimulus, but no source card carries the AC flag")
                    .with_help("append `AC 1` to the V or I card that drives the sweep"));
            }
            many => {
                let origin = first_ac_origin(deck);
                return Err(origin.error(format!(
                    "ambiguous .ac stimulus: {} source cards carry the AC flag ({})",
                    many.len(),
                    many.join(", ")
                )));
            }
        };
        for analysis in &mut deck.analyses {
            if let AnalysisCard::Ac(ac) = analysis {
                ac.stimulus = stimulus.clone();
            }
        }
    }
    Ok(())
}

fn first_ac_origin(deck: &Deck) -> SourceRef {
    deck.analyses
        .iter()
        .find_map(|a| match a {
            AnalysisCard::Ac(c) => Some(c.origin.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// A token cursor over one logical line.
struct Cursor<'a> {
    line: &'a LogicalLine,
    i: usize,
    params: &'a HashMap<String, f64>,
    /// Parameter names any card resolved (bare or inside `{…}` / `.param`
    /// expressions) — shared across the whole parse for the unused-param
    /// lint. A `RefCell` because the cursor also borrows `params`.
    used: &'a RefCell<BTreeSet<String>>,
}

impl<'a> Cursor<'a> {
    /// An error at `span`, rendered against the physical line the span
    /// actually points into (which may be a `+` continuation line).
    fn at(&self, span: super::Span, message: String) -> DeckError {
        DeckError::at(span, self.line.text_for(span.line), message)
    }

    /// A [`SourceRef`] capturing `span` with its own physical line.
    fn source_ref(&self, span: super::Span) -> SourceRef {
        SourceRef::new(span, self.line.text_for(span.line))
    }

    fn error_at(&self, i: usize, message: String) -> DeckError {
        self.at(self.line.span_at(i), message)
    }

    fn peek(&self) -> Option<&'a Token> {
        self.line.tokens.get(self.i)
    }

    /// Is the next token a word equal (ASCII case-insensitively) to
    /// `kw`?
    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek()
            .and_then(Token::word)
            .is_some_and(|w| w.eq_ignore_ascii_case(kw))
    }

    fn next_token(&mut self, what: &str) -> Result<&'a Token, DeckError> {
        match self.line.tokens.get(self.i) {
            Some(t) => {
                self.i += 1;
                Ok(t)
            }
            None => Err(self.error_at(self.i, format!("expected {what}, but the card ended"))),
        }
    }

    /// Next token as a bare word.
    fn next_word(&mut self, what: &str) -> Result<(&'a str, super::Span), DeckError> {
        let i = self.i;
        let t = self.next_token(what)?;
        match &t.kind {
            TokenKind::Word(w) => Ok((w, t.span)),
            TokenKind::Punct(c) => Err(self.error_at(i, format!("expected {what}, got '{c}'"))),
            TokenKind::Expr(_) => Err(self.error_at(
                i,
                format!("expected {what}, got a {{…}} expression (only values may be expressions)"),
            )),
        }
    }

    /// Next token as a numeric value: a SPICE number, a `{ … }`
    /// expression, or a bare parameter name.
    fn next_value(&mut self, what: &str) -> Result<(f64, super::Span), DeckError> {
        let i = self.i;
        let t = self.next_token(what)?;
        match &t.kind {
            TokenKind::Word(w) => {
                if let Some(v) = super::lex::parse_number(w) {
                    Ok((v, t.span))
                } else if let Some(&v) = self.params.get(w.as_str()) {
                    self.used.borrow_mut().insert(w.clone());
                    Ok((v, t.span))
                } else {
                    let mut err = self.error_at(
                        i,
                        format!("expected {what}, but '{w}' is not a number or known parameter"),
                    );
                    if let Some(help) = suggest(w, self.params.keys().map(String::as_str)) {
                        err = err.with_help(help);
                    }
                    Err(err)
                }
            }
            TokenKind::Expr(body) => {
                expr::eval_with_uses(body, self.params, &mut self.used.borrow_mut())
                    .map(|v| (v, t.span))
                    .map_err(|msg| self.error_at(i, format!("in {what} expression: {msg}")))
            }
            TokenKind::Punct(c) => Err(self.error_at(i, format!("expected {what}, got '{c}'"))),
        }
    }

    /// A strictly positive value (resistance, capacitance, length, …).
    fn next_positive(&mut self, what: &str) -> Result<f64, DeckError> {
        let (v, span) = self.next_value(what)?;
        if v > 0.0 {
            Ok(v)
        } else {
            Err(self.at(span, format!("{what} must be positive, got {v}")))
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), DeckError> {
        let i = self.i;
        let t = self.next_token(&format!("'{c}'"))?;
        if t.kind == TokenKind::Punct(c) {
            Ok(())
        } else {
            Err(self.error_at(i, format!("expected '{c}' here")))
        }
    }

    /// Errors if any token is left unconsumed.
    fn done(&mut self) -> Result<(), DeckError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => {
                let text = match &t.kind {
                    TokenKind::Word(w) => w.clone(),
                    TokenKind::Expr(b) => format!("{{{b}}}"),
                    TokenKind::Punct(c) => c.to_string(),
                };
                Err(self.error_at(self.i, format!("unexpected trailing '{text}' on this card")))
            }
        }
    }

    /// Consumes a trailing `AC [magnitude]` flag; the magnitude, when
    /// given, must be exactly 1 (responses are transfer functions of a
    /// unit phasor).
    fn take_ac_flag(&mut self) -> Result<bool, DeckError> {
        if !self.peek_keyword("ac") {
            return Ok(false);
        }
        self.i += 1;
        // Optional magnitude.
        if self.peek().is_some() {
            let (mag, span) = self.next_value("AC magnitude")?;
            if mag != 1.0 {
                return Err(self.at(
                    span,
                    format!(
                        "only unit AC stimuli are supported (responses are \
                         transfer functions); got {mag}"
                    ),
                ));
            }
        }
        Ok(true)
    }
}

fn parse_resistor(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<ResistorCard, DeckError> {
    let (plus, _) = cur.next_word("the + node")?;
    let (minus, _) = cur.next_word("the - node")?;
    let plus = plus.to_string();
    let minus = minus.to_string();
    let ohms = cur.next_positive("resistance")?;
    cur.done()?;
    Ok(ResistorCard {
        name,
        plus,
        minus,
        ohms,
        origin,
    })
}

fn parse_capacitor(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<CapacitorCard, DeckError> {
    let (plus, _) = cur.next_word("the + node")?;
    let (minus, _) = cur.next_word("the - node")?;
    let plus = plus.to_string();
    let minus = minus.to_string();
    let farads = cur.next_positive("capacitance")?;
    cur.done()?;
    Ok(CapacitorCard {
        name,
        plus,
        minus,
        farads,
        origin,
    })
}

fn parse_voltage(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<VoltageCard, DeckError> {
    let (plus, _) = cur.next_word("the + node")?;
    let (minus, _) = cur.next_word("the - node")?;
    let plus = plus.to_string();
    let minus = minus.to_string();
    let mut waveform = None;
    if cur.peek_keyword("pulse") {
        cur.i += 1;
        let args = paren_values(cur, "PULSE", 7)?;
        // SPICE order: PULSE(v1 v2 td tr tf pw per).
        waveform = Some(Waveform::Pulse {
            low: args[0],
            high: args[1],
            delay: args[2],
            rise: args[3],
            fall: args[4],
            width: args[5],
            period: args[6],
        });
    } else if cur.peek_keyword("sin") {
        cur.i += 1;
        let args = paren_values(cur, "SIN", 3)?;
        waveform = Some(Waveform::Sine {
            offset: args[0],
            amplitude: args[1],
            frequency: args[2],
        });
    } else if cur.peek_keyword("dc") {
        cur.i += 1;
        waveform = Some(Waveform::Dc(cur.next_value("the DC value")?.0));
    } else if !cur.peek_keyword("ac") && cur.peek().is_some() {
        waveform = Some(Waveform::Dc(cur.next_value("the source value")?.0));
    }
    let ac_stimulus = cur.take_ac_flag()?;
    let Some(waveform) = waveform else {
        if ac_stimulus {
            // SPICE-style: an AC-only source sits at 0 V DC.
            cur.done()?;
            return Ok(VoltageCard {
                name,
                plus,
                minus,
                waveform: Waveform::Dc(0.0),
                ac_stimulus,
                origin,
            });
        }
        return Err(origin
            .error(format!(
                "voltage source {name} needs a drive: `DC <v>`, `PULSE(v1 v2 td tr tf pw per)` \
                 or `SIN(offset amplitude freq)`"
            ))
            .with_help("e.g. `V1 in 0 DC 1` or `V1 in 0 PULSE(0 1 0 1n 1n 5n 10n)`"));
    };
    cur.done()?;
    Ok(VoltageCard {
        name,
        plus,
        minus,
        waveform,
        ac_stimulus,
        origin,
    })
}

fn parse_current(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<CurrentCard, DeckError> {
    let (plus, _) = cur.next_word("the + node")?;
    let (minus, _) = cur.next_word("the - node")?;
    let plus = plus.to_string();
    let minus = minus.to_string();
    if cur.peek_keyword("dc") {
        cur.i += 1;
    }
    let (amps, _) = cur.next_value("the current in amperes")?;
    let ac_stimulus = cur.take_ac_flag()?;
    cur.done()?;
    Ok(CurrentCard {
        name,
        plus,
        minus,
        amps,
        ac_stimulus,
        origin,
    })
}

fn parse_cnfet(
    cur: &mut Cursor<'_>,
    name: String,
    origin: SourceRef,
) -> Result<CnfetCard, DeckError> {
    let (drain, _) = cur.next_word("the drain node")?;
    let (gate, _) = cur.next_word("the gate node")?;
    let (source, _) = cur.next_word("the source node")?;
    let drain = drain.to_string();
    let gate = gate.to_string();
    let source = source.to_string();
    let (model, model_span) = cur.next_word("the model name")?;
    let model = model.to_string();
    let model_origin = cur.source_ref(model_span);
    let mut length = None;
    if cur.peek().is_some() {
        let (key, span) = cur.next_word("an instance parameter")?;
        if !key.eq_ignore_ascii_case("l") {
            return Err(cur.at(
                span,
                format!("unknown instance parameter '{key}'; M cards accept only L=<metres>"),
            ));
        }
        cur.expect_punct('=')?;
        length = Some(cur.next_positive("channel length")?);
    }
    cur.done()?;
    Ok(CnfetCard {
        name,
        drain,
        gate,
        source,
        model,
        model_origin,
        length,
        origin,
    })
}

fn parse_model(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<ModelCard, DeckError> {
    let (name, _) = cur.next_word("the model name")?;
    let name = name.to_string();
    let (kind, kind_span) = cur.next_word("the model type")?;
    if !kind.eq_ignore_ascii_case("cnfet") {
        return Err(cur.at(
            kind_span,
            format!("unknown model type '{kind}'; this simulator models 'cnfet' devices"),
        ));
    }
    let mut card = ModelCard {
        name,
        polarity: Polarity::N,
        fermi_level_ev: -0.32,
        temperature_k: 300.0,
        default_length_m: 100e-9,
        origin,
    };
    while cur.peek().is_some() {
        let (key, key_span) = cur.next_word("a model parameter")?;
        let key_lc = key.to_ascii_lowercase();
        let key = key.to_string();
        cur.expect_punct('=')?;
        match key_lc.as_str() {
            "polarity" => {
                let (v, span) = cur.next_word("the polarity (n or p)")?;
                card.polarity = match v.to_ascii_lowercase().as_str() {
                    "n" => Polarity::N,
                    "p" => Polarity::P,
                    other => {
                        return Err(
                            cur.at(span, format!("polarity must be 'n' or 'p', got '{other}'"))
                        )
                    }
                };
            }
            "ef" => card.fermi_level_ev = cur.next_value("the Fermi level in eV")?.0,
            "temp" => card.temperature_k = cur.next_positive("the temperature in kelvin")?,
            "l" => card.default_length_m = cur.next_positive("the default channel length")?,
            _ => {
                let known = ["polarity", "ef", "temp", "l"];
                let mut err = cur.at(
                    key_span,
                    format!(
                        "unknown model parameter '{key}'; cnfet models accept {}",
                        known.join(", ")
                    ),
                );
                if let Some(help) = suggest(&key, known.iter().copied()) {
                    err = err.with_help(help);
                }
                return Err(err);
            }
        }
    }
    Ok(card)
}

fn parse_option(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<OptionCard, DeckError> {
    let mut entries = Vec::new();
    while cur.peek().is_some() {
        let (key, key_span) = cur.next_word("an option name")?;
        let key_lc = key.to_ascii_lowercase();
        let key = key.to_string();
        cur.expect_punct('=')?;
        let entry = match key_lc.as_str() {
            "reltol" => OptionEntry::RelTol(cur.next_positive("the relative LTE tolerance")?),
            "abstol" => {
                OptionEntry::AbsTol(cur.next_positive("the absolute LTE tolerance in volts")?)
            }
            "dtmin" => OptionEntry::DtMin(cur.next_positive("the minimum step size in seconds")?),
            "bypass" => {
                let (v, span) = cur.next_word("0 or 1")?;
                let on = match v.to_ascii_lowercase().as_str() {
                    "1" | "on" => true,
                    "0" | "off" => false,
                    other => {
                        return Err(cur.at(span, format!("bypass must be 0 or 1, got '{other}'")))
                    }
                };
                OptionEntry::Bypass(on)
            }
            "bypassvtol" => {
                OptionEntry::BypassVtol(cur.next_positive("the bypass voltage tolerance in volts")?)
            }
            "solver" => {
                let (v, span) = cur.next_word("the solver (auto, dense or sparse)")?;
                let kind = match v.to_ascii_lowercase().as_str() {
                    "auto" => SolverKind::Auto,
                    "dense" => SolverKind::Dense,
                    "sparse" => SolverKind::Sparse,
                    other => {
                        return Err(cur.at(
                            span,
                            format!("solver must be auto, dense or sparse, got '{other}'"),
                        ))
                    }
                };
                OptionEntry::Solver(kind)
            }
            "limiting" => {
                let (v, span) = cur.next_word("0 or 1")?;
                let on = match v.to_ascii_lowercase().as_str() {
                    "1" | "on" => true,
                    "0" | "off" => false,
                    other => {
                        return Err(cur.at(span, format!("limiting must be 0 or 1, got '{other}'")))
                    }
                };
                OptionEntry::Limiting(on)
            }
            "armijo_c1" => {
                let (c, span) = cur.next_value("the Armijo sufficient-decrease constant")?;
                if !(c > 0.0 && c < 1.0) {
                    return Err(cur.at(
                        span,
                        format!("armijo_c1 must be strictly between 0 and 1, got {c}"),
                    ));
                }
                OptionEntry::ArmijoC1(c)
            }
            "ptc" => {
                let (v, span) = cur.next_word("0 or 1")?;
                let on = match v.to_ascii_lowercase().as_str() {
                    "1" | "on" => true,
                    "0" | "off" => false,
                    other => return Err(cur.at(span, format!("ptc must be 0 or 1, got '{other}'"))),
                };
                OptionEntry::Ptc(on)
            }
            _ => {
                let known = [
                    "reltol",
                    "abstol",
                    "dtmin",
                    "bypass",
                    "bypassvtol",
                    "solver",
                    "limiting",
                    "armijo_c1",
                    "ptc",
                ];
                let mut err = cur.at(
                    key_span,
                    format!(
                        "unknown option '{key}'; .option accepts {}",
                        known.join(", ")
                    ),
                );
                if let Some(help) = suggest(&key, known.iter().copied()) {
                    err = err.with_help(help);
                }
                return Err(err);
            }
        };
        entries.push(entry);
    }
    if entries.is_empty() {
        return Err(origin.error(".option needs at least one key=value entry"));
    }
    Ok(OptionCard { entries, origin })
}

fn parse_param(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<ParamCard, DeckError> {
    let (name, name_span) = cur.next_word("the parameter name")?;
    let name = name.to_string();
    if super::lex::parse_number(&name).is_some() {
        return Err(cur.at(
            name_span,
            format!("parameter name '{name}' would shadow a number"),
        ));
    }
    cur.expect_punct('=')?;
    // Reassemble the remaining tokens into one expression string and
    // hand it to the char-level expression parser.
    let first = cur.i;
    if cur.peek().is_none() {
        return Err(cur.error_at(cur.i, "expected an expression after '='".to_string()));
    }
    let mut pieces: Vec<String> = Vec::new();
    let mut last = first;
    while let Some(t) = cur.peek() {
        pieces.push(match &t.kind {
            TokenKind::Word(w) => w.clone(),
            TokenKind::Expr(b) => format!("({b})"),
            TokenKind::Punct(c) => c.to_string(),
        });
        last = cur.i;
        cur.i += 1;
    }
    let span = cur.line.span_at(first).to_span(cur.line.span_at(last));
    let text = pieces.join(" ");
    let value = expr::eval_with_uses(&text, cur.params, &mut cur.used.borrow_mut())
        .map_err(|msg| cur.at(span, format!("in .param expression: {msg}")))?;
    Ok(ParamCard {
        name,
        value,
        origin,
    })
}

fn parse_dc(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<DcCard, DeckError> {
    let (source, source_span) = cur.next_word("the swept source name")?;
    let source = source.to_string();
    let source_origin = cur.source_ref(source_span);
    let (start, _) = cur.next_value("the start value")?;
    let (stop, _) = cur.next_value("the stop value")?;
    let (step, step_span) = cur.next_value("the step")?;
    cur.done()?;
    if start != stop && (step == 0.0 || (stop - start).signum() != step.signum()) {
        return Err(cur.at(
            step_span,
            format!("step {step} cannot move the sweep from {start} to {stop}"),
        ));
    }
    Ok(DcCard {
        source,
        source_origin,
        start,
        stop,
        step,
        origin,
    })
}

fn parse_tran(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<TranCard, DeckError> {
    let (first, first_span) = cur.next_value("the stop time (or a step size)")?;
    let card = if cur.peek().is_some() {
        let (t_stop, stop_span) = cur.next_value("the stop time")?;
        cur.done()?;
        if first <= 0.0 {
            return Err(cur.at(
                first_span,
                format!("the step size must be positive, got {first}"),
            ));
        }
        if t_stop <= 0.0 {
            return Err(cur.at(
                stop_span,
                format!("the stop time must be positive, got {t_stop}"),
            ));
        }
        TranCard {
            dt: Some(first),
            t_stop,
            origin,
        }
    } else {
        if first <= 0.0 {
            return Err(cur.at(
                first_span,
                format!("the stop time must be positive, got {first}"),
            ));
        }
        TranCard {
            dt: None,
            t_stop: first,
            origin,
        }
    };
    Ok(card)
}

fn parse_ac(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<AcCard, DeckError> {
    let (scale_word, scale_span) = cur.next_word("the grid scale (dec or lin)")?;
    let scale = match scale_word.to_ascii_lowercase().as_str() {
        "dec" => AcScale::Dec,
        "lin" => AcScale::Lin,
        other => {
            return Err(cur.at(
                scale_span,
                format!("grid scale must be 'dec' or 'lin', got '{other}'"),
            ))
        }
    };
    let (points_v, points_span) = cur.next_value("the point count")?;
    if points_v < 1.0 || points_v.fract() != 0.0 {
        return Err(cur.at(
            points_span,
            format!("the point count must be a positive integer, got {points_v}"),
        ));
    }
    let (f_start, f_start_span) = cur.next_value("the start frequency")?;
    let (f_stop, f_stop_span) = cur.next_value("the stop frequency")?;
    cur.done()?;
    // Mirror the FreqGrid constraints here so an impossible sweep is a
    // *parse* error (caught by `cntfet-sim --check`), not a run-time one.
    match scale {
        AcScale::Dec => {
            if !(f_start > 0.0 && f_start.is_finite()) {
                return Err(cur.at(
                    f_start_span,
                    format!("a decade sweep needs a positive start frequency, got {f_start}"),
                ));
            }
            if !(f_stop > f_start && f_stop.is_finite()) {
                return Err(cur.at(
                    f_stop_span,
                    format!("a decade sweep needs f_stop > f_start, got [{f_start}, {f_stop}] Hz"),
                ));
            }
        }
        AcScale::Lin => {
            if !(f_start >= 0.0 && f_start.is_finite()) {
                return Err(cur.at(
                    f_start_span,
                    format!("a linear sweep needs a non-negative start frequency, got {f_start}"),
                ));
            }
            if !(f_stop >= f_start && f_stop.is_finite()) {
                return Err(cur.at(
                    f_stop_span,
                    format!("a linear sweep needs f_stop >= f_start, got [{f_start}, {f_stop}] Hz"),
                ));
            }
        }
    }
    Ok(AcCard {
        scale,
        points: points_v as usize,
        f_start,
        f_stop,
        stimulus: String::new(), // resolved by the validation pass
        origin,
    })
}

fn parse_print(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<PrintCard, DeckError> {
    let analysis = match cur.peek().and_then(Token::word) {
        Some(w) if w.eq_ignore_ascii_case("op") => Some(AnalysisKind::Op),
        Some(w) if w.eq_ignore_ascii_case("dc") => Some(AnalysisKind::Dc),
        Some(w) if w.eq_ignore_ascii_case("tran") => Some(AnalysisKind::Tran),
        Some(w) if w.eq_ignore_ascii_case("ac") => Some(AnalysisKind::Ac),
        _ => None,
    };
    if analysis.is_some() {
        cur.i += 1;
    }
    let mut nodes = Vec::new();
    while cur.peek().is_some() {
        let (word, span) = cur.next_word("a probe (v(<node>) or a node name)")?;
        if word.eq_ignore_ascii_case("v")
            && cur.peek().map(|t| &t.kind) == Some(&TokenKind::Punct('('))
        {
            cur.expect_punct('(')?;
            let (node, node_span) = cur.next_word("the probed node name")?;
            let node = node.to_string();
            cur.expect_punct(')')?;
            nodes.push(ProbeRef {
                node,
                origin: cur.source_ref(node_span),
            });
        } else {
            nodes.push(ProbeRef {
                node: word.to_string(),
                origin: cur.source_ref(span),
            });
        }
    }
    if nodes.is_empty() {
        return Err(origin.error(".print needs at least one probe, e.g. `.print dc v(out)`"));
    }
    Ok(PrintCard {
        analysis,
        nodes,
        origin,
    })
}

fn parse_ic(cur: &mut Cursor<'_>, origin: SourceRef) -> Result<super::IcCard, DeckError> {
    let mut entries = Vec::new();
    while cur.peek().is_some() {
        let (word, span) = cur.next_word("an initial condition (v(<node>)=<volts>)")?;
        let (node, node_span) = if word.eq_ignore_ascii_case("v")
            && cur.peek().map(|t| &t.kind) == Some(&TokenKind::Punct('('))
        {
            cur.expect_punct('(')?;
            let (node, node_span) = cur.next_word("the node name")?;
            let node = node.to_string();
            cur.expect_punct(')')?;
            (node, node_span)
        } else {
            (word.to_string(), span)
        };
        cur.expect_punct('=')?;
        let (volts, _) = cur.next_value("the initial voltage")?;
        entries.push((
            ProbeRef {
                node,
                origin: cur.source_ref(node_span),
            },
            volts,
        ));
    }
    if entries.is_empty() {
        return Err(origin.error(".ic needs at least one entry, e.g. `.ic v(out)=0.8`"));
    }
    Ok(super::IcCard { entries, origin })
}

/// Parses `( v v … )` with exactly `n` values.
fn paren_values(cur: &mut Cursor<'_>, what: &str, n: usize) -> Result<Vec<f64>, DeckError> {
    cur.expect_punct('(')?;
    let mut values = Vec::with_capacity(n);
    while cur.peek().map(|t| &t.kind) != Some(&TokenKind::Punct(')')) {
        if cur.peek().is_none() {
            return Err(cur.error_at(cur.i, format!("unterminated {what}(…) — missing ')'")));
        }
        values.push(cur.next_value(&format!("a {what} argument"))?.0);
    }
    cur.expect_punct(')')?;
    if values.len() != n {
        return Err(cur.error_at(
            cur.i.saturating_sub(1),
            format!(
                "{what}(…) takes exactly {n} arguments, got {}",
                values.len()
            ),
        ));
    }
    Ok(values)
}
