//! Static deck analysis: `Deck::lint` — the engine behind
//! `cntfet-sim --lint`.
//!
//! Parsing ([`Deck::parse`]) rejects everything that is *syntactically*
//! wrong; this module finds decks that parse cleanly but are broken or
//! suspicious *semantically*, before any factorisation runs. Three
//! passes:
//!
//! 1. **Topology** — pure graph analysis of the element cards:
//!    subnets with no DC path to ground (isolated behind capacitors,
//!    current sources or CNFET gates), loops of ideal voltage sources,
//!    dangling single-element nodes, elements with every terminal on
//!    one node.
//! 2. **Structural MNA** — lowers the deck and runs a maximum
//!    bipartite matching on the assembled sparsity pattern
//!    ([`crate::engine::NewtonEngine::check_dc_structure`]): a
//!    deficient matching proves the system singular for *every* choice
//!    of element values, and the unmatched unknowns are reported by
//!    name. This is the same guard [`crate::sim::Simulator`] applies at
//!    solve time — linting merely moves the verdict before the solver.
//! 3. **Hygiene** — unused `.param`/`.model`/`.subckt` definitions,
//!    parameters shadowed up to case, `.print` cards scoped to analyses the deck
//!    never runs, `.ic` without any `.tran`, and magnitudes that smell
//!    like a wrong SPICE suffix (a femto-ohm resistor).
//!
//! Every finding carries a stable [`LintCode`] (`E###` = error, the
//! deck cannot run an analysis that touches the flagged structure;
//! `W###` = warning, the deck runs but probably does not mean what it
//! says) and renders through the same span/caret/help machinery as
//! parse errors ([`DeckError`]). [`LintOptions`] reconfigures codes
//! per run: `allow` drops a code entirely, `deny` (or `deny_warnings`)
//! promotes warnings to errors — mirroring the `--allow`/`--deny`/
//! `--deny-warnings` flags of `cntfet-sim`.
//!
//! The full code table, with triggering snippets, lives in the
//! "Diagnostics reference" section of `docs/DECK_FORMAT.md`.

use super::error::{DeckError, SourceRef};
use super::{AnalysisCard, Deck, ElementCard};
use crate::engine::{NewtonEngine, NewtonOptions};
use crate::error::CircuitError;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Stable identifier of one lint rule. `E…` codes are errors (the deck
/// cannot run), `W…` codes are warnings (suspicious but runnable); see
/// [`LintCode::default_severity`]. The numeric blocks group the passes:
/// `1xx` topology/structure, `2xx` connectivity hygiene, `3xx`
/// definition/probe hygiene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `E101` — a subnet has no DC path to ground (isolated behind
    /// capacitors, current sources or CNFET gates).
    NoDcPath,
    /// `E102` — a voltage source closes a loop of ideal voltage
    /// sources (including two sources in parallel or a short-circuited
    /// source): KVL around the loop over- or under-determines it.
    VoltageLoop,
    /// `E103` — the assembled MNA pattern is structurally singular:
    /// maximum bipartite matching leaves an unknown unmatched, so no
    /// element values can make the matrix invertible.
    StructuralSingularity,
    /// `W201` — a node is connected to exactly one element (dangling).
    DanglingNode,
    /// `W202` — every terminal of an element lands on the same node,
    /// so it contributes nothing (or, for a voltage source, shorts
    /// itself).
    SelfLoop,
    /// `W301` — a `.param` is never referenced by any card.
    UnusedParam,
    /// `W302` — a `.model` is never instantiated by any `M` card.
    UnusedModel,
    /// `W303` — two `.param` names differ only in ASCII case;
    /// parameter lookup is case-sensitive, so this is almost always a
    /// typo.
    ShadowedParam,
    /// `W304` — a `.print` card is scoped to an analysis kind the deck
    /// never runs, so its probes are never produced.
    OrphanProbe,
    /// `W305` — the deck has `.ic` initial conditions but no `.tran`
    /// analysis to apply them to.
    IcWithoutTran,
    /// `W306` — an element value is outside any physically plausible
    /// range (a femto-ohm resistor, a farad-scale capacitor), which
    /// usually means a wrong SPICE suffix.
    SuspiciousMagnitude,
    /// `W307` — a `.subckt` definition is never instantiated by any
    /// `X` card (directly or through another subcircuit).
    UnusedSubckt,
}

impl LintCode {
    /// Every code, in code order — the source of truth for
    /// `--allow`/`--deny` validation and the docs test.
    pub const ALL: [LintCode; 12] = [
        LintCode::NoDcPath,
        LintCode::VoltageLoop,
        LintCode::StructuralSingularity,
        LintCode::DanglingNode,
        LintCode::SelfLoop,
        LintCode::UnusedParam,
        LintCode::UnusedModel,
        LintCode::ShadowedParam,
        LintCode::OrphanProbe,
        LintCode::IcWithoutTran,
        LintCode::SuspiciousMagnitude,
        LintCode::UnusedSubckt,
    ];

    /// The stable `E###`/`W###` text of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::NoDcPath => "E101",
            LintCode::VoltageLoop => "E102",
            LintCode::StructuralSingularity => "E103",
            LintCode::DanglingNode => "W201",
            LintCode::SelfLoop => "W202",
            LintCode::UnusedParam => "W301",
            LintCode::UnusedModel => "W302",
            LintCode::ShadowedParam => "W303",
            LintCode::OrphanProbe => "W304",
            LintCode::IcWithoutTran => "W305",
            LintCode::SuspiciousMagnitude => "W306",
            LintCode::UnusedSubckt => "W307",
        }
    }

    /// Parses an `E###`/`W###` code (ASCII case-insensitively).
    pub fn parse(text: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(text))
    }

    /// [`Severity::Error`] for `E…` codes, [`Severity::Warning`] for
    /// `W…` codes — before any [`LintOptions`] reconfiguration.
    pub fn default_severity(self) -> Severity {
        if self.as_str().starts_with('E') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a [`Finding`] is *after* [`LintOptions`] are applied:
/// errors fail `cntfet-sim --lint` (and `--check`), warnings do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable.
    Warning,
    /// The deck cannot run (or the user said `--deny`).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Per-run lint configuration, mirroring the `cntfet-sim` flags.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Codes to drop entirely (`--allow CODE`).
    pub allow: BTreeSet<LintCode>,
    /// Codes to report as errors regardless of default severity
    /// (`--deny CODE`).
    pub deny: BTreeSet<LintCode>,
    /// Promote every warning to an error (`--deny-warnings`).
    pub deny_warnings: bool,
}

/// One lint finding: a code, its effective severity, and a rendered
/// span/caret diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The rule that fired.
    pub code: LintCode,
    /// Effective severity after [`LintOptions`].
    pub severity: Severity,
    /// The span-anchored message (renders the offending line with a
    /// caret, like every other deck diagnostic).
    pub diagnostic: DeckError,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.diagnostic)
    }
}

/// The result of [`Deck::lint`]: findings in source order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    /// All findings, sorted by source position (then code).
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// `true` when no finding survived the [`LintOptions`].
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `true` when at least one finding has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// The codes present, in report order (with repeats).
    pub fn codes(&self) -> Vec<LintCode> {
        self.findings.iter().map(|f| f.code).collect()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "{finding}")?;
        }
        Ok(())
    }
}

impl Deck {
    /// Runs every lint pass over this deck: topology (no DC path to
    /// ground, voltage-source loops, dangling nodes, self-loops),
    /// structural MNA rank via maximum bipartite matching, and
    /// definition/probe hygiene. Each [`LintCode`]'s meaning — with a
    /// triggering snippet — is tabulated in the "Diagnostics
    /// reference" section of `docs/DECK_FORMAT.md`.
    ///
    /// The structural pass lowers the deck (fitting `.model` cards,
    /// exactly like `--check`); if lowering itself fails, that hard
    /// error is left to [`Deck::circuit`]/[`Deck::run`] and the
    /// structural pass is skipped rather than duplicated here.
    pub fn lint(&self, opts: &LintOptions) -> LintReport {
        let mut raw: Vec<(LintCode, DeckError)> = Vec::new();
        let flagged_nodes = topology(self, &mut raw);
        structural(self, &flagged_nodes, &mut raw);
        hygiene(self, &mut raw);
        raw.sort_by_key(|(code, d)| {
            let span = d.span.unwrap_or_default();
            (span.line, span.col, *code)
        });
        let findings = raw
            .into_iter()
            .filter(|(code, _)| !opts.allow.contains(code))
            .map(|(code, diagnostic)| {
                let mut severity = code.default_severity();
                if opts.deny.contains(&code)
                    || (opts.deny_warnings && severity == Severity::Warning)
                {
                    severity = Severity::Error;
                }
                Finding {
                    code,
                    severity,
                    diagnostic,
                }
            })
            .collect();
        LintReport { findings }
    }
}

/// Ground spelling used by the deck dialect.
fn is_ground(name: &str) -> bool {
    name == "0" || name == "gnd"
}

/// Union–find over node indices (index 0 is ground).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]]; // halving
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// The element kinds that conduct at DC and can therefore set a node's
/// voltage: resistors, voltage sources, and the CNFET drain–source
/// channel. Capacitors are open at DC, current sources cannot fix a
/// potential, and the CNFET gate is purely capacitive.
fn conductive_pairs(card: &ElementCard) -> Vec<(&str, &str)> {
    match card {
        ElementCard::Resistor(c) => vec![(&c.plus, &c.minus)],
        ElementCard::Voltage(c) => vec![(&c.plus, &c.minus)],
        ElementCard::Cnfet(c) => vec![(&c.drain, &c.source)],
        ElementCard::Capacitor(_) | ElementCard::Current(_) => Vec::new(),
    }
}

/// The non-conductive attachments of a card, as `(node, what)` pairs
/// used to phrase *why* a subnet is isolated.
fn isolating_attachments(card: &ElementCard) -> Vec<(&str, &'static str)> {
    match card {
        ElementCard::Capacitor(c) => {
            vec![(c.plus.as_str(), "capacitors"), (&c.minus, "capacitors")]
        }
        ElementCard::Current(c) => vec![
            (c.plus.as_str(), "current sources"),
            (&c.minus, "current sources"),
        ],
        ElementCard::Cnfet(c) => vec![(c.gate.as_str(), "CNFET gates")],
        ElementCard::Resistor(_) | ElementCard::Voltage(_) => Vec::new(),
    }
}

/// Interned node names: index 0 is ground (`0`/`gnd`), the rest in
/// first-appearance order.
struct NodeTable<'d> {
    names: Vec<&'d str>,
    index: HashMap<&'d str, usize>,
}

impl<'d> NodeTable<'d> {
    fn new() -> Self {
        NodeTable {
            names: vec!["0"],
            index: HashMap::new(),
        }
    }

    fn intern(&mut self, name: &'d str) -> usize {
        if is_ground(name) {
            return 0;
        }
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name);
        self.index.insert(name, i);
        i
    }

    /// Index of an already-interned name.
    fn get(&self, name: &str) -> usize {
        if is_ground(name) {
            0
        } else {
            self.index[name]
        }
    }
}

/// Pass 1: graph analysis of the cards. Returns the node names already
/// reported by an `E101` so the structural pass does not repeat them.
fn topology(deck: &Deck, raw: &mut Vec<(LintCode, DeckError)>) -> BTreeSet<String> {
    let mut nodes = NodeTable::new();
    let card_nodes: Vec<Vec<usize>> = deck
        .elements
        .iter()
        .map(|card| card.nodes().into_iter().map(|n| nodes.intern(n)).collect())
        .collect();
    let n = nodes.names.len();

    // W202: every terminal of a card on one node.
    for (card, idxs) in deck.elements.iter().zip(&card_nodes) {
        if idxs.len() > 1 && idxs.iter().all(|&i| i == idxs[0]) {
            raw.push((
                LintCode::SelfLoop,
                card.origin()
                    .error(format!(
                        "every terminal of '{}' lands on node '{}'",
                        card.name(),
                        nodes.names[idxs[0]]
                    ))
                    .with_help(
                        "the element has no effect (a self-shorted source even contradicts \
                         itself); connect distinct nodes or delete the card",
                    ),
            ));
        }
    }

    // Which cards touch each node, in deck order.
    let mut touch_count = vec![0usize; n];
    let mut first_card = vec![usize::MAX; n];
    for (k, idxs) in card_nodes.iter().enumerate() {
        let distinct: BTreeSet<usize> = idxs.iter().copied().collect();
        for i in distinct {
            touch_count[i] += 1;
            if first_card[i] == usize::MAX {
                first_card[i] = k;
            }
        }
    }

    // Components over DC-conductive edges only.
    let mut uf = UnionFind::new(n);
    for card in &deck.elements {
        for (a, b) in conductive_pairs(card) {
            let (ia, ib) = (nodes.get(a), nodes.get(b));
            uf.union(ia, ib);
        }
    }

    // E101: every component that does not reach ground.
    let ground_root = uf.find(0);
    let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 1..n {
        let root = uf.find(i);
        if root != ground_root {
            components.entry(root).or_default().push(i);
        }
    }
    let mut flagged = BTreeSet::new();
    let mut ordered: Vec<Vec<usize>> = components.into_values().collect();
    ordered.sort_by_key(|mems| mems.iter().map(|&i| first_card[i]).min());
    for mems in ordered {
        // What (non-conductive) element kinds touch the subnet — the
        // "why" of the isolation.
        let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
        for card in &deck.elements {
            for (node, what) in isolating_attachments(card) {
                if uf.find(nodes.get(node)) != ground_root && mems.contains(&nodes.get(node)) {
                    kinds.insert(what);
                }
            }
        }
        let anchor = mems
            .iter()
            .map(|&i| first_card[i])
            .min()
            .expect("component is non-empty");
        let list = mems
            .iter()
            .map(|&i| format!("'{}'", nodes.names[i]))
            .collect::<Vec<_>>()
            .join(", ");
        let message = if mems.len() == 1 {
            format!("node {list} has no DC path to ground")
        } else {
            format!("nodes {list} have no DC path to ground")
        };
        let help = if kinds.is_empty() {
            "the subnet is fully disconnected from ground; tie it down with a resistor \
             or voltage source"
                .to_string()
        } else {
            format!(
                "it is reachable only through {}, which cannot set a DC voltage; add a \
                 path to ground through a resistor, voltage source or CNFET channel",
                kinds.into_iter().collect::<Vec<_>>().join(" and ")
            )
        };
        for &i in &mems {
            flagged.insert(nodes.names[i].to_string());
        }
        raw.push((
            LintCode::NoDcPath,
            deck.elements[anchor]
                .origin()
                .error(message)
                .with_help(help),
        ));
    }

    // W201: a (grounded) node touched by exactly one card. Nodes inside
    // an E101 component already got a stronger diagnosis.
    for i in 1..n {
        if touch_count[i] == 1 && uf.find(i) == ground_root {
            let card = &deck.elements[first_card[i]];
            raw.push((
                LintCode::DanglingNode,
                card.origin()
                    .error(format!(
                        "node '{}' is connected to only one element ('{}')",
                        nodes.names[i],
                        card.name()
                    ))
                    .with_help("a dangling node usually means a typo in another card's node name"),
            ));
        }
    }

    // E102: a voltage source whose terminals are already connected by a
    // chain of ideal voltage sources closes an over-determined loop.
    let mut vf = UnionFind::new(n);
    for card in &deck.elements {
        if let ElementCard::Voltage(v) = card {
            let (a, b) = (nodes.get(&v.plus), nodes.get(&v.minus));
            if vf.find(a) == vf.find(b) {
                raw.push((
                    LintCode::VoltageLoop,
                    card.origin()
                        .error(format!(
                            "voltage source '{}' closes a loop of ideal voltage sources",
                            v.name
                        ))
                        .with_help(
                            "KVL around the loop is already fixed by the other sources; \
                             remove one or add series resistance",
                        ),
                ));
            } else {
                vf.union(a, b);
            }
        }
    }

    flagged
}

/// Pass 2: lower the deck and run the engine's structural-rank guard
/// ([`NewtonEngine::check_dc_structure`]). Nodes already reported by
/// `E101` are skipped — the topology message explains those better —
/// so `E103` surfaces the cases only the matching can see (e.g. an
/// unmatched source branch current).
fn structural(deck: &Deck, flagged: &BTreeSet<String>, raw: &mut Vec<(LintCode, DeckError)>) {
    if deck.elements.is_empty() {
        return;
    }
    // Lowering fits `.model` cards; a fit failure is a hard error that
    // `--check`/`run` reports — not a lint finding to duplicate.
    let Ok(circuit) = deck.circuit() else {
        return;
    };
    let mut engine = NewtonEngine::new(NewtonOptions::default());
    let Err(CircuitError::StructurallySingular { nodes: unknowns }) =
        engine.check_dc_structure(&circuit)
    else {
        return;
    };
    for name in unknowns {
        let inner = name
            .strip_prefix("i(")
            .or_else(|| name.strip_prefix("internal("))
            .and_then(|s| s.strip_suffix(')'));
        let (anchor, what) = match inner {
            Some(elem) => (
                deck.elements.iter().find(|c| c.name() == elem),
                format!("'{name}'"),
            ),
            None => {
                if flagged.contains(&name) {
                    continue;
                }
                (
                    deck.elements
                        .iter()
                        .find(|c| c.nodes().iter().any(|n| *n == name)),
                    format!("the voltage of node '{name}'"),
                )
            }
        };
        let origin = anchor.map_or_else(SourceRef::default, |c| c.origin().clone());
        raw.push((
            LintCode::StructuralSingularity,
            origin
                .error(format!(
                    "structurally singular MNA system: no equation can determine {what}"
                ))
                .with_help(
                    "maximum matching on the assembled pattern leaves this unknown \
                     uncovered, so no element values can make the system solvable",
                ),
        ));
    }
}

/// Pass 3: definition/probe hygiene.
fn hygiene(deck: &Deck, raw: &mut Vec<(LintCode, DeckError)>) {
    // W301: `.param` never referenced.
    for p in &deck.params {
        if !deck.param_uses.contains(&p.name) {
            raw.push((
                LintCode::UnusedParam,
                p.origin
                    .error(format!("parameter '{}' is never used", p.name))
                    .with_help("reference it as a bare value or inside {…}, or delete the card"),
            ));
        }
    }
    // W303: `.param` names that collide up to ASCII case.
    for (j, pj) in deck.params.iter().enumerate() {
        if let Some(pi) = deck.params[..j]
            .iter()
            .find(|pi| pi.name.eq_ignore_ascii_case(&pj.name))
        {
            raw.push((
                LintCode::ShadowedParam,
                pj.origin
                    .error(format!(
                        "parameter '{}' differs from '{}' (line {}) only in case",
                        pj.name, pi.name, pi.origin.span.line
                    ))
                    .with_help("parameter lookup is case-sensitive; rename one of them"),
            ));
        }
    }
    // W302: `.model` never instantiated.
    let instantiated: BTreeSet<&str> = deck
        .elements
        .iter()
        .filter_map(|c| match c {
            ElementCard::Cnfet(m) => Some(m.model.as_str()),
            _ => None,
        })
        .collect();
    for m in &deck.models {
        if !instantiated.contains(m.name.as_str()) {
            raw.push((
                LintCode::UnusedModel,
                m.origin
                    .error(format!("model '{}' is never instantiated", m.name))
                    .with_help("no M card references it; add an instance or delete the card"),
            ));
        }
    }
    // W307: `.subckt` never instantiated (directly or transitively).
    for def in &deck.subckts {
        if !deck.subckt_uses.contains(&def.name) {
            raw.push((
                LintCode::UnusedSubckt,
                def.origin
                    .error(format!("subcircuit '{}' is never instantiated", def.name))
                    .with_help("no X card references it; add an instance or delete the block"),
            ));
        }
    }
    // W304: `.print` scoped to an analysis the deck never runs.
    for p in &deck.prints {
        if let Some(kind) = p.analysis {
            if !deck.analyses.iter().any(|a| a.kind() == kind) {
                let kw = kind.keyword();
                raw.push((
                    LintCode::OrphanProbe,
                    p.origin
                        .error(format!(
                            ".print {kw} selects probes, but the deck has no .{kw} analysis"
                        ))
                        .with_help("add the analysis card or drop the scope keyword"),
                ));
            }
        }
    }
    // W305: `.ic` with nothing to apply it to.
    if !deck
        .analyses
        .iter()
        .any(|a| matches!(a, AnalysisCard::Tran(_)))
    {
        for ic in &deck.ics {
            raw.push((
                LintCode::IcWithoutTran,
                ic.origin
                    .error(
                        ".ic sets transient initial conditions, but the deck has no .tran analysis",
                    )
                    .with_help("add a .tran card or remove the .ic"),
            ));
        }
    }
    // W306: magnitudes that smell like a wrong SPICE suffix.
    for card in &deck.elements {
        match card {
            ElementCard::Resistor(r) if !(1e-3..=1e12).contains(&r.ohms) => {
                raw.push((
                    LintCode::SuspiciousMagnitude,
                    r.origin
                        .error(format!(
                            "resistance of '{}' is {:e} Ω — outside the plausible range \
                             1 mΩ … 1 TΩ",
                            r.name, r.ohms
                        ))
                        .with_help(
                            "check the SPICE suffix: 'f' is femto (1e-15) and 'meg' is 1e6 \
                             ('m' alone is milli)",
                        ),
                ));
            }
            ElementCard::Capacitor(c) if !(1e-18..=1.0).contains(&c.farads) => {
                raw.push((
                    LintCode::SuspiciousMagnitude,
                    c.origin
                        .error(format!(
                            "capacitance of '{}' is {:e} F — outside the plausible range \
                             1 aF … 1 F",
                            c.name, c.farads
                        ))
                        .with_help(
                            "check the SPICE suffix: 'f' is femto (1e-15) and 'meg' is 1e6 \
                             ('m' alone is milli)",
                        ),
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> LintReport {
        Deck::parse(text)
            .expect("test deck parses")
            .lint(&LintOptions::default())
    }

    const CLEAN: &str = "divider\nV1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n.op\n";

    #[test]
    fn clean_deck_has_no_findings() {
        let report = lint(CLEAN);
        assert!(report.is_clean(), "{report}");
        assert!(!report.has_errors());
    }

    #[test]
    fn code_table_round_trips() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
            assert_eq!(
                LintCode::parse(&code.as_str().to_ascii_lowercase()),
                Some(code)
            );
        }
        assert_eq!(LintCode::parse("E999"), None);
        assert!(LintCode::NoDcPath.default_severity() == Severity::Error);
        assert!(LintCode::DanglingNode.default_severity() == Severity::Warning);
    }

    #[test]
    fn e101_capacitor_isolated_node() {
        let report = lint("t\nV1 in 0 DC 1\nR1 in 0 1k\nC1 in mid 1p\n.op\n");
        let codes = report.codes();
        assert_eq!(codes, [LintCode::NoDcPath], "{report}");
        let f = &report.findings[0];
        assert_eq!(f.severity, Severity::Error);
        assert!(f.diagnostic.message.contains("'mid'"), "{f}");
        assert_eq!(f.diagnostic.span.unwrap().line, 4); // the C card
        assert!(
            f.diagnostic.help.as_deref().unwrap().contains("capacitors"),
            "{f}"
        );
        assert!(report.has_errors());
    }

    #[test]
    fn e101_current_source_cutset() {
        let report = lint("t\nI1 0 top 1u\nC2 top 0 1p\n.op\n");
        assert_eq!(report.codes(), [LintCode::NoDcPath], "{report}");
        let help = report.findings[0].diagnostic.help.as_deref().unwrap();
        assert!(help.contains("capacitors and current sources"), "{help}");
    }

    #[test]
    fn e101_merges_a_multi_node_subnet() {
        let report = lint("t\nV1 in 0 DC 1\nC1 in a 1p\nR2 a b 1k\n.op\n");
        assert_eq!(report.codes(), [LintCode::NoDcPath], "{report}");
        let msg = &report.findings[0].diagnostic.message;
        assert!(msg.contains("nodes 'a', 'b'"), "{msg}");
    }

    #[test]
    fn e102_parallel_sources_then_e103_branch_current() {
        let report = lint("t\nV1 a 0 DC 1\nV2 a 0 DC 2\nR1 a 0 1k\n.op\n");
        assert_eq!(
            report.codes(),
            [LintCode::VoltageLoop, LintCode::StructuralSingularity],
            "{report}"
        );
        assert!(report.findings[0].diagnostic.message.contains("'V2'"));
        assert_eq!(report.findings[0].diagnostic.span.unwrap().line, 3);
        assert!(report.findings[1].diagnostic.message.contains("i(V2)"));
    }

    #[test]
    fn e102_three_source_loop() {
        // Three sources around a–b–ground: their constraint rows span
        // only two node columns, so the matching also leaves a branch
        // current unmatched — E102 names the loop, E103 the symptom.
        let report = lint("t\nV1 a 0 DC 1\nV2 b a DC 1\nV3 b 0 DC 2\nR1 a 0 1k\nR2 b 0 1k\n.op\n");
        assert_eq!(
            report.codes(),
            [LintCode::VoltageLoop, LintCode::StructuralSingularity],
            "{report}"
        );
        assert!(report.findings[0].diagnostic.message.contains("'V3'"));
    }

    #[test]
    fn w201_dangling_node() {
        let report = lint("t\nV1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\nR3 out x 1k\n.op\n");
        assert_eq!(report.codes(), [LintCode::DanglingNode], "{report}");
        let f = &report.findings[0];
        assert_eq!(f.severity, Severity::Warning);
        assert!(f.diagnostic.message.contains("'x'"), "{f}");
        assert!(!report.has_errors());
    }

    #[test]
    fn w202_self_loop_element() {
        let report = lint("t\nV1 a 0 DC 1\nR1 a a 1k\nR2 a 0 1k\n.op\n");
        assert_eq!(report.codes(), [LintCode::SelfLoop], "{report}");
        assert!(report.findings[0].diagnostic.message.contains("'R1'"));
    }

    #[test]
    fn w301_w303_param_hygiene() {
        let report = lint("t\n.param vdd = 1\n.param VDD = 2\nV1 a 0 DC vdd\nR1 a 0 1k\n.op\n");
        assert_eq!(
            report.codes(),
            [LintCode::UnusedParam, LintCode::ShadowedParam],
            "{report}"
        );
        assert!(report.findings[0].diagnostic.message.contains("'VDD'"));
        assert!(report.findings[1].diagnostic.message.contains("line 2"));
    }

    #[test]
    fn w301_sees_uses_inside_expressions() {
        let report = lint("t\n.param vdd = 1\nV1 a 0 DC {vdd * 2}\nR1 a 0 1k\n.op\n");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn w302_unused_model() {
        let report = lint("t\n.model mN cnfet\nV1 a 0 DC 1\nR1 a 0 1k\n.op\n");
        assert_eq!(report.codes(), [LintCode::UnusedModel], "{report}");
        assert!(report.findings[0].diagnostic.message.contains("'mN'"));
    }

    #[test]
    fn w304_orphan_scoped_print() {
        let report = lint("t\nV1 a 0 DC 1\nR1 a 0 1k\n.op\n.print tran v(a)\n");
        assert_eq!(report.codes(), [LintCode::OrphanProbe], "{report}");
        assert!(report.findings[0].diagnostic.message.contains(".tran"));
    }

    #[test]
    fn w305_ic_without_tran() {
        let report = lint("t\nV1 a 0 DC 1\nR1 a 0 1k\n.op\n.ic v(a)=0.5\n");
        assert_eq!(report.codes(), [LintCode::IcWithoutTran], "{report}");
        let with_tran = lint("t\nV1 a 0 DC 1\nR1 a 0 1k\n.tran 1u\n.ic v(a)=0.5\n");
        assert!(with_tran.is_clean(), "{with_tran}");
    }

    #[test]
    fn w306_suspicious_magnitudes() {
        // '1f' on a resistor is a femto-ohm — almost certainly a typo.
        let report = lint("t\nV1 a 0 DC 1\nR1 a 0 1f\n.op\n");
        assert_eq!(report.codes(), [LintCode::SuspiciousMagnitude], "{report}");
        let report = lint("t\nV1 a 0 DC 1\nR1 a 0 1k\nC1 a 0 10\n.tran 1u\n");
        assert_eq!(report.codes(), [LintCode::SuspiciousMagnitude], "{report}");
    }

    #[test]
    fn options_allow_deny_and_deny_warnings() {
        let deck = Deck::parse("t\nV1 a 0 DC 1\nR1 a 0 1k\nR2 a x 1k\n.op\n").unwrap();
        let base = deck.lint(&LintOptions::default());
        assert_eq!(base.codes(), [LintCode::DanglingNode]);
        assert!(!base.has_errors());

        let mut allow = LintOptions::default();
        allow.allow.insert(LintCode::DanglingNode);
        assert!(deck.lint(&allow).is_clean());

        let mut deny = LintOptions::default();
        deny.deny.insert(LintCode::DanglingNode);
        let denied = deck.lint(&deny);
        assert_eq!(denied.findings[0].severity, Severity::Error);
        assert!(denied.has_errors());

        let strict = LintOptions {
            deny_warnings: true,
            ..LintOptions::default()
        };
        assert!(deck.lint(&strict).has_errors());
    }

    #[test]
    fn findings_render_with_code_and_caret() {
        let report = lint("t\nV1 in 0 DC 1\nR1 in 0 1k\nC1 in mid 1p\n.op\n");
        let text = report.to_string();
        assert!(text.contains("error[E101]"), "{text}");
        assert!(text.contains("deck:4:"), "{text}");
        assert!(text.contains("C1 in mid 1p"), "{text}");
        assert!(text.contains("= help:"), "{text}");
    }
}
