//! The server's shared state: the job table, the work queue, the
//! warm caches and the worker pool.
//!
//! A [`Hub`] is shared (`Arc`) between every connection handler and
//! `N` worker threads. Handlers enqueue deck text ([`Hub::submit`]);
//! workers pop jobs and run them through
//! [`Deck::run_streaming`](cntfet_circuit::deck::Deck) against the
//! hub's process-wide [`ModelCache`] and [`EnginePool`], appending
//! serialized [`RunEvent`]s to the job's event log as they land — the
//! backing store of the `stream` op. One mutex + condvar pair guards
//! the table; every state change broadcasts, waking queue-waiting
//! workers and result/stream-waiting handlers alike (contention is
//! bounded by worker count, not job count).
//!
//! Jobs are evicted when their `result` is retrieved (default), and a
//! bounded number of unretrieved terminal jobs is retained
//! ([`RETAINED_JOBS`]) so a fire-and-forget client cannot grow the
//! table without bound.

use crate::json::Json;
use crate::proto::ErrorCode;
use cntfet_circuit::deck::{
    AnalysisReport, CacheStats, CardStats, Deck, DeckRun, EnginePool, ModelCache, RunContext,
    RunEvent,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How many unretrieved terminal jobs the table retains before
/// evicting the oldest.
pub const RETAINED_JOBS: usize = 1024;

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; its result is available.
    Done,
    /// Failed (parse or run error); code and message are available.
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobState {
    /// The wire text of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

#[derive(Debug)]
struct Job {
    deck_text: String,
    state: JobState,
    cancel: Arc<AtomicBool>,
    /// Serialized stream events, in emission order; the event index is
    /// the stream sequence number. A terminal event (`done` / `error`
    /// / `cancelled`) is always appended last.
    events: Vec<String>,
    /// Rendered result members (`title`, `reports`, `caches`) once
    /// `Done`.
    result: Option<Json>,
    /// Error code and message once `Failed`.
    error: Option<(ErrorCode, String)>,
}

#[derive(Debug, Default)]
struct Table {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    next_id: u64,
    running: usize,
    /// Terminal-but-unretrieved job ids, oldest first (the eviction
    /// order).
    retired: VecDeque<u64>,
    /// Jobs completed over the server's lifetime, by final state.
    finished: [u64; 3], // done, failed, cancelled
    /// Lifetime convergence-aid totals summed over successful runs:
    /// limiter clamps, Armijo backtracks, PTC stages.
    convergence: [u64; 3],
}

impl Table {
    fn retire(&mut self, id: u64, state: JobState) {
        debug_assert!(state.terminal());
        let slot = match state {
            JobState::Done => 0,
            JobState::Failed => 1,
            _ => 2,
        };
        self.finished[slot] += 1;
        self.retired.push_back(id);
        while self.retired.len() > RETAINED_JOBS {
            if let Some(old) = self.retired.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }
}

/// The shared server state. See the [module docs](self).
#[derive(Debug)]
pub struct Hub {
    table: Mutex<Table>,
    /// Woken on job *state* transitions (submit, settle, cancel,
    /// shutdown) — what workers and `result` waiters care about.
    state_changed: Condvar,
    /// Woken on every appended stream event. Kept separate from
    /// `state_changed` so a long transient's per-step row events don't
    /// spuriously wake result-waiting clients and idle workers
    /// thousands of times per job — that wakeup storm is measurable in
    /// warm throughput.
    events_changed: Condvar,
    /// Process-wide fitted-model cache, shared by every job.
    pub models: ModelCache,
    /// Process-wide warm-engine pool, shared by every job.
    pub engines: EnginePool,
    shutdown: AtomicBool,
    workers: usize,
}

impl Hub {
    /// Creates a hub that will be served by `workers` worker threads
    /// (recorded for the `stats` op; spawn them with
    /// [`spawn_workers`]).
    pub fn new(workers: usize) -> Arc<Hub> {
        Arc::new(Hub {
            table: Mutex::new(Table::default()),
            state_changed: Condvar::new(),
            events_changed: Condvar::new(),
            models: ModelCache::new(),
            engines: EnginePool::new(),
            shutdown: AtomicBool::new(false),
            workers,
        })
    }

    /// `true` once [`Hub::shutdown`] ran.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Accepts a deck for execution and returns its job id.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::ShuttingDown`] after [`Hub::shutdown`].
    pub fn submit(&self, deck_text: String) -> Result<u64, (ErrorCode, String)> {
        if self.is_shutting_down() {
            return Err((
                ErrorCode::ShuttingDown,
                "the server is shutting down and accepts no new jobs".into(),
            ));
        }
        let mut table = self.lock();
        table.next_id += 1;
        let id = table.next_id;
        table.jobs.insert(
            id,
            Job {
                deck_text,
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                events: Vec::new(),
                result: None,
                error: None,
            },
        );
        table.queue.push_back(id);
        self.state_changed.notify_all();
        Ok(id)
    }

    /// Requests cancellation. Queued jobs cancel immediately; running
    /// jobs get their flag raised and cancel within one accepted
    /// transient step / Newton iteration / AC point. Returns the
    /// job's state as of this call.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] for unknown or evicted ids.
    pub fn cancel(&self, id: u64) -> Result<JobState, (ErrorCode, String)> {
        let mut table = self.lock();
        let Some(job) = table.jobs.get_mut(&id) else {
            return Err(unknown_job(id));
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.cancel.store(true, Ordering::SeqCst);
                job.events.push(terminal_event("cancelled", None));
                table.queue.retain(|&q| q != id);
                table.retire(id, JobState::Cancelled);
                self.state_changed.notify_all();
                self.events_changed.notify_all();
                Ok(JobState::Cancelled)
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::SeqCst);
                Ok(JobState::Running)
            }
            state => Ok(state),
        }
    }

    /// The job's current state, event count and (for failed jobs) its
    /// error, as a response object.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] for unknown or evicted ids.
    pub fn status(&self, id: u64) -> Result<Json, (ErrorCode, String)> {
        let table = self.lock();
        let Some(job) = table.jobs.get(&id) else {
            return Err(unknown_job(id));
        };
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("job", Json::num(id)),
            ("state", Json::str(job.state.as_str())),
            ("events", Json::num(job.events.len() as u64)),
        ];
        if let Some((code, message)) = &job.error {
            pairs.push(("code", Json::str(code.as_str())));
            pairs.push(("error", Json::str(message.clone())));
        }
        Ok(Json::obj(pairs))
    }

    /// The job's result, blocking until it reaches a terminal state
    /// when `wait` is set. On success the job is evicted unless `keep`
    /// is set (a kept job can be re-fetched or streamed later).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] for unknown ids; the job's own
    /// [`ErrorCode`] for failed jobs; [`ErrorCode::BadRequest`] when
    /// the job is still in flight and `wait` is unset. Cancelled jobs
    /// report [`ErrorCode::RunError`] with a `"cancelled"` message.
    pub fn result(&self, id: u64, wait: bool, keep: bool) -> Result<Json, (ErrorCode, String)> {
        let mut table = self.lock();
        loop {
            let Some(job) = table.jobs.get(&id) else {
                return Err(unknown_job(id));
            };
            match job.state {
                JobState::Done => break,
                JobState::Failed => {
                    let (code, message) = job.error.clone().unwrap_or((
                        ErrorCode::RunError,
                        "job failed without a recorded error".into(),
                    ));
                    return Err((code, message));
                }
                JobState::Cancelled => {
                    return Err((ErrorCode::RunError, format!("job {id} was cancelled")));
                }
                _ if !wait => {
                    return Err((
                        ErrorCode::BadRequest,
                        format!(
                            "job {id} is {}; pass \"wait\": true to block",
                            job.state.as_str()
                        ),
                    ));
                }
                _ => table = self.wait_state(table),
            }
        }
        let result = if keep {
            table.jobs.get(&id).and_then(|j| j.result.clone())
        } else {
            table.retired.retain(|&r| r != id);
            table.jobs.remove(&id).and_then(|j| j.result)
        };
        let Some(Json::Obj(members)) = result else {
            return Err((
                ErrorCode::RunError,
                format!("job {id} finished without a result payload"),
            ));
        };
        let mut pairs = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("job".to_string(), Json::num(id)),
            ("state".to_string(), Json::str("done")),
        ];
        pairs.extend(members);
        Ok(Json::Obj(pairs))
    }

    /// The next stream events after sequence number `from`, blocking
    /// until at least one is available. Returns the events (each a
    /// pre-serialized JSON object) and `true` when the log is complete
    /// (the last returned event is the terminal one).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] for unknown or evicted ids.
    pub fn next_events(
        &self,
        id: u64,
        from: usize,
    ) -> Result<(Vec<String>, bool), (ErrorCode, String)> {
        let mut table = self.lock();
        loop {
            let Some(job) = table.jobs.get(&id) else {
                return Err(unknown_job(id));
            };
            if job.events.len() > from {
                let events = job.events[from..].to_vec();
                let done = job.state.terminal();
                return Ok((events, done));
            }
            if job.state.terminal() {
                return Ok((Vec::new(), true));
            }
            table = self.wait_events(table);
        }
    }

    /// Server-level statistics: job counts, worker count, cache
    /// hit/miss counters — the `stats` op response.
    pub fn stats(&self) -> Json {
        let table = self.lock();
        let queued = table.queue.len() as u64;
        let running = table.running as u64;
        let [done, failed, cancelled] = table.finished;
        let [limiter_clamps, armijo_backtracks, ptc_steps] = table.convergence;
        drop(table);
        let models = self.models.stats();
        let engines = self.engines.stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "jobs",
                Json::obj(vec![
                    ("queued", Json::num(queued)),
                    ("running", Json::num(running)),
                    ("done", Json::num(done)),
                    ("failed", Json::num(failed)),
                    ("cancelled", Json::num(cancelled)),
                ]),
            ),
            ("workers", Json::num(self.workers as u64)),
            (
                "convergence",
                Json::obj(vec![
                    ("limiter_clamps", Json::num(limiter_clamps)),
                    ("armijo_backtracks", Json::num(armijo_backtracks)),
                    ("ptc_steps", Json::num(ptc_steps)),
                ]),
            ),
            (
                "caches",
                Json::obj(vec![
                    ("models", cache_stats_json(models, self.models.len() as u64)),
                    (
                        "engines",
                        cache_stats_json(engines, self.engines.len() as u64),
                    ),
                ]),
            ),
        ])
    }

    /// Initiates shutdown: no new jobs are accepted and idle workers
    /// exit once the queue drains. With `abort`, queued jobs are
    /// cancelled immediately and running jobs get their cancel flags
    /// raised, so the drain completes within one accepted step per
    /// worker.
    pub fn shutdown(&self, abort: bool) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut table = self.lock();
        if abort {
            while let Some(id) = table.queue.pop_front() {
                if let Some(job) = table.jobs.get_mut(&id) {
                    job.state = JobState::Cancelled;
                    job.cancel.store(true, Ordering::SeqCst);
                    job.events.push(terminal_event("cancelled", None));
                    table.retire(id, JobState::Cancelled);
                }
            }
            for job in table.jobs.values_mut() {
                if job.state == JobState::Running {
                    job.cancel.store(true, Ordering::SeqCst);
                }
            }
        }
        self.state_changed.notify_all();
        self.events_changed.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Table> {
        self.table.lock().expect("hub mutex poisoned")
    }

    fn wait_state<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, Table>,
    ) -> std::sync::MutexGuard<'a, Table> {
        self.state_changed.wait(guard).expect("hub mutex poisoned")
    }

    fn wait_events<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, Table>,
    ) -> std::sync::MutexGuard<'a, Table> {
        self.events_changed.wait(guard).expect("hub mutex poisoned")
    }

    /// Worker side: pops the next queued job, blocking. Returns `None`
    /// when the hub is shutting down and the queue is empty.
    fn next_job(&self) -> Option<(u64, String, Arc<AtomicBool>)> {
        let mut table = self.lock();
        loop {
            if let Some(id) = table.queue.pop_front() {
                if let Some(job) = table.jobs.get_mut(&id) {
                    job.state = JobState::Running;
                    table.running += 1;
                    let job = &table.jobs[&id];
                    return Some((id, job.deck_text.clone(), Arc::clone(&job.cancel)));
                }
                continue; // evicted while queued (cancel raced); skip
            }
            if self.is_shutting_down() {
                return None;
            }
            table = self.wait_state(table);
        }
    }

    /// Folds a finished run's convergence-aid counters into the
    /// lifetime totals reported by the `stats` op.
    fn record_convergence(&self, run: &DeckRun) {
        let mut totals = [0u64; 3];
        for report in &run.reports {
            totals[0] += report.stats.limiter_clamps;
            totals[1] += report.stats.armijo_backtracks;
            totals[2] += report.stats.ptc_steps;
        }
        let mut table = self.lock();
        for (slot, add) in table.convergence.iter_mut().zip(totals) {
            *slot += add;
        }
    }

    fn push_event(&self, id: u64, event: String) {
        let mut table = self.lock();
        if let Some(job) = table.jobs.get_mut(&id) {
            job.events.push(event);
        }
        self.events_changed.notify_all();
    }

    fn settle(&self, id: u64, state: JobState, outcome: SettleOutcome) {
        let mut table = self.lock();
        table.running = table.running.saturating_sub(1);
        if let Some(job) = table.jobs.get_mut(&id) {
            job.state = state;
            job.deck_text.clear(); // the text is no longer needed; drop the bytes
            match outcome {
                SettleOutcome::Result(result) => {
                    job.events.push(terminal_event("done", None));
                    job.result = Some(result);
                }
                SettleOutcome::Error(code, message) => {
                    job.events
                        .push(terminal_event("error", Some((code, &message))));
                    job.error = Some((code, message));
                }
                SettleOutcome::Cancelled => {
                    job.events.push(terminal_event("cancelled", None));
                }
            }
            table.retire(id, state);
        }
        self.state_changed.notify_all();
        self.events_changed.notify_all();
    }
}

enum SettleOutcome {
    Result(Json),
    Error(ErrorCode, String),
    Cancelled,
}

fn unknown_job(id: u64) -> (ErrorCode, String) {
    (ErrorCode::UnknownJob, format!("no job with id {id}"))
}

fn terminal_event(kind: &str, error: Option<(ErrorCode, &str)>) -> String {
    let mut pairs = vec![("type", Json::str(kind))];
    if let Some((code, message)) = error {
        pairs.push(("code", Json::str(code.as_str())));
        pairs.push(("error", Json::str(message)));
    }
    Json::obj(pairs).render()
}

fn cache_stats_json(stats: CacheStats, size: u64) -> Json {
    Json::obj(vec![
        ("hits", Json::num(stats.hits)),
        ("misses", Json::num(stats.misses)),
        ("size", Json::num(size)),
    ])
}

/// Renders one [`RunEvent`] as its wire JSON. Row batches become CSV
/// *lines* (the deck layer's exact `{v:e}` cell format, no header), so
/// streamed samples are bitwise-identical to the final report CSV.
pub fn render_event(event: &RunEvent) -> String {
    match event {
        RunEvent::ReportStart(h) => Json::obj(vec![
            ("type", Json::str("start")),
            ("index", Json::num(h.index as u64)),
            ("label", Json::str(h.label.clone())),
            (
                "columns",
                Json::Arr(h.columns.iter().map(Json::str).collect()),
            ),
        ])
        .render(),
        RunEvent::Rows { index, rows } => Json::obj(vec![
            ("type", Json::str("rows")),
            ("index", Json::num(*index as u64)),
            ("csv", Json::Str(csv_lines(rows))),
        ])
        .render(),
        RunEvent::ReportEnd { index, stats } => Json::obj(vec![
            ("type", Json::str("end")),
            ("index", Json::num(*index as u64)),
            ("stats", card_stats_json(stats)),
        ])
        .render(),
    }
}

fn csv_lines(rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:e}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn card_stats_json(stats: &CardStats) -> Json {
    Json::obj(vec![
        ("factorizations", Json::num(stats.factorizations)),
        (
            "full_refactorizations",
            Json::num(stats.full_refactorizations),
        ),
        (
            "partial_refactorizations",
            Json::num(stats.partial_refactorizations),
        ),
        ("columns_recomputed", Json::num(stats.columns_recomputed)),
        ("columns_total", Json::num(stats.columns_total)),
        ("device_evals", Json::num(stats.device_evals)),
        ("device_bypasses", Json::num(stats.device_bypasses)),
        ("limiter_clamps", Json::num(stats.limiter_clamps)),
        ("armijo_backtracks", Json::num(stats.armijo_backtracks)),
        ("ptc_steps", Json::num(stats.ptc_steps)),
    ])
}

fn report_json(report: &AnalysisReport) -> Json {
    Json::obj(vec![
        ("label", Json::str(report.label.clone())),
        (
            "columns",
            Json::Arr(report.columns.iter().map(Json::str).collect()),
        ),
        ("csv", Json::Str(report.to_csv())),
        ("stats", card_stats_json(&report.stats)),
    ])
}

/// Renders a finished [`DeckRun`] as the result payload members
/// (`title`, `reports`, `caches`).
pub fn render_result(run: &DeckRun) -> Json {
    Json::obj(vec![
        ("title", Json::str(run.title.clone())),
        (
            "reports",
            Json::Arr(run.reports.iter().map(report_json).collect()),
        ),
        (
            "caches",
            Json::obj(vec![
                ("models", cache_stats_json(run.caches.models, 0)),
                ("engines", cache_stats_json(run.caches.engines, 0)),
            ]),
        ),
    ])
}

/// Executes one job start to finish (parse → run → settle). Public
/// for the worker threads and the in-process bench harness.
pub fn run_job(hub: &Hub, id: u64, deck_text: &str, cancel: &Arc<AtomicBool>) {
    let deck = match Deck::parse(deck_text) {
        Ok(deck) => deck,
        Err(e) => {
            hub.settle(
                id,
                JobState::Failed,
                SettleOutcome::Error(ErrorCode::ParseError, e.to_string()),
            );
            return;
        }
    };
    let ctx = RunContext {
        models: Some(&hub.models),
        engines: Some(&hub.engines),
    };
    let outcome = deck.run_streaming(&ctx, Some(cancel), &mut |event| {
        hub.push_event(id, render_event(&event));
    });
    match outcome {
        Ok(run) => {
            hub.record_convergence(&run);
            hub.settle(
                id,
                JobState::Done,
                SettleOutcome::Result(render_result(&run)),
            );
        }
        Err(_) if cancel.load(Ordering::SeqCst) => {
            hub.settle(id, JobState::Cancelled, SettleOutcome::Cancelled);
        }
        Err(e) => hub.settle(
            id,
            JobState::Failed,
            SettleOutcome::Error(ErrorCode::RunError, e.to_string()),
        ),
    }
}

/// Spawns the hub's worker threads. Each worker loops popping queued
/// jobs until [`Hub::shutdown`] ran and the queue is empty.
pub fn spawn_workers(hub: &Arc<Hub>, workers: usize) -> Vec<JoinHandle<()>> {
    (0..workers)
        .map(|k| {
            let hub = Arc::clone(hub);
            std::thread::Builder::new()
                .name(format!("cntfet-worker-{k}"))
                .spawn(move || {
                    while let Some((id, text, cancel)) = hub.next_job() {
                        run_job(&hub, id, &text, &cancel);
                    }
                })
                .expect("spawn worker thread")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIVIDER: &str =
        "divider\nV1 in 0 DC 2\nR1 in out 1k\nR2 out 0 1k\n.op\n.print op v(out)\n.end\n";

    #[test]
    fn submit_run_result_lifecycle() {
        let hub = Hub::new(1);
        let workers = spawn_workers(&hub, 1);
        let id = hub.submit(DIVIDER.to_string()).unwrap();
        let result = hub.result(id, true, false).unwrap();
        assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
        let reports = result.get("reports").and_then(Json::as_arr).unwrap();
        assert_eq!(reports.len(), 1);
        let csv = reports[0].get("csv").and_then(Json::as_str).unwrap();
        assert!(csv.starts_with("v(out)\n"), "{csv}");
        // Evicted after retrieval.
        assert_eq!(hub.status(id).unwrap_err().0, ErrorCode::UnknownJob);
        hub.shutdown(false);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn parse_errors_fail_with_diagnostic() {
        let hub = Hub::new(1);
        let workers = spawn_workers(&hub, 1);
        let id = hub.submit("broken\nR1 a\n.end\n".to_string()).unwrap();
        let (code, message) = hub.result(id, true, false).unwrap_err();
        assert_eq!(code, ErrorCode::ParseError);
        assert!(message.contains("R1"), "{message}");
        hub.shutdown(false);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn queued_jobs_cancel_immediately_and_shutdown_rejects_submits() {
        let hub = Hub::new(1); // no workers spawned: stays queued
        let id = hub.submit(DIVIDER.to_string()).unwrap();
        assert_eq!(hub.cancel(id).unwrap(), JobState::Cancelled);
        let (code, _) = hub.result(id, true, false).unwrap_err();
        assert_eq!(code, ErrorCode::RunError);
        hub.shutdown(false);
        assert_eq!(
            hub.submit(DIVIDER.to_string()).unwrap_err().0,
            ErrorCode::ShuttingDown
        );
    }

    #[test]
    fn stream_events_cover_the_whole_run() {
        let hub = Hub::new(1);
        let workers = spawn_workers(&hub, 1);
        let id = hub.submit(DIVIDER.to_string()).unwrap();
        let mut seq = 0;
        let mut kinds = Vec::new();
        loop {
            let (events, done) = hub.next_events(id, seq).unwrap();
            seq += events.len();
            for text in events {
                let event = Json::parse(&text).unwrap();
                kinds.push(event.get("type").unwrap().as_str().unwrap().to_string());
            }
            if done {
                break;
            }
        }
        assert_eq!(kinds, ["start", "rows", "end", "done"]);
        hub.shutdown(false);
        for w in workers {
            w.join().unwrap();
        }
    }
}
