//! The Unix-socket front end: request dispatch, the accept loop, and
//! the [`Server`] / [`RunningServer`] lifecycle.

use crate::hub::{self, Hub};
use crate::json::Json;
use crate::proto::{self, ErrorCode};
use std::io::{self, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps between polls when no connection is
/// pending (the listener is non-blocking so shutdown is noticed).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Path of the Unix domain socket to listen on. A stale socket
    /// file from a crashed previous run is removed before binding.
    pub socket: PathBuf,
    /// Optional TCP address (`host:port`) for the minimal HTTP/1.1
    /// bridge; `None` disables it.
    pub http: Option<String>,
    /// Worker threads — the number of decks simulated concurrently.
    pub workers: usize,
}

impl ServerConfig {
    /// A configuration listening on `socket` with `workers` workers
    /// and no HTTP bridge.
    pub fn new(socket: impl Into<PathBuf>, workers: usize) -> Self {
        ServerConfig {
            socket: socket.into(),
            http: None,
            workers: workers.max(1),
        }
    }
}

/// The service entry point; see [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// A started server: its hub plus the threads serving it. Dropping
/// this does **not** stop the server — call
/// [`shutdown`](RunningServer::shutdown) (or send the `shutdown` op)
/// and then [`wait`](RunningServer::wait).
#[derive(Debug)]
pub struct RunningServer {
    hub: Arc<Hub>,
    socket: PathBuf,
    http_addr: Option<std::net::SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the socket (and the HTTP bridge, if configured), spawns
    /// the worker pool and the accept loop, and returns the running
    /// server.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when a listener cannot bind.
    pub fn start(config: ServerConfig) -> io::Result<RunningServer> {
        let hub = Hub::new(config.workers);
        let mut threads = hub::spawn_workers(&hub, config.workers);

        // A socket file left behind by a crashed server would make
        // bind fail with AddrInUse; remove it first. A *live* server
        // also loses its socket this way — run one server per path.
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;
        let accept_hub = Arc::clone(&hub);
        threads.push(
            std::thread::Builder::new()
                .name("cntfet-accept".into())
                .spawn(move || accept_loop(listener, &accept_hub))
                .expect("spawn accept thread"),
        );

        let mut http_addr = None;
        if let Some(addr) = &config.http {
            let (handle, bound) = crate::http::spawn(addr, &hub)?;
            threads.push(handle);
            http_addr = Some(bound);
        }

        Ok(RunningServer {
            hub,
            socket: config.socket,
            http_addr,
            threads,
        })
    }
}

impl RunningServer {
    /// The server's hub — handy for in-process submission (benches,
    /// tests) without a socket round-trip.
    pub fn hub(&self) -> &Arc<Hub> {
        &self.hub
    }

    /// The socket path the server is listening on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The HTTP bridge's bound address, when one was configured
    /// (reports the actual port for `:0` requests).
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_addr
    }

    /// Initiates shutdown (drain by default; `abort` cancels queued
    /// and running jobs first). Equivalent to the `shutdown` op.
    pub fn shutdown(&self, abort: bool) {
        self.hub.shutdown(abort);
    }

    /// Blocks until every thread (workers, accept loop, HTTP bridge)
    /// has exited, then removes the socket file. Call after
    /// [`shutdown`](RunningServer::shutdown) — or let a client's
    /// `shutdown` op trigger the exit.
    pub fn wait(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn accept_loop(listener: UnixListener, hub: &Arc<Hub>) {
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let hub = Arc::clone(hub);
                let _ = std::thread::Builder::new()
                    .name("cntfet-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &hub);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if hub.is_shutting_down() {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if hub.is_shutting_down() {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn serve_connection(stream: UnixStream, hub: &Hub) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = io::BufWriter::new(stream);
    loop {
        let request = match proto::read_json(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()), // clean hang-up
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized length prefix, mid-frame EOF or malformed
                // JSON: the stream may be desynchronised — answer and
                // close.
                let code = if e.to_string().contains("limit") {
                    ErrorCode::TooLarge
                } else {
                    ErrorCode::ParseError
                };
                let _ = proto::write_json(&mut writer, &proto::error_response(code, e.to_string()));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match dispatch(hub, &request) {
            Dispatch::One(response) => proto::write_json(&mut writer, &response)?,
            Dispatch::Stream { job, from } => stream_events(hub, job, from, &mut writer)?,
            Dispatch::Close(response) => {
                proto::write_json(&mut writer, &response)?;
                return Ok(());
            }
        }
    }
}

/// What a dispatched request produces on the wire.
pub enum Dispatch {
    /// One response frame.
    One(Json),
    /// A `stream` op: frames until the job's event log completes.
    /// The socket handler emits a frame per batch; the HTTP bridge
    /// collects all batches into one response.
    Stream {
        /// The job to stream.
        job: u64,
        /// First event sequence number to deliver.
        from: usize,
    },
    /// One response frame, then close the connection (`shutdown`).
    Close(Json),
}

/// Dispatches one request object to the hub. Shared by the socket
/// handler and the HTTP bridge.
pub fn dispatch(hub: &Hub, request: &Json) -> Dispatch {
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return Dispatch::One(proto::error_response(
            ErrorCode::BadRequest,
            "request must be an object with a string \"op\" member",
        ));
    };
    match op {
        "ping" => Dispatch::One(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("pong", Json::Bool(true)),
        ])),
        "submit" => {
            let Some(deck) = request.get("deck").and_then(Json::as_str) else {
                return bad_request("submit needs a string \"deck\" member");
            };
            match hub.submit(deck.to_string()) {
                Ok(id) => Dispatch::One(Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("job", Json::num(id)),
                    ("state", Json::str("queued")),
                ])),
                Err((code, message)) => Dispatch::One(proto::error_response(code, message)),
            }
        }
        "status" => match job_id(request) {
            Ok(id) => match hub.status(id) {
                Ok(response) => Dispatch::One(response),
                Err((code, message)) => Dispatch::One(proto::error_response(code, message)),
            },
            Err(d) => d,
        },
        "result" => match job_id(request) {
            Ok(id) => {
                let wait = request.get("wait").and_then(Json::as_bool).unwrap_or(true);
                let keep = request.get("keep").and_then(Json::as_bool).unwrap_or(false);
                match hub.result(id, wait, keep) {
                    Ok(response) => Dispatch::One(response),
                    Err((code, message)) => Dispatch::One(proto::error_response(code, message)),
                }
            }
            Err(d) => d,
        },
        "cancel" => match job_id(request) {
            Ok(id) => match hub.cancel(id) {
                Ok(state) => Dispatch::One(Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("job", Json::num(id)),
                    ("state", Json::str(state.as_str())),
                ])),
                Err((code, message)) => Dispatch::One(proto::error_response(code, message)),
            },
            Err(d) => d,
        },
        "stream" => match job_id(request) {
            Ok(id) => {
                let from = request.get("from").and_then(Json::as_u64).unwrap_or(0) as usize;
                Dispatch::Stream { job: id, from }
            }
            Err(d) => d,
        },
        "stats" => Dispatch::One(hub.stats()),
        "shutdown" => {
            let abort = match request.get("mode").and_then(Json::as_str) {
                None | Some("drain") => false,
                Some("abort") => true,
                Some(other) => {
                    return bad_request(&format!(
                        "shutdown mode must be \"drain\" or \"abort\", got {other:?}"
                    ));
                }
            };
            hub.shutdown(abort);
            Dispatch::Close(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("state", Json::str("shutting_down")),
            ]))
        }
        other => Dispatch::One(proto::error_response(
            ErrorCode::BadRequest,
            format!("unknown op {other:?}"),
        )),
    }
}

fn job_id(request: &Json) -> Result<u64, Dispatch> {
    request
        .get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad_request("expected a numeric \"job\" member"))
}

fn bad_request(message: &str) -> Dispatch {
    Dispatch::One(proto::error_response(ErrorCode::BadRequest, message))
}

/// Renders one batch of pre-serialized events as a `stream` response
/// frame. Shared with the HTTP bridge.
pub fn stream_batch(job: u64, seq: usize, events: &[String], done: bool) -> Json {
    let parsed = events
        .iter()
        .map(|text| Json::parse(text).expect("stored events are valid JSON"))
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("job", Json::num(job)),
        ("seq", Json::num(seq as u64)),
        ("events", Json::Arr(parsed)),
        ("done", Json::Bool(done)),
    ])
}

fn stream_events(hub: &Hub, job: u64, mut from: usize, w: &mut impl Write) -> io::Result<()> {
    loop {
        match hub.next_events(job, from) {
            Ok((events, done)) => {
                proto::write_json(w, &stream_batch(job, from, &events, done))?;
                from += events.len();
                if done {
                    return Ok(());
                }
            }
            Err((code, message)) => {
                return proto::write_json(w, &proto::error_response(code, message));
            }
        }
    }
}
