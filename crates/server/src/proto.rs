//! Wire protocol: length-prefixed JSON frames and the protocol's
//! stable error codes.
//!
//! Every message — request or response, in either direction — is one
//! *frame*: a 4-byte big-endian `u32` byte length followed by that many
//! bytes of UTF-8 JSON. Requests are objects with an `"op"` member;
//! responses are objects with `"ok": true` (plus op-specific members)
//! or `"ok": false, "code": "<error code>", "error": "<message>"`.
//! Most ops produce exactly one response frame; `stream` produces a
//! frame per event batch followed by a `"done": true` frame. The full
//! protocol reference lives in `docs/SERVER.md`.

use crate::json::Json;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame's payload length, bytes. Large enough for
/// any real deck or waveform batch; small enough that a corrupt or
/// hostile length prefix cannot make the server allocate unbounded
/// memory. Oversized requests are answered with
/// [`ErrorCode::TooLarge`].
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one frame (4-byte big-endian length + payload).
///
/// # Errors
///
/// [`io::Error`] from the underlying writer, or `InvalidInput` when
/// `payload` exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload over 4 GiB"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Serialises a JSON value and writes it as one frame.
///
/// # Errors
///
/// As [`write_frame`].
pub fn write_json(w: &mut impl Write, value: &Json) -> io::Result<()> {
    write_frame(w, value.render().as_bytes())
}

/// Reads one frame. Returns `Ok(None)` on clean end-of-stream (EOF
/// before any length byte — the peer hung up between messages).
///
/// # Errors
///
/// [`io::Error`] from the underlying reader; `InvalidData` when the
/// length prefix exceeds [`MAX_FRAME`] (the stream is unrecoverable —
/// close it) or EOF lands mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read(&mut len_bytes) {
        Ok(0) => return Ok(None),
        Ok(mut n) => {
            while n < 4 {
                let more = r.read(&mut len_bytes[n..])?;
                if more == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "eof inside a frame length prefix",
                    ));
                }
                n += more;
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads one frame and parses it as JSON.
///
/// # Errors
///
/// As [`read_frame`]; JSON syntax errors map to `InvalidData`.
pub fn read_json(r: &mut impl Read) -> io::Result<Option<Json>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-utf8 frame: {e}")))?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Stable protocol error codes, carried in the `"code"` member of an
/// `"ok": false` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was structurally invalid: not an object, missing or
    /// unknown `"op"`, missing a required member.
    BadRequest,
    /// The submitted deck failed to parse or validate; the message
    /// carries the deck front-end's rendered diagnostic.
    ParseError,
    /// The deck parsed but an analysis failed (non-convergence,
    /// singular system, model fit failure, …).
    RunError,
    /// The referenced job id does not exist (never submitted, or
    /// evicted after retrieval).
    UnknownJob,
    /// The request frame exceeded [`MAX_FRAME`].
    TooLarge,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire text of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::RunError => "run_error",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// Builds the standard `"ok": false` error response.
pub fn error_response(code: ErrorCode, message: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("code", Json::str(code.as_str())),
        ("error", Json::Str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_json(&mut buf, &Json::obj(vec![("op", Json::str("ping"))])).unwrap();
        write_json(&mut buf, &Json::num(7)).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_json(&mut r).unwrap().unwrap().get("op").unwrap(),
            &Json::str("ping")
        );
        assert_eq!(read_json(&mut r).unwrap().unwrap(), Json::num(7));
        assert!(read_json(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
    }
}
