//! A small, dependency-free JSON reader/writer — just enough for the
//! server protocol.
//!
//! The server's floats never travel as JSON numbers: waveform samples
//! are carried inside CSV *strings* rendered with the deck layer's
//! exact `{v:e}` formatting, so results round-trip bit-for-bit no
//! matter how a peer's JSON library parses numbers. JSON numbers here
//! are used for counters, indices and job ids only, and render as
//! integers whenever the value is integral.

use std::fmt;

/// A JSON value. Objects preserve insertion order (the protocol never
/// relies on it, but responses stay stable and diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (see the module docs — counters and ids only).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from an unsigned counter (exact below 2⁵³).
    pub fn num(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9e15 => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }

    /// Parses JSON text (one value, trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

/// A JSON syntax error with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(v) => write_number(out, *v),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        // JSON has no NaN/Inf; the protocol never emits them (floats
        // travel in CSV strings), but degrade safely rather than
        // producing unparseable text.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(err(*pos, "expected a string key in object"));
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("bad number '{text}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: expect \uDCxx next.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "lone high surrogate"));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(err(*pos, "bad low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(code).ok_or_else(|| err(*pos, "bad surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| err(*pos, "bad \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                if b < 0x20 {
                    return Err(err(*pos, "raw control character in string"));
                }
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: the input is a &str, so the
                // sequence is valid; copy it through whole.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the `XXXX` of a `\uXXXX` escape; leaves `pos` on the last
/// hex digit (the caller advances past it).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let start = *pos + 1;
    let Some(hex) = bytes.get(start..start + 4) else {
        return Err(err(*pos, "truncated \\u escape"));
    };
    let text = std::str::from_utf8(hex).map_err(|_| err(start, "bad \\u escape"))?;
    let code = u32::from_str_radix(text, 16).map_err(|_| err(start, "bad \\u escape"))?;
    *pos = start + 3;
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"op":"submit","deck":"line1\nline2","n":3,"neg":-1.5e-3,"flags":[true,false,null],"unicode":"π → ∞"}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(
            value.get("deck").and_then(Json::as_str),
            Some("line1\nline2")
        );
        assert_eq!(value.get("n").and_then(Json::as_u64), Some(3));
        let reparsed = Json::parse(&value.render()).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn renders_integers_without_fraction() {
        assert_eq!(Json::num(42).render(), "42");
        assert_eq!(Json::Num(-1.5).render(), "-1.5");
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::str("quote \" backslash \\ newline \n tab \t bel \u{7}");
        let reparsed = Json::parse(&original.render()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let value = Json::parse(r#""😀""#).unwrap();
        assert_eq!(value.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
