//! A blocking client for the Unix-socket protocol — used by
//! `cntfet-load`, the integration tests and the throughput bench, and
//! reusable by any Rust tool that wants to talk to `cntfet-serve`.

use crate::json::Json;
use crate::proto;
use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A client-side failure: transport trouble or a server-reported
/// error response.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, write, framing).
    Io(io::Error),
    /// The server answered `"ok": false`.
    Server {
        /// The protocol error code (`"parse_error"`, `"run_error"`, …).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client. One request/response exchange in flight at a
/// time; open one client per thread for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a server's Unix socket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket cannot be opened.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Client, ClientError> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Sends one request object and reads one response frame, mapping
    /// `"ok": false` responses to [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure, unexpected EOF, or an
    /// error response.
    pub fn request(&mut self, request: &Json) -> Result<Json, ClientError> {
        proto::write_json(&mut self.stream, request)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Json, ClientError> {
        let response = proto::read_json(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            ))
        })?;
        check_ok(response)
    }

    /// Submits a deck; returns the job id.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; `shutting_down` when the server is draining.
    pub fn submit(&mut self, deck: &str) -> Result<u64, ClientError> {
        let response = self.request(&Json::obj(vec![
            ("op", Json::str("submit")),
            ("deck", Json::str(deck)),
        ]))?;
        response
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| malformed("submit response lacks a job id"))
    }

    /// Fetches a job's status object.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; `unknown_job` for evicted ids.
    pub fn status(&mut self, job: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![
            ("op", Json::str("status")),
            ("job", Json::num(job)),
        ]))
    }

    /// Blocks until the job completes and returns its result object
    /// (`title`, `reports`, `caches`). The job is evicted server-side.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carrying the job's own failure for
    /// failed or cancelled jobs.
    pub fn wait_result(&mut self, job: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![
            ("op", Json::str("result")),
            ("job", Json::num(job)),
            ("wait", Json::Bool(true)),
        ]))
    }

    /// Requests cancellation; returns the job's state as of the call.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; `unknown_job` for evicted ids.
    pub fn cancel(&mut self, job: u64) -> Result<String, ClientError> {
        let response = self.request(&Json::obj(vec![
            ("op", Json::str("cancel")),
            ("job", Json::num(job)),
        ]))?;
        response
            .get("state")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| malformed("cancel response lacks a state"))
    }

    /// Streams a job's events from sequence `from`, invoking `sink`
    /// per event, until the stream completes. Returns the next
    /// sequence number (for resuming).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or an error frame.
    pub fn stream(
        &mut self,
        job: u64,
        from: usize,
        sink: &mut dyn FnMut(&Json),
    ) -> Result<usize, ClientError> {
        proto::write_json(
            &mut self.stream,
            &Json::obj(vec![
                ("op", Json::str("stream")),
                ("job", Json::num(job)),
                ("from", Json::num(from as u64)),
            ]),
        )?;
        let mut seq = from;
        loop {
            let batch = self.read_response()?;
            let events = batch
                .get("events")
                .and_then(Json::as_arr)
                .ok_or_else(|| malformed("stream batch lacks an events array"))?;
            seq += events.len();
            for event in events {
                sink(event);
            }
            if batch.get("done").and_then(Json::as_bool) == Some(true) {
                return Ok(seq);
            }
        }
    }

    /// Fetches server statistics (job counts, cache hit/miss).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", Json::str("stats"))]))
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Json::obj(vec![("op", Json::str("ping"))]))?;
        Ok(())
    }

    /// Asks the server to shut down (`drain` keeps running jobs,
    /// `abort` cancels them). The server closes the connection after
    /// acknowledging.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure.
    pub fn shutdown(&mut self, abort: bool) -> Result<(), ClientError> {
        self.request(&Json::obj(vec![
            ("op", Json::str("shutdown")),
            ("mode", Json::str(if abort { "abort" } else { "drain" })),
        ]))?;
        Ok(())
    }
}

fn check_ok(response: Json) -> Result<Json, ClientError> {
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(response);
    }
    let code = response
        .get("code")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let message = response
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("the server reported an error without a message")
        .to_string();
    Err(ClientError::Server { code, message })
}

fn malformed(what: &str) -> ClientError {
    ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, what))
}
