//! `cntfet-serve` — run the persistent simulation service.
//!
//! ```text
//! cntfet-serve --socket PATH [--http ADDR] [--workers N]
//! ```
//!
//! Listens on a Unix domain socket speaking the framed JSON protocol
//! (see `docs/SERVER.md`), with an optional HTTP/1.1 bridge on a TCP
//! address. Prints one `listening ...` line once ready — scripts can
//! wait for it — and runs until a client sends the `shutdown` op.

use cntfet_server::server::{Server, ServerConfig};
use std::process::ExitCode;

const USAGE: &str = "\
USAGE:
    cntfet-serve --socket PATH [--http ADDR] [--workers N]

OPTIONS:
    --socket PATH   Unix domain socket to listen on (required).
                    A stale socket file is removed before binding.
    --http ADDR     Also serve a minimal HTTP/1.1 bridge on this TCP
                    address (e.g. 127.0.0.1:7878): POST /api takes a
                    protocol request object, GET /healthz answers
                    {\"ok\":true}.
    --workers N     Worker threads, i.e. decks simulated concurrently
                    (default 2).
    -h, --help      Show this help.

The server keeps fitted CNFET models and warm Newton engines (frozen
sparsity pattern + pivot order) cached across jobs, so repeated or
value-tweaked decks skip cold-start work. Stop it by sending the
shutdown op, e.g.:  printf '...' | cntfet-load --socket PATH --shutdown
";

fn main() -> ExitCode {
    let mut socket = None;
    let mut http = None;
    let mut workers = 2usize;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--socket" => socket = argv.next(),
            "--http" => http = argv.next(),
            "--workers" => match argv.next().as_deref().map(str::parse) {
                Some(Ok(n)) if n > 0 => workers = n,
                _ => return usage_error("--workers needs a positive integer"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let Some(socket) = socket else {
        return usage_error("--socket PATH is required");
    };

    let config = ServerConfig {
        socket: socket.into(),
        http: http.clone(),
        workers,
    };
    let running = match Server::start(config) {
        Ok(running) => running,
        Err(e) => {
            eprintln!("cntfet-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    match running.http_addr() {
        Some(addr) => println!(
            "listening on {} (http {addr}), {workers} workers",
            running.socket().display()
        ),
        None => println!(
            "listening on {}, {workers} workers",
            running.socket().display()
        ),
    }
    running.wait();
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("cntfet-serve: {message}\n\n{USAGE}");
    ExitCode::from(2)
}
