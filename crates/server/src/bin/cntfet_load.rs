//! `cntfet-load` — load generator and smoke tester for `cntfet-serve`.
//!
//! ```text
//! cntfet-load --socket PATH [--repeat N] [--clients C]
//!             [--expect GOLDEN_DIR] [--cancel-smoke DECK]
//!             [--shutdown] [DECK...]
//! ```
//!
//! Submits each deck file `--repeat` times from `--clients` concurrent
//! connections, waits for every result, and reports throughput in
//! decks per second plus the server's cache counters. With `--expect`,
//! every result's CSV is compared line-by-line against
//! `GOLDEN_DIR/<deck-stem>.csv` (comment lines stripped) — any drift
//! is a hard failure, making this the CI smoke driver. With
//! `--cancel-smoke`, a long deck is submitted, cancelled as soon as
//! its first streamed rows arrive, and the job must report
//! `cancelled`.

use cntfet_server::client::Client;
use cntfet_server::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Instant;

const USAGE: &str = "\
USAGE:
    cntfet-load --socket PATH [--repeat N] [--clients C]
                [--expect GOLDEN_DIR] [--cancel-smoke DECK]
                [--shutdown] [DECK...]

OPTIONS:
    --socket PATH        Server socket to connect to (required).
    --repeat N           Submit each deck N times per client (default 1).
    --clients C          Concurrent client connections (default 1).
    --expect DIR         Compare each result against DIR/<deck-stem>.csv
                         (comment lines stripped, otherwise bitwise).
    --cancel-smoke DECK  Submit DECK, cancel on the first streamed rows,
                         require the job to finish 'cancelled'.
    --shutdown           Send a drain shutdown once done.
    -h, --help           Show this help.
";

struct Args {
    socket: String,
    repeat: usize,
    clients: usize,
    expect: Option<PathBuf>,
    cancel_smoke: Option<PathBuf>,
    shutdown: bool,
    decks: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: String::new(),
        repeat: 1,
        clients: 1,
        expect: None,
        cancel_smoke: None,
        shutdown: false,
        decks: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--socket" => args.socket = argv.next().ok_or("--socket needs a path")?,
            "--repeat" => {
                args.repeat = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--repeat needs a positive integer")?;
            }
            "--clients" => {
                args.clients = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--clients needs a positive integer")?;
            }
            "--expect" => {
                args.expect = Some(argv.next().ok_or("--expect needs a directory")?.into())
            }
            "--cancel-smoke" => {
                args.cancel_smoke = Some(argv.next().ok_or("--cancel-smoke needs a deck")?.into());
            }
            "--shutdown" => args.shutdown = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown argument {other:?}")),
            deck => args.decks.push(deck.into()),
        }
    }
    if args.socket.is_empty() {
        return Err("--socket PATH is required".into());
    }
    if args.decks.is_empty() && args.cancel_smoke.is_none() && !args.shutdown {
        return Err("nothing to do: pass deck files, --cancel-smoke or --shutdown".into());
    }
    Ok(args)
}

/// One deck ready to submit: its text plus the optional golden CSV it
/// must reproduce.
#[derive(Clone)]
struct LoadedDeck {
    name: String,
    text: String,
    golden: Option<Vec<String>>,
}

fn load_decks(paths: &[PathBuf], expect: Option<&Path>) -> Result<Vec<LoadedDeck>, String> {
    paths
        .iter()
        .map(|path| {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let golden = match expect {
                Some(dir) => {
                    let golden_path = dir.join(format!("{name}.csv"));
                    let raw = std::fs::read_to_string(&golden_path)
                        .map_err(|e| format!("{}: {e}", golden_path.display()))?;
                    Some(data_lines(&raw))
                }
                None => None,
            };
            Ok(LoadedDeck { name, text, golden })
        })
        .collect()
}

/// Comment (`*`) and blank lines stripped — the same normalisation the
/// golden deck tests apply before their bitwise line comparison.
fn data_lines(csv: &str) -> Vec<String> {
    csv.lines()
        .filter(|l| !l.starts_with('*') && !l.is_empty())
        .map(str::to_string)
        .collect()
}

/// Concatenates a result's per-report CSVs in card order.
fn result_csv(result: &Json) -> Result<String, String> {
    let reports = result
        .get("reports")
        .and_then(Json::as_arr)
        .ok_or("result lacks a reports array")?;
    let mut out = String::new();
    for report in reports {
        out.push_str(
            report
                .get("csv")
                .and_then(Json::as_str)
                .ok_or("report lacks a csv member")?,
        );
    }
    Ok(out)
}

fn check_golden(deck: &LoadedDeck, result: &Json) -> Result<(), String> {
    let Some(golden) = &deck.golden else {
        return Ok(());
    };
    let fresh = data_lines(&result_csv(result)?);
    if fresh.len() != golden.len() {
        return Err(format!(
            "{}: row count mismatch ({} golden vs {} server)",
            deck.name,
            golden.len(),
            fresh.len()
        ));
    }
    for (k, (g, f)) in golden.iter().zip(&fresh).enumerate() {
        if g != f {
            return Err(format!(
                "{}: line {k} differs\n  golden: {g}\n  server: {f}",
                deck.name
            ));
        }
    }
    Ok(())
}

fn run_client(socket: &str, decks: &[LoadedDeck], repeat: usize) -> Result<usize, String> {
    let mut client = Client::connect(socket).map_err(|e| e.to_string())?;
    let mut completed = 0;
    for _ in 0..repeat {
        for deck in decks {
            let job = client.submit(&deck.text).map_err(|e| e.to_string())?;
            let result = client
                .wait_result(job)
                .map_err(|e| format!("{}: {e}", deck.name))?;
            check_golden(deck, &result)?;
            completed += 1;
        }
    }
    Ok(completed)
}

/// Submits the deck, streams it from a second connection, cancels as
/// soon as the first `rows` event lands, and requires the stream to
/// end in a `cancelled` event with the job reporting `cancelled`.
fn cancel_smoke(socket: &str, path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut control = Client::connect(socket).map_err(|e| e.to_string())?;
    let job = control.submit(&text).map_err(|e| e.to_string())?;

    let (first_rows_tx, first_rows_rx) = mpsc::channel();
    let socket_owned = socket.to_string();
    let streamer = std::thread::spawn(move || -> Result<Vec<String>, String> {
        let mut client = Client::connect(&socket_owned).map_err(|e| e.to_string())?;
        let mut kinds = Vec::new();
        let mut signalled = false;
        client
            .stream(job, 0, &mut |event| {
                let kind = event
                    .get("type")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                if kind == "rows" && !signalled {
                    signalled = true;
                    let _ = first_rows_tx.send(());
                }
                kinds.push(kind);
            })
            .map_err(|e| e.to_string())?;
        Ok(kinds)
    });

    first_rows_rx
        .recv()
        .map_err(|_| "stream ended before any rows arrived".to_string())?;
    control.cancel(job).map_err(|e| e.to_string())?;

    let kinds = streamer
        .join()
        .map_err(|_| "stream thread panicked".to_string())??;
    let last = kinds.last().map(String::as_str);
    if last != Some("cancelled") {
        return Err(format!(
            "cancel smoke: stream ended with {last:?}, expected \"cancelled\" (events: {kinds:?})"
        ));
    }
    let status = control.status(job).map_err(|e| e.to_string())?;
    let state = status.get("state").and_then(Json::as_str);
    if state != Some("cancelled") {
        return Err(format!(
            "cancel smoke: job state is {state:?}, expected \"cancelled\""
        ));
    }
    println!(
        "cancel smoke: job {job} cancelled mid-run ({} events)",
        kinds.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("cntfet-load: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("cntfet-load: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let decks = load_decks(&args.decks, args.expect.as_deref())?;

    if !decks.is_empty() {
        let started = Instant::now();
        let completed: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.clients)
                .map(|_| scope.spawn(|| run_client(&args.socket, &decks, args.repeat)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| "client thread panicked".to_string())?)
                .sum::<Result<usize, String>>()
        })?;
        let elapsed = started.elapsed().as_secs_f64();
        println!(
            "{completed} decks in {elapsed:.3} s — {:.1} decks/s ({} clients)",
            completed as f64 / elapsed.max(1e-9),
            args.clients
        );
        if args.expect.is_some() {
            println!("all results matched their golden CSVs");
        }
        let mut client = Client::connect(&args.socket).map_err(|e| e.to_string())?;
        let stats = client.stats().map_err(|e| e.to_string())?;
        if let Some(caches) = stats.get("caches") {
            println!("server caches: {}", caches.render());
        }
    }

    if let Some(deck) = &args.cancel_smoke {
        cancel_smoke(&args.socket, deck)?;
    }

    if args.shutdown {
        let mut client = Client::connect(&args.socket).map_err(|e| e.to_string())?;
        client.shutdown(false).map_err(|e| e.to_string())?;
        println!("server shutting down");
    }
    Ok(())
}
