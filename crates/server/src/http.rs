//! A minimal, opt-in HTTP/1.1 bridge so curl-style tools can reach the
//! server over TCP without speaking the framed protocol.
//!
//! Exactly two routes:
//!
//! * `POST /api` — body is one protocol request object, response body
//!   is the response object. A `stream` op collects the job's whole
//!   event log into a single response (use the socket protocol for
//!   true incremental delivery).
//! * `GET /healthz` — `{"ok": true}` liveness probe.
//!
//! One request per connection (`Connection: close`); no TLS, no
//! chunked encoding, no keep-alive. This is an operational convenience
//! endpoint, not a web server.

use crate::hub::Hub;
use crate::json::Json;
use crate::proto::{error_response, ErrorCode, MAX_FRAME};
use crate::server::{dispatch, stream_batch, Dispatch};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Binds `addr` and spawns the bridge's accept thread. Returns the
/// handle plus the bound address (resolving port `0` requests).
///
/// # Errors
///
/// [`io::Error`] when the TCP listener cannot bind.
pub fn spawn(addr: &str, hub: &Arc<Hub>) -> io::Result<(JoinHandle<()>, std::net::SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let hub = Arc::clone(hub);
    let handle = std::thread::Builder::new()
        .name("cntfet-http".into())
        .spawn(move || accept_loop(listener, &hub))?;
    Ok((handle, bound))
}

fn accept_loop(listener: TcpListener, hub: &Arc<Hub>) {
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let hub = Arc::clone(hub);
                let _ = std::thread::Builder::new()
                    .name("cntfet-http-conn".into())
                    .spawn(move || {
                        let _ = serve_one(stream, &hub);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if hub.is_shutting_down() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                if hub.is_shutting_down() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn serve_one(stream: TcpStream, hub: &Hub) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("");

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }

    match (method.as_str(), path) {
        ("GET", "/healthz") => {
            respond(&mut writer, 200, &Json::obj(vec![("ok", Json::Bool(true))]))
        }
        ("POST", "/api") => {
            if content_length > MAX_FRAME as usize {
                return respond(
                    &mut writer,
                    413,
                    &error_response(
                        ErrorCode::TooLarge,
                        format!(
                            "body of {content_length} bytes exceeds the {MAX_FRAME}-byte limit"
                        ),
                    ),
                );
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let text = match std::str::from_utf8(&body) {
                Ok(text) => text,
                Err(e) => {
                    return respond(
                        &mut writer,
                        400,
                        &error_response(ErrorCode::BadRequest, format!("non-utf8 body: {e}")),
                    );
                }
            };
            let request = match Json::parse(text) {
                Ok(request) => request,
                Err(e) => {
                    return respond(
                        &mut writer,
                        400,
                        &error_response(ErrorCode::BadRequest, e.to_string()),
                    );
                }
            };
            let response = match dispatch(hub, &request) {
                Dispatch::One(response) | Dispatch::Close(response) => response,
                Dispatch::Stream { job, from } => collect_stream(hub, job, from),
            };
            let status = if response.get("ok").and_then(Json::as_bool) == Some(true) {
                200
            } else {
                status_for(&response)
            };
            respond(&mut writer, status, &response)
        }
        _ => respond(
            &mut writer,
            404,
            &error_response(ErrorCode::BadRequest, "routes: POST /api, GET /healthz"),
        ),
    }
}

/// Drains a job's whole event log into one `stream`-shaped response.
fn collect_stream(hub: &Hub, job: u64, from: usize) -> Json {
    let mut all = Vec::new();
    let mut next = from;
    loop {
        match hub.next_events(job, next) {
            Ok((events, done)) => {
                next += events.len();
                all.extend(events);
                if done {
                    return stream_batch(job, from, &all, true);
                }
            }
            Err((code, message)) => return error_response(code, message),
        }
    }
}

fn status_for(response: &Json) -> u16 {
    match response.get("code").and_then(Json::as_str) {
        Some("unknown_job") => 404,
        Some("too_large") => 413,
        Some("shutting_down") => 503,
        Some("run_error") | Some("parse_error") => 422,
        _ => 400,
    }
}

fn respond(w: &mut impl Write, status: u16, body: &Json) -> io::Result<()> {
    let text = body.render();
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
        text.len()
    )?;
    w.flush()
}
