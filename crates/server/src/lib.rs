//! cntfet-server — a persistent simulation service for the CNFET
//! circuit stack.
//!
//! Spawning `cntfet-sim` per deck pays the whole cold-start bill every
//! time: process launch, model fitting, symbolic sparsity analysis and
//! pivot-order discovery. This crate keeps all of that warm in one
//! long-lived process:
//!
//! * a **worker pool** of threads serving an async job queue
//!   (submit / status / cancel / result / stream),
//! * a **fitted-model cache** keyed on `.model` card parameters, and a
//! * **warm-engine pool** keyed on the deck's *topology hash*, so a
//!   resubmitted deck — or one that differs only in element values —
//!   reuses the frozen sparsity pattern and pivot order instead of
//!   re-running symbolic analysis.
//!
//! Clients speak length-prefixed JSON frames over a Unix domain socket
//! ([`proto`]); an optional minimal HTTP/1.1 bridge ([`http`]) serves
//! the same ops over TCP for curl-style access. Everything is std-only
//! — no external dependencies, suitable for air-gapped machines. The
//! wire protocol is documented in `docs/SERVER.md`.
//!
//! Long transients stream incrementally: each accepted time step is
//! appended to the job's event log as it lands, so a client can plot a
//! waveform while the run is still integrating — and cancellation
//! takes effect within one accepted step.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod http;
pub mod hub;
pub mod json;
pub mod proto;
pub mod server;
