//! End-to-end service tests over a real Unix socket: golden decks stay
//! bitwise through the whole submit → worker → result round trip,
//! cancellation interrupts a long transient and frees its worker, and
//! concurrent clients on a small pool never cross-contaminate.

use cntfet_server::client::Client;
use cntfet_server::json::Json;
use cntfet_server::server::{RunningServer, Server, ServerConfig};
use std::io::{Read, Write};
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// A unique socket path per test (tests share one process).
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cntfet-test-{}-{tag}.sock", std::process::id()))
}

fn start(tag: &str, workers: usize) -> RunningServer {
    Server::start(ServerConfig::new(socket_path(tag), workers)).expect("server starts")
}

fn stop(server: RunningServer) {
    server.shutdown(true);
    server.wait();
}

/// Concatenated per-report CSV of a result object.
fn result_csv(result: &Json) -> String {
    let reports = result
        .get("reports")
        .and_then(Json::as_arr)
        .expect("reports");
    reports
        .iter()
        .map(|r| r.get("csv").and_then(Json::as_str).expect("csv"))
        .collect()
}

fn data_lines(text: &str) -> Vec<&str> {
    text.lines()
        .filter(|l| !l.starts_with('*') && !l.is_empty())
        .collect()
}

/// Every checked-in example deck, submitted over the socket, must
/// reproduce its golden CSV line for line — the server's warm path is
/// not allowed to move a single ULP relative to the seed binary.
#[test]
fn golden_decks_stay_bitwise_over_the_socket() {
    let server = start("golden", 2);
    let mut client = Client::connect(server.socket()).unwrap();
    for name in [
        "divider",
        "inverter",
        "rc_lowpass",
        "ring_oscillator",
        "adder2",
    ] {
        let deck = std::fs::read_to_string(repo_path(&format!("examples/decks/{name}.cir")))
            .expect("example deck");
        let golden = std::fs::read_to_string(repo_path(&format!("tests/golden/{name}.csv")))
            .expect("golden csv");
        // Twice: the first run is cold, the second rides the warm
        // engine pool — both must match.
        for round in ["cold", "warm"] {
            let job = client.submit(&deck).unwrap();
            let result = client.wait_result(job).unwrap();
            let fresh = result_csv(&result);
            assert_eq!(
                data_lines(&golden),
                data_lines(&fresh),
                "{name} ({round}): server output drifted from the golden capture"
            );
        }
    }
    let stats = client.stats().unwrap();
    let engine_hits = stats
        .get("caches")
        .and_then(|c| c.get("engines"))
        .and_then(|e| e.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(engine_hits >= 5, "warm rounds must hit the engine pool");
    stop(server);
}

/// A deliberately long fixed-grid transient on a nonlinear CNFET
/// stage: tens of thousands of accepted steps, so cancellation has a
/// wide window to land mid-card.
const LONG_TRAN: &str = "\
slow inverter transient
.model nfet cnfet polarity=n
.model pfet cnfet polarity=p
VDD vdd 0 DC 0.8
VIN in 0 PULSE(0 0.8 0.1n 0.1n 0.1n 0.7n 2n)
MP out in vdd pfet L=100n
MN out in 0 nfet L=100n
CL out 0 1f
.tran 0.02n 4000n
.print tran v(out)
.end
";

const QUICK: &str =
    "divider\nV1 in 0 DC 2\nR1 in out 1k\nR2 out 0 1k\n.op\n.print op v(out)\n.end\n";

/// Cancel lands mid-transient: the stream ends in a `cancelled` event
/// *without* ever reaching the card's `end` event, and the single
/// worker is immediately free to serve the next job.
#[test]
fn cancel_interrupts_a_long_transient_and_frees_the_worker() {
    let server = start("cancel", 1);
    let socket = server.socket().to_path_buf();
    let mut control = Client::connect(&socket).unwrap();
    let job = control.submit(LONG_TRAN).unwrap();

    let (rows_tx, rows_rx) = std::sync::mpsc::channel();
    let stream_socket = socket.clone();
    let streamer = std::thread::spawn(move || {
        let mut client = Client::connect(&stream_socket).unwrap();
        let mut kinds = Vec::new();
        let mut signalled = false;
        client
            .stream(job, 0, &mut |event| {
                let kind = event
                    .get("type")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string();
                if kind == "rows" && !signalled {
                    signalled = true;
                    rows_tx.send(()).unwrap();
                }
                kinds.push(kind);
            })
            .unwrap();
        kinds
    });

    rows_rx.recv().expect("the transient must stream rows");
    control.cancel(job).unwrap();
    let kinds = streamer.join().unwrap();
    assert_eq!(kinds.last().map(String::as_str), Some("cancelled"));
    assert!(
        !kinds.iter().any(|k| k == "end"),
        "the transient card must have been cut mid-run, events: {kinds:?}"
    );

    // The worker must be free: a follow-up job on the 1-worker server
    // completes.
    let quick = control.submit(QUICK).unwrap();
    let result = control.wait_result(quick).unwrap();
    assert!(result_csv(&result).contains('\n'));

    // The cancelled job reports its state until evicted.
    let status = control.status(job).unwrap();
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("cancelled")
    );
    stop(server);
}

/// Two clients hammer a 2-worker server with *different* decks; every
/// result must match that deck's own cold CSV — shared caches must
/// never leak one deck's answers into another's.
#[test]
fn concurrent_clients_never_cross_contaminate() {
    let server = start("concurrent", 2);
    let socket = server.socket().to_path_buf();
    let decks: Vec<(String, String)> = ["divider", "rc_lowpass"]
        .iter()
        .map(|name| {
            let text = std::fs::read_to_string(repo_path(&format!("examples/decks/{name}.cir")))
                .expect("example deck");
            let golden = std::fs::read_to_string(repo_path(&format!("tests/golden/{name}.csv")))
                .expect("golden csv");
            (text, golden)
        })
        .collect();

    std::thread::scope(|scope| {
        for (k, (text, golden)) in decks.iter().enumerate() {
            let socket = socket.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&socket).unwrap();
                for round in 0..3 {
                    let job = client.submit(text).unwrap();
                    let result = client.wait_result(job).unwrap();
                    assert_eq!(
                        data_lines(golden),
                        data_lines(&result_csv(&result)),
                        "client {k} round {round}: cross-contaminated result"
                    );
                }
            });
        }
    });
    stop(server);
}

/// Protocol edges: unknown ops, bad members, unknown jobs, and the
/// submit-after-shutdown path all answer with their documented codes.
#[test]
fn protocol_errors_carry_their_documented_codes() {
    let server = start("errors", 1);
    let mut client = Client::connect(server.socket()).unwrap();

    let err = client
        .request(&Json::obj(vec![("op", Json::str("frobnicate"))]))
        .unwrap_err();
    assert!(err.to_string().contains("bad_request"), "{err}");

    let err = client
        .request(&Json::obj(vec![
            ("op", Json::str("status")),
            ("job", Json::num(999)),
        ]))
        .unwrap_err();
    assert!(err.to_string().contains("unknown_job"), "{err}");

    let bad_deck = client.submit("broken\nR1 a\n.end\n").unwrap();
    let err = client.wait_result(bad_deck).unwrap_err();
    assert!(err.to_string().contains("parse_error"), "{err}");

    client.shutdown(false).unwrap();
    // The shutdown reply closes that connection; a fresh submit is
    // refused.
    let mut late = Client::connect(server.socket()).unwrap();
    let err = late.submit(QUICK).unwrap_err();
    assert!(err.to_string().contains("shutting_down"), "{err}");
    server.wait();
}

/// The HTTP bridge serves the same dispatch over TCP: healthz, then a
/// submit/result pair via `POST /api`.
#[test]
fn http_bridge_round_trips_a_job() {
    let server = Server::start(ServerConfig {
        socket: socket_path("http"),
        http: Some("127.0.0.1:0".into()),
        workers: 1,
    })
    .unwrap();
    let addr = server.http_addr().expect("http bridge bound");

    assert_eq!(
        http_post(addr, "GET", "/healthz", "").1.get("ok"),
        Some(&Json::Bool(true))
    );

    let submit = Json::obj(vec![
        ("op", Json::str("submit")),
        ("deck", Json::str(QUICK)),
    ])
    .render();
    let (status, response) = http_post(addr, "POST", "/api", &submit);
    assert_eq!(status, 200, "{response:?}");
    let job = response.get("job").and_then(Json::as_u64).unwrap();

    let result_req = Json::obj(vec![
        ("op", Json::str("result")),
        ("job", Json::num(job)),
        ("wait", Json::Bool(true)),
    ])
    .render();
    let (status, result) = http_post(addr, "POST", "/api", &result_req);
    assert_eq!(status, 200, "{result:?}");
    assert!(result_csv(&result).starts_with("v(out)\n"));

    stop(server);
}

fn http_post(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let json_body = raw.split("\r\n\r\n").nth(1).expect("body");
    (status, Json::parse(json_body).expect("json body"))
}
