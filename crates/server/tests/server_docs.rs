//! `docs/SERVER.md` promises that every fenced `proto` block is a
//! faithful transcript: `>` lines are requests, `<` lines are the
//! responses the server gives (`"*"` marking members whose value may
//! vary). This test replays each block against a freshly started
//! server over a real Unix socket — `proto-noworkers` blocks against a
//! server whose queue never drains, for deterministic `queued`-state
//! examples — and additionally requires every fenced `json` block to
//! parse. A documentation edit that drifts from the implementation
//! breaks the build.

use cntfet_server::json::Json;
use cntfet_server::proto;
use cntfet_server::server::{Server, ServerConfig};
use std::os::unix::net::UnixStream;

struct Block {
    line: usize,
    info: String,
    body: String,
}

fn fenced_blocks(markdown: &str) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut current: Option<Block> = None;
    for (i, line) in markdown.lines().enumerate() {
        let fence = line.trim_start();
        match &mut current {
            None => {
                if let Some(info) = fence.strip_prefix("```") {
                    current = Some(Block {
                        line: i + 1,
                        info: info.trim().to_string(),
                        body: String::new(),
                    });
                }
            }
            Some(_) if fence.starts_with("```") => {
                blocks.push(current.take().expect("open block"));
            }
            Some(block) => {
                block.body.push_str(line);
                block.body.push('\n');
            }
        }
    }
    assert!(current.is_none(), "unclosed fence in SERVER.md");
    blocks
}

/// `expected` must be structurally contained in `actual`: every object
/// member present with a matching value (extra actual members are
/// fine), arrays element-wise with equal length, and the string `"*"`
/// matching anything.
fn matches(expected: &Json, actual: &Json) -> bool {
    match (expected, actual) {
        (Json::Str(s), _) if s == "*" => true,
        (Json::Obj(want), Json::Obj(_)) => want
            .iter()
            .all(|(k, v)| actual.get(k).is_some_and(|a| matches(v, a))),
        (Json::Arr(want), Json::Arr(got)) => {
            want.len() == got.len() && want.iter().zip(got).all(|(w, g)| matches(w, g))
        }
        _ => expected == actual,
    }
}

fn replay(block: &Block, workers: usize) {
    let socket = std::env::temp_dir().join(format!(
        "cntfet-docs-{}-{}.sock",
        std::process::id(),
        block.line
    ));
    let server = Server::start(ServerConfig {
        socket: socket.clone(),
        http: None,
        workers,
    })
    .expect("doc server starts");
    let mut stream = UnixStream::connect(&socket).expect("connect");

    let mut pending: Option<(usize, String)> = None;
    for (offset, line) in block.body.lines().enumerate() {
        let at = block.line + 1 + offset;
        if let Some(request) = line.strip_prefix("> ") {
            assert!(
                pending.is_none(),
                "SERVER.md line {at}: request without a preceding response check"
            );
            let request = Json::parse(request)
                .unwrap_or_else(|e| panic!("SERVER.md line {at}: bad request JSON: {e}"));
            proto::write_json(&mut stream, &request)
                .unwrap_or_else(|e| panic!("SERVER.md line {at}: send failed: {e}"));
            pending = Some((at, line.to_string()));
        } else if let Some(expected) = line.strip_prefix("< ") {
            let (sent_at, sent) = pending
                .take()
                .unwrap_or_else(|| panic!("SERVER.md line {at}: response with no request"));
            let expected = Json::parse(expected)
                .unwrap_or_else(|e| panic!("SERVER.md line {at}: bad expected JSON: {e}"));
            let actual = proto::read_json(&mut stream)
                .unwrap_or_else(|e| panic!("SERVER.md line {at}: read failed: {e}"))
                .unwrap_or_else(|| panic!("SERVER.md line {at}: server closed early"));
            assert!(
                matches(&expected, &actual),
                "SERVER.md line {at}: transcript drifted\n  request (line {sent_at}): {sent}\n  expected: {}\n  actual:   {}",
                expected.render(),
                actual.render()
            );
        } else if !line.trim().is_empty() {
            panic!("SERVER.md line {at}: proto lines must start with '> ' or '< '");
        }
    }
    assert!(
        pending.is_none(),
        "SERVER.md block at line {}: trailing request",
        block.line
    );

    drop(stream);
    server.shutdown(true);
    server.wait();
}

#[test]
fn every_server_md_proto_transcript_replays_verbatim() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVER.md");
    let markdown = std::fs::read_to_string(path).expect("docs/SERVER.md exists");
    let blocks = fenced_blocks(&markdown);
    let mut replayed = 0;
    for block in &blocks {
        match block.info.as_str() {
            "proto" => {
                replay(block, 2);
                replayed += 1;
            }
            "proto-noworkers" => {
                replay(block, 0);
                replayed += 1;
            }
            "json" => {
                Json::parse(block.body.trim())
                    .unwrap_or_else(|e| panic!("SERVER.md json block at line {}: {e}", block.line));
            }
            _ => {}
        }
    }
    assert!(
        replayed >= 6,
        "expected the protocol reference to carry at least 6 executable transcripts, found {replayed}"
    );
}
