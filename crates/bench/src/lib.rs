//! Shared harness code for the experiment-regeneration binaries and the
//! Criterion benches.
//!
//! One binary per paper table/figure lives in `src/bin/`; each prints the
//! same rows/series the paper reports (see `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for recorded results).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use cntfet_core::validation::accuracy_table;
use cntfet_core::CompactCntFet;
use cntfet_numerics::interp::linspace;
use cntfet_physics::units::{ElectronVolts, Kelvin};
use cntfet_reference::{BallisticModel, DeviceParams};
use std::time::Instant;

/// The gate-voltage column of Tables II–IV.
pub const TABLE_VG: [f64; 6] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

/// The drain sweep used for every accuracy table (0 → 0.6 V).
pub fn table_vds_grid() -> Vec<f64> {
    linspace(0.0, 0.6, 31)
}

/// The seven-curve output family of Figs. 6–7
/// (`V_G = 0.3 … 0.6 V` in 0.05 V steps).
pub const FIG6_VG: [f64; 7] = [0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6];

/// Builds the device of Tables I–IV / Figs. 2–9 at the given temperature
/// and Fermi level.
pub fn paper_device(t_kelvin: f64, ef_ev: f64) -> DeviceParams {
    DeviceParams::paper_default()
        .with_temperature(Kelvin(t_kelvin))
        .with_fermi_level(ElectronVolts(ef_ev))
}

/// Prints one of the paper's accuracy tables (II, III or IV) for the
/// given Fermi level: rows are `V_G`, column pairs are Model 1 / Model 2
/// at 150, 300 and 450 K.
///
/// # Panics
///
/// Panics if any model fails to construct or evaluate — these are
/// regeneration binaries where failure should be loud.
pub fn print_accuracy_table(title: &str, ef_ev: f64) {
    println!("{title}");
    println!("        150K            300K            450K");
    println!("VG[V]   M1      M2      M1      M2      M1      M2");
    let grid = table_vds_grid();
    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    for t in [150.0, 300.0, 450.0] {
        let params = paper_device(t, ef_ev);
        let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
        let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
        let reference = BallisticModel::new(params);
        let table = accuracy_table(&[&m1, &m2], &reference, &TABLE_VG, &grid)
            .expect("accuracy table evaluation");
        columns.push(
            table
                .into_iter()
                .map(|row| (row.errors_percent[0], row.errors_percent[1]))
                .collect(),
        );
    }
    for (i, &vg) in TABLE_VG.iter().enumerate() {
        print!("{vg:.1}  ");
        for col in &columns {
            print!("  {:5.1}%  {:5.1}%", col[i].0, col[i].1);
        }
        println!();
    }
}

/// Wall-clock time of `f` invoked `loops` times, in seconds.
pub fn time_loops<F: FnMut()>(loops: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..loops {
        f();
    }
    start.elapsed().as_secs_f64()
}

/// Prints an I–V family as aligned columns: `V_DS`, then one current
/// column per gate voltage and model.
pub fn print_family(header: &str, vds_grid: &[f64], labels: &[String], series: &[Vec<f64>]) {
    println!("{header}");
    print!("{:>8}", "VDS[V]");
    for l in labels {
        print!("  {l:>12}");
    }
    println!();
    for (i, vds) in vds_grid.iter().enumerate() {
        print!("{vds:>8.3}");
        for s in series {
            print!("  {:>12.4e}", s[i]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_device_applies_overrides() {
        let d = paper_device(450.0, -0.5);
        assert_eq!(d.temperature.value(), 450.0);
        assert_eq!(d.fermi_level.value(), -0.5);
    }

    #[test]
    fn vds_grid_covers_paper_range() {
        let g = table_vds_grid();
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 0.6);
        assert_eq!(g.len(), 31);
    }

    #[test]
    fn time_loops_counts_invocations() {
        let mut n = 0;
        let dt = time_loops(5, || n += 1);
        assert_eq!(n, 5);
        assert!(dt >= 0.0);
    }
}
