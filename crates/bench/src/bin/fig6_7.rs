//! Regenerates **Figs. 6 and 7**: drain-current characteristics at
//! `T = 300 K`, `E_F = −0.32 eV` for the reference model vs Model 1
//! (Fig. 6) and Model 2 (Fig. 7), `V_G = 0.3 … 0.6 V`.

use cntfet_bench::{paper_device, print_family, table_vds_grid, FIG6_VG};
use cntfet_core::CompactCntFet;
use cntfet_reference::BallisticModel;

fn main() {
    let params = paper_device(300.0, -0.32);
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
    let grid = table_vds_grid();

    let mut labels = Vec::new();
    let mut series = Vec::new();
    for &vg in &FIG6_VG {
        labels.push(format!("ref@{vg:.2}"));
        series.push(
            reference
                .output_characteristic(vg, &grid)
                .expect("reference sweep")
                .currents(),
        );
        labels.push(format!("m1@{vg:.2}"));
        series.push(m1.output_characteristic(vg, &grid).expect("m1").currents());
        labels.push(format!("m2@{vg:.2}"));
        series.push(m2.output_characteristic(vg, &grid).expect("m2").currents());
    }
    print_family(
        "Figs. 6-7: IDS(VDS) families, T=300K, EF=-0.32eV (paper peak ~9e-6 A at VG=0.6)",
        &grid,
        &labels,
        &series,
    );
}
