//! Regenerates **Table II**: average RMS errors in `I_DS` of Model 1 and
//! Model 2 against the reference at `E_F = −0.32 eV`, for
//! `T ∈ {150, 300, 450} K` and `V_G = 0.1 … 0.6 V`.

use cntfet_bench::print_accuracy_table;

fn main() {
    print_accuracy_table(
        "Table II: average RMS errors in IDS, EF = -0.32 eV (paper: M1 1.5-4.6%, M2 0.4-2.3%)",
        -0.32,
    );
}
