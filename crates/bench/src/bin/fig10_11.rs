//! Regenerates **Figs. 10 and 11**: the (surrogate) experimental I–V
//! points vs the reference model and Model 1 (Fig. 10) / Model 2
//! (Fig. 11) for the Javey et al. device at `V_G ∈ {0, 0.2, 0.4, 0.6}`.

use cntfet_core::CompactCntFet;
use cntfet_expdata::JaveyDataset;
use cntfet_numerics::interp::linspace;
use cntfet_reference::{BallisticModel, DeviceParams};

fn main() {
    let data = JaveyDataset::new(2024);
    let params = DeviceParams::javey_experimental();
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
    let grid = linspace(0.0, 0.4, 21);

    println!("Figs. 10-11: experiment (surrogate) vs reference vs Model 1 / Model 2");
    println!("d=1.6nm, tox=50nm, T=300K, EF=-0.05eV (paper peak ~1e-5 A at VG=0.6)");
    for &vg in &[0.0, 0.2, 0.4, 0.6] {
        let measured = data.curve(vg, &grid).expect("surrogate");
        println!("VG = {vg} V");
        println!(
            "{:>8}  {:>12}  {:>12}  {:>12}  {:>12}",
            "VDS[V]", "experiment", "reference", "model1", "model2"
        );
        for (i, &vds) in grid.iter().enumerate() {
            let r = reference.solve_point(vg, vds, 0.0).expect("reference").ids;
            let i1 = m1.solve_point(vg, vds).expect("m1").ids;
            let i2 = m2.solve_point(vg, vds).expect("m2").ids;
            println!(
                "{vds:>8.3}  {:>12.4e}  {r:>12.4e}  {i1:>12.4e}  {i2:>12.4e}",
                measured.ids[i]
            );
        }
        println!();
    }
}
