//! Regenerates **Figs. 2 and 3**: the piecewise approximations of the
//! mobile charge `Q_S(V_SC)` for Model 1 (three regions) and Model 2
//! (four regions), with the region boundaries annotated.
//!
//! Columns: `V_SC`, theoretical `Q_S`, Model 1, Model 2, and the region
//! index each model evaluates in.

use cntfet_bench::paper_device;
use cntfet_core::CompactCntFet;
use cntfet_numerics::interp::linspace;
use cntfet_reference::ChargeModel;

fn main() {
    let params = paper_device(300.0, -0.32);
    let ef = params.fermi_level.value();
    let charge = ChargeModel::new(&params, 1e-9);
    let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
    let qn0_half = 0.5 * m1.equilibrium_charge();

    println!("Figs. 2-3: piecewise approximation of Q_S(V_SC), T=300K, EF=-0.32eV");
    println!(
        "Model 1 boundaries at EF/q + {{-0.08, +0.08}} V: {:?}",
        m1.charge().breakpoints()
    );
    println!(
        "Model 2 boundaries at EF/q + {{-0.28, -0.03, +0.12}} V: {:?}",
        m2.charge().breakpoints()
    );
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  {:>4}  {:>4}",
        "VSC[V]", "theory[C/m]", "model1", "model2", "r1", "r2"
    );
    for v in linspace(ef - 0.5, ef + 0.2, 36) {
        // Model curves store q·N_S; subtract qN0/2 to plot the paper's
        // Q_S = q(N_S − N0/2) definition for both theory and models.
        let theory = charge.q_s(v);
        let q1 = m1.charge().eval(v) - qn0_half;
        let q2 = m2.charge().eval(v) - qn0_half;
        println!(
            "{v:>8.3}  {theory:>12.4e}  {q1:>12.4e}  {q2:>12.4e}  {:>4}  {:>4}",
            m1.charge().region_index(v),
            m2.charge().region_index(v)
        );
    }
}
