//! Netlist scaling: dense vs sparse MNA solving on CNFET inverter
//! chains of growing size.
//!
//! For each chain length N the binary reports, at the DC operating
//! point's Jacobian:
//!
//! * unknown count and Jacobian nonzeros,
//! * per-factorisation operation counts (dense formula vs the sparse
//!   solver's measured multiply–accumulate counter),
//! * wall-clock assembly / factor / solve times for both backends,
//! * full DC operating-point wall-clock for both backends and the
//!   maximum node voltage disagreement between them.
//!
//! Chain sizes default to 2…256 (doubling); pass explicit sizes as
//! arguments for a quicker run (CI smoke-tests `netlist_scaling 2 8`).
//! For N ≥ 64 the binary asserts that the sparse factorisation performs
//! strictly fewer operations than the dense one — the scaling win is a
//! checked property, not a hope.

use cntfet_bench::paper_device;
use cntfet_circuit::element::AnalysisMode;
use cntfet_circuit::prelude::*;
use cntfet_core::CompactCntFet;
use cntfet_numerics::sparse::{dense_lu_ops, DenseLuSolver, LinearSolver, SparseLuSolver};
use std::sync::Arc;
use std::time::Instant;

/// Complementary inverter chain of `stages` stages: VDD rail, a DC
/// input source at logic low, and the chain (outputs settle to
/// alternating rails — representative of logic netlists while staying
/// solvable cold at any chain length).
fn chain_circuit(tech: &CntTechnology, stages: usize) -> Circuit {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in");
    c.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    c.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
    add_inverter_chain(&mut c, tech, "chain", vin, stages, vdd);
    c
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    1e3 * t0.elapsed().as_secs_f64()
}

/// Extends a converged `m`-stage chain solution to an initial guess for
/// an `n`-stage chain (`n >= m >= 2`) by replicating the deep-chain
/// stage values with matching parity. Unknown layout of
/// [`chain_circuit`]: `[vdd, in, c0..c{N-1}, I_VDD, I_VIN, (σp, σn)×N]`.
fn extend_guess(prev: &[f64], m: usize, n: usize) -> Vec<f64> {
    assert!(n >= m && m >= 2);
    let mut x0 = vec![0.0; n + 4 + 2 * n];
    x0[0] = prev[0];
    x0[1] = prev[1];
    x0[n + 2] = prev[m + 2]; // VDD branch current (≈ leakage, per chain)
    x0[n + 3] = prev[m + 3]; // VIN branch current
    for i in 0..n {
        let j = if i < m { i } else { m - 2 + (i - (m - 2)) % 2 };
        x0[2 + i] = prev[2 + j];
        x0[n + 4 + 2 * i] = prev[m + 4 + 2 * j];
        x0[n + 5 + 2 * i] = prev[m + 5 + 2 * j];
    }
    x0
}

fn main() {
    let sizes: Vec<usize> = {
        let mut args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("chain sizes must be positive integers"))
            .collect();
        if args.is_empty() {
            args = vec![2, 4, 8, 16, 32, 64, 128, 256];
        }
        // Ascending order: each size warm-starts from the previous one.
        args.sort_unstable();
        args
    };

    let model = Arc::new(CompactCntFet::model2(paper_device(300.0, -0.32)).expect("model 2 fit"));
    let tech = CntTechnology::symmetric(model, 0.8);

    println!("CNFET inverter-chain scaling: dense vs sparse MNA engine");
    println!(
        "{:>5} {:>7} {:>7} {:>12} {:>12} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "N",
        "unk",
        "nnz",
        "dense_ops",
        "sparse_ops",
        "ratio",
        "fact_d/ms",
        "fact_s/ms",
        "dc_d/ms",
        "dc_s/ms",
        "max|dV|"
    );

    // Bootstrap seed when the smallest requested size is already large:
    // a 4-stage chain solves cold at any bias.
    let mut seed: Option<(usize, Vec<f64>)> = None;
    if sizes.first().is_some_and(|&n| n > 8) {
        let small = chain_circuit(&tech, 4);
        let sol = NewtonEngine::new(NewtonOptions::default())
            .dc_operating_point(&small, None)
            .expect("bootstrap dc");
        seed = Some((4, sol.x));
    }

    for &n in &sizes {
        let circuit = chain_circuit(&tech, n);
        let unknowns = circuit.unknown_count();

        // Full nonlinear solves through each backend. Cold Newton on a
        // long chain is genuinely hard, so every size warm-starts from
        // the previous size's solution (stage replication) — the same
        // guess for both backends, and a realistic incremental workflow.
        let dense_opts = NewtonOptions {
            solver: SolverKind::Dense,
            ..NewtonOptions::default()
        };
        let sparse_opts = NewtonOptions {
            solver: SolverKind::Sparse,
            ..NewtonOptions::default()
        };
        let guess: Option<Vec<f64>> = seed
            .as_ref()
            .filter(|(m, _)| *m <= n)
            .map(|(m, x)| extend_guess(x, *m, n));
        let mut sol_dense = None;
        let dc_dense_ms = time_ms(|| {
            sol_dense = Some(
                NewtonEngine::new(dense_opts)
                    .dc_operating_point(&circuit, guess.as_deref())
                    .expect("dense dc"),
            );
        });
        let mut sol_sparse = None;
        let dc_sparse_ms = time_ms(|| {
            sol_sparse = Some(
                NewtonEngine::new(sparse_opts)
                    .dc_operating_point(&circuit, guess.as_deref())
                    .expect("sparse dc"),
            );
        });
        let sol_dense = sol_dense.expect("dense solution");
        let sol_sparse = sol_sparse.expect("sparse solution");
        seed = Some((n, sol_sparse.x.clone()));
        let max_dv = (0..circuit.node_count())
            .map(|i| (sol_dense.x[i] - sol_sparse.x[i]).abs())
            .fold(0.0f64, f64::max);

        // One Jacobian at the operating point, factored by both solvers.
        let mut engine = NewtonEngine::new(sparse_opts);
        let (_, jac) = engine.assemble(&circuit, &sol_sparse.x, &AnalysisMode::Dc, 0.0);
        let jac = jac.clone();
        let nnz = jac.nnz();
        let mut dense_solver = DenseLuSolver::new();
        let mut sparse_solver = SparseLuSolver::new();
        // Warm both (first sparse factor includes the pivot search; the
        // timed loop below measures the steady-state refactor path that
        // Newton iterations actually pay).
        dense_solver.factor(&jac).expect("dense factor");
        sparse_solver.factor(&jac).expect("sparse symbolic factor");
        let reps = 5;
        let fact_dense_ms = time_ms(|| {
            for _ in 0..reps {
                dense_solver.factor(&jac).expect("dense factor");
            }
        }) / reps as f64;
        let fact_sparse_ms = time_ms(|| {
            for _ in 0..reps {
                sparse_solver.factor(&jac).expect("sparse refactor");
            }
        }) / reps as f64;
        let dense_ops = dense_lu_ops(unknowns);
        let sparse_ops = sparse_solver.factor_ops();

        // The factored systems must agree on a solve as well.
        let rhs: Vec<f64> = (0..unknowns).map(|i| (i % 7) as f64 * 1e-6).collect();
        let xd = dense_solver.solve_factored(&rhs).expect("dense solve");
        let xs = sparse_solver.solve_factored(&rhs).expect("sparse solve");
        let solve_diff = xd
            .iter()
            .zip(&xs)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            solve_diff < 1e-6 * (1.0 + cntfet_numerics::stats::inf_norm(&xd)),
            "factored solves disagree by {solve_diff}"
        );

        println!(
            "{:>5} {:>7} {:>7} {:>12} {:>12} {:>7.1} {:>9.3} {:>9.3} {:>9.1} {:>9.1} {:>10.2e}",
            n,
            unknowns,
            nnz,
            dense_ops,
            sparse_ops,
            dense_ops as f64 / sparse_ops as f64,
            fact_dense_ms,
            fact_sparse_ms,
            dc_dense_ms,
            dc_sparse_ms,
            max_dv,
        );

        if n >= 64 {
            assert!(
                sparse_ops < dense_ops,
                "sparse factorisation must beat dense op count at N = {n}: \
                 {sparse_ops} vs {dense_ops}"
            );
        }
    }
    println!("\nok: sparse factorisation op count < dense for every N >= 64 run");
}
