//! Regenerates **Table V**: average RMS errors of the reference model,
//! Model 1 and Model 2 against the (surrogate) experimental measurements
//! of the Javey et al. device (d = 1.6 nm, t_ox = 50 nm, T = 300 K,
//! E_F = −0.05 eV) at `V_G ∈ {0.2, 0.4, 0.6}`.

use cntfet_core::validation::rms_error_vs_series_percent;
use cntfet_core::CompactCntFet;
use cntfet_expdata::JaveyDataset;
use cntfet_numerics::interp::linspace;
use cntfet_reference::{BallisticModel, DeviceParams};

fn main() {
    let data = JaveyDataset::new(2024);
    let params = DeviceParams::javey_experimental();
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
    let grid = linspace(0.0, 0.4, 21);

    println!(
        "Table V: average RMS errors vs (surrogate) experiment, d=1.6nm tox=50nm T=300K EF=-0.05eV"
    );
    println!(
        "{:>6}  {:>9}  {:>9}  {:>9}   (paper: 8.5/10.7/9.9 at 0.2V ... 7.2/9.3/8.1 at 0.6V)",
        "VG[V]", "Reference", "Model 1", "Model 2"
    );
    for &vg in &[0.2, 0.4, 0.6] {
        let measured = data.curve(vg, &grid).expect("surrogate curve");
        let i_ref: Vec<f64> = grid
            .iter()
            .map(|&v| reference.solve_point(vg, v, 0.0).expect("reference").ids)
            .collect();
        let i_m1 = m1
            .output_characteristic(vg, &grid)
            .expect("model 1 sweep")
            .currents();
        let i_m2 = m2
            .output_characteristic(vg, &grid)
            .expect("model 2 sweep")
            .currents();
        println!(
            "{vg:>6.1}  {:>8.1}%  {:>8.1}%  {:>8.1}%",
            rms_error_vs_series_percent(&i_ref, &measured.ids),
            rms_error_vs_series_percent(&i_m1, &measured.ids),
            rms_error_vs_series_percent(&i_m2, &measured.ids),
        );
    }
}
