//! Regenerates **Table I**: average CPU time of the reference (FETToy)
//! model vs Model 1 vs Model 2 for 5/10/50/100 invocations of the full
//! seven-curve `I_DS(V_DS)` family at `T = 300 K`, `E_F = −0.32 eV`.
//!
//! Absolute seconds differ from the paper (2008 Pentium IV + MATLAB vs a
//! modern CPU + Rust); the claim under test is the *ratio*: both compact
//! models ≥ 3 orders of magnitude faster than the reference, Model 1
//! faster than Model 2.

use cntfet_bench::{paper_device, table_vds_grid, time_loops, FIG6_VG};
use cntfet_core::CompactCntFet;
use cntfet_reference::BallisticModel;

fn main() {
    let params = paper_device(300.0, -0.32);
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
    let grid = table_vds_grid();

    let run_reference = || {
        for &vg in &FIG6_VG {
            let _ = reference
                .output_characteristic(vg, &grid)
                .expect("reference sweep");
        }
    };
    let run_compact = |m: &CompactCntFet| {
        for &vg in &FIG6_VG {
            let _ = m.output_characteristic(vg, &grid).expect("compact sweep");
        }
    };

    println!("Table I: average CPU time comparison (this machine)");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>12}  {:>10}  {:>10}",
        "Loops", "Reference", "Model 1", "Model 2", "Ref/M1", "Ref/M2"
    );
    for loops in [5usize, 10, 50, 100] {
        let t_ref = time_loops(loops, run_reference);
        let t_m1 = time_loops(loops, || run_compact(&m1));
        let t_m2 = time_loops(loops, || run_compact(&m2));
        println!(
            "{loops:>6}  {t_ref:>11.4}s  {t_m1:>11.4}s  {t_m2:>11.4}s  {:>9.0}x  {:>9.0}x",
            t_ref / t_m1.max(1e-12),
            t_ref / t_m2.max(1e-12),
        );
    }
    println!();
    println!("Paper (Pentium IV, MATLAB FETToy): 100 loops = 1287.45 s vs 0.38 s (M1, ~3400x) / 1.12 s (M2, ~1150x).");
}
