//! Regenerates **Figs. 8 and 9**: Model 2 vs the reference at the
//! temperature/Fermi-level extremes — `T = 150 K, E_F = 0 eV` (Fig. 8,
//! `V_G = 0.1 … 0.6 V`) and `T = 450 K, E_F = −0.5 eV` (Fig. 9,
//! `V_G = 0.4 … 0.6 V`).

use cntfet_bench::{paper_device, print_family, table_vds_grid};
use cntfet_core::CompactCntFet;
use cntfet_reference::BallisticModel;

fn run_case(title: &str, t: f64, ef: f64, vgs: &[f64]) {
    let params = paper_device(t, ef);
    let reference = BallisticModel::new(params.clone());
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
    let grid = table_vds_grid();
    let mut labels = Vec::new();
    let mut series = Vec::new();
    for &vg in vgs {
        labels.push(format!("ref@{vg:.2}"));
        series.push(
            reference
                .output_characteristic(vg, &grid)
                .expect("reference sweep")
                .currents(),
        );
        labels.push(format!("m2@{vg:.2}"));
        series.push(m2.output_characteristic(vg, &grid).expect("m2").currents());
    }
    print_family(title, &grid, &labels, &series);
    println!();
}

fn main() {
    run_case(
        "Fig. 8: T=150K, EF=0eV (paper peak ~3.5e-5 A at VG=0.6)",
        150.0,
        0.0,
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
    );
    run_case(
        "Fig. 9: T=450K, EF=-0.5eV (paper peak ~3.2e-6 A at VG=0.6)",
        450.0,
        -0.5,
        &[0.4, 0.45, 0.5, 0.55, 0.6],
    );
}
