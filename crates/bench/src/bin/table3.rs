//! Regenerates **Table III**: average RMS errors in `I_DS` at
//! `E_F = −0.5 eV`.

use cntfet_bench::print_accuracy_table;

fn main() {
    print_accuracy_table(
        "Table III: average RMS errors in IDS, EF = -0.5 eV (paper: M1 1.8-4.8%, M2 0.7-2.8%)",
        -0.5,
    );
}
