//! Regenerates **Table IV**: average RMS errors in `I_DS` at
//! `E_F = 0 eV`.

use cntfet_bench::print_accuracy_table;

fn main() {
    print_accuracy_table(
        "Table IV: average RMS errors in IDS, EF = 0 eV (paper: M1 1.2-4.0%, M2 0.4-2.1%)",
        0.0,
    );
}
