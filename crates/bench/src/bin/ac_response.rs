//! AC small-signal scaling: frequency response of CNFET inverter
//! chains through the `Simulator` session API.
//!
//! For each chain length N the binary runs a multi-decade AC sweep of
//! the input source and reports:
//!
//! * unknown count and the shared Jacobian pattern's nonzeros,
//! * the complex solver's factorisation counters — full pivot-searching
//!   ("symbolic") factorisations vs fast pattern replays,
//! * complex multiply–accumulate operation counts,
//! * wall-clock for the whole sweep and the per-frequency average,
//! * the low-frequency gain at the first stage output (sanity value).
//!
//! The efficiency contract of the AC subsystem is **asserted**, not
//! assumed: every sweep must order the sparse pattern exactly once and
//! only re-value it at the remaining frequency points, and a repeated
//! sweep on the same session must not rebuild the engine's real
//! Jacobian patterns.
//!
//! Chain sizes default to 2…32 (doubling); pass explicit sizes as
//! arguments for a quicker run (CI smoke-tests `ac_response 2 4`).

use cntfet_bench::paper_device;
use cntfet_circuit::prelude::*;
use cntfet_core::CompactCntFet;
use std::sync::Arc;
use std::time::Instant;

fn chain_simulator(tech: &CntTechnology, stages: usize) -> Simulator {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in");
    c.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    // Bias at mid-rail: the first stage sits in its active region, so
    // the response has genuine gain and a capacitive corner.
    c.add(VoltageSource::dc(
        "VIN",
        vin,
        Circuit::ground(),
        tech.vdd / 2.0,
    ));
    add_inverter_chain(&mut c, tech, "chain", vin, stages, vdd);
    Simulator::new(c)
}

fn main() {
    let sizes: Vec<usize> = {
        let mut args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("chain sizes must be positive integers"))
            .collect();
        if args.is_empty() {
            args = vec![2, 4, 8, 16, 32];
        }
        args.sort_unstable();
        args
    };

    let model = Arc::new(CompactCntFet::model2(paper_device(300.0, -0.32)).expect("model 2 fit"));
    let tech = CntTechnology::symmetric(model, 0.8);
    // 7 decades across the aF-load corner (~GHz), 10 points per decade.
    let sweep = AcSweep::decade("VIN", 1e3, 1e10, 10);

    println!("CNFET inverter-chain AC response (Simulator session, complex sparse LU)");
    println!(
        "{:>5} {:>7} {:>7} {:>6} {:>9} {:>9} {:>12} {:>10} {:>11} {:>10}",
        "N",
        "unk",
        "nnz",
        "freqs",
        "symbolic",
        "replays",
        "factor_ops",
        "sweep/ms",
        "perfreq/us",
        "|H1|@1kHz"
    );

    for &n in &sizes {
        let mut sim = chain_simulator(&tech, n);
        let t0 = Instant::now();
        let res = sim.ac(&sweep).expect("ac sweep");
        let ms = 1e3 * t0.elapsed().as_secs_f64();
        let s = *res.stats();

        // --- The efficiency contract, checked per sweep. ----------------
        assert_eq!(
            s.symbolic_factorizations, 1,
            "N = {n}: the sparse pattern must be ordered exactly once per sweep"
        );
        assert_eq!(
            s.refactorizations as usize,
            s.frequencies - 1,
            "N = {n}: every later frequency must re-value, not re-order"
        );

        // A second sweep on the same session reuses the engine's real
        // Jacobian patterns (DC + transient stencil): no extra builds.
        let builds = sim.pattern_builds();
        let res2 = sim.ac(&sweep).expect("repeat ac sweep");
        assert_eq!(
            sim.pattern_builds(),
            builds,
            "N = {n}: a repeated sweep must not rebuild engine patterns"
        );
        assert_eq!(res2.stats().symbolic_factorizations, 1);

        let gain = res.magnitude("chain_c0").expect("first stage")[0];
        println!(
            "{:>5} {:>7} {:>7} {:>6} {:>9} {:>9} {:>12} {:>10.2} {:>11.1} {:>10.2}",
            n,
            sim.circuit().unknown_count(),
            s.jacobian_nnz,
            s.frequencies,
            s.symbolic_factorizations,
            s.refactorizations,
            s.factor_ops,
            ms,
            1e3 * ms / s.frequencies as f64,
            gain,
        );
    }
    println!("\nok: every sweep ordered its pattern once and re-valued it per frequency");
}
