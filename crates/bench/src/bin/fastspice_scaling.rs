//! Fast-SPICE hot path scaling: KLU-style partial refactorization and
//! CNFET device bypass on a ~1000-gate inverter array.
//!
//! The workload is a `rows × stages` array of CNFET inverter chains
//! (3000+ MNA unknowns at the default 125 × 8 = 1000 gates) with a
//! realistic ~12% switching activity: one row in eight is driven by a
//! pulse edge, the rest hold a quiet DC input. A short burst of
//! localised switching followed by a long quiescent tail is the
//! waveform shape real digital blocks spend most of their time in, and
//! the one the fast-SPICE machinery exists for — the quiet rows'
//! devices bypass from the first step, their Jacobian columns drop out
//! of the partial-refactorization frontier, and only the active rows'
//! columns ever replay.
//!
//! Three configurations run the same fixed-step transient:
//!
//! * **A — full replay**: partial refactorization off, bypass off (the
//!   pre-fast-SPICE path);
//! * **B — partial** (the default config): partial refactorization on,
//!   bypass off. Must match A **bitwise**;
//! * **C — partial + bypass**: both on, `bypass_vtol = 1e-6`. A
//!   bypassed device re-stamps cached Jacobian entries **bitwise**, so
//!   once a gate's terminals settle within vtol its columns drop out of
//!   the partial-refactorization frontier entirely; the per-stamp
//!   waveform error is first-order-corrected and O(vtol²).
//!
//! Asserted, not hoped for (at ≥ 1000 gates):
//!
//! 1. config C recomputes < 30% of columns per average Newton iterate
//!    (counter-verified from `TransientStats`);
//! 2. config C bypasses ≥ 50% of CNFET evaluations across the
//!    quiescent-tail transient;
//! 3. config C's factor ops drop ≥ 2× vs config A, with every node
//!    waveform within 1e-9 — and config B is bitwise-identical to A.
//!
//! Pass an optional gate-count argument to resize the array (CI
//! smoke-runs a small N, where the structural assertions still run but
//! the three scaling criteria are reported without being enforced).

use cntfet_bench::paper_device;
use cntfet_circuit::prelude::*;
use cntfet_circuit::transient::TransientOptions;
use cntfet_core::CompactCntFet;
use std::sync::Arc;

const STAGES: usize = 8;
/// One row in `ACTIVITY_DIV` switches; the rest are quiescent — the
/// ~12% activity factor of a realistic digital block.
const ACTIVITY_DIV: usize = 8;

fn array_circuit(gates: usize) -> (Circuit, f64) {
    let model = Arc::new(CompactCntFet::model2(paper_device(300.0, -0.32)).expect("model 2 fit"));
    let tech = CntTechnology::symmetric(model, 0.8);
    let rows = gates.div_ceil(STAGES).max(1);
    let active = rows.div_ceil(ACTIVITY_DIV);
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    ckt.add(VoltageSource::with_waveform(
        "VIN",
        vin,
        Circuit::ground(),
        Waveform::Pulse {
            low: 0.0,
            high: tech.vdd,
            delay: 0.0,
            rise: 40e-12,
            width: 1.0,
            fall: 40e-12,
            period: 0.0,
        },
    ));
    add_inverter_array(&mut ckt, &tech, "act", vin, active, STAGES, vdd);
    if rows > active {
        // Quiet rows idle at the pulse's low level (ground) for the
        // whole run.
        add_inverter_array(
            &mut ckt,
            &tech,
            "quiet",
            Circuit::ground(),
            rows - active,
            STAGES,
            vdd,
        );
    }
    (ckt, tech.vdd)
}

struct Config {
    label: &'static str,
    partial: bool,
    bypass: bool,
}

struct Run {
    label: &'static str,
    stats: TransientStats,
    states: Vec<Vec<f64>>,
}

fn run_config(circuit: Circuit, cfg: &Config, t_stop: f64, dt: f64) -> Run {
    let newton = NewtonOptions {
        solver: SolverKind::Sparse,
        partial_refactor: cfg.partial,
        bypass: cfg.bypass,
        bypass_vtol: 1e-6,
        ..NewtonOptions::transient()
    };
    let spec = TransientSpec::fixed(t_stop, dt).with_options(TransientOptions {
        newton,
        integrator: TimeIntegrator::BackwardEuler,
        ..TransientOptions::default()
    });
    let run = Simulator::new(circuit)
        .transient(&spec)
        .unwrap_or_else(|e| panic!("config {}: {e}", cfg.label));
    Run {
        label: cfg.label,
        stats: run.stats,
        states: run.result.states,
    }
}

fn column_ratio(s: &TransientStats) -> f64 {
    if s.columns_total == 0 {
        return 0.0;
    }
    s.columns_recomputed as f64 / s.columns_total as f64
}

fn bypass_ratio(s: &TransientStats) -> f64 {
    let attempts = s.device_evals + s.device_bypasses;
    if attempts == 0 {
        return 0.0;
    }
    s.device_bypasses as f64 / attempts as f64
}

fn max_deviation(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(xa, xb)| xa.iter().zip(xb).map(|(va, vb)| (va - vb).abs()))
        .fold(0.0f64, f64::max)
}

fn print_run(r: &Run) {
    let s = &r.stats;
    println!(
        "{:<18} {:>7} {:>8} {:>8} {:>8} {:>7.1}% {:>12} {:>9} {:>9} {:>7.1}%",
        r.label,
        s.accepted,
        s.factorizations,
        s.factorizations - s.partial_refactorizations,
        s.partial_refactorizations,
        column_ratio(s) * 100.0,
        s.factor_ops,
        s.device_evals,
        s.device_bypasses,
        bypass_ratio(s) * 100.0,
    );
}

fn main() {
    let gates = std::env::args()
        .nth(1)
        .map(|a| a.parse::<usize>().expect("gate count must be an integer"))
        .unwrap_or(1000);
    let (t_stop, dt) = (2e-9, 10e-12);
    let (probe, _) = array_circuit(gates);
    let unknowns = probe.unknown_count();
    let devices = probe.device_count();
    let rows = gates.div_ceil(STAGES).max(1);
    let active = rows.div_ceil(ACTIVITY_DIV);
    println!(
        "inverter array: {gates} gates ({rows} rows x {STAGES} stages, \
         {active} rows switching), {devices} CNFETs, {unknowns} unknowns"
    );
    println!(
        "fixed backward Euler, t_stop = {:.0} ps, dt = {:.0} ps: one localised input edge, \
         long quiescent tail\n",
        t_stop * 1e12,
        dt * 1e12
    );
    if gates >= 1000 {
        assert!(
            unknowns > 3000,
            "the ≥1000-gate array must exceed 3000 unknowns, got {unknowns}"
        );
    }

    let configs = [
        Config {
            label: "A full-replay",
            partial: false,
            bypass: false,
        },
        Config {
            label: "B partial",
            partial: true,
            bypass: false,
        },
        Config {
            label: "C partial+bypass",
            partial: true,
            bypass: true,
        },
    ];
    println!(
        "{:<18} {:>7} {:>8} {:>8} {:>8} {:>8} {:>12} {:>9} {:>9} {:>8}",
        "config",
        "steps",
        "factors",
        "full",
        "partial",
        "cols",
        "factor_ops",
        "evals",
        "bypassed",
        "byp%"
    );
    let runs: Vec<Run> = configs
        .iter()
        .map(|cfg| {
            let (ckt, _) = array_circuit(gates);
            let r = run_config(ckt, cfg, t_stop, dt);
            print_run(&r);
            r
        })
        .collect();
    let (a, b, c) = (&runs[0], &runs[1], &runs[2]);

    // B (the default config) is the full-replay waveform, bit for bit.
    assert_eq!(a.states.len(), b.states.len());
    for (xa, xb) in a.states.iter().zip(&b.states) {
        for (va, vb) in xa.iter().zip(xb) {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "partial refactorization must be bitwise-exact: {va} vs {vb}"
            );
        }
    }
    assert!(
        b.stats.partial_refactorizations > 0,
        "config B must actually take the partial path"
    );

    let cols_c = column_ratio(&c.stats);
    let byp_c = bypass_ratio(&c.stats);
    let ops_ratio = a.stats.factor_ops as f64 / c.stats.factor_ops.max(1) as f64;
    let deviation = max_deviation(&a.states, &c.states);
    println!(
        "\nC vs A: {:.1}% columns recomputed/iterate, {:.1}% CNFET evals bypassed, \
         {ops_ratio:.1}x fewer factor ops, max waveform deviation {deviation:.2e} V",
        cols_c * 100.0,
        byp_c * 100.0
    );

    if gates >= 1000 {
        assert!(
            cols_c < 0.30,
            "criterion 1: partial refactorization must recompute < 30% of \
             columns per average iterate, got {:.1}%",
            cols_c * 100.0
        );
        assert!(
            byp_c >= 0.50,
            "criterion 2: bypass must skip >= 50% of CNFET evaluations on \
             the quiescent-tail transient, got {:.1}%",
            byp_c * 100.0
        );
        assert!(
            ops_ratio >= 2.0,
            "criterion 3: factor ops must drop >= 2x vs full replay, got {ops_ratio:.2}x"
        );
        assert!(
            deviation <= 1e-9,
            "criterion 3: bypass waveform must stay within 1e-9 of the full \
             path, got {deviation:.2e}"
        );
        println!("\nok: all fast-SPICE scaling criteria hold at {gates} gates");
    } else {
        println!("\nsmoke run ({gates} gates): scaling criteria reported, not enforced");
    }
}
