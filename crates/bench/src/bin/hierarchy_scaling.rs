//! Hierarchy scaling: the `.subckt` flattener and the deck front-end
//! on generated multi-thousand-gate standard-cell netlists.
//!
//! The workload is `cntfet-gen`'s ring-array topology — `rows`
//! parallel chains of `stages` CNFET inverters, expressed two ways
//! from the same [`Workload`] value:
//!
//! * **hierarchical** — a `.subckt row` of `.subckt inv` instances
//!   plus one `X` card per row (two levels of instantiation), and
//! * **flat** — the generator's own pre-flattened netlist with
//!   identical node names, element order and analysis cards.
//!
//! Asserted, not hoped for:
//!
//! 1. the parser flattens the hierarchical deck into exactly the same
//!    element count, node count and MNA unknown count as the flat one;
//! 2. both decks complete the same fixed-step transient and their
//!    probe CSVs are **byte-identical** — the flattener is invisible
//!    to the arithmetic at any scale;
//! 3. at the default size the flattened circuit exceeds 10⁴ MNA
//!    unknowns, and parse + flatten throughput is reported per deck.
//!
//! Pass an optional gate-count argument to resize the array (CI
//! smoke-runs a small N where the equality assertions still hold but
//! the 10⁴-unknown floor is reported without being enforced).

use cntfet_circuit::deck::generate::Workload;
use cntfet_circuit::deck::Deck;
use std::time::Instant;

const STAGES: usize = 8;

struct Parsed {
    label: &'static str,
    deck: Deck,
    bytes: usize,
    parse_time: std::time::Duration,
}

fn parse_labelled(label: &'static str, text: &str) -> Parsed {
    let start = Instant::now();
    let deck = Deck::parse(text).unwrap_or_else(|e| panic!("{label} deck: {e}"));
    Parsed {
        label,
        deck,
        bytes: text.len(),
        parse_time: start.elapsed(),
    }
}

fn main() {
    let gates = std::env::args()
        .nth(1)
        .map(|a| a.parse::<usize>().expect("gate count must be an integer"))
        .unwrap_or(4000);
    let rows = gates.div_ceil(STAGES).max(1);
    let workload = Workload::RingArray {
        rows,
        stages: STAGES,
    };
    println!(
        "ring array: {} ({rows} rows x {STAGES} stages)",
        workload.title()
    );

    let hier_text = workload.deck(false);
    let flat_text = workload.deck(true);
    let hier = parse_labelled("hierarchical", &hier_text);
    let flat = parse_labelled("flat", &flat_text);

    for p in [&hier, &flat] {
        let per_elem = p.parse_time.as_secs_f64() / p.deck.elements.len().max(1) as f64;
        println!(
            "{:<13} {:>8} bytes, {:>6} elements, parsed in {:>8.2?} ({:.0} ns/element)",
            p.label,
            p.bytes,
            p.deck.elements.len(),
            p.parse_time,
            per_elem * 1e9,
        );
    }
    assert_eq!(
        hier.deck.elements.len(),
        flat.deck.elements.len(),
        "flattener must produce the flat deck's element count"
    );
    assert_eq!(
        hier.deck.node_names(),
        flat.deck.node_names(),
        "flattener must produce the flat deck's nodes, in order"
    );

    let sim = hier.deck.simulator().expect("hierarchical deck builds");
    let unknowns = sim.circuit().unknown_count();
    let devices = sim.circuit().device_count();
    println!("flattened circuit: {devices} CNFETs, {unknowns} MNA unknowns");
    if gates >= 4000 {
        assert!(
            unknowns > 10_000,
            "the ≥4000-gate array must exceed 10k unknowns, got {unknowns}"
        );
    }

    let mut csvs = Vec::new();
    for p in [&hier, &flat] {
        let start = Instant::now();
        let run = p.deck.run().unwrap_or_else(|e| panic!("{}: {e}", p.label));
        let csv: String = run.reports.iter().map(|r| r.to_csv()).collect();
        println!(
            "{:<13} transient completed in {:>8.2?} ({} probe rows)",
            p.label,
            start.elapsed(),
            run.reports.iter().map(|r| r.rows.len()).sum::<usize>(),
        );
        csvs.push(csv);
    }
    assert!(
        csvs[0] == csvs[1],
        "hierarchical and flat probe CSVs must be byte-identical"
    );
    println!("OK: hierarchical output is byte-identical to the flat deck");
}
