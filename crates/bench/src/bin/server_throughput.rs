//! Warm-server throughput vs cold CLI invocation.
//!
//! The case for `cntfet-serve` is quantitative: a cold `cntfet-sim`
//! run pays process start-up, deck parsing, CNFET model fitting (an
//! SCF solve per distinct `.model` parameter set) and symbolic
//! sparsity/pivot analysis on every invocation, while a warm server
//! session pays them once and then reuses the fitted models and the
//! frozen factorization plan for every subsequent deck of the same
//! topology. This bench measures both paths on the same deck and
//! **asserts** the ratio:
//!
//! 1. warm decks/sec ≥ 5 × cold decks/sec (the ISSUE's floor);
//! 2. the warm results are **bitwise** identical to the cold CLI's
//!    CSV output — caching must change cost, never answers.
//!
//! Cold runs spawn the sibling `cntfet-sim` binary (build it first:
//! `cargo build --release`); warm runs go through a real in-process
//! server over a Unix socket, so the measured path includes framing,
//! dispatch and the job queue — everything a client would see.
//!
//! Usage: `server_throughput [COLD_RUNS] [WARM_RUNS]` (defaults 3, 15).

use cntfet_server::client::Client;
use cntfet_server::json::Json;
use cntfet_server::server::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn data_lines(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| !l.starts_with('*') && !l.is_empty())
        .map(str::to_string)
        .collect()
}

fn result_csv(result: &Json) -> String {
    result
        .get("reports")
        .and_then(Json::as_arr)
        .expect("reports array")
        .iter()
        .map(|r| r.get("csv").and_then(Json::as_str).expect("csv member"))
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cold_runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let warm_runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);

    let deck_path = repo_path("examples/decks/inverter.cir");
    let deck = std::fs::read_to_string(&deck_path).expect("inverter deck");

    // The cold baseline: the real CLI binary, one process per deck.
    let sim = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .join("cntfet-sim");
    assert!(
        sim.exists(),
        "{} not found — run `cargo build --release` first so the cold \
         baseline measures the released CLI",
        sim.display()
    );

    println!(
        "cold: {} x `cntfet-sim --csv {}`",
        cold_runs,
        deck_path.display()
    );
    let mut cold_csv = None;
    let cold_started = Instant::now();
    for _ in 0..cold_runs {
        let output = Command::new(&sim)
            .arg("--csv")
            .arg(&deck_path)
            .output()
            .expect("spawn cntfet-sim");
        assert!(
            output.status.success(),
            "cold run failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let csv = data_lines(&String::from_utf8(output.stdout).expect("utf8 csv"));
        if let Some(first) = &cold_csv {
            assert_eq!(first, &csv, "cold runs must agree with each other");
        } else {
            cold_csv = Some(csv);
        }
    }
    let cold_elapsed = cold_started.elapsed().as_secs_f64();
    let cold_rate = cold_runs as f64 / cold_elapsed;
    let cold_csv = cold_csv.expect("at least one cold run");
    println!("cold: {cold_elapsed:.3} s, {cold_rate:.2} decks/s");

    // The warm path: a real server over a real socket. One untimed
    // submission primes the model cache and the engine pool, exactly
    // as a long-lived service would be after its first job.
    let socket = std::env::temp_dir().join(format!("cntfet-bench-{}.sock", std::process::id()));
    let server = Server::start(ServerConfig::new(&socket, 1)).expect("server starts");
    let mut client = Client::connect(&socket).expect("connect");
    let prime = client.submit(&deck).expect("prime submit");
    let prime_result = client.wait_result(prime).expect("prime result");
    assert_eq!(
        cold_csv,
        data_lines(&result_csv(&prime_result)),
        "the priming (cold-cache) server run must already match the CLI bitwise"
    );

    println!("warm: {warm_runs} x submit over {}", socket.display());
    let warm_started = Instant::now();
    for k in 0..warm_runs {
        let job = client.submit(&deck).expect("warm submit");
        let result = client.wait_result(job).expect("warm result");
        assert_eq!(
            cold_csv,
            data_lines(&result_csv(&result)),
            "warm run {k}: server output must stay bitwise-identical to the cold CLI"
        );
    }
    let warm_elapsed = warm_started.elapsed().as_secs_f64();
    let warm_rate = warm_runs as f64 / warm_elapsed;
    println!("warm: {warm_elapsed:.3} s, {warm_rate:.2} decks/s");

    let stats = client.stats().expect("stats");
    let engine_hits = stats
        .get("caches")
        .and_then(|c| c.get("engines"))
        .and_then(|e| e.get("hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(
        engine_hits >= warm_runs as u64,
        "every timed run must ride the warm engine pool (hits: {engine_hits})"
    );

    client.shutdown(true).ok();
    server.wait();

    let speedup = warm_rate / cold_rate;
    println!("speedup: {speedup:.1}x (warm {warm_rate:.2} vs cold {cold_rate:.2} decks/s)");
    assert!(
        speedup >= 5.0,
        "warm-cache throughput must beat cold CLI invocation by >= 5x, got {speedup:.1}x"
    );
    println!(
        "PASS: warm >= 5x cold, all {} runs bitwise-equal",
        warm_runs + 1
    );
}
