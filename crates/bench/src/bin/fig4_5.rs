//! Regenerates **Figs. 4 and 5**: theoretical source and drain mobile
//! charge densities `Q_S`, `Q_D` at `T = 300 K`, `E_F = −0.32 eV`
//! compared with their piecewise approximations (Model 1 in Fig. 4,
//! Model 2 in Fig. 5) at a representative drain bias.

use cntfet_bench::paper_device;
use cntfet_core::CompactCntFet;
use cntfet_numerics::interp::linspace;
use cntfet_reference::ChargeModel;

fn main() {
    let params = paper_device(300.0, -0.32);
    let ef = params.fermi_level.value();
    let vds = 0.2;
    let charge = ChargeModel::new(&params, 1e-9);
    let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
    let half = 0.5 * m1.equilibrium_charge();

    println!("Figs. 4-5: Q_S and Q_D vs V_SC at T=300K, EF=-0.32eV, VDS={vds}V");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
        "VSC[V]", "QS theory", "QS m1", "QS m2", "QD theory", "QD m1", "QD m2"
    );
    for v in linspace(ef - 0.3, ef + 0.15, 28) {
        let qs_t = charge.q_s(v);
        let qd_t = charge.q_d(v, vds);
        let qs_1 = m1.charge().eval(v) - half;
        let qs_2 = m2.charge().eval(v) - half;
        let qd_1 = m1.charge().eval(v + vds) - half;
        let qd_2 = m2.charge().eval(v + vds) - half;
        println!(
            "{v:>8.3}  {qs_t:>12.4e}  {qs_1:>12.4e}  {qs_2:>12.4e}  {qd_t:>12.4e}  {qd_1:>12.4e}  {qd_2:>12.4e}"
        );
    }
}
