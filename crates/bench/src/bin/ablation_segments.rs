//! Ablation study: accuracy/speed trade-off versus the number of
//! piecewise segments — the investigation the paper lists as ongoing work
//! ("It is possible to use more sections for an even higher accuracy but
//! at some computational expense").
//!
//! Sweeps region layouts from the paper's 3-piece Model 1 up to a
//! 6-piece custom model, reporting the mean RMS accuracy over
//! `V_G = 0.1 … 0.6 V` and the evaluation throughput.

use cntfet_bench::{paper_device, table_vds_grid, time_loops, TABLE_VG};
use cntfet_core::spec::PiecewiseSpec;
use cntfet_core::validation::rms_error_percent;
use cntfet_core::CompactCntFet;
use cntfet_reference::BallisticModel;

fn main() {
    let params = paper_device(300.0, -0.32);
    let reference = BallisticModel::new(params.clone());
    let grid = table_vds_grid();

    let layouts: Vec<(&str, PiecewiseSpec)> = vec![
        ("model1 (3 regions)", PiecewiseSpec::model1()),
        ("model2 (4 regions)", PiecewiseSpec::model2()),
        (
            "5 regions",
            PiecewiseSpec::custom(vec![-0.40, -0.20, -0.05, 0.12], vec![1, 2, 3, 3])
                .expect("valid spec"),
        ),
        (
            "6 regions",
            PiecewiseSpec::custom(vec![-0.45, -0.30, -0.15, -0.03, 0.12], vec![1, 2, 3, 3, 3])
                .expect("valid spec"),
        ),
    ];

    println!("Ablation: piecewise segment count vs accuracy and speed (T=300K, EF=-0.32eV)");
    println!(
        "{:<22}  {:>10}  {:>10}  {:>14}",
        "layout", "mean RMS", "max RMS", "evals/second"
    );
    for (name, spec) in layouts {
        let model = CompactCntFet::from_spec(params.clone(), spec).expect("fit");
        let errs: Vec<f64> = TABLE_VG
            .iter()
            .map(|&vg| rms_error_percent(&model, &reference, vg, &grid).expect("rms"))
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().fold(0.0f64, |m, e| m.max(*e));
        let loops = 20_000usize;
        let dt = time_loops(loops, || {
            let _ = model.ids(0.5, 0.4).expect("ids");
        });
        println!(
            "{name:<22}  {mean:>9.2}%  {max:>9.2}%  {:>14.0}",
            loops as f64 / dt
        );
    }
}
