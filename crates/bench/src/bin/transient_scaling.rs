//! Transient scaling: fixed-step backward Euler vs LTE-controlled
//! adaptive BDF2 on the 3-stage CNT ring oscillator, at matched
//! oscillation-period accuracy.
//!
//! The ring oscillator is the adversarial case for adaptive stepping —
//! some stage is always switching, so there are no flat regions to skip
//! and the whole win must come from the integrator's order. The binary:
//!
//! 1. builds a Richardson-extrapolated reference period from the two
//!    tightest fixed backward-Euler runs (62.5 fs and 125 fs steps),
//!    which cancels backward Euler's first-order period bias;
//! 2. walks the standard halving ladder from the historical 1 ps step
//!    down to 62.5 fs and picks the *coarsest* fixed run whose period
//!    is within 1% of the reference — the refinement a practitioner
//!    would land on;
//! 3. runs the adaptive BDF2 integrator and checks its period against
//!    the same 1% budget.
//!
//! For each run it reports accepted steps, rejected steps, Newton
//! iterations and factorisation operation counts. Two properties are
//! asserted, not hoped for:
//!
//! * both the matched fixed run and the adaptive run are within 1% of
//!   the reference period;
//! * the adaptive run takes at least 5× fewer accepted steps than the
//!   matched fixed-step run.
//!
//! Pass an optional argument to override the simulated duration in
//! nanoseconds (default 4.0; CI smoke-runs the default).

use cntfet_bench::paper_device;
use cntfet_circuit::prelude::*;
use cntfet_core::CompactCntFet;
use std::sync::Arc;

/// 3-stage ring oscillator with an asymmetric initial state (the same
/// setup as `examples/ring_oscillator.rs`).
fn ring_circuit() -> (Circuit, Vec<NodeId>, Vec<f64>, f64) {
    let model = Arc::new(CompactCntFet::model2(paper_device(300.0, -0.32)).expect("model 2 fit"));
    let tech = CntTechnology::symmetric(model, 0.8);
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    let stages = add_ring_oscillator(&mut ckt, &tech, "ring", 3, vdd);
    let mut x0 = vec![tech.vdd / 2.0; ckt.unknown_count()];
    if let Some(i) = stages[0].unknown_index() {
        x0[i] = tech.vdd;
    }
    if let Some(i) = stages[1].unknown_index() {
        x0[i] = 0.0;
    }
    (ckt, stages, x0, tech.vdd)
}

/// Oscillation period from rising mid-rail crossings after `t_min`
/// (start-up excluded), via the interpolating
/// [`TransientResult::crossings`] helper so the estimate resolves far
/// below the step size on both uniform and adaptive grids.
fn period(result: &TransientResult, node: NodeId, mid: f64, t_min: f64) -> Option<f64> {
    let rising: Vec<f64> = result
        .crossings(node, mid)
        .into_iter()
        .filter(|&(t, is_rising)| is_rising && t >= t_min)
        .map(|(t, _)| t)
        .collect();
    if rising.len() >= 3 {
        Some((rising.last().expect("non-empty") - rising[0]) / (rising.len() - 1) as f64)
    } else {
        None
    }
}

struct Row {
    label: String,
    dt: Option<f64>,
    stats: TransientStats,
    period: f64,
}

fn print_row(r: &Row, p_ref: f64) {
    println!(
        "{:<18} {:>9} {:>8} {:>8} {:>9} {:>12} {:>9.4} {:>+8.2}%",
        r.label,
        r.dt.map_or("-".to_string(), |d| format!("{:.1}", d * 1e15)),
        r.stats.accepted,
        r.stats.rejected_lte + r.stats.rejected_newton,
        r.stats.newton_iterations,
        r.stats.factor_ops,
        r.period * 1e12,
        (r.period - p_ref) / p_ref * 100.0,
    );
}

fn main() {
    let t_stop = std::env::args()
        .nth(1)
        .map(|a| a.parse::<f64>().expect("t_stop must be a number (ns)") * 1e-9)
        .unwrap_or(4e-9);
    let (ckt, stages, x0, vdd) = ring_circuit();
    // One session for the whole ladder: the MNA pattern and solver
    // ordering are recorded once and reused by every run.
    let mut sim = Simulator::new(ckt);
    let mid = vdd / 2.0;
    let be = TransientOptions {
        integrator: TimeIntegrator::BackwardEuler,
        ..TransientOptions::default()
    };

    println!(
        "3-stage CNT ring oscillator, t_stop = {:.1} ns",
        t_stop * 1e9
    );
    println!("fixed backward Euler (halving ladder) vs adaptive BDF2\n");

    // Fixed backward-Euler halving ladder, the historical 1 ps step at
    // the coarse end. Finest two rungs double as the reference pair.
    let ladder: Vec<f64> = vec![1e-12, 0.5e-12, 0.25e-12, 0.125e-12, 0.0625e-12];
    let mut fixed_rows = Vec::new();
    for &dt in &ladder {
        let spec = TransientSpec::fixed(t_stop, dt)
            .with_options(be)
            .with_initial(x0.clone());
        let run = sim.transient(&spec).expect("fixed run");
        let p = period(&run.result, stages[0], mid, t_stop / 2.0)
            .unwrap_or_else(|| panic!("no oscillation at fixed dt = {dt:.3e}"));
        fixed_rows.push(Row {
            label: "fixed-be".to_string(),
            dt: Some(dt),
            stats: run.stats,
            period: p,
        });
    }
    // Richardson extrapolation over the two finest rungs cancels the
    // integrator's O(dt) period bias: P(dt) ≈ P0 + c·dt.
    let p_fine = fixed_rows[ladder.len() - 1].period;
    let p_half = fixed_rows[ladder.len() - 2].period;
    let p_ref = 2.0 * p_fine - p_half;
    println!(
        "reference period (Richardson from the two finest rungs): {:.4} ps\n",
        p_ref * 1e12
    );
    println!(
        "{:<18} {:>9} {:>8} {:>8} {:>9} {:>12} {:>9} {:>9}",
        "run", "dt/fs", "accepted", "rejected", "newton", "factor_ops", "period/ps", "error"
    );
    for r in &fixed_rows {
        print_row(r, p_ref);
    }

    // Coarsest fixed run within the 1% period budget — what halving-
    // until-converged refinement would settle on.
    let budget = 0.01;
    let matched = fixed_rows
        .iter()
        .find(|r| ((r.period - p_ref) / p_ref).abs() <= budget)
        .expect("some fixed rung must meet the 1% budget");
    assert!(
        ((fixed_rows[0].period - p_ref) / p_ref).abs() > budget,
        "the historical 1 ps step should NOT meet the 1% budget \
         (otherwise this comparison is vacuous)"
    );

    // Adaptive BDF2. The tolerances are deliberately loose: period
    // accuracy is a phase property and survives local amplitude error,
    // so the LTE controller is conservative with respect to it.
    let adaptive_opts = TransientOptions {
        rel_tol: 5e-2,
        abs_tol: 5e-4,
        dt_init: Some(1e-12),
        dt_max: Some(50e-12),
        ..TransientOptions::default()
    };
    let spec = TransientSpec::adaptive(t_stop)
        .with_options(adaptive_opts)
        .with_initial(x0.clone());
    let run = sim.transient(&spec).expect("adaptive run");
    let p_adaptive = period(&run.result, stages[0], mid, t_stop / 2.0)
        .expect("no oscillation in the adaptive run");
    let adaptive_row = Row {
        label: "adaptive-bdf2".to_string(),
        dt: None,
        stats: run.stats,
        period: p_adaptive,
    };
    print_row(&adaptive_row, p_ref);

    let fixed_err = ((matched.period - p_ref) / p_ref).abs();
    let adaptive_err = ((p_adaptive - p_ref) / p_ref).abs();
    let ratio = matched.stats.accepted as f64 / adaptive_row.stats.accepted as f64;
    println!(
        "\nmatched fixed run: dt = {:.1} fs, {} accepted steps ({:+.2}% period error)",
        matched.dt.expect("fixed rows have dt") * 1e15,
        matched.stats.accepted,
        fixed_err * 100.0
    );
    println!(
        "adaptive run: {} accepted steps ({:+.2}% period error) → {ratio:.1}× fewer steps",
        adaptive_row.stats.accepted,
        adaptive_err * 100.0
    );
    assert!(
        fixed_err <= budget && adaptive_err <= budget,
        "matched-accuracy precondition violated: fixed {:.2}%, adaptive {:.2}%",
        fixed_err * 100.0,
        adaptive_err * 100.0
    );
    assert!(
        ratio >= 5.0,
        "adaptive must take >= 5x fewer accepted steps than the matched \
         fixed run: {} vs {}",
        adaptive_row.stats.accepted,
        matched.stats.accepted
    );
    println!("\nok: adaptive BDF2 beats matched-accuracy fixed backward Euler by >= 5x");
}
