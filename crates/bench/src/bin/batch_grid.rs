//! Demonstrates the batched evaluation engine: a dense bias grid pushed
//! through [`cntfet_core::batch`] sequentially vs in parallel, and a VTC
//! corner family pushed through [`cntfet_circuit::sim::sweep_many`].
//!
//! This is the "large numbers of such devices" scale-up of the paper's
//! Table I story: the compact model is already orders of magnitude
//! faster per point than the reference; the batch engine multiplies that
//! by the core count. Set `RAYON_NUM_THREADS` to pin the worker count.

use cntfet_bench::{paper_device, time_loops};
use cntfet_circuit::prelude::*;
use cntfet_core::batch::{parallel_enabled, BiasGrid};
use cntfet_core::CompactCntFet;
use cntfet_numerics::interp::linspace;
use std::sync::Arc;

fn main() {
    let model = CompactCntFet::model2(paper_device(300.0, -0.32)).expect("model 2 fit");

    // A dense 256 x 256 grid (65 536 closed-form bias points).
    let grid = BiasGrid::rectangular(linspace(0.0, 0.8, 256), linspace(0.0, 0.7, 256));
    println!(
        "Batched grid evaluation: {} points, parallel engine {}",
        grid.len(),
        if parallel_enabled() {
            "ON"
        } else {
            "OFF (sequential fallback)"
        },
    );

    // Warm both paths, and check equivalence while at it.
    let par = grid.evaluate(&model).expect("parallel grid");
    let seq = grid.evaluate_sequential(&model).expect("sequential grid");
    assert_eq!(
        par.ids, seq.ids,
        "parallel and sequential grids must agree bitwise"
    );

    let loops = 5;
    let t_seq = time_loops(loops, || {
        let _ = grid.evaluate_sequential(&model).expect("sequential grid");
    });
    let t_par = time_loops(loops, || {
        let _ = grid.evaluate(&model).expect("parallel grid");
    });
    println!(
        "  sequential: {:8.1} ms/grid   batched: {:8.1} ms/grid   speed-up: {:.2}x",
        1e3 * t_seq / loops as f64,
        1e3 * t_par / loops as f64,
        t_seq / t_par,
    );

    // VTC corner family: 16 inverter supply corners, one warm-started
    // sweep each, fanned out with sim::sweep_many.
    let shared = Arc::new(model);
    let corners: Vec<f64> = linspace(0.5, 0.95, 16);
    let points_per_vtc = 65;
    println!(
        "\nInverter VTC corners: {} sweeps x {} points via sim::sweep_many",
        corners.len(),
        points_per_vtc,
    );
    let t_vtc = time_loops(1, || {
        let jobs: Vec<SweepSpec> = corners
            .iter()
            .map(|&vdd| SweepSpec::new("VIN", linspace(0.0, vdd, points_per_vtc)))
            .collect();
        // Job k's circuit really runs at corner k's supply; its sweep
        // covers VIN across that supply's full rail.
        let build = |k: usize, _job: &SweepSpec| {
            let tech = CntTechnology::symmetric(shared.clone(), corners[k]);
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
            ckt.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
            add_inverter(&mut ckt, &tech, "inv", vin, out, vdd);
            ckt
        };
        let results =
            sweep_many(build, &jobs, &NewtonOptions::default()).expect("vtc corner family");
        assert_eq!(results.len(), jobs.len());
    });
    println!("  family completed in {:.1} ms", 1e3 * t_vtc);
}
