//! Criterion benches behind Table I: single-point and full-family model
//! evaluation cost for the reference model vs the compact models.

use cntfet_bench::{paper_device, table_vds_grid, FIG6_VG};
use cntfet_core::CompactCntFet;
use cntfet_reference::BallisticModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_single_point(c: &mut Criterion) {
    let params = paper_device(300.0, -0.32);
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");

    let mut group = c.benchmark_group("single_bias_point");
    group.bench_function("reference_newton_quadrature", |b| {
        b.iter(|| {
            black_box(
                reference
                    .solve_point(black_box(0.5), black_box(0.4), 0.0)
                    .expect("reference point")
                    .ids,
            )
        })
    });
    group.bench_function("model1_closed_form", |b| {
        b.iter(|| black_box(m1.ids(black_box(0.5), black_box(0.4)).expect("m1")))
    });
    group.bench_function("model2_closed_form", |b| {
        b.iter(|| black_box(m2.ids(black_box(0.5), black_box(0.4)).expect("m2")))
    });
    group.finish();
}

fn bench_family(c: &mut Criterion) {
    let params = paper_device(300.0, -0.32);
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("model 1 fit");
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");
    let grid = table_vds_grid();

    let mut group = c.benchmark_group("seven_curve_family");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("reference", "7x31"), |b| {
        b.iter(|| {
            for &vg in &FIG6_VG {
                black_box(
                    reference
                        .output_characteristic(vg, &grid)
                        .expect("reference sweep"),
                );
            }
        })
    });
    group.bench_function(BenchmarkId::new("model1", "7x31"), |b| {
        b.iter(|| {
            for &vg in &FIG6_VG {
                black_box(m1.output_characteristic(vg, &grid).expect("m1 sweep"));
            }
        })
    });
    group.bench_function(BenchmarkId::new("model2", "7x31"), |b| {
        b.iter(|| {
            for &vg in &FIG6_VG {
                black_box(m2.output_characteristic(vg, &grid).expect("m2 sweep"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_point, bench_family);
criterion_main!(benches);
