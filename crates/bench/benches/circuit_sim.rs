//! Criterion benches for the circuit-level use case the paper motivates:
//! the compact CNFET inside a SPICE-like engine (inverter VTC sweep and a
//! ring-oscillator transient).

use cntfet_bench::paper_device;
use cntfet_circuit::prelude::*;
use cntfet_core::CompactCntFet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn tech() -> CntTechnology {
    let model = Arc::new(CompactCntFet::model2(paper_device(300.0, -0.32)).expect("fit"));
    CntTechnology::symmetric(model, 0.8)
}

fn bench_inverter_vtc(c: &mut Criterion) {
    let t = tech();
    c.bench_function("inverter_vtc_33pts", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), t.vdd));
            ckt.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
            add_inverter(&mut ckt, &t, "inv", vin, out, vdd);
            let spec = SweepSpec::linspace("VIN", 0.0, t.vdd, 33);
            black_box(Simulator::new(ckt).dc_sweep(&spec).expect("vtc sweep"))
        })
    });
}

fn bench_ring_transient(c: &mut Criterion) {
    let t = tech();
    let mut group = c.benchmark_group("ring_oscillator");
    group.sample_size(10);
    group.bench_function("ring3_200steps", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), t.vdd));
            let nodes = add_ring_oscillator(&mut ckt, &t, "ring", 3, vdd);
            // Kick the ring out of its metastable point.
            let mut x0 = vec![0.0; ckt.unknown_count()];
            if let Some(i) = nodes[0].unknown_index() {
                x0[i] = t.vdd;
            }
            let spec = TransientSpec::fixed(2e-9, 1e-11)
                .with_options(TransientOptions {
                    integrator: TimeIntegrator::BackwardEuler,
                    ..TransientOptions::default()
                })
                .with_initial(x0);
            black_box(
                Simulator::new(ckt)
                    .transient(&spec)
                    .expect("ring transient"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inverter_vtc, bench_ring_transient);
criterion_main!(benches);
