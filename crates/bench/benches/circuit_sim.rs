//! Criterion benches for the circuit-level use case the paper motivates:
//! the compact CNFET inside a SPICE-like engine (inverter VTC sweep and a
//! ring-oscillator transient).

use cntfet_bench::paper_device;
use cntfet_circuit::prelude::*;
use cntfet_core::CompactCntFet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn tech() -> CntTechnology {
    let model = Arc::new(CompactCntFet::model2(paper_device(300.0, -0.32)).expect("fit"));
    CntTechnology::symmetric(model, 0.8)
}

fn bench_inverter_vtc(c: &mut Criterion) {
    let t = tech();
    c.bench_function("inverter_vtc_33pts", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), t.vdd));
            ckt.add(VoltageSource::dc("VIN", vin, Circuit::ground(), 0.0));
            add_inverter(&mut ckt, &t, "inv", vin, out, vdd);
            let vals: Vec<f64> = (0..33).map(|i| t.vdd * i as f64 / 32.0).collect();
            black_box(dc_sweep(&mut ckt, "VIN", &vals).expect("vtc sweep"))
        })
    });
}

fn bench_ring_transient(c: &mut Criterion) {
    let t = tech();
    let mut group = c.benchmark_group("ring_oscillator");
    group.sample_size(10);
    group.bench_function("ring3_200steps", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), t.vdd));
            let nodes = add_ring_oscillator(&mut ckt, &t, "ring", 3, vdd);
            // Kick the ring out of its metastable point.
            let mut x0 = vec![0.0; ckt.unknown_count()];
            if let Some(i) = nodes[0].unknown_index() {
                x0[i] = t.vdd;
            }
            black_box(solve_transient(&ckt, 2e-9, 1e-11, Some(&x0)).expect("ring transient"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inverter_vtc, bench_ring_transient);
criterion_main!(benches);
