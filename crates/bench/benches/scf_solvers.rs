//! Criterion benches isolating the paper's core claim: the closed-form
//! self-consistent-voltage solution vs Newton–Raphson over quadrature,
//! plus the one-off cost of fitting (which is amortised over every
//! subsequent evaluation).

use cntfet_bench::paper_device;
use cntfet_core::spec::PiecewiseSpec;
use cntfet_core::CompactCntFet;
use cntfet_reference::{BiasPoint, ScfSolver};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_scf(c: &mut Criterion) {
    let params = paper_device(300.0, -0.32);
    let newton = ScfSolver::new(&params, 1e-9);
    let m2 = CompactCntFet::model2(params.clone()).expect("model 2 fit");

    let mut group = c.benchmark_group("self_consistent_voltage");
    group.bench_function("newton_over_quadrature", |b| {
        b.iter(|| {
            black_box(
                newton
                    .solve(
                        BiasPoint::common_source(black_box(0.5), black_box(0.4)),
                        0.0,
                    )
                    .expect("newton scf")
                    .vsc,
            )
        })
    });
    group.bench_function("closed_form_cubic", |b| {
        b.iter(|| black_box(m2.vsc(black_box(0.5), black_box(0.4)).expect("closed form")))
    });
    group.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let params = paper_device(300.0, -0.32);
    let mut group = c.benchmark_group("one_off_fitting");
    group.sample_size(10);
    group.bench_function("fit_model1", |b| {
        b.iter(|| black_box(CompactCntFet::model1(params.clone()).expect("fit")))
    });
    group.bench_function("fit_model2", |b| {
        b.iter(|| black_box(CompactCntFet::model2(params.clone()).expect("fit")))
    });
    group.bench_function("fit_custom_5piece", |b| {
        let spec =
            PiecewiseSpec::custom(vec![-0.4, -0.2, -0.05, 0.12], vec![1, 2, 3, 3]).expect("spec");
        b.iter(|| black_box(CompactCntFet::from_spec(params.clone(), spec.clone()).expect("fit")))
    });
    group.finish();
}

criterion_group!(benches, bench_scf, bench_fitting);
criterion_main!(benches);
