//! Accuracy validation of the compact model against the reference —
//! the machinery behind the paper's Tables II–V.

use crate::device::CompactCntFet;
use crate::error::CompactModelError;
use cntfet_numerics::stats::relative_rms_percent;
use cntfet_reference::BallisticModel;

/// One row of an accuracy table: gate voltage and the RMS error (percent,
/// normalised to the sweep's peak reference current) of each model.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Gate voltage of the sweep, V.
    pub vg: f64,
    /// RMS errors in percent, one per compared model, in caller order.
    pub errors_percent: Vec<f64>,
}

/// RMS error (percent of peak reference current) of one compact model
/// against the reference over an output sweep.
///
/// # Errors
///
/// Propagates evaluation failures from either model.
pub fn rms_error_percent(
    compact: &CompactCntFet,
    reference: &BallisticModel,
    vg: f64,
    vds_grid: &[f64],
) -> Result<f64, CompactModelError> {
    let fast = compact.output_characteristic(vg, vds_grid)?.currents();
    let slow = reference
        .output_characteristic(vg, vds_grid)
        .map_err(CompactModelError::from)?
        .currents();
    Ok(relative_rms_percent(&fast, &slow))
}

/// Builds a full accuracy table: one [`AccuracyRow`] per gate voltage,
/// with one error column per compact model (the layout of the paper's
/// Tables II–IV, whose columns are Model 1 and Model 2).
///
/// # Errors
///
/// Propagates the first failing sweep.
pub fn accuracy_table(
    compacts: &[&CompactCntFet],
    reference: &BallisticModel,
    vg_values: &[f64],
    vds_grid: &[f64],
) -> Result<Vec<AccuracyRow>, CompactModelError> {
    vg_values
        .iter()
        .map(|&vg| {
            let errors_percent = compacts
                .iter()
                .map(|c| rms_error_percent(c, reference, vg, vds_grid))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(AccuracyRow { vg, errors_percent })
        })
        .collect()
}

/// RMS error of any current series against a measured/external series
/// (the Table V comparison, where the reference is experimental data).
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn rms_error_vs_series_percent(model: &[f64], measured: &[f64]) -> f64 {
    relative_rms_percent(model, measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntfet_numerics::interp::linspace;
    use cntfet_reference::DeviceParams;

    #[test]
    fn accuracy_table_has_paper_layout() {
        let p = DeviceParams::paper_default();
        let m1 = CompactCntFet::model1(p.clone()).unwrap();
        let m2 = CompactCntFet::model2(p.clone()).unwrap();
        let r = BallisticModel::new(p);
        let grid = linspace(0.0, 0.6, 13);
        let table = accuracy_table(&[&m1, &m2], &r, &[0.3, 0.5], &grid).unwrap();
        assert_eq!(table.len(), 2);
        for row in &table {
            assert_eq!(row.errors_percent.len(), 2);
            for e in &row.errors_percent {
                assert!(*e >= 0.0 && *e < 20.0, "error {e}%");
            }
        }
    }

    #[test]
    fn errors_are_within_paper_band_at_300k() {
        // Table II at 300 K reports ≤ 4.4 % for Model 1 and ≤ 2.0 % for
        // Model 2 over V_G = 0.1..0.6; allow slack for implementation
        // differences while enforcing the paper's qualitative claim.
        let p = DeviceParams::paper_default();
        let m1 = CompactCntFet::model1(p.clone()).unwrap();
        let m2 = CompactCntFet::model2(p.clone()).unwrap();
        let r = BallisticModel::new(p);
        let grid = linspace(0.0, 0.6, 25);
        for &vg in &[0.2, 0.4, 0.6] {
            let e1 = rms_error_percent(&m1, &r, vg, &grid).unwrap();
            let e2 = rms_error_percent(&m2, &r, vg, &grid).unwrap();
            assert!(e1 < 10.0, "model1 at vg {vg}: {e1}%");
            assert!(e2 < 5.0, "model2 at vg {vg}: {e2}%");
        }
    }

    #[test]
    fn series_comparison_is_symmetric_in_scale() {
        let a = [1.0e-6, 2.0e-6, 3.0e-6];
        let b = [1.1e-6, 2.0e-6, 2.9e-6];
        let e = rms_error_vs_series_percent(&a, &b);
        assert!(e > 0.0 && e < 10.0);
    }
}
