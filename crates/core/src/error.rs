//! Error type of the compact model.

use cntfet_numerics::NumericsError;
use std::fmt;

/// Error returned by compact-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompactModelError {
    /// A numerical routine failed during fitting or solving.
    Numerics(NumericsError),
    /// The closed-form self-consistent solver found no root in any
    /// segment interval — indicates a malformed charge approximation
    /// (e.g. a non-monotone fit), not a bias-point problem.
    NoRoot {
        /// The terminal charge `Q_t` of the failing bias point, C/m.
        terminal_charge: f64,
        /// Drain–source voltage of the failing bias point, V.
        vds: f64,
    },
    /// A model specification was internally inconsistent.
    InvalidSpec(String),
}

impl fmt::Display for CompactModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactModelError::Numerics(e) => write!(f, "numerical failure: {e}"),
            CompactModelError::NoRoot {
                terminal_charge,
                vds,
            } => write!(
                f,
                "closed-form solver found no root (Qt = {terminal_charge:.3e} C/m, vds = {vds} V)"
            ),
            CompactModelError::InvalidSpec(msg) => write!(f, "invalid model spec: {msg}"),
        }
    }
}

impl std::error::Error for CompactModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompactModelError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for CompactModelError {
    fn from(e: NumericsError) -> Self {
        CompactModelError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CompactModelError::NoRoot {
            terminal_charge: 1e-10,
            vds: 0.3,
        };
        assert!(e.to_string().contains("no root"));
        let w: CompactModelError = NumericsError::SingularMatrix { pivot: 1 }.into();
        assert!(w.to_string().contains("singular"));
    }

    #[test]
    fn source_chains_to_numerics() {
        use std::error::Error;
        let w: CompactModelError = NumericsError::SingularMatrix { pivot: 1 }.into();
        assert!(w.source().is_some());
        let n = CompactModelError::InvalidSpec("x".into());
        assert!(n.source().is_none());
    }
}
