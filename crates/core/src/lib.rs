//! Piecewise non-linear compact model of the ballistic CNFET — the
//! contribution of Kazmierski, Zhou & Al-Hashimi (DATE 2008).
//!
//! The reference theory (in [`cntfet_reference`]) needs numerical
//! Fermi-integral quadrature inside a Newton–Raphson loop at every bias
//! point. This crate removes both:
//!
//! * [`piecewise`] — `Q_S(V_SC)` as C¹ piecewise polynomials of degree ≤ 3;
//! * [`spec`] — the paper's Model 1 (linear/quadratic/zero) and Model 2
//!   (linear/quadratic/cubic/zero) region layouts, plus custom layouts;
//! * [`fit`] — constrained least-squares fitting against the theoretical
//!   curve, with optional numeric breakpoint optimisation;
//! * [`solver`] — closed-form (Cardano) solution of the self-consistent
//!   voltage equation by segment-pair enumeration;
//! * [`device`] — [`CompactCntFet`], the drop-in fast model;
//! * [`batch`] — rayon-parallel evaluation of whole bias grids (with a
//!   sequential fallback when the `parallel` feature is off);
//! * [`validation`] — RMS-error tables against the reference (Tables
//!   II–V of the paper);
//! * [`export`] — Verilog-A / VHDL-AMS source emission of fitted models
//!   (the paper's authors distributed a VHDL-AMS Model 2).
//!
//! # Examples
//!
//! ```
//! use cntfet_core::CompactCntFet;
//! use cntfet_reference::{BallisticModel, DeviceParams};
//!
//! let params = DeviceParams::paper_default();
//! let fast = CompactCntFet::model2(params.clone())?;
//! let slow = BallisticModel::new(params);
//!
//! let grid: Vec<f64> = (0..=12).map(|i| 0.05 * i as f64).collect();
//! let f = fast.output_characteristic(0.5, &grid)?.currents();
//! let s = slow.output_characteristic(0.5, &grid)?.currents();
//! let err = cntfet_numerics::stats::relative_rms_percent(&f, &s);
//! assert!(err < 5.0, "compact model within the paper's accuracy band");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod device;
pub mod error;
pub mod export;
pub mod fit;
pub mod piecewise;
pub mod solver;
pub mod spec;
pub mod validation;

pub use device::CompactCntFet;
pub use error::CompactModelError;
pub use piecewise::PiecewiseCharge;
pub use spec::PiecewiseSpec;
