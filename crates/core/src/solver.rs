//! Closed-form solution of the self-consistent voltage equation (paper §V).
//!
//! With the charge approximated by piecewise polynomials of degree ≤ 3,
//! the residual of the self-consistent equation,
//!
//! ```text
//! G(V) = C_Σ·V + Q_t − Q̂(V) − Q̂(V + V_DS)
//! ```
//!
//! is itself a polynomial of degree ≤ 3 on every interval of the combined
//! breakpoint partition (the model's own breakpoints plus the drain copy's
//! breakpoints shifted by `−V_DS`). The solver therefore:
//!
//! 1. merges the two breakpoint sets into a sorted partition;
//! 2. walks the intervals left to right, looking for the sign change of
//!    the (strictly increasing) residual;
//! 3. solves the cubic/quadratic/linear closed form on that interval.
//!
//! No Newton–Raphson, no quadrature — this is the entire speed-up of the
//! paper. The fallback bisection in step 3 exists only to absorb
//! floating-point corner cases at interval edges; it still evaluates
//! nothing but polynomials.

use crate::error::CompactModelError;
use crate::piecewise::PiecewiseCharge;
use cntfet_numerics::polynomial::Polynomial;
use cntfet_numerics::roots::real_roots;

/// Closed-form self-consistent-voltage solver over a fitted charge curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedFormScf {
    charge: PiecewiseCharge,
    c_total: f64,
}

impl ClosedFormScf {
    /// Creates a solver for total terminal capacitance `c_total` (F/m).
    ///
    /// # Panics
    ///
    /// Panics if `c_total <= 0`.
    pub fn new(charge: PiecewiseCharge, c_total: f64) -> Self {
        assert!(c_total > 0.0, "total capacitance must be positive");
        ClosedFormScf { charge, c_total }
    }

    /// The fitted charge curve.
    pub fn charge(&self) -> &PiecewiseCharge {
        &self.charge
    }

    /// Residual `G(V) = C_Σ V + Q_t − Q̂(V) − Q̂(V + V_DS)`.
    pub fn residual(&self, v: f64, q_t: f64, vds: f64) -> f64 {
        self.c_total * v + q_t - self.charge.eval(v) - self.charge.eval(v + vds)
    }

    /// Solves `G(V_SC) = 0` in closed form.
    ///
    /// # Errors
    ///
    /// Returns [`CompactModelError::NoRoot`] if no interval brackets a
    /// sign change — possible only if the fitted curve is so badly
    /// non-monotone that `G` is not increasing, which the fitting pipeline
    /// prevents.
    pub fn solve(&self, q_t: f64, vds: f64) -> Result<f64, CompactModelError> {
        // Combined partition: own breakpoints and the drain copy's,
        // shifted left by vds.
        let own = self.charge.breakpoints();
        let mut cuts: Vec<f64> = own
            .iter()
            .copied()
            .chain(own.iter().map(|&b| b - vds))
            .collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
        cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

        // Outer bounds: beyond the last cut the curve is zero, so
        // G = C_Σ V + Q_t is linear; below the first cut both copies are
        // linear, so G is linear too. Expand until the residual brackets.
        let mut lo = cuts.first().copied().unwrap_or(0.0) - 1.0;
        let mut hi = cuts.last().copied().unwrap_or(0.0) + 1.0 + q_t.abs() / self.c_total;
        for _ in 0..64 {
            if self.residual(lo, q_t, vds) < 0.0 {
                break;
            }
            lo = -(lo.abs() * 2.0) - 1.0;
        }
        for _ in 0..64 {
            if self.residual(hi, q_t, vds) > 0.0 {
                break;
            }
            hi = hi.abs() * 2.0 + 1.0;
        }

        let mut edges = Vec::with_capacity(cuts.len() + 2);
        edges.push(lo);
        edges.extend(cuts.iter().copied().filter(|&c| c > lo && c < hi));
        edges.push(hi);

        // Walk intervals; the residual is increasing, so the first
        // interval whose right end is non-negative holds the root.
        let mut g_left = self.residual(edges[0], q_t, vds);
        for w in edges.windows(2) {
            let (a, b) = (w[0], w[1]);
            let g_right = self.residual(b, q_t, vds);
            if g_left <= 0.0 && g_right >= 0.0 {
                return self.solve_interval(a, b, q_t, vds);
            }
            g_left = g_right;
        }
        Err(CompactModelError::NoRoot {
            terminal_charge: q_t,
            vds,
        })
    }

    /// Closed-form root on one interval where both charge copies are
    /// single polynomials.
    fn solve_interval(&self, a: f64, b: f64, q_t: f64, vds: f64) -> Result<f64, CompactModelError> {
        let mid = 0.5 * (a + b);
        let p_own = &self.charge.polynomials()[self.charge.region_index(mid)];
        let p_drain = &self.charge.polynomials()[self.charge.region_index(mid + vds)];
        // G(V) = C·V + Qt − P_own(V) − P_drain(V + vds) as one polynomial.
        let linear = Polynomial::new(vec![q_t, self.c_total]);
        let g = &(&linear - p_own) - &p_drain.shift_argument(vds);
        let tol = 1e-9 * (1.0 + b.abs().max(a.abs()));
        let mut best: Option<f64> = None;
        for r in real_roots(&g) {
            if r >= a - tol && r <= b + tol {
                // Monotone residual → at most one root in the interval;
                // if numerics produce several, keep the one with the
                // smallest residual.
                let candidate = r.clamp(a, b);
                let keep = match best {
                    None => true,
                    Some(prev) => {
                        self.residual(candidate, q_t, vds).abs()
                            < self.residual(prev, q_t, vds).abs()
                    }
                };
                if keep {
                    best = Some(candidate);
                }
            }
        }
        if let Some(r) = best {
            return Ok(r);
        }
        // Floating-point corner case (root at an interval edge): polish
        // with bisection on the polynomial residual.
        let (mut lo, mut hi) = (a, b);
        let mut flo = self.residual(lo, q_t, vds);
        if flo > 0.0 {
            return Ok(lo);
        }
        for _ in 0..200 {
            let m = 0.5 * (lo + hi);
            let fm = self.residual(m, q_t, vds);
            if fm.abs() < 1e-24 || (hi - lo) < 1e-15 {
                return Ok(m);
            }
            if (fm > 0.0) == (flo > 0.0) {
                lo = m;
                flo = fm;
            } else {
                hi = m;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piecewise::PiecewiseCharge;

    /// A simple C¹ test curve: quadratic ramp joining a linear region to
    /// zero, mimicking a Model-1 fit with breakpoints at −0.4 and −0.24.
    fn test_charge() -> PiecewiseCharge {
        // Region 3 (zero) for v > -0.24.
        // Region 2: quadratic with value 0, slope 0 at −0.24:
        //   p2 = k (v + 0.24)², k = 1e-9 F/m-ish curvature, decreasing.
        let k = 2e-10;
        let p2 = Polynomial::new(vec![k * 0.24 * 0.24, 2.0 * k * 0.24, k]);
        // Region 1: tangent of p2 at −0.4.
        let (v, s) = p2.eval_with_derivative(-0.4);
        let p1 = Polynomial::new(vec![v - s * (-0.4), s]);
        PiecewiseCharge::new(vec![-0.4, -0.24], vec![p1, p2, Polynomial::zero()]).unwrap()
    }

    fn solver() -> ClosedFormScf {
        ClosedFormScf::new(test_charge(), 1.7e-10)
    }

    #[test]
    fn residual_is_monotone() {
        let s = solver();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let v = -1.0 + 1.5 * i as f64 / 100.0;
            let g = s.residual(v, 5e-11, 0.3);
            assert!(g >= prev, "not monotone at {v}");
            prev = g;
        }
    }

    #[test]
    fn zero_terminal_charge_zero_vds_solves_in_zero_region() {
        let s = solver();
        let v = s.solve(0.0, 0.0).unwrap();
        // G = C·V in the zero region → root at 0.
        assert!(v.abs() < 1e-12, "{v}");
    }

    #[test]
    fn positive_terminal_charge_pulls_vsc_negative() {
        let s = solver();
        let v = s.solve(8e-11, 0.0).unwrap();
        assert!(v < -0.1, "{v}");
        let g = s.residual(v, 8e-11, 0.0);
        assert!(g.abs() < 1e-20, "residual {g}");
    }

    #[test]
    fn root_lands_in_every_region_as_qt_grows() {
        let s = solver();
        let mut regions_hit = std::collections::HashSet::new();
        for i in 0..60 {
            let qt = i as f64 * 4e-12;
            let v = s.solve(qt, 0.25).unwrap();
            regions_hit.insert(s.charge().region_index(v));
            let g = s.residual(v, qt, 0.25);
            assert!(g.abs() < 1e-18, "qt {qt}: residual {g}");
        }
        // The sweep must traverse zero, quadratic and linear regions.
        assert!(regions_hit.len() >= 3, "{regions_hit:?}");
    }

    #[test]
    fn vds_shift_moves_the_solution() {
        let s = solver();
        let v0 = s.solve(6e-11, 0.0).unwrap();
        let v1 = s.solve(6e-11, 0.5).unwrap();
        // Draining the +VDS copy removes charge, so V_SC falls further.
        assert!(v1 < v0, "{v1} vs {v0}");
    }

    #[test]
    fn negative_vds_also_solves() {
        let s = solver();
        let v = s.solve(6e-11, -0.3).unwrap();
        assert!(s.residual(v, 6e-11, -0.3).abs() < 1e-18);
    }

    #[test]
    fn solution_matches_dense_bisection() {
        let s = solver();
        for &(qt, vds) in &[(2e-11, 0.1), (5e-11, 0.4), (9e-11, 0.6), (1.2e-10, 0.05)] {
            let closed = s.solve(qt, vds).unwrap();
            // Brute-force bisection over a wide window.
            let (mut lo, mut hi) = (-2.0, 2.0);
            for _ in 0..200 {
                let m = 0.5 * (lo + hi);
                if s.residual(m, qt, vds) < 0.0 {
                    lo = m;
                } else {
                    hi = m;
                }
            }
            let brute = 0.5 * (lo + hi);
            assert!(
                (closed - brute).abs() < 1e-9,
                "qt {qt} vds {vds}: closed {closed} vs brute {brute}"
            );
        }
    }

    #[test]
    fn extreme_bias_still_brackets() {
        let s = solver();
        let v = s.solve(1e-8, 2.0).unwrap(); // absurdly large Q_t
        assert!(v.is_finite());
        assert!(s.residual(v, 1e-8, 2.0).abs() < 1e-16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_capacitance_panics() {
        let _ = ClosedFormScf::new(test_charge(), 0.0);
    }
}
